//! # Aurora
//!
//! A Rust reproduction of **"Aurora: A Versatile and Flexible Accelerator
//! for Graph Neural Networks"** (Yang, Zheng, Louri — IPDPS 2024): a
//! cycle-level simulator of a reconfigurable GNN accelerator, plus the GNN
//! model zoo, degree-aware mapping, partition heuristic, flexible-NoC model,
//! DRAM substrate, energy/area models, and mechanistic models of the five
//! baseline accelerators the paper compares against.
//!
//! This facade crate re-exports the workspace's public API. Start with
//! [`core::AuroraSimulator`] (once you have a graph from [`graph`] and a
//! model from [`model`]), or run `examples/quickstart.rs`.

pub use aurora_baselines as baselines;
pub use aurora_core as core;
pub use aurora_energy as energy;
pub use aurora_graph as graph;
pub use aurora_mapping as mapping;
pub use aurora_mem as mem;
pub use aurora_model as model;
pub use aurora_noc as noc;
pub use aurora_partition as partition;
pub use aurora_pe as pe;
