//! Head-to-head: Aurora vs the five baseline accelerators on one dataset
//! — a single-dataset slice of Figs. 7/8/9/10.
//!
//! ```sh
//! cargo run --release --example accelerator_comparison
//! ```

use aurora::baselines::{BaselineKind, BaselineParams};
use aurora::core::{AcceleratorConfig, AuroraSimulator, SimRequest};
use aurora::graph::Dataset;
use aurora::model::{LayerShape, ModelId};

fn main() {
    let spec = Dataset::Citeseer.spec();
    let g = spec.synthesize();
    let shapes = [
        LayerShape::new(spec.feature_dim, 16),
        LayerShape::new(16, spec.classes),
    ];
    println!(
        "dataset: Citeseer ({} vertices, {} edges, {} features)",
        g.num_vertices(),
        g.num_edges(),
        spec.feature_dim
    );

    let request = SimRequest::builder(ModelId::Gcn)
        .config(AcceleratorConfig::default())
        .inline_graph(g.clone())
        .layers(&shapes)
        .workload("Citeseer")
        .input_density(spec.feature_density)
        .build()
        .expect("valid request");
    let aurora = AuroraSimulator::new(AcceleratorConfig::default())
        .run(&request)
        .expect("simulation");

    println!(
        "\n{:<10}{:>14}{:>10}{:>14}{:>14}{:>12}",
        "design", "cycles", "vs Aurora", "DRAM (MB)", "NoC cycles", "energy (mJ)"
    );
    let row = |name: &str, cycles: u64, dram: u64, noc: u64, e: f64| {
        println!(
            "{:<10}{:>14}{:>9.2}x{:>14.1}{:>14}{:>12.2}",
            name,
            cycles,
            cycles as f64 / aurora.total_cycles as f64,
            dram as f64 / 1e6,
            noc,
            e * 1e3
        );
    };
    row(
        "Aurora",
        aurora.total_cycles,
        aurora.dram.total_bytes(),
        aurora.noc_cycles(),
        aurora.energy_joules(),
    );
    for b in BaselineKind::ALL {
        let r = b
            .build(BaselineParams::default())
            .simulate(&g, ModelId::Gcn, &shapes, "Citeseer");
        row(
            b.name(),
            r.total_cycles,
            r.dram.total_bytes(),
            r.noc_cycles(),
            r.energy_joules(),
        );
    }
    println!(
        "\n(all designs normalised to the same multiplier count, DRAM\n\
         bandwidth and 100 MB on-chip storage, per the paper's §VI-A)"
    );
}
