//! Vertex classification on a citation network (the paper's motivating
//! application, §I): run an actual two-layer GCN forward pass with the
//! numeric reference executors, then show what the same inference costs on
//! the Aurora accelerator.
//!
//! ```sh
//! cargo run --release --example citation_inference
//! ```

use aurora::core::{AcceleratorConfig, AuroraSimulator, SimRequest};
use aurora::graph::{Dataset, FeatureMatrix};
use aurora::model::reference::layer_for;
use aurora::model::{LayerShape, ModelId};

fn main() {
    // A Cora-like citation graph, scaled ×1/4 so the functional forward
    // pass stays snappy.
    let spec = Dataset::Cora.spec().scaled(4);
    let g = spec.synthesize();
    let f_in = 64; // reduced feature width for the numeric demo
    let hidden = 16;
    let classes = spec.classes;
    println!(
        "citation graph: {} papers, {} citations, {} classes",
        g.num_vertices(),
        g.num_edges(),
        classes
    );

    // --- functional inference (reference executors) ---------------------
    let x = FeatureMatrix::random(g.num_vertices(), f_in, spec.feature_density.max(0.05), 1);
    let layer1 = layer_for(ModelId::Gcn, f_in, hidden, 7);
    let layer2 = layer_for(ModelId::Gcn, hidden, classes, 8);
    let h = layer1.forward(&g, &x);
    let logits = layer2.forward(&g, &h);

    // classify the first few vertices
    println!("\npredicted classes (first 8 papers):");
    for v in 0..8.min(g.num_vertices()) {
        let row = logits.row(v);
        let (class, score) = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        println!("  paper {v}: class {class} (score {score:.4})");
    }

    // --- accelerator cost of the same inference -------------------------
    let sim = AuroraSimulator::new(AcceleratorConfig::default());
    let shapes = [
        LayerShape::new(spec.feature_dim, hidden),
        LayerShape::new(hidden, classes),
    ];
    let request = SimRequest::builder(ModelId::Gcn)
        .config(*sim.config())
        .inline_graph(g.clone())
        .layers(&shapes)
        .workload("Cora/4")
        .input_density(spec.feature_density)
        .build()
        .expect("valid request");
    let report = sim.run(&request).expect("simulation");
    println!(
        "\nAurora would run the full-width ({}-feature) inference in {:.3} ms \
         ({} cycles, {:.2} mJ)",
        spec.feature_dim,
        report.seconds() * 1e3,
        report.total_cycles,
        report.energy_joules() * 1e3
    );
}
