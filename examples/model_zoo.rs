//! Tour of the model zoo: every Table II model executed numerically and
//! characterised for the accelerator — phases, required PE datapath modes,
//! op counts, and the Algorithm 2 partition each one gets.
//!
//! ```sh
//! cargo run --release --example model_zoo
//! ```

use aurora::core::{AcceleratorConfig, AuroraSimulator, SimRequest, Workflow};
use aurora::graph::{generate, FeatureMatrix};
use aurora::model::reference::layer_for;
use aurora::model::{LayerShape, ModelId, Workload};

fn main() {
    let g = generate::rmat(512, 4_000, Default::default(), 9);
    let shape = LayerShape::new(32, 16);
    let x = FeatureMatrix::random(g.num_vertices(), shape.f_in, 0.8, 2);
    let sim = AuroraSimulator::new(AcceleratorConfig::default());

    println!(
        "{:<20}{:<9}{:>7}{:>7}{:>12}{:>12}{:>12}{:>10}",
        "model", "category", "phases", "modes", "O_ue", "O_a", "O_uv", "A/B"
    );
    for id in ModelId::ALL {
        // numeric forward pass (the golden reference)
        let layer = layer_for(id, shape.f_in, shape.f_out, 11);
        let y = layer.forward(&g, &x);
        assert!(y.as_slice().iter().all(|v| v.is_finite()));

        // workload characterisation + workflow + partition
        let wf = Workflow::generate(id);
        let counts = Workload::of(id, &g, shape).op_counts();
        let report = sim
            .run(
                &SimRequest::builder(id)
                    .config(*sim.config())
                    .inline_graph(g.clone())
                    .layer(shape)
                    .workload("zoo")
                    .build()
                    .expect("valid request"),
            )
            .expect("simulation");
        let p = &report.layers[0].partition;
        println!(
            "{:<20}{:<9}{:>7}{:>7}{:>12}{:>12}{:>12}{:>7}/{}",
            id.name(),
            id.spec().category.name(),
            wf.phases.len(),
            wf.required_modes().len(),
            counts.edge_update,
            counts.aggregation,
            counts.vertex_update,
            p.a,
            p.b
        );
    }

    // extension beyond the paper's zoo: multi-head GAT
    let gat = aurora::model::zoo::Gat::new_random(shape.f_in, 8, 4, 21);
    let y = {
        use aurora::model::reference::GnnLayer;
        gat.forward(&g, &x)
    };
    println!(
        "\nextension: GAT with {} heads → output width {} (finite: {})",
        gat.heads(),
        y.cols(),
        y.as_slice().iter().all(|v| v.is_finite())
    );

    println!(
        "\nEvery model ran numerically AND through the accelerator — the\n\
         unified PE + flexible NoC covers the full Table I matrix, where\n\
         each baseline accelerator supports only a subset."
    );
}
