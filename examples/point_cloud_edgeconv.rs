//! Point-cloud processing with EdgeConv (another §I motivation): build a
//! k-nearest-neighbour graph over synthetic 3-D points, run EdgeConv
//! layers numerically, and show the accelerator cost — including the §V
//! special case where EdgeConv's missing vertex-update phase makes Aurora
//! form a *single* sub-accelerator.
//!
//! ```sh
//! cargo run --release --example point_cloud_edgeconv
//! ```

use aurora::core::{AcceleratorConfig, AuroraSimulator, SimRequest};
use aurora::graph::{FeatureMatrix, GraphBuilder};
use aurora::model::reference::layer_for;
use aurora::model::{LayerShape, ModelId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// k-nearest-neighbour graph over points (brute force — fine at this
/// size).
fn knn_graph(points: &[[f64; 3]], k: usize) -> aurora::graph::Csr {
    let n = points.len();
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        let mut d: Vec<(f64, usize)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| {
                let dx = points[i][0] - points[j][0];
                let dy = points[i][1] - points[j][1];
                let dz = points[i][2] - points[j][2];
                (dx * dx + dy * dy + dz * dz, j)
            })
            .collect();
        d.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for &(_, j) in d.iter().take(k) {
            b.add_edge(i as u32, j as u32);
        }
    }
    b.build()
}

fn main() {
    // A synthetic scan: two clusters of 3-D points.
    let mut rng = StdRng::seed_from_u64(5);
    let mut points = Vec::new();
    for c in 0..2 {
        let centre = c as f64 * 4.0;
        for _ in 0..400 {
            points.push([
                centre + rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ]);
        }
    }
    let g = knn_graph(&points, 8);
    println!(
        "point cloud: {} points, kNN graph with {} edges",
        points.len(),
        g.num_edges()
    );

    // functional EdgeConv over the coordinates (width-preserving MLP)
    let f = 3;
    let x = FeatureMatrix::from_vec(points.len(), f, points.iter().flatten().copied().collect());
    let ec1 = layer_for(ModelId::EdgeConv1, f, 1, 3);
    let y1 = ec1.forward(&g, &x);
    let ec5 = layer_for(ModelId::EdgeConv5, f, 5, 3);
    let y5 = ec5.forward(&g, &x);
    println!(
        "EdgeConv-1 output row 0: {:?}",
        y1.row(0)
            .iter()
            .map(|v| (v * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "EdgeConv-5 output row 0: {:?}",
        y5.row(0)
            .iter()
            .map(|v| (v * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // accelerator cost: EdgeConv has no vertex update → one accelerator
    let sim = AuroraSimulator::new(AcceleratorConfig::default());
    // a serving batch: four scans through the same resident weights
    let scans: Vec<aurora::graph::Csr> = (0..4)
        .map(|s| {
            let mut pts = points.clone();
            for p in pts.iter_mut() {
                p[0] += s as f64 * 0.01; // jitter per scan
            }
            knn_graph(&pts, 8)
        })
        .collect();
    let refs: Vec<&aurora::graph::Csr> = scans.iter().collect();
    let batch = sim
        .try_simulate_batch(
            &refs,
            ModelId::EdgeConv1,
            &[LayerShape::new(64, 64)],
            "scans",
        )
        .expect("batch simulation");
    println!(
        "batch of 4 scans: {} cycles total, {:.1} MB DRAM (weights loaded once)",
        batch.total_cycles,
        batch.dram.total_bytes() as f64 / 1e6
    );

    for (id, label) in [
        (ModelId::EdgeConv1, "EdgeConv-1"),
        (ModelId::EdgeConv5, "EdgeConv-5"),
    ] {
        let r = sim
            .run(
                &SimRequest::builder(id)
                    .config(*sim.config())
                    .inline_graph(g.clone())
                    .layer(LayerShape::new(64, 64))
                    .workload(label)
                    .build()
                    .expect("valid request"),
            )
            .expect("simulation");
        let l = &r.layers[0];
        println!(
            "{label}: {} cycles, partition A/B = {}/{} (single accelerator: {})",
            r.total_cycles,
            l.partition.a,
            l.partition.b,
            l.partition.b == 0
        );
    }
}
