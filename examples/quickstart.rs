//! Quickstart: simulate a two-layer GCN on the Aurora accelerator.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use aurora::core::{AcceleratorConfig, AuroraSimulator, SimRequest};
use aurora::graph::generate;
use aurora::model::{LayerShape, ModelId};

fn main() {
    // 1. A synthetic power-law graph (10k vertices, ~80k edges) — the
    //    shape real GNN inputs have.
    let g = generate::rmat(10_000, 80_000, Default::default(), 42);
    println!(
        "graph: {} vertices, {} edges, max degree {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );

    // 2. The paper's accelerator: 32 × 32 reconfigurable PEs @ 700 MHz,
    //    100 KB bank buffer per PE, flexible NoC, degree-aware mapping,
    //    Algorithm-2 partitioning.
    let sim = AuroraSimulator::new(AcceleratorConfig::default());

    // 3. A two-layer GCN: 128 input features → 64 hidden → 16 classes,
    //    described as a SimRequest — the one-shot run API.
    let shapes = [LayerShape::new(128, 64), LayerShape::new(64, 16)];
    let request = SimRequest::builder(ModelId::Gcn)
        .config(AcceleratorConfig::default())
        .inline_graph(g.clone())
        .layers(&shapes)
        .workload("quickstart")
        .build()
        .expect("valid request");
    let report = sim.run(&request).expect("simulation");

    // 4. What the simulator measured.
    println!("\n=== Aurora simulation report ===");
    println!("model: {}", report.model);
    println!("total cycles: {}", report.total_cycles);
    println!("execution time: {:.3} ms", report.seconds() * 1e3);
    println!(
        "DRAM traffic: {:.1} MB ({} accesses)",
        report.dram.total_bytes() as f64 / 1e6,
        report.dram_accesses()
    );
    println!("on-chip communication cycles: {}", report.noc_cycles());
    println!("energy: {:.3} mJ", report.energy_joules() * 1e3);
    for l in &report.layers {
        println!(
            "  layer {}: tiles={} partition A/B = {}/{} ({} cycles)",
            l.layer, l.tiles, l.partition.a, l.partition.b, l.total_cycles
        );
    }
    println!(
        "reconfiguration energy: {:.4}% of total (paper claims < 3%)",
        report.energy.reconfiguration_fraction() * 100.0
    );
}
