//! Bring your own graph: load an edge list from disk, describe its
//! features with a custom [`DatasetSpec`], and run the full evaluation on
//! it — the downstream-user path.
//!
//! ```sh
//! cargo run --release --example custom_dataset
//! ```

use aurora::core::{AcceleratorConfig, AuroraSimulator, SimRequest};
use aurora::graph::{generate, io, Dataset, DatasetSpec, DegreeStats};
use aurora::model::{LayerShape, ModelId};

fn main() -> std::io::Result<()> {
    // 1. Pretend this file came from your own pipeline.
    let path = std::env::temp_dir().join("aurora_custom_graph.txt");
    let original = generate::rmat(5_000, 60_000, Default::default(), 77);
    io::save(&original, &path)?;

    // 2. Load it back and describe the workload.
    let g = io::load(&path)?;
    assert_eq!(g, original);
    let spec = DatasetSpec {
        dataset: Dataset::Cora, // label only; every number below is custom
        vertices: g.num_vertices(),
        edges: g.num_edges(),
        feature_dim: 256,
        classes: 12,
        feature_density: 0.08,
    };
    let stats = DegreeStats::of(&g);
    println!(
        "custom graph: {} vertices, {} edges, max degree {}, gini {:.3}",
        stats.num_vertices, stats.num_edges, stats.max_degree, stats.gini
    );

    // 3. Run the accelerator on it.
    let shapes = [
        LayerShape::new(spec.feature_dim, 32),
        LayerShape::new(32, spec.classes),
    ];
    let request = SimRequest::builder(ModelId::Gcn)
        .config(AcceleratorConfig::default())
        .inline_graph(g.clone())
        .layers(&shapes)
        .workload("custom")
        .input_density(spec.feature_density)
        .build()
        .expect("valid request");
    let r = AuroraSimulator::new(AcceleratorConfig::default())
        .run(&request)
        .expect("simulation");
    println!(
        "two-layer GCN on Aurora: {} cycles ({:.3} ms), {:.1} MB DRAM, {:.3} mJ",
        r.total_cycles,
        r.seconds() * 1e3,
        r.dram.total_bytes() as f64 / 1e6,
        r.energy_joules() * 1e3
    );
    for l in &r.layers {
        println!(
            "  layer {}: A compute {} + noc {} | B compute {} + noc {} (cycles)",
            l.layer,
            l.phase_cycles.sub_a_compute,
            l.phase_cycles.sub_a_noc,
            l.phase_cycles.sub_b_compute,
            l.phase_cycles.sub_b_noc,
        );
    }
    std::fs::remove_file(&path).ok();
    Ok(())
}
