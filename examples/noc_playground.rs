//! Drive the cycle-level flexible NoC directly: compare a plain mesh, a
//! bypass-configured mesh, and ring mode on concrete traffic patterns —
//! the Fig. 2 story at flit granularity.
//!
//! ```sh
//! cargo run --release --example noc_playground
//! ```

use aurora::noc::{BypassSegment, Network, NocConfig};

fn hotspot_traffic(net: &mut Network, k: usize, hub: usize) {
    // every node sends one 32-word message to the hub (a high-degree
    // vertex's aggregation pattern)
    for n in 0..k * k {
        if n != hub {
            net.inject(n, hub, 32);
        }
    }
}

fn main() {
    let k = 8;
    let hub = 3 * k + 4; // (4, 3)

    // --- plain mesh ------------------------------------------------------
    let mut mesh = Network::new(NocConfig::mesh(k));
    hotspot_traffic(&mut mesh, k, hub);
    mesh.drain(100_000).expect("mesh drains");
    let ms = mesh.stats().clone();

    // --- mesh + bypass bridging into the hub ------------------------------
    // (segments terminate AT the hub's row/column position, exactly what
    // the degree-aware planner produces for a high-degree vertex)
    let cfg = NocConfig::with_bypass(
        k,
        vec![BypassSegment {
            index: 3,
            from: 0,
            to: 4,
        }],
        vec![BypassSegment {
            index: 4,
            from: 3,
            to: 7,
        }],
    );
    let mut byp = Network::new(cfg);
    hotspot_traffic(&mut byp, k, hub);
    byp.drain(100_000).expect("bypass drains");
    let bs = byp.stats().clone();

    println!(
        "=== one-to-many hotspot into ({}, {}) on an {k}×{k} NoC ===",
        hub % k,
        hub / k
    );
    println!(
        "{:<18}{:>12}{:>12}{:>12}{:>12}",
        "", "cycles", "avg latency", "avg hops", "bypass hops"
    );
    println!(
        "{:<18}{:>12}{:>12.1}{:>12.2}{:>12}",
        "plain mesh",
        ms.cycles,
        ms.avg_packet_latency(),
        ms.avg_hops(),
        ms.bypass_traversals
    );
    println!(
        "{:<18}{:>12}{:>12.1}{:>12.2}{:>12}",
        "with bypass",
        bs.cycles,
        bs.avg_packet_latency(),
        bs.avg_hops(),
        bs.bypass_traversals
    );

    // --- ring mode (weight-stationary dataflow) ----------------------------
    let mut rings = Network::new(NocConfig::rings(k));
    // every vertex-update vector circulates its row: neighbour-to-neighbour
    for y in 0..k {
        for x in 0..k {
            let src = y * k + x;
            let dst = y * k + (x + 1) % k;
            rings.inject(src, dst, 16);
        }
    }
    rings.drain(100_000).expect("rings drain");
    let rs = rings.stats();
    println!("\n=== ring mode: one systolic rotation per row ===");
    println!(
        "{} packets in {} cycles (avg latency {:.1}, every hop a ring hop)",
        rs.packets_delivered,
        rs.cycles,
        rs.avg_packet_latency()
    );
}
