#!/usr/bin/env bash
# Full local gate: build, tests, formatting, lints, perf gate, and the
# thread-count determinism contract.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Scratch BENCH_*.json files must not survive a failed gate: clean up the
# check artifacts on every exit path, success or failure. The serve smoke
# step fills in SERVE_PID/SERVE_SOCK; the trap also reaps that daemon if
# a later step (or the smoke itself) fails.
SERVE_PID=""
SERVE_SOCK=""
SERVE_LOG=""
cleanup() {
  rm -f BENCH_check.json BENCH_check-seq.json BENCH_check-par.json
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -TERM "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  [ -n "$SERVE_SOCK" ] && rm -f "$SERVE_SOCK"
  [ -n "$SERVE_LOG" ] && rm -f "$SERVE_LOG"
}
trap cleanup EXIT

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> perf_regress --check (vs BENCH_seed.json)"
cargo run --release -q -p aurora-bench --bin perf_regress -- \
  --check --baseline BENCH_seed.json --name check

echo "==> noc_kernel_bench --quick (informational: traffic-kernel speedup)"
# Wall-clock comparison of the route-table kernel vs the seed's per-edge
# walker. Informational only — host timing never gates — but the binary
# asserts the two estimators produce bit-identical results.
cargo run --release -q -p aurora-bench --bin noc_kernel_bench -- --quick

echo "==> serve smoke (aurora_serve + 8 concurrent serve_bench connections)"
# Start the daemon on a scratch socket (the release binary directly, so
# the TERM below reaches the daemon itself, not a cargo wrapper), flood
# it with 8 concurrent mixed connections, and require every response to
# succeed with per-digest bit-identical reports and cache hits on the
# repeats — serve_bench exits non-zero otherwise (it also scrapes the
# health/stats/metrics admin commands and gates the quantile ordering
# and hit ratio). Then exercise the admin plane directly: health must
# flip ok -> draining across SIGTERM (the drain grace keeps open
# connections answering), flights must retain records (slow-ms 0
# records everything), and the access log must hold exactly one
# well-formed NDJSON line per served request.
SERVE_SOCK="$(mktemp -u /tmp/aurora-serve-check-XXXXXX.sock)"
SERVE_LOG="$(mktemp /tmp/aurora-serve-check-XXXXXX.log)"
./target/release/aurora_serve --socket "$SERVE_SOCK" --workers 2 \
  --access-log "$SERVE_LOG" --slow-ms 0 --flights 8 --drain-grace-ms 5000 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -S "$SERVE_SOCK" ] && break
  sleep 0.1
done
[ -S "$SERVE_SOCK" ] || { echo "serve smoke FAILED: daemon never bound" >&2; exit 1; }
./target/release/serve_bench --socket "$SERVE_SOCK" --connections 8 --repeat 2
SERVE_SOCK="$SERVE_SOCK" SERVE_PID="$SERVE_PID" python3 - <<'EOF'
import json, os, signal, socket, sys, time

sock_path, pid = os.environ["SERVE_SOCK"], int(os.environ["SERVE_PID"])
conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
conn.connect(sock_path)
io = conn.makefile("rw", encoding="utf-8")

def admin(command, id=1):
    io.write(json.dumps({"id": id, "admin": command}) + "\n")
    io.flush()
    return json.loads(io.readline())

health = admin("health")
assert health["status"] == "ok", f"health before drain: {health}"
stats = admin("stats")["stats"]
assert stats["requests"] >= 64, f"stats undercounts: {stats['requests']}"
assert stats["latency_us"]["p50_us"] <= stats["latency_us"]["p99_us"]
metrics = admin("metrics")
assert "aurora_serve_requests" in metrics["prometheus"], "exposition missing serve counters"
flights = admin("flights")
assert len(flights["flights"]) > 0, "flight recorder empty at slow-ms 0"

# drain: the open connection keeps answering through the grace window
os.kill(pid, signal.SIGTERM)
deadline = time.time() + 5.0
while True:
    health = admin("health")
    if health["status"] == "draining":
        break
    assert time.time() < deadline, "health never flipped to draining"
    time.sleep(0.05)
conn.close()
print("serve admin plane: health/stats/metrics/flights answered, drain observed")
EOF
wait "$SERVE_PID" || { echo "serve smoke FAILED: daemon exited non-zero" >&2; exit 1; }
SERVE_PID=""
SERVE_LOG="$SERVE_LOG" python3 - <<'EOF'
import json, os

lines = open(os.environ["SERVE_LOG"], encoding="utf-8").read().splitlines()
# 8 connections x 2 repeats x 4-request mix; admin traffic is never logged
assert len(lines) == 64, f"access log holds {len(lines)} lines, expected 64"
for line in lines:
    record = json.loads(line)
    for key in ("seq", "digest", "outcome", "queue_wait_us", "execute_us",
                "latency_us", "bytes_out"):
        assert key in record, f"access record missing {key}: {record}"
    assert record["outcome"] in ("hit", "miss", "join"), record["outcome"]
    assert record["bytes_out"] > 0, record
print("access log: one well-formed line per served request")
EOF
echo "serve smoke passed: daemon drained cleanly"

echo "==> thread-count determinism (AURORA_THREADS=1 vs 2)"
AURORA_THREADS=1 cargo run --release -q -p aurora-bench --bin perf_regress -- \
  --name check-seq
AURORA_THREADS=2 cargo run --release -q -p aurora-bench --bin perf_regress -- \
  --name check-par
# Compare everything except host wall-time, which legitimately varies.
python3 - <<'EOF'
import json, sys

def key(path):
    doc = json.load(open(path))
    return [
        (r["workload"], r["cycles"], r["compute_frac"], r["noc_frac"],
         r["dram_frac"], r["imbalance_frac"], r["dominant"])
        for r in doc["results"]
    ]

seq, par = key("BENCH_check-seq.json"), key("BENCH_check-par.json")
if seq != par:
    print("determinism check FAILED: results differ across thread counts",
          file=sys.stderr)
    for a, b in zip(seq, par):
        if a != b:
            print(f"  seq: {a}\n  par: {b}", file=sys.stderr)
    sys.exit(1)
print("determinism check passed: cycles identical across thread counts")
EOF

echo "All checks passed."
