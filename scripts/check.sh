#!/usr/bin/env bash
# Full local gate: build, tests, formatting, lints, perf gate, and the
# thread-count determinism contract.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Scratch BENCH_*.json files must not survive a failed gate: clean up the
# check artifacts on every exit path, success or failure. The serve smoke
# step fills in SERVE_PID/SERVE_SOCK; the trap also reaps that daemon if
# a later step (or the smoke itself) fails.
SERVE_PID=""
SERVE_SOCK=""
SERVE_LOG=""
ROUTER_PID=""
ROUTER_SOCK=""
ROUTER_LOG=""
cleanup() {
  rm -f BENCH_check.json BENCH_check-seq.json BENCH_check-par.json \
    BENCH_check_history.jsonl BENCH_check_hostprof.json
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -TERM "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  [ -n "$SERVE_SOCK" ] && rm -f "$SERVE_SOCK"
  [ -n "$SERVE_LOG" ] && rm -f "$SERVE_LOG"
  if [ -n "$ROUTER_PID" ] && kill -0 "$ROUTER_PID" 2>/dev/null; then
    kill -TERM "$ROUTER_PID" 2>/dev/null || true
    wait "$ROUTER_PID" 2>/dev/null || true
  fi
  if [ -n "$ROUTER_SOCK" ]; then
    rm -f "$ROUTER_SOCK"
    # worker scratch sockets are keyed by the router's pid
    [ -n "$ROUTER_PID" ] && rm -f /tmp/aurora-cluster-"$ROUTER_PID"-w*.sock
  fi
  [ -n "$ROUTER_LOG" ] && rm -f "$ROUTER_LOG"
}
trap cleanup EXIT

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> perf_regress --check (vs BENCH_seed.json) + ledger record + wall gate"
# --record exercises the history ledger against a scratch file; the
# wall gate (exit 3) is informational in this gate — host wall time
# tracks the machine, only cycle regressions (exit 1) fail the check.
set +e
cargo run --release -q -p aurora-bench --bin perf_regress -- \
  --check --baseline BENCH_seed.json --name check \
  --record --history BENCH_check_history.jsonl --wall-gate 3.0
PERF_RC=$?
set -e
if [ "$PERF_RC" -eq 3 ]; then
  echo "note: wall-clock gate exceeded (informational here; cycles were clean)"
elif [ "$PERF_RC" -ne 0 ]; then
  exit "$PERF_RC"
fi

echo "==> perf_trend --check (scratch ledger + committed BENCH_history.jsonl)"
# Both ledgers must parse row-by-row with monotonic timestamps; the
# committed one also proves the recording format stays readable.
cargo run --release -q -p aurora-bench --bin perf_trend -- \
  --check --history BENCH_check_history.jsonl
cargo run --release -q -p aurora-bench --bin perf_trend -- \
  --check --history BENCH_history.jsonl

echo "==> host-profile coverage (>= 90%) and span overhead (<= 5%)"
./target/release/aurora_sim --dataset pubmed --model gcn --host-profile --json \
  > BENCH_check_hostprof.json 2>/dev/null
python3 - <<'EOF'
import json, sys

hp = json.load(open("BENCH_check_hostprof.json"))["host_profile"]
assert hp is not None, "--host-profile produced no host_profile in the report"
stages = {s["stage"]: s for s in hp["stages"]}
assert stages, "host profile recorded no stages"
# Top-level coverage mirrors HostProfile::coverage(): mapping runs
# nested inside tile_precompute and `other` is the catch-all, so
# neither counts toward the wall-time budget. Stage names serialize
# as CamelCase variant names ("Mapping"), hence the lower().
top = sum(s["wall_us"] for name, s in stages.items()
          if name.lower() not in ("mapping", "other"))
coverage = top / max(hp["total_wall_us"], 1)
print(f"host profile: {len(stages)} stages, "
      f"{coverage*100:.1f}% of {hp['total_wall_us']} us covered")
if coverage < 0.9:
    print(f"coverage gate FAILED: top-level spans cover {coverage*100:.1f}%, "
          "need >= 90%", file=sys.stderr)
    sys.exit(1)
EOF
python3 - <<'EOF'
import os, subprocess, sys, time

# Spans-disabled vs spans-enabled wall clock of one pinned workload,
# best of 3 each to shave scheduler noise. The profiler is a handful of
# atomics per stage, so 5% is generous — a failure means a hot-path
# regression (e.g. spans created inside a per-edge loop).
CMD = ["./target/release/aurora_sim", "--dataset", "pubmed", "--model", "gcn"]

def best(extra_env):
    env = dict(os.environ)
    env.pop("AURORA_HOST_PROFILE", None)
    env.update(extra_env)
    times = []
    for _ in range(3):
        t0 = time.perf_counter()
        subprocess.run(CMD, env=env, stdout=subprocess.DEVNULL,
                       stderr=subprocess.DEVNULL, check=True)
        times.append(time.perf_counter() - t0)
    return min(times)

off = best({})
on = best({"AURORA_HOST_PROFILE": "1"})
ratio = on / off
print(f"span overhead: disabled {off*1e3:.0f} ms, enabled {on*1e3:.0f} ms "
      f"({ratio:.3f}x)")
if ratio > 1.05:
    print(f"overhead gate FAILED: enabled spans cost {ratio:.3f}x, "
          "budget is 1.05x", file=sys.stderr)
    sys.exit(1)
EOF

echo "==> noc_kernel_bench --quick (informational: traffic-kernel speedup)"
# Wall-clock comparison of the route-table kernel vs the seed's per-edge
# walker. Informational only — host timing never gates — but the binary
# asserts the two estimators produce bit-identical results.
cargo run --release -q -p aurora-bench --bin noc_kernel_bench -- --quick

echo "==> engine_kernel_bench --quick (bit-identity + alloc budget; speedup informational)"
# The arena-backed engine core must produce byte-identical SimReports to
# the legacy per-tile-Vec core — the binary asserts this on every pair
# of runs, so the step is a hard equivalence gate. The alloc budget is
# the steady-state regression gate: a warmed-up arena run may attribute
# at most 32 heap allocations to tile precompute + mapping + engine
# walk combined (measured steady state is ~12, all residuals of the
# worker-pool fan-out, so 32 leaves headroom without letting per-tile
# churn back in). The printed speedup is host wall-clock and never
# gates here; EXPERIMENTS.md has the full-size >= 3x recipe.
cargo run --release -q -p aurora-bench --bin engine_kernel_bench -- --quick --alloc-budget 32

echo "==> delta_bench --quick (session bit-identity gate; speedup informational)"
# Streaming-session gate: for every cell of k x noc x threads, the
# incremental re-simulation must produce byte-identical reports (and
# identical typed errors) to from-scratch runs of the post-delta
# graph, burst replay must reproduce the digest chain, and empty
# deltas must answer without an engine run. All hard failures. The
# >= 5x wall-clock claim only gates in full mode (EXPERIMENTS.md).
cargo run --release -q -p aurora-bench --bin delta_bench -- --quick

echo "==> serve smoke (aurora_serve + 8 concurrent serve_bench connections)"
# Start the daemon on a scratch socket (the release binary directly, so
# the TERM below reaches the daemon itself, not a cargo wrapper), flood
# it with 8 concurrent mixed connections, and require every response to
# succeed with per-digest bit-identical reports and cache hits on the
# repeats — serve_bench exits non-zero otherwise (it also scrapes the
# health/stats/metrics admin commands and gates the quantile ordering
# and hit ratio). Then exercise the admin plane directly: health must
# flip ok -> draining across SIGTERM (the drain grace keeps open
# connections answering), flights must retain records (slow-ms 0
# records everything), and the access log must hold exactly one
# well-formed NDJSON line per served request.
SERVE_SOCK="$(mktemp -u /tmp/aurora-serve-check-XXXXXX.sock)"
SERVE_LOG="$(mktemp /tmp/aurora-serve-check-XXXXXX.log)"
./target/release/aurora_serve --socket "$SERVE_SOCK" --workers 2 \
  --access-log "$SERVE_LOG" --slow-ms 0 --flights 8 --drain-grace-ms 5000 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -S "$SERVE_SOCK" ] && break
  sleep 0.1
done
[ -S "$SERVE_SOCK" ] || { echo "serve smoke FAILED: daemon never bound" >&2; exit 1; }
./target/release/serve_bench --socket "$SERVE_SOCK" --connections 8 --repeat 2
SERVE_SOCK="$SERVE_SOCK" SERVE_PID="$SERVE_PID" python3 - <<'EOF'
import json, os, signal, socket, sys, time

sock_path, pid = os.environ["SERVE_SOCK"], int(os.environ["SERVE_PID"])
conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
conn.connect(sock_path)
io = conn.makefile("rw", encoding="utf-8")

def admin(command, id=1):
    io.write(json.dumps({"id": id, "admin": command}) + "\n")
    io.flush()
    return json.loads(io.readline())

health = admin("health")
assert health["status"] == "ok", f"health before drain: {health}"
stats = admin("stats")["stats"]
assert stats["requests"] >= 64, f"stats undercounts: {stats['requests']}"
assert stats["latency_us"]["p50_us"] <= stats["latency_us"]["p99_us"]
metrics = admin("metrics")
assert "aurora_serve_requests" in metrics["prometheus"], "exposition missing serve counters"
flights = admin("flights")
assert len(flights["flights"]) > 0, "flight recorder empty at slow-ms 0"

# drain: the open connection keeps answering through the grace window
os.kill(pid, signal.SIGTERM)
deadline = time.time() + 5.0
while True:
    health = admin("health")
    if health["status"] == "draining":
        break
    assert time.time() < deadline, "health never flipped to draining"
    time.sleep(0.05)
conn.close()
print("serve admin plane: health/stats/metrics/flights answered, drain observed")
EOF
wait "$SERVE_PID" || { echo "serve smoke FAILED: daemon exited non-zero" >&2; exit 1; }
SERVE_PID=""
SERVE_LOG="$SERVE_LOG" python3 - <<'EOF'
import json, os

lines = open(os.environ["SERVE_LOG"], encoding="utf-8").read().splitlines()
# 8 connections x 2 repeats x 4-request mix; admin traffic is never logged
assert len(lines) == 64, f"access log holds {len(lines)} lines, expected 64"
for line in lines:
    record = json.loads(line)
    for key in ("seq", "digest", "outcome", "queue_wait_us", "execute_us",
                "latency_us", "bytes_out"):
        assert key in record, f"access record missing {key}: {record}"
    assert record["outcome"] in ("hit", "miss", "join"), record["outcome"]
    assert record["bytes_out"] > 0, record
print("access log: one well-formed line per served request")
EOF
echo "serve smoke passed: daemon drained cleanly"

echo "==> cluster smoke (router + 3 workers, 200 connections, mid-run worker kill)"
# Start a sharded cluster: one router front-end supervising 3 worker
# processes on scratch sockets. Flood it with 200 concurrent
# connections; serve_bench SIGTERMs one worker after the first round
# and still requires zero client-visible failures (the router retries
# on another shard), >= 90% warm affinity hits, ordered cluster-wide
# latency quantiles, and the killed shard respawned back to `ok`. Then
# SIGTERM the router itself: its health must flip ok -> draining on an
# open connection before the whole cluster drains and exits 0.
ROUTER_SOCK="$(mktemp -u /tmp/aurora-router-check-XXXXXX.sock)"
ROUTER_LOG="$(mktemp /tmp/aurora-router-check-XXXXXX.log)"
./target/release/aurora_serve --router --socket "$ROUTER_SOCK" --workers 3 \
  --probe-ms 100 --drain-grace-ms 5000 --access-log "$ROUTER_LOG" &
ROUTER_PID=$!
for _ in $(seq 1 150); do
  [ -S "$ROUTER_SOCK" ] && break
  sleep 0.1
done
[ -S "$ROUTER_SOCK" ] || { echo "cluster smoke FAILED: router never bound" >&2; exit 1; }
./target/release/serve_bench --socket "$ROUTER_SOCK" --connections 200 --repeat 3 \
  --cluster --kill-one

# One open -> delta -> close session through the router. Every op of a
# session routes by the base digest (open derives it, delta/close carry
# it as the sid), so rendezvous hashing must pin all three lines to the
# same shard — that is what keeps the warm session state reachable.
# The route log is the proof: exactly three lines with the session's
# digest, all naming one shard.
ROUTER_SOCK="$ROUTER_SOCK" python3 - <<'EOF' > /tmp/aurora-session-sid.txt
import json, os, socket

conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
conn.connect(os.environ["ROUTER_SOCK"])
io = conn.makefile("rw", encoding="utf-8")

def send(obj):
    io.write(json.dumps(obj) + "\n")
    io.flush()
    reply = json.loads(io.readline())
    assert reply.get("error") is None, f"session op failed: {reply['error']}"
    return reply

sim = {
    "version": 1,
    "config": {
        "k": 4, "clock_mhz": 700,
        "pe": {"lanes": 16, "buffer_bytes": 102400, "banks": 8,
               "fifo_depth": 16, "ppu_width": 4, "reconfig_cycles": 1},
        "words_per_flit": 4, "dram_channels": 4,
        "mapping_policy": "DegreeAware", "flexible_noc": True,
        "dynamic_partition": True, "feature_fraction": 0.5,
        "link_utilisation": 0.6, "trace_instructions": False,
    },
    "graph": {"Rmat": {"vertices": 512, "edges": 4000, "seed": 7}},
    "model": "Gcn",
    "layers": [{"f_in": 32, "f_out": 16}],
    "options": {"workload": "session-smoke", "input_density": 1.0,
                "trace_instructions": False},
}
opened = send({"id": 101, "session": {"op": "open", "sim": sim}})
sid = opened["digest"]
assert opened["report"]["total_cycles"] > 0, "open returned an empty report"

# a delta that is valid on any base graph: one appended vertex (id 512)
# plus two edges from it — guaranteed-new sources, nothing to collide
delta = {"insert_edges": [[512, 0], [512, 1]], "add_vertices": 1}
applied = send({"id": 102, "session": {"op": "delta", "sid": sid, "delta": delta}})
assert applied["digest"] != sid, "delta did not advance the digest chain"
assert applied["report"]["total_cycles"] > 0, "delta returned an empty report"

closed = send({"id": 103, "session": {"op": "close", "sid": sid}})
assert closed["digest"] == applied["digest"], "close must echo the chained digest"
conn.close()
print(sid)
EOF
SESSION_SID="$(cat /tmp/aurora-session-sid.txt)"; rm -f /tmp/aurora-session-sid.txt
ROUTER_LOG="$ROUTER_LOG" SESSION_SID="$SESSION_SID" python3 - <<'EOF'
import json, os

sid = os.environ["SESSION_SID"]
records = [json.loads(line) for line in
           open(os.environ["ROUTER_LOG"], encoding="utf-8").read().splitlines()]
session_lines = [r for r in records if r["digest"] == sid]
assert len(session_lines) == 3, \
    f"route log holds {len(session_lines)} session lines for {sid}, expected 3"
shards = {r["shard"] for r in session_lines}
assert len(shards) == 1 and "" not in shards, \
    f"session lines routed to {sorted(shards)}, expected one shard"
for r in session_lines:
    assert r["outcome"] == "ok", f"session line not ok: {r}"
print(f"session affinity: open/delta/close all routed to {shards.pop()}")
EOF

ROUTER_SOCK="$ROUTER_SOCK" ROUTER_PID="$ROUTER_PID" python3 - <<'EOF'
import json, os, signal, socket, sys, time

sock_path, pid = os.environ["ROUTER_SOCK"], int(os.environ["ROUTER_PID"])
conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
conn.connect(sock_path)
io = conn.makefile("rw", encoding="utf-8")

def admin(command, id=1):
    io.write(json.dumps({"id": id, "admin": command}) + "\n")
    io.flush()
    return json.loads(io.readline())

health = admin("health")
assert health["status"] == "ok", f"router health before drain: {health}"
assert health["role"] == "router", f"not a router: {health}"
assert len(health["shards"]) == 3, f"shard census: {health['shards']}"

# drain: the open connection observes the flip through the grace window
os.kill(pid, signal.SIGTERM)
deadline = time.time() + 5.0
while True:
    health = admin("health")
    if health["status"] == "draining":
        break
    assert time.time() < deadline, "router health never flipped to draining"
    time.sleep(0.05)
conn.close()
print("cluster admin plane: router health/stats answered, drain observed")
EOF
wait "$ROUTER_PID" || { echo "cluster smoke FAILED: router exited non-zero" >&2; exit 1; }
ROUTER_PID=""
echo "cluster smoke passed: router and workers drained cleanly"

echo "==> thread-count determinism (AURORA_THREADS=1 vs 2)"
AURORA_THREADS=1 cargo run --release -q -p aurora-bench --bin perf_regress -- \
  --name check-seq
AURORA_THREADS=2 cargo run --release -q -p aurora-bench --bin perf_regress -- \
  --name check-par
# Compare everything except host wall-time, which legitimately varies.
python3 - <<'EOF'
import json, sys

def key(path):
    doc = json.load(open(path))
    return [
        (r["workload"], r["cycles"], r["compute_frac"], r["noc_frac"],
         r["dram_frac"], r["imbalance_frac"], r["dominant"])
        for r in doc["results"]
    ]

seq, par = key("BENCH_check-seq.json"), key("BENCH_check-par.json")
if seq != par:
    print("determinism check FAILED: results differ across thread counts",
          file=sys.stderr)
    for a, b in zip(seq, par):
        if a != b:
            print(f"  seq: {a}\n  par: {b}", file=sys.stderr)
    sys.exit(1)
print("determinism check passed: cycles identical across thread counts")
EOF

echo "All checks passed."
