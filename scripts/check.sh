#!/usr/bin/env bash
# Full local gate: build, tests, formatting, lints.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> perf_regress --check (vs BENCH_seed.json)"
cargo run --release -q -p aurora-bench --bin perf_regress -- \
  --check --baseline BENCH_seed.json --name check
rm -f BENCH_check.json

echo "All checks passed."
