#!/usr/bin/env bash
# Full local gate: build, tests, formatting, lints.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "All checks passed."
