#!/usr/bin/env bash
# Full local gate: build, tests, formatting, lints, perf gate, and the
# thread-count determinism contract.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Scratch BENCH_*.json files must not survive a failed gate: clean up the
# check artifacts on every exit path, success or failure.
trap 'rm -f BENCH_check.json BENCH_check-seq.json BENCH_check-par.json' EXIT

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> perf_regress --check (vs BENCH_seed.json)"
cargo run --release -q -p aurora-bench --bin perf_regress -- \
  --check --baseline BENCH_seed.json --name check

echo "==> noc_kernel_bench --quick (informational: traffic-kernel speedup)"
# Wall-clock comparison of the route-table kernel vs the seed's per-edge
# walker. Informational only — host timing never gates — but the binary
# asserts the two estimators produce bit-identical results.
cargo run --release -q -p aurora-bench --bin noc_kernel_bench -- --quick

echo "==> thread-count determinism (AURORA_THREADS=1 vs 2)"
AURORA_THREADS=1 cargo run --release -q -p aurora-bench --bin perf_regress -- \
  --name check-seq
AURORA_THREADS=2 cargo run --release -q -p aurora-bench --bin perf_regress -- \
  --name check-par
# Compare everything except host wall-time, which legitimately varies.
python3 - <<'EOF'
import json, sys

def key(path):
    doc = json.load(open(path))
    return [
        (r["workload"], r["cycles"], r["compute_frac"], r["noc_frac"],
         r["dram_frac"], r["imbalance_frac"], r["dominant"])
        for r in doc["results"]
    ]

seq, par = key("BENCH_check-seq.json"), key("BENCH_check-par.json")
if seq != par:
    print("determinism check FAILED: results differ across thread counts",
          file=sys.stderr)
    for a, b in zip(seq, par):
        if a != b:
            print(f"  seq: {a}\n  par: {b}", file=sys.stderr)
    sys.exit(1)
print("determinism check passed: cycles identical across thread counts")
EOF

echo "All checks passed."
