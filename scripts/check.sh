#!/usr/bin/env bash
# Full local gate: build, tests, formatting, lints, perf gate, and the
# thread-count determinism contract.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Scratch BENCH_*.json files must not survive a failed gate: clean up the
# check artifacts on every exit path, success or failure. The serve smoke
# step fills in SERVE_PID/SERVE_SOCK; the trap also reaps that daemon if
# a later step (or the smoke itself) fails.
SERVE_PID=""
SERVE_SOCK=""
cleanup() {
  rm -f BENCH_check.json BENCH_check-seq.json BENCH_check-par.json
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -TERM "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
  fi
  [ -n "$SERVE_SOCK" ] && rm -f "$SERVE_SOCK"
}
trap cleanup EXIT

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> perf_regress --check (vs BENCH_seed.json)"
cargo run --release -q -p aurora-bench --bin perf_regress -- \
  --check --baseline BENCH_seed.json --name check

echo "==> noc_kernel_bench --quick (informational: traffic-kernel speedup)"
# Wall-clock comparison of the route-table kernel vs the seed's per-edge
# walker. Informational only — host timing never gates — but the binary
# asserts the two estimators produce bit-identical results.
cargo run --release -q -p aurora-bench --bin noc_kernel_bench -- --quick

echo "==> serve smoke (aurora_serve + 8 concurrent serve_bench connections)"
# Start the daemon on a scratch socket (the release binary directly, so
# the TERM below reaches the daemon itself, not a cargo wrapper), flood
# it with 8 concurrent mixed connections, and require every response to
# succeed with per-digest bit-identical reports and cache hits on the
# repeats — serve_bench exits non-zero otherwise. Then drain via SIGTERM
# and require a clean exit.
SERVE_SOCK="$(mktemp -u /tmp/aurora-serve-check-XXXXXX.sock)"
./target/release/aurora_serve --socket "$SERVE_SOCK" --workers 2 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -S "$SERVE_SOCK" ] && break
  sleep 0.1
done
[ -S "$SERVE_SOCK" ] || { echo "serve smoke FAILED: daemon never bound" >&2; exit 1; }
./target/release/serve_bench --socket "$SERVE_SOCK" --connections 8 --repeat 2
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "serve smoke FAILED: daemon exited non-zero" >&2; exit 1; }
SERVE_PID=""
echo "serve smoke passed: daemon drained cleanly"

echo "==> thread-count determinism (AURORA_THREADS=1 vs 2)"
AURORA_THREADS=1 cargo run --release -q -p aurora-bench --bin perf_regress -- \
  --name check-seq
AURORA_THREADS=2 cargo run --release -q -p aurora-bench --bin perf_regress -- \
  --name check-par
# Compare everything except host wall-time, which legitimately varies.
python3 - <<'EOF'
import json, sys

def key(path):
    doc = json.load(open(path))
    return [
        (r["workload"], r["cycles"], r["compute_frac"], r["noc_frac"],
         r["dram_frac"], r["imbalance_frac"], r["dominant"])
        for r in doc["results"]
    ]

seq, par = key("BENCH_check-seq.json"), key("BENCH_check-par.json")
if seq != par:
    print("determinism check FAILED: results differ across thread counts",
          file=sys.stderr)
    for a, b in zip(seq, par):
        if a != b:
            print(f"  seq: {a}\n  par: {b}", file=sys.stderr)
    sys.exit(1)
print("determinism check passed: cycles identical across thread counts")
EOF

echo "All checks passed."
