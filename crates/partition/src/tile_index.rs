//! Vertex → tile reverse indices for incremental re-simulation.
//!
//! The capacity tiler hands the engine contiguous vertex ranges; a
//! streaming delta hands the engine touched *vertices*. [`TileIndex`]
//! bridges the two: `tile_of(v)` maps a vertex back to the tile that owns
//! it, and `referencing_tiles(v)` lists the tiles whose halo (remote
//! neighbour) plan reads `v` from another tile. Together they implement
//! the session dirty-tile rule: a touched vertex dirties its owning tile,
//! and — under the conservative rule — every tile whose halo references
//! it.
//!
//! The engine's per-tile artifacts (mapping, bypass plan, traffic
//! profile, `TileOut`) are functions of the tile's *own* out-edges only:
//! a remote destination contributes one halo count regardless of which
//! vertex it is. Editing edge `(u, v)` therefore only invalidates
//! `tile_of(u)` — the minimal rule the incremental engine uses. The halo
//! index exists for the conservative rule (vertex feature mutation, where
//! a referencing tile would re-read stale features) and for diagnostics
//! comparing the two dirty-set sizes.

use aurora_graph::Csr;

/// Reverse lookup from vertices to the tiles that own or reference them.
///
/// Built from the tiler's boundary offsets (and optionally the graph for
/// the halo index); cheap to rebuild whenever the tiling changes.
#[derive(Debug, Clone, PartialEq)]
pub struct TileIndex {
    /// Tile boundary offsets: tile `i` owns vertices
    /// `starts[i]..starts[i + 1]`; length `num_tiles + 1`.
    starts: Vec<u32>,
    /// CSR offsets into `ref_tiles`, one slot per vertex (empty when the
    /// index was built without a graph).
    ref_ptr: Vec<u32>,
    /// For each vertex, the sorted tiles (excluding its owner) whose
    /// halo plan references it.
    ref_tiles: Vec<u32>,
}

impl TileIndex {
    /// Builds the ownership index alone — `tile_of` works,
    /// `referencing_tiles` reports empty. `boundaries` are the tiler's
    /// start offsets plus the final end offset, ascending.
    pub fn from_boundaries(boundaries: Vec<u32>) -> Self {
        assert!(
            boundaries.len() >= 2,
            "need at least one tile (got {} boundaries)",
            boundaries.len()
        );
        assert!(
            boundaries.windows(2).all(|w| w[0] <= w[1]),
            "tile boundaries must be ascending"
        );
        Self {
            starts: boundaries,
            ref_ptr: Vec::new(),
            ref_tiles: Vec::new(),
        }
    }

    /// Builds the full index including the halo reverse map: tile `t`
    /// references vertex `v` when some edge `(u, v)` has
    /// `tile_of(u) = t ≠ tile_of(v)` — i.e. `t`'s aggregation reads `v`
    /// remotely.
    pub fn build(boundaries: Vec<u32>, g: &Csr) -> Self {
        let mut index = Self::from_boundaries(boundaries);
        let num_vertices = index.num_vertices();
        assert!(
            g.num_vertices() == num_vertices,
            "boundaries cover {} vertices but graph has {}",
            num_vertices,
            g.num_vertices()
        );
        // Collect (dst, src_tile) pairs for cross-tile edges, then sort +
        // dedup into a per-vertex CSR. O(E log E), rebuilt only when the
        // tiling changes.
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (u, v) in g.edges() {
            let tu = index.tile_of(u) as u32;
            if tu != index.tile_of(v) as u32 {
                pairs.push((v, tu));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut ref_ptr = vec![0u32; num_vertices + 1];
        for &(v, _) in &pairs {
            ref_ptr[v as usize + 1] += 1;
        }
        for i in 0..num_vertices {
            ref_ptr[i + 1] += ref_ptr[i];
        }
        index.ref_tiles = pairs.into_iter().map(|(_, t)| t).collect();
        index.ref_ptr = ref_ptr;
        index
    }

    /// Number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.starts.len() - 1
    }

    /// Number of vertices covered by the boundaries.
    pub fn num_vertices(&self) -> usize {
        *self.starts.last().expect("non-empty boundaries") as usize
    }

    /// The tile owning vertex `v` (binary search over the boundaries).
    ///
    /// # Panics
    /// Panics if `v` is outside the covered range.
    pub fn tile_of(&self, v: u32) -> usize {
        assert!(
            (v as usize) < self.num_vertices(),
            "vertex {v} outside tiled range 0..{}",
            self.num_vertices()
        );
        // partition_point gives the first boundary > v; its predecessor
        // is the owning tile.
        self.starts.partition_point(|&s| s <= v) - 1
    }

    /// Tiles (other than `v`'s owner) whose halo plan references `v`.
    /// Empty when built via [`TileIndex::from_boundaries`].
    pub fn referencing_tiles(&self, v: u32) -> &[u32] {
        if self.ref_ptr.is_empty() {
            return &[];
        }
        let lo = self.ref_ptr[v as usize] as usize;
        let hi = self.ref_ptr[v as usize + 1] as usize;
        &self.ref_tiles[lo..hi]
    }

    /// Marks the dirty tiles for a set of touched vertices. The minimal
    /// rule (`include_halo = false`) dirties each vertex's owning tile;
    /// the conservative rule also dirties every referencing tile.
    /// Returns one flag per tile.
    pub fn dirty_tiles(
        &self,
        touched: impl IntoIterator<Item = u32>,
        include_halo: bool,
    ) -> Vec<bool> {
        let mut dirty = vec![false; self.num_tiles()];
        for v in touched {
            dirty[self.tile_of(v)] = true;
            if include_halo {
                for &t in self.referencing_tiles(v) {
                    dirty[t as usize] = true;
                }
            }
        }
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_graph::GraphBuilder;

    fn two_tile_graph() -> (TileIndex, Csr) {
        // tiles: [0, 4), [4, 8). Cross-tile edges: (0→5), (6→1), (7→1).
        let mut b = GraphBuilder::new(8);
        b.add_edge(0, 1);
        b.add_edge(0, 5);
        b.add_edge(6, 1);
        b.add_edge(7, 1);
        b.add_edge(5, 6);
        let g = b.build();
        (TileIndex::build(vec![0, 4, 8], &g), g)
    }

    #[test]
    fn tile_of_follows_boundaries() {
        let idx = TileIndex::from_boundaries(vec![0, 3, 3, 10]);
        assert_eq!(idx.num_tiles(), 3);
        assert_eq!(idx.tile_of(0), 0);
        assert_eq!(idx.tile_of(2), 0);
        // empty middle tile owns nothing; vertex 3 belongs to tile 2
        assert_eq!(idx.tile_of(3), 2);
        assert_eq!(idx.tile_of(9), 2);
    }

    #[test]
    #[should_panic(expected = "outside tiled range")]
    fn tile_of_rejects_out_of_range() {
        TileIndex::from_boundaries(vec![0, 4]).tile_of(4);
    }

    #[test]
    fn halo_reverse_index_lists_remote_readers() {
        let (idx, _) = two_tile_graph();
        // vertex 5 is read remotely by tile 0 (edge 0→5)
        assert_eq!(idx.referencing_tiles(5), &[0]);
        // vertex 1 is read remotely by tile 1 (edges 6→1, 7→1), deduped
        assert_eq!(idx.referencing_tiles(1), &[1]);
        // vertex 6 is only read by its own tile (edge 5→6 is intra-tile)
        assert!(idx.referencing_tiles(6).is_empty());
    }

    #[test]
    fn dirty_rules_minimal_vs_conservative() {
        let (idx, _) = two_tile_graph();
        // touching vertex 5: minimal rule dirties its owner (tile 1) only
        assert_eq!(idx.dirty_tiles([5], false), vec![false, true]);
        // conservative rule adds the remote reader (tile 0)
        assert_eq!(idx.dirty_tiles([5], true), vec![true, true]);
    }

    #[test]
    fn boundaries_only_index_has_no_halo_info() {
        let idx = TileIndex::from_boundaries(vec![0, 4, 8]);
        assert!(idx.referencing_tiles(2).is_empty());
        assert_eq!(idx.dirty_tiles([2], true), vec![true, false]);
    }
}
