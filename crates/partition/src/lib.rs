//! The Aurora partition heuristic — §V, Algorithm 2.
//!
//! A GNN layer's phases have unequal compute loads that depend on the graph
//! structure, feature sizes and model. Aurora splits its PE array into
//! **sub-accelerator A** (edge update + aggregation — the irregular phases)
//! and **sub-accelerator B** (vertex update — the regular neural phase),
//! sized so their pipeline stage times match: the partition sweeps
//! `a ∈ [0, P]` and minimises `|T_A − T_B|` where
//!
//! ```text
//! T_A = max(AComp1, AComp2) + AComp3
//! AComp1 = O_ue / (a · Flops)              (edge update)
//! AComp2 = (O_a − E_f · m) / (a · Flops)   (aggregation minus edge part)
//! AComp3 = (E_f · m) / (a · Flops)         (edge-aggregate)
//! T_B = O_uv / ((P − a) · Flops)           (vertex update)
//! ```
//!
//! Special cases (§V): with no vertex update only one accelerator forms
//! (`a = P`); with no edge update, `AComp1 = 0` and execution starts at
//! aggregation.
//!
//! ```
//! use aurora_model::{LayerShape, ModelId, Workload};
//! use aurora_partition::partition;
//!
//! let counts = Workload::from_sizes(ModelId::Gcn, 10_000, 80_000,
//!     LayerShape::new(128, 64)).op_counts();
//! let split = partition(&counts, 1024, 22.4e9);
//! assert_eq!(split.total(), 1024);
//! assert!(split.balance() > 0.95, "Algorithm 2 balances the stages");
//! ```

use aurora_model::PhaseOpCounts;
use aurora_telemetry::{Scope, Telemetry};
use serde::{Deserialize, Serialize};

mod tile_index;
pub use tile_index::TileIndex;

/// The chosen split of `P` PEs into sub-accelerators A and B.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionStrategy {
    /// PEs assigned to sub-accelerator A (edge update + aggregation).
    pub a: usize,
    /// PEs assigned to sub-accelerator B (vertex update); `b = P − a`.
    pub b: usize,
    /// Estimated stage time of A in seconds.
    pub t_a: f64,
    /// Estimated stage time of B in seconds.
    pub t_b: f64,
}

impl PartitionStrategy {
    /// Total PEs.
    pub fn total(&self) -> usize {
        self.a + self.b
    }

    /// The pipeline stage time: the slower sub-accelerator bounds
    /// throughput.
    pub fn stage_time(&self) -> f64 {
        self.t_a.max(self.t_b)
    }

    /// Pipeline efficiency: ideal-work time over allocated-stage time
    /// (1.0 = perfectly balanced, → 0 as one side idles).
    pub fn balance(&self) -> f64 {
        let longest = self.stage_time();
        if longest == 0.0 {
            1.0
        } else {
            (self.t_a + self.t_b) / (2.0 * longest)
        }
    }

    /// Records this split under `scope`: PE allocation, the two stage
    /// times, and the Algorithm 2 balance figure. The engine calls this
    /// once per layer, so per-layer scopes show how the partition tracks
    /// each layer's phase mix.
    pub fn record_to(&self, telemetry: &Telemetry, scope: &Scope) {
        if !telemetry.is_enabled() {
            return;
        }
        telemetry.gauge_set("partition.pes_a", scope, self.a as f64);
        telemetry.gauge_set("partition.pes_b", scope, self.b as f64);
        telemetry.gauge_set("partition.stage_a_seconds", scope, self.t_a);
        telemetry.gauge_set("partition.stage_b_seconds", scope, self.t_b);
        telemetry.gauge_set("partition.balance", scope, self.balance());
    }
}

/// Sub-accelerator A's stage time with `a` PEs (Algorithm 2 lines 2-7).
pub fn time_a(counts: &PhaseOpCounts, a: usize, flops_per_pe: f64) -> f64 {
    if a == 0 {
        return if counts.edge_update + counts.aggregation == 0 {
            0.0
        } else {
            f64::INFINITY
        };
    }
    let cap = a as f64 * flops_per_pe;
    let edge_agg = counts.edge_aggregate_ops() as f64;
    let acomp1 = counts.edge_update as f64 / cap;
    let acomp2 = (counts.aggregation as f64 - edge_agg).max(0.0) / cap;
    let acomp3 = edge_agg / cap;
    acomp1.max(acomp2) + acomp3
}

/// Sub-accelerator B's stage time with `P − a` PEs (lines 9-11).
pub fn time_b(counts: &PhaseOpCounts, b: usize, flops_per_pe: f64) -> f64 {
    if b == 0 {
        return if counts.vertex_update == 0 {
            0.0
        } else {
            f64::INFINITY
        };
    }
    counts.vertex_update as f64 / (b as f64 * flops_per_pe)
}

/// Algorithm 2: sweeps `a ∈ [0, P]` and returns the split minimising
/// `|T_A − T_B|` (ties broken towards more PEs for A, matching the sweep
/// order). `flops_per_pe` is each PE's operations per second.
///
/// # Panics
/// Panics if `total_pes == 0` or `flops_per_pe <= 0`.
pub fn partition(counts: &PhaseOpCounts, total_pes: usize, flops_per_pe: f64) -> PartitionStrategy {
    assert!(total_pes > 0, "need at least one PE");
    assert!(flops_per_pe > 0.0, "PE throughput must be positive");

    // §V: "only one accelerator will be formed if vertex updates are not
    // required".
    if counts.vertex_update == 0 {
        let a = total_pes;
        return PartitionStrategy {
            a,
            b: 0,
            t_a: time_a(counts, a, flops_per_pe),
            t_b: 0.0,
        };
    }
    // Symmetrically, a pure-MLP layer needs no sub-accelerator A.
    if counts.edge_update + counts.aggregation == 0 {
        return PartitionStrategy {
            a: 0,
            b: total_pes,
            t_a: 0.0,
            t_b: time_b(counts, total_pes, flops_per_pe),
        };
    }

    let mut best: Option<PartitionStrategy> = None;
    for a in 0..=total_pes {
        let t_a = time_a(counts, a, flops_per_pe);
        let t_b = time_b(counts, total_pes - a, flops_per_pe);
        let diff = (t_a - t_b).abs();
        let better = match &best {
            None => true,
            Some(s) => diff < (s.t_a - s.t_b).abs(),
        };
        if better {
            best = Some(PartitionStrategy {
                a,
                b: total_pes - a,
                t_a,
                t_b,
            });
        }
    }
    best.expect("sweep is non-empty")
}

/// Extension beyond Algorithm 2: balance *total* stage times including
/// each side's communication cycles (`comm_a`, `comm_b` in seconds), i.e.
/// minimise `|T_A + comm_a − (T_B + comm_b)|`. With zero communication it
/// reduces exactly to [`partition`]. Useful when the on-chip estimate is
/// known before partitioning; documented in DESIGN.md as an extension.
pub fn partition_with_comm(
    counts: &PhaseOpCounts,
    total_pes: usize,
    flops_per_pe: f64,
    comm_a: f64,
    comm_b: f64,
) -> PartitionStrategy {
    assert!(total_pes > 0, "need at least one PE");
    assert!(flops_per_pe > 0.0, "PE throughput must be positive");
    assert!(
        comm_a >= 0.0 && comm_b >= 0.0,
        "communication times are non-negative"
    );
    if counts.vertex_update == 0 {
        let a = total_pes;
        return PartitionStrategy {
            a,
            b: 0,
            t_a: time_a(counts, a, flops_per_pe) + comm_a,
            t_b: 0.0,
        };
    }
    if counts.edge_update + counts.aggregation == 0 {
        return PartitionStrategy {
            a: 0,
            b: total_pes,
            t_a: 0.0,
            t_b: time_b(counts, total_pes, flops_per_pe) + comm_b,
        };
    }
    let mut best: Option<PartitionStrategy> = None;
    for a in 0..=total_pes {
        let t_a = time_a(counts, a, flops_per_pe) + comm_a;
        let t_b = time_b(counts, total_pes - a, flops_per_pe) + comm_b;
        let diff = (t_a - t_b).abs();
        let better = match &best {
            None => true,
            Some(s) => diff < (s.t_a - s.t_b).abs(),
        };
        if better {
            best = Some(PartitionStrategy {
                a,
                b: total_pes - a,
                t_a,
                t_b,
            });
        }
    }
    best.expect("sweep is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_graph::generate;
    use aurora_model::{LayerShape, ModelId, Workload};
    use proptest::prelude::*;

    fn counts_for(model: ModelId, n: usize, m: usize) -> PhaseOpCounts {
        Workload::from_sizes(model, n, m, LayerShape::new(32, 16)).op_counts()
    }

    #[test]
    fn balanced_loads_split_evenly() {
        // symmetric synthetic counts
        let c = PhaseOpCounts {
            edge_update: 0,
            aggregation: 1_000_000,
            vertex_update: 1_000_000,
            edge_feature_dim: 0,
            num_edges: 1,
            num_vertices: 1,
        };
        let s = partition(&c, 100, 1e9);
        assert_eq!(s.a, 50);
        assert_eq!(s.b, 50);
        assert!((s.t_a - s.t_b).abs() < 1e-12);
        assert!((s.balance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn heavy_vertex_update_gets_more_pes() {
        let c = PhaseOpCounts {
            edge_update: 0,
            aggregation: 1_000,
            vertex_update: 99_000,
            edge_feature_dim: 0,
            num_edges: 1,
            num_vertices: 1,
        };
        let s = partition(&c, 100, 1e9);
        assert!(s.b > 90, "B should dominate: {s:?}");
    }

    #[test]
    fn edgeconv_forms_single_accelerator() {
        // §V: EdgeConv has no vertex update → a = P.
        let c = counts_for(ModelId::EdgeConv1, 100, 500);
        let s = partition(&c, 64, 1e9);
        assert_eq!(s.a, 64);
        assert_eq!(s.b, 0);
        assert_eq!(s.t_b, 0.0);
    }

    #[test]
    fn gin_skips_edge_update_term() {
        // GIN: no edge update → AComp1 = 0, E_f = 0, AComp3 = 0.
        let c = counts_for(ModelId::Gin, 1000, 5000);
        assert_eq!(c.edge_update, 0);
        assert_eq!(c.edge_aggregate_ops(), 0);
        let t = time_a(&c, 10, 1e9);
        assert!((t - c.aggregation as f64 / 1e10).abs() < 1e-15);
    }

    #[test]
    fn gcn_acomp2_is_zero_when_aggregation_is_pure_edge_aggregate() {
        // For GCN the whole aggregation is the E_f × m term → AComp3.
        let c = counts_for(ModelId::Gcn, 1000, 5000);
        assert_eq!(c.aggregation, c.edge_aggregate_ops());
    }

    #[test]
    fn more_pes_never_slower() {
        let c = counts_for(ModelId::Gcn, 2000, 12000);
        let s64 = partition(&c, 64, 1e9);
        let s256 = partition(&c, 256, 1e9);
        assert!(s256.stage_time() <= s64.stage_time());
    }

    #[test]
    fn partition_of_all_zoo_models_is_sane() {
        let g = generate::rmat(256, 2000, Default::default(), 4);
        for id in ModelId::ALL {
            let c = Workload::of(id, &g, LayerShape::new(64, 32)).op_counts();
            let s = partition(&c, 1024, 1e9);
            assert_eq!(s.total(), 1024, "{}", id.name());
            let spec = id.spec();
            if !spec.has_vertex_update() {
                assert_eq!(s.b, 0, "{}", id.name());
            } else {
                assert!(s.a > 0 && s.b > 0, "{}: {s:?}", id.name());
            }
            assert!(s.stage_time().is_finite(), "{}", id.name());
        }
    }

    #[test]
    fn comm_aware_reduces_to_algorithm2_with_zero_comm() {
        let c = counts_for(ModelId::Gcn, 2000, 12000);
        let plain = partition(&c, 256, 1e9);
        let comm = partition_with_comm(&c, 256, 1e9, 0.0, 0.0);
        assert_eq!(plain.a, comm.a);
        assert_eq!(plain.b, comm.b);
    }

    #[test]
    fn comm_on_a_side_shifts_pes_to_a() {
        let c = PhaseOpCounts {
            edge_update: 0,
            aggregation: 1_000_000,
            vertex_update: 1_000_000,
            edge_feature_dim: 0,
            num_edges: 1,
            num_vertices: 1,
        };
        let plain = partition(&c, 100, 1e9);
        // heavy aggregation-side communication: balance needs more A PEs
        let comm = partition_with_comm(&c, 100, 1e9, 5e-4, 0.0);
        assert!(
            comm.a > plain.a,
            "comm-aware a = {} should exceed plain a = {}",
            comm.a,
            plain.a
        );
    }

    #[test]
    fn record_to_exports_stage_balance() {
        let c = counts_for(ModelId::Gcn, 2000, 12000);
        let s = partition(&c, 256, 1e9);
        let t = Telemetry::enabled();
        let scope = Scope::model("GCN").layer(1);
        s.record_to(&t, &scope);
        let snap = t.snapshot();
        assert_eq!(snap.gauge_at("partition.pes_a", &scope), Some(s.a as f64));
        assert_eq!(snap.gauge_at("partition.pes_b", &scope), Some(s.b as f64));
        assert_eq!(
            snap.gauge_at("partition.balance", &scope),
            Some(s.balance())
        );
    }

    #[test]
    #[should_panic(expected = "at least one PE")]
    fn zero_pes_rejected() {
        let c = counts_for(ModelId::Gcn, 10, 10);
        partition(&c, 0, 1e9);
    }

    proptest! {
        #[test]
        fn sweep_minimises_diff(
            oue in 0u64..1_000_000,
            oa in 1u64..1_000_000,
            ouv in 1u64..1_000_000,
            p in 2usize..300,
        ) {
            let c = PhaseOpCounts {
                edge_update: oue,
                aggregation: oa,
                vertex_update: ouv,
                edge_feature_dim: 0,
                num_edges: 1,
                num_vertices: 1,
            };
            let s = partition(&c, p, 1e9);
            let best_diff = (s.t_a - s.t_b).abs();
            for a in 0..=p {
                let d = (time_a(&c, a, 1e9) - time_b(&c, p - a, 1e9)).abs();
                prop_assert!(best_diff <= d + 1e-12, "a={a} beats chosen {s:?}");
            }
        }

        #[test]
        fn stage_times_scale_inversely_with_flops(
            oue in 1u64..100_000,
            oa in 1u64..100_000,
            ouv in 1u64..100_000,
        ) {
            let c = PhaseOpCounts {
                edge_update: oue,
                aggregation: oa,
                vertex_update: ouv,
                edge_feature_dim: 0,
                num_edges: 1,
                num_vertices: 1,
            };
            let slow = partition(&c, 64, 1e8);
            let fast = partition(&c, 64, 1e9);
            prop_assert_eq!(slow.a, fast.a, "split is flops-invariant");
            prop_assert!((slow.stage_time() / fast.stage_time() - 10.0).abs() < 1e-6);
        }
    }
}
