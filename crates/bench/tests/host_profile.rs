//! Host-observability contracts: profiling must never change what the
//! simulator computes, and the exported name tables must be complete.
//!
//! The span profiler and the counting allocator live in process-global
//! state, so every test here serializes on one mutex and restores the
//! flags it touched — the same pattern as the telemetry crate's own
//! span tests.

use aurora_bench::host_fmt;
use aurora_core::{
    export_host_metrics, export_pool_metrics, metric_names as names, AcceleratorConfig,
    AuroraSimulator, Scope, SimReport, Telemetry,
};
use aurora_graph::generate;
use aurora_model::{LayerShape, ModelId};
use rayon::ThreadPool;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

/// Restores the global profiling flags on drop, even when a test
/// assertion panics.
struct FlagRestore {
    spans: bool,
    allocs: bool,
}

impl FlagRestore {
    fn capture() -> Self {
        Self {
            spans: aurora_core::span::span_profiling_enabled(),
            allocs: aurora_telemetry::alloc::alloc_profiling_enabled(),
        }
    }
}

impl Drop for FlagRestore {
    fn drop(&mut self) {
        aurora_core::span::set_span_profiling(self.spans);
        aurora_telemetry::alloc::set_alloc_profiling(self.allocs);
    }
}

/// The pinned workload: gcn over a deterministic R-MAT graph.
fn simulate() -> SimReport {
    let g = generate::rmat(1_024, 8_000, Default::default(), 3);
    let shapes = [LayerShape::new(64, 32), LayerShape::new(32, 16)];
    aurora_bench::run_inline(
        &AuroraSimulator::new(AcceleratorConfig::small(8)),
        &g,
        ModelId::Gcn,
        &shapes,
        "rmat-1k",
        1.0,
    )
}

/// Drops the host-only field so reports can be compared on the
/// digest-relevant remainder.
fn strip(mut r: SimReport) -> SimReport {
    r.host_profile = None;
    r
}

#[test]
fn report_is_identical_with_profiling_on_and_off() {
    let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = FlagRestore::capture();

    aurora_core::span::set_span_profiling(false);
    aurora_telemetry::alloc::set_alloc_profiling(false);
    let plain = simulate();
    assert!(
        plain.host_profile.is_none(),
        "no profile unless spans are on"
    );

    aurora_core::span::set_span_profiling(true);
    aurora_telemetry::alloc::set_alloc_profiling(true);
    let profiled = simulate();
    assert!(profiled.host_profile.is_some());

    assert_eq!(
        plain,
        strip(profiled),
        "profiling must not change any digest-relevant report field"
    );
}

#[test]
fn report_is_identical_across_thread_counts_with_profiling_on() {
    let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = FlagRestore::capture();
    aurora_core::span::set_span_profiling(true);
    aurora_telemetry::alloc::set_alloc_profiling(true);

    let reference = strip(ThreadPool::new(1).install(simulate));
    for n in [2usize, 4] {
        let got = strip(ThreadPool::new(n).install(simulate));
        assert_eq!(got, reference, "thread count {n} changed the report");
    }
}

#[test]
fn top_level_spans_cover_most_of_the_wall_time() {
    let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = FlagRestore::capture();
    aurora_core::span::set_span_profiling(true);

    let hp = simulate().host_profile.expect("spans on");
    assert!(hp.total_wall_us > 0);
    let coverage = hp.coverage();
    assert!(
        coverage >= 0.9,
        "top-level stage spans cover {:.1}% of wall time, need >= 90%",
        coverage * 100.0
    );
    // The rendered table agrees with the profile it was built from.
    let rendered = host_fmt::table(&hp).render();
    assert!(rendered.contains("engine_walk"));
}

#[test]
fn allocations_attribute_to_engine_stages() {
    let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = FlagRestore::capture();
    aurora_core::span::set_span_profiling(true);
    aurora_telemetry::alloc::set_alloc_profiling(true);

    let hp = simulate().host_profile.expect("spans on");
    assert!(hp.alloc_profiled);
    let total: u64 = hp.stages.iter().map(|s| s.alloc_count).sum();
    assert!(total > 0, "the engine allocates; the counter saw none");
    // At least one named pipeline stage (not the Other catch-all)
    // received an attribution.
    assert!(
        hp.stages
            .iter()
            .any(|s| s.stage.label() != "other" && s.alloc_count > 0),
        "allocations never landed on a named stage: {hp:?}"
    );
}

#[test]
fn pool_name_table_is_complete() {
    let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The simulations above (or this one) have driven the pool; export
    // and require every name in POOL_ALL to land in the snapshot, so a
    // renamed or dropped gauge fails here instead of blanking a panel.
    let _ = simulate();
    let tel = Telemetry::enabled();
    export_pool_metrics(&tel);
    let snap = tel.snapshot();
    for name in names::POOL_ALL {
        assert!(
            snap.gauge_at(name, &Scope::ROOT).is_some(),
            "{name} missing from the pool export"
        );
    }
    assert!(snap.gauge_at(names::POOL_WORKERS, &Scope::ROOT).unwrap() >= 1.0);
    assert!(snap.gauge_at(names::POOL_REGIONS, &Scope::ROOT).unwrap() >= 1.0);
}

#[test]
fn host_name_table_is_complete() {
    let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = FlagRestore::capture();
    aurora_core::span::set_span_profiling(true);
    aurora_telemetry::alloc::set_alloc_profiling(true);

    let hp = simulate().host_profile.expect("spans on");
    let tel = Telemetry::enabled();
    export_host_metrics(&tel, &hp);
    let snap = tel.snapshot();
    let scope = Scope::ROOT.phase(hp.stages.first().expect("stages recorded").stage.label());
    for name in names::HOST_ALL {
        assert!(
            snap.gauge_at(name, &scope).is_some(),
            "{name} missing from the host export at {scope:?}"
        );
    }
}
