//! Arena/legacy engine-core equivalence: the arena-backed SoA pipeline
//! must serialise to byte-identical `SimReport` JSON against the
//! pre-refactor per-tile-`Vec` oracle, across array radix, NoC
//! flexibility, mapping policy, and worker-thread count. This is the
//! contract that lets the arena core be the default without touching
//! `BENCH_seed.json` or any serve-cache digest.

use aurora_core::{AcceleratorConfig, AuroraSimulator, EngineCore};
use aurora_graph::generate;
use aurora_mapping::MappingPolicy;
use aurora_model::{LayerShape, ModelId};
use proptest::prelude::*;
use rayon::pool::ThreadPool;

fn report_json(
    cfg: &AcceleratorConfig,
    core: EngineCore,
    g: &aurora_graph::Csr,
    model: ModelId,
    shapes: &[LayerShape],
) -> String {
    let r = aurora_bench::run_inline(
        &AuroraSimulator::new(*cfg).with_engine_core(core),
        g,
        model,
        shapes,
        "equivalence",
        1.0,
    );
    serde_json::to_string(&r).expect("serialise")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn arena_core_matches_legacy_bit_for_bit(
        n in 192usize..768,
        seed in 0u64..20,
        k_sel in 0usize..3,
        flexible_noc in proptest::bool::ANY,
        hashed in proptest::bool::ANY,
        model_sel in 0usize..3,
    ) {
        let k = [2usize, 4, 8][k_sel];
        let model = [ModelId::Gcn, ModelId::Gin, ModelId::SageMean][model_sel];
        let g = generate::rmat(n, n * 6, Default::default(), seed);
        let shapes = [LayerShape::new(32, 16), LayerShape::new(16, 8)];
        let mut cfg = AcceleratorConfig::small(k);
        cfg.flexible_noc = flexible_noc;
        cfg.mapping_policy = if hashed {
            MappingPolicy::Hashing
        } else {
            MappingPolicy::DegreeAware
        };

        // the oracle: the legacy core on one worker thread
        let golden = ThreadPool::new(1)
            .install(|| report_json(&cfg, EngineCore::Legacy, &g, model, &shapes));
        for threads in [1usize, 2, 4] {
            let arena = ThreadPool::new(threads)
                .install(|| report_json(&cfg, EngineCore::Arena, &g, model, &shapes));
            prop_assert_eq!(
                &golden, &arena,
                "arena core diverged: k={} flexible_noc={} hashed={} threads={}",
                k, flexible_noc, hashed, threads
            );
            // the legacy core itself must also stay thread-invariant
            let legacy = ThreadPool::new(threads)
                .install(|| report_json(&cfg, EngineCore::Legacy, &g, model, &shapes));
            prop_assert_eq!(&golden, &legacy, "legacy core diverged at {} threads", threads);
        }
    }
}

/// Back-to-back runs on one simulator (the serving steady state) must
/// keep the warmed-up arena invisible: same report every iteration.
#[test]
fn repeated_runs_reuse_arena_without_drift() {
    let g = generate::rmat(1024, 8192, Default::default(), 5);
    let shapes = [LayerShape::new(64, 32), LayerShape::new(32, 16)];
    let cfg = AcceleratorConfig::small(4);
    let golden = report_json(&cfg, EngineCore::Legacy, &g, ModelId::Gcn, &shapes);
    for _ in 0..3 {
        let json = report_json(&cfg, EngineCore::Arena, &g, ModelId::Gcn, &shapes);
        assert_eq!(golden, json, "warm arena must not change results");
    }
}
