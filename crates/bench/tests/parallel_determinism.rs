//! Golden determinism: the standard sweep must serialise to the *same*
//! JSON document no matter how many worker threads run it. This is the
//! contract that keeps `BENCH_seed.json` and the >5 % regression gate
//! exact: parallelism may only change wall-clock time, never a cycle
//! count, a byte count, or a float.

use aurora_bench::{run_standard, EvalProtocol};
use rayon::pool::ThreadPool;

#[test]
fn sweep_json_is_identical_at_every_thread_count() {
    let protocols = &EvalProtocol::tiny()[..2];
    let golden = serde_json::to_string(&ThreadPool::new(1).install(|| run_standard(protocols)))
        .expect("serialise");
    for threads in [2, 4] {
        let json =
            serde_json::to_string(&ThreadPool::new(threads).install(|| run_standard(protocols)))
                .expect("serialise");
        assert_eq!(
            golden, json,
            "sweep result diverged at {threads} worker threads"
        );
    }
}
