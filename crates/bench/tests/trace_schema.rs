//! Golden test: the Chrome trace-event JSON produced for a tiny two-layer
//! GCN run must satisfy the schema Perfetto / `chrome://tracing` load —
//! `ph`/`ts`/`dur`/`pid`/`tid` on every event, metadata naming each track,
//! and distinct tracks for the two sub-accelerators and DRAM.

use aurora_core::{AcceleratorConfig, AuroraSimulator, Telemetry};
use aurora_graph::generate;
use aurora_model::{LayerShape, ModelId};
use serde::Value;
use serde_json::from_str;

fn run_tiny_gcn() -> (Telemetry, aurora_core::SimReport) {
    let g = generate::rmat(256, 2_000, Default::default(), 11);
    let telemetry = Telemetry::enabled();
    let report = aurora_bench::run_inline(
        &AuroraSimulator::new(AcceleratorConfig::small(8)).with_telemetry(telemetry.clone()),
        &g,
        ModelId::Gcn,
        &[LayerShape::new(32, 16), LayerShape::new(16, 8)],
        "golden",
        1.0,
    );
    (telemetry, report)
}

#[test]
fn trace_json_matches_chrome_event_schema() {
    let (telemetry, report) = run_tiny_gcn();
    let json = telemetry.trace_json().expect("telemetry enabled");
    let doc: Value = from_str(&json).expect("trace must be valid JSON");

    assert_eq!(
        doc.get("displayTimeUnit").and_then(Value::as_str),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_seq)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "a 2-layer run must emit events");

    let mut complete_spans = 0usize;
    let mut track_names = Vec::new();
    for ev in events {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .expect("every event has ph");
        let name = ev.get("name").and_then(Value::as_str).expect("name");
        assert!(ev.get("pid").and_then(Value::as_u64).is_some(), "pid");
        // process-level metadata is the only event without a thread id
        if !(ph == "M" && name == "process_name") {
            assert!(ev.get("tid").and_then(Value::as_u64).is_some(), "tid");
        }
        match ph {
            "M" => {
                if ev.get("name").and_then(Value::as_str) == Some("thread_name") {
                    let n = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                        .expect("thread_name metadata carries args.name");
                    track_names.push(n.to_string());
                }
            }
            "X" => {
                complete_spans += 1;
                assert!(ev.get("ts").and_then(Value::as_u64).is_some(), "X has ts");
                assert!(ev.get("dur").and_then(Value::as_u64).is_some(), "X has dur");
            }
            "i" => {
                assert!(ev.get("ts").and_then(Value::as_u64).is_some(), "i has ts");
            }
            "C" => {
                assert!(ev.get("ts").and_then(Value::as_u64).is_some(), "C has ts");
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(complete_spans > 0, "timeline must contain complete spans");

    // the two sub-accelerators and DRAM must appear as distinct tracks
    for required in [
        aurora_telemetry::tracks::SUB_A,
        aurora_telemetry::tracks::SUB_B,
        aurora_telemetry::tracks::DRAM,
    ] {
        assert!(
            track_names.iter().any(|n| n == required),
            "missing track {required:?} (have {track_names:?})"
        );
    }
    let mut dedup = track_names.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(dedup.len(), track_names.len(), "track names are distinct");

    // spans carry simulated cycles: no span may end past the run total
    for ev in events {
        if ev.get("ph").and_then(Value::as_str) == Some("X") {
            let ts = ev.get("ts").and_then(Value::as_u64).unwrap();
            let dur = ev.get("dur").and_then(Value::as_u64).unwrap();
            assert!(
                ts + dur <= report.total_cycles,
                "span [{ts}, {}] exceeds run total {}",
                ts + dur,
                report.total_cycles
            );
        }
    }
}

#[test]
fn metrics_snapshot_round_trips_through_json() {
    let (telemetry, report) = run_tiny_gcn();
    let snapshot = telemetry.snapshot();
    assert!(!snapshot.is_empty());
    let json = serde_json::to_string_pretty(&snapshot).expect("serialize");
    let back: aurora_telemetry::MetricsSnapshot = serde_json::from_str(&json).expect("parse");
    assert_eq!(
        back.counter_total("layer.total_cycles"),
        report.total_cycles
    );
    assert_eq!(
        back.counter_total("dram.read_bytes") + back.counter_total("dram.write_bytes"),
        report.dram.total_bytes()
    );
}
