//! The perf-history ledger: `BENCH_history.jsonl`.
//!
//! `perf_regress --record` appends one NDJSON [`HistoryRow`] per pinned
//! workload; `perf_trend` reads the ledger back and reports
//! per-workload trajectories. Rows are append-only and carry their own
//! provenance (git revision, unix timestamp), so the file doubles as a
//! machine-readable log of how host cost has moved across commits.
//! Simulated cycles in a row are exact (the generators are
//! fixed-seed); wall-ms and allocation counts track the recording host.

use serde::{Deserialize, Serialize};
use std::io::Write as IoWrite;

/// One recorded (run, workload) measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryRow {
    /// Unix seconds when the row was recorded.
    pub ts: u64,
    /// `git rev-parse --short HEAD` of the recording tree, or
    /// `unknown` outside a checkout.
    pub git_rev: String,
    /// The `--name` of the recording run.
    pub name: String,
    /// PE-array radix of the pinned matrix.
    pub k: u64,
    /// Stable workload key, e.g. `gcn/rmat-4k`.
    pub workload: String,
    /// Simulated cycles (deterministic).
    pub cycles: u64,
    /// Host wall-time of the simulation, milliseconds.
    pub wall_ms: f64,
    /// Heap allocations attributed to the run by the counting
    /// allocator (0 when recording ran without it).
    pub allocs: u64,
    /// Heap allocations a *warmed-up* second run attributes to the
    /// steady-state stages (tile precompute + mapping + engine walk).
    /// The arena-backed engine core holds this near zero; growth here
    /// flags per-tile churn creeping back in. Absent in ledgers
    /// recorded before the column existed (defaults to 0).
    #[serde(default)]
    pub allocs_steady: u64,
    /// The run's dominant bound label.
    pub dominant: String,
}

/// Appends `rows` to the NDJSON ledger at `path`, one row per line.
pub fn append(path: &str, rows: &[HistoryRow]) -> std::io::Result<()> {
    let mut file = std::fs::File::options()
        .create(true)
        .append(true)
        .open(path)?;
    for row in rows {
        let line = serde_json::to_string(row).expect("history row serializes");
        writeln!(file, "{line}")?;
    }
    Ok(())
}

/// Loads every row of the ledger. Blank lines are skipped; any
/// unparseable line is an error naming its line number.
pub fn load(path: &str) -> Result<Vec<HistoryRow>, String> {
    let body = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut rows = Vec::new();
    for (i, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let row: HistoryRow = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: bad history row: {e:?}", i + 1))?;
        rows.push(row);
    }
    Ok(rows)
}

/// Checks the ledger invariant: timestamps never move backwards (the
/// file is append-only, so an out-of-order row means hand-editing or a
/// clock step worth investigating).
pub fn validate(rows: &[HistoryRow]) -> Result<(), String> {
    for (i, pair) in rows.windows(2).enumerate() {
        if pair[1].ts < pair[0].ts {
            return Err(format!(
                "row {}: timestamp {} is earlier than row {}'s {}",
                i + 2,
                pair[1].ts,
                i + 1,
                pair[0].ts
            ));
        }
    }
    Ok(())
}

/// Sustained wall-clock drift detector for one workload's rows (oldest
/// first): true when the last `recent` rows *all* run slower than
/// `ratio` × the median of the earlier rows. A single slow row — a
/// loaded host, a cold cache — never trips it; a trend does.
pub fn sustained_drift(walls: &[f64], recent: usize, ratio: f64) -> bool {
    if walls.len() < recent + 2 || recent == 0 {
        return false;
    }
    let (earlier, tail) = walls.split_at(walls.len() - recent);
    let base = median(earlier);
    base > 0.0 && tail.iter().all(|w| *w > ratio * base)
}

/// Median of a non-empty slice.
pub fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("walls are finite"));
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(ts: u64, workload: &str, wall_ms: f64) -> HistoryRow {
        HistoryRow {
            ts,
            git_rev: "abc1234".into(),
            name: "test".into(),
            k: 8,
            workload: workload.into(),
            cycles: 1_000,
            wall_ms,
            allocs: 5,
            allocs_steady: 0,
            dominant: "dram".into(),
        }
    }

    #[test]
    fn round_trips_through_the_ledger_file() {
        let path = std::env::temp_dir().join(format!("aurora-hist-{}.jsonl", std::process::id()));
        let path = path.to_str().unwrap().to_string();
        let _ = std::fs::remove_file(&path);
        append(&path, &[row(10, "a", 1.0), row(20, "b", 2.0)]).unwrap();
        append(&path, &[row(30, "a", 3.0)]).unwrap();
        let rows = load(&path).unwrap();
        assert_eq!(rows.len(), 3, "appends accumulate");
        assert_eq!(rows[2], row(30, "a", 3.0));
        assert!(validate(&rows).is_ok());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rows_without_steady_column_still_load() {
        // Ledgers recorded before `allocs_steady` existed must parse.
        let old = "{\"ts\":10,\"git_rev\":\"abc1234\",\"name\":\"test\",\"k\":8,\
                   \"workload\":\"a\",\"cycles\":1000,\"wall_ms\":1.0,\
                   \"allocs\":5,\"dominant\":\"dram\"}";
        let parsed: HistoryRow = serde_json::from_str(old).unwrap();
        assert_eq!(parsed.allocs_steady, 0, "missing column defaults to 0");
        assert_eq!(parsed, row(10, "a", 1.0));
    }

    #[test]
    fn bad_lines_are_named() {
        let path =
            std::env::temp_dir().join(format!("aurora-hist-bad-{}.jsonl", std::process::id()));
        std::fs::write(&path, "{\"not\":\"a row\"}\n").unwrap();
        let err = load(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains(":1:"), "error names the line: {err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn validate_rejects_backwards_timestamps() {
        let rows = vec![row(20, "a", 1.0), row(10, "a", 1.0)];
        let err = validate(&rows).unwrap_err();
        assert!(err.contains("earlier"));
    }

    #[test]
    fn drift_needs_a_sustained_tail() {
        // Median of the earlier runs is 1.0; a single slow run is noise.
        assert!(!sustained_drift(&[1.0, 1.0, 1.0, 1.0, 3.0], 3, 1.25));
        // Three consecutive slow runs over a clean base: drift.
        assert!(sustained_drift(&[1.0, 1.0, 1.0, 2.0, 2.1, 2.2], 3, 1.25));
        // Too few rows to judge.
        assert!(!sustained_drift(&[1.0, 2.0, 2.0], 3, 1.25));
    }
}
