//! Shared command-line plumbing for the `src/bin` drivers.
//!
//! Every binary used to hand-roll the same index-juggling flag loop and
//! its own copies of the `--trace/--metrics/--profile/--threads/
//! --host-profile` handling and the model/dataset/baseline name
//! parsers. They now share:
//!
//! - [`Args`] — a cursor over `std::env::args` with typed `value`/`parse`
//!   accessors that exit with usage-style errors,
//! - [`CommonFlags`] — the observability + threading flags every driver
//!   accepts ([`CommonFlags::consume`] recognises them inside the
//!   binary's own match loop),
//! - [`parse_model`] / [`parse_dataset`] / [`parse_baseline`] — the
//!   name → enum maps,
//! - [`load_requests`] — `--request FILE` input: one [`SimRequest`] JSON
//!   document (or an array of them) in the exact wire format the
//!   `aurora_serve` daemon speaks, so a request file works unchanged
//!   against `aurora_sim --request`, `serve_bench --request`, and a raw
//!   socket.

use aurora_baselines::BaselineKind;
use aurora_core::{SimReport, SimRequest, Telemetry};
use aurora_graph::Dataset;
use aurora_model::ModelId;
use serde::Deserialize;
use serde_json::Value;

/// Prints `error: <msg>` and exits 2 (flag errors, not failures).
pub fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

/// A cursor over the process arguments (program name skipped).
pub struct Args {
    list: Vec<String>,
    i: usize,
}

impl Args {
    pub fn from_env() -> Self {
        Self {
            list: std::env::args().skip(1).collect(),
            i: 0,
        }
    }

    /// For tests: a cursor over an explicit argument list.
    pub fn from_vec(list: Vec<String>) -> Self {
        Self { list, i: 0 }
    }

    /// The next argument, advancing the cursor.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<String> {
        let arg = self.list.get(self.i).cloned();
        if arg.is_some() {
            self.i += 1;
        }
        arg
    }

    /// The value following a `--flag`, or a usage error naming it.
    pub fn value(&mut self, flag: &str) -> String {
        self.next()
            .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
    }

    /// The value following a `--flag`, parsed, or a usage error.
    pub fn parse<T: std::str::FromStr>(&mut self, flag: &str) -> T {
        self.value(flag)
            .parse()
            .unwrap_or_else(|_| fail(&format!("bad {flag} value")))
    }
}

/// Flags shared by the simulator-driving binaries.
#[derive(Debug, Default, Clone)]
pub struct CommonFlags {
    /// `--trace PATH`: Chrome trace-event timeline of the run.
    pub trace: Option<String>,
    /// `--metrics PATH`: full metrics snapshot as JSON.
    pub metrics: Option<String>,
    /// `--profile PATH`: bottleneck-attribution profile as JSON.
    pub profile: Option<String>,
    /// `--threads N`: worker-pool width (exported as `AURORA_THREADS`).
    pub threads: Option<usize>,
    /// `--host-profile`: per-stage host wall-clock span profiling; the
    /// run's report carries a `host_profile` breakdown.
    pub host_profile: bool,
    /// `--json`: machine-readable output instead of the human form.
    pub json: bool,
}

impl CommonFlags {
    /// Recognises one shared flag inside a binary's match loop,
    /// consuming its value from `args` when it takes one. Returns
    /// `false` for anything binary-specific.
    pub fn consume(&mut self, args: &mut Args, arg: &str) -> bool {
        match arg {
            "--trace" => self.trace = Some(args.value("--trace")),
            "--metrics" => self.metrics = Some(args.value("--metrics")),
            "--profile" => self.profile = Some(args.value("--profile")),
            "--threads" => {
                let n: usize = args.parse("--threads");
                if n == 0 {
                    fail("--threads must be >= 1");
                }
                // The pool reads AURORA_THREADS on first use; flags are
                // parsed before any simulation, so the export lands in
                // time.
                std::env::set_var("AURORA_THREADS", n.to_string());
                self.threads = Some(n);
            }
            "--host-profile" => {
                // host_init first so AURORA_ALLOC_PROFILE composes with
                // the flag; the flag then forces spans on regardless of
                // AURORA_HOST_PROFILE.
                aurora_core::host_init();
                aurora_core::span::set_span_profiling(true);
                self.host_profile = true;
            }
            "--json" => self.json = true,
            _ => return false,
        }
        true
    }

    /// Whether any cycle-keyed instrumentation output was requested.
    pub fn observing(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }

    /// A telemetry handle sized to the request: enabled only when a
    /// trace or metrics file will actually be written.
    pub fn telemetry(&self) -> Telemetry {
        if self.observing() {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        }
    }

    /// Writes the requested `--trace` / `--metrics` / `--profile`
    /// outputs after a run.
    pub fn write_outputs(&self, telemetry: &Telemetry, report: &SimReport) {
        if let Some(path) = &self.trace {
            let json = telemetry.trace_json().unwrap_or_else(|| {
                // telemetry stayed disabled (baseline run): emit a
                // valid, empty trace document rather than nothing
                Telemetry::enabled().trace_json().expect("enabled")
            });
            std::fs::write(path, json).unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
            eprintln!(
                "trace: {path} ({} events; open in https://ui.perfetto.dev)",
                telemetry.trace_len()
            );
        }
        if let Some(path) = &self.metrics {
            // Surface-point export: pool counters (and the run's host
            // profile, when spans were on) become `pool.*` / `host.*`
            // gauges here — after the run, so `SimReport.metrics` stays
            // untouched by host-side observability.
            aurora_core::export_pool_metrics(telemetry);
            if let Some(hp) = &report.host_profile {
                aurora_core::export_host_metrics(telemetry, hp);
            }
            let snapshot = telemetry.snapshot();
            let body = serde_json::to_string_pretty(&snapshot).expect("serialize metrics");
            std::fs::write(path, body).unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
            eprintln!(
                "metrics: {path} ({} counters, {} gauges, {} histograms)",
                snapshot.counters.len(),
                snapshot.gauges.len(),
                snapshot.histograms.len()
            );
        }
        if let Some(path) = &self.profile {
            crate::profile_fmt::emit(report, path);
        }
    }
}

/// Model name → [`ModelId`], accepting the paper's spellings.
pub fn parse_model(s: &str) -> Option<ModelId> {
    Some(match s.to_ascii_lowercase().as_str() {
        "gcn" => ModelId::Gcn,
        "gin" => ModelId::Gin,
        "sage-mean" | "sagemean" => ModelId::SageMean,
        "sage-pool" | "sagepool" => ModelId::SagePool,
        "commnet" => ModelId::CommNet,
        "attention" | "vanilla-attention" => ModelId::VanillaAttention,
        "agnn" => ModelId::Agnn,
        "ggcn" | "g-gcn" => ModelId::GGcn,
        "edgeconv1" | "edgeconv-1" => ModelId::EdgeConv1,
        "edgeconv5" | "edgeconv-5" => ModelId::EdgeConv5,
        _ => return None,
    })
}

/// Dataset name → [`Dataset`].
pub fn parse_dataset(s: &str) -> Option<Dataset> {
    Some(match s.to_ascii_lowercase().as_str() {
        "cora" => Dataset::Cora,
        "citeseer" => Dataset::Citeseer,
        "pubmed" => Dataset::Pubmed,
        "nell" => Dataset::Nell,
        "reddit" => Dataset::Reddit,
        _ => return None,
    })
}

/// Baseline name → [`BaselineKind`].
pub fn parse_baseline(s: &str) -> Option<BaselineKind> {
    Some(match s.to_ascii_lowercase().as_str() {
        "hygcn" => BaselineKind::HyGcn,
        "awb" | "awb-gcn" | "awbgcn" => BaselineKind::AwbGcn,
        "gcnax" => BaselineKind::Gcnax,
        "regnn" => BaselineKind::ReGnn,
        "flowgnn" => BaselineKind::FlowGnn,
        _ => return None,
    })
}

/// Loads `--request FILE` input: a single `SimRequest` JSON document or
/// an array of them, in the daemon's wire schema.
pub fn load_requests(path: &str) -> Vec<SimRequest> {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
    let value: Value =
        serde_json::from_str(&body).unwrap_or_else(|e| fail(&format!("parse {path}: {e:?}")));
    let parsed: Result<Vec<SimRequest>, _> = match &value {
        Value::Seq(items) => items.iter().map(SimRequest::from_value).collect(),
        single => SimRequest::from_value(single).map(|r| vec![r]),
    };
    let requests =
        parsed.unwrap_or_else(|e| fail(&format!("{path} is not a SimRequest document: {e:?}")));
    if requests.is_empty() {
        fail(&format!("{path} holds an empty request array"));
    }
    for (i, r) in requests.iter().enumerate() {
        if let Err(e) = r.validate() {
            fail(&format!("{path}[{i}] is invalid: {e}"));
        }
    }
    requests
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_core::AcceleratorConfig;
    use aurora_model::LayerShape;

    #[test]
    fn common_flags_consume_their_values() {
        let mut args = Args::from_vec(
            [
                "--trace",
                "t.json",
                "--json",
                "--metrics",
                "m.json",
                "--left",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        );
        let mut flags = CommonFlags::default();
        while let Some(arg) = args.next() {
            if flags.consume(&mut args, &arg) {
                continue;
            }
            assert_eq!(arg, "--left", "only the binary-specific flag falls through");
        }
        assert_eq!(flags.trace.as_deref(), Some("t.json"));
        assert_eq!(flags.metrics.as_deref(), Some("m.json"));
        assert!(flags.json);
        assert!(flags.observing());
    }

    #[test]
    fn request_files_accept_single_and_array_forms() {
        let req = SimRequest::builder(ModelId::Gcn)
            .config(AcceleratorConfig::small(4))
            .rmat(64, 256, 1)
            .layer(LayerShape::new(8, 4))
            .workload("cli")
            .build()
            .unwrap();
        let dir = std::env::temp_dir();
        let single = dir.join(format!("aurora-cli-single-{}.json", std::process::id()));
        let array = dir.join(format!("aurora-cli-array-{}.json", std::process::id()));
        std::fs::write(&single, serde_json::to_string(&req).unwrap()).unwrap();
        std::fs::write(
            &array,
            serde_json::to_string(&vec![req.clone(), req.clone()]).unwrap(),
        )
        .unwrap();
        let one = load_requests(single.to_str().unwrap());
        let two = load_requests(array.to_str().unwrap());
        assert_eq!(one, vec![req.clone()]);
        assert_eq!(two.len(), 2);
        assert_eq!(two[0].digest(), req.digest());
        let _ = std::fs::remove_file(&single);
        let _ = std::fs::remove_file(&array);
    }

    #[test]
    fn name_parsers_cover_the_paper_spellings() {
        assert_eq!(parse_model("SAGE-MEAN"), Some(ModelId::SageMean));
        assert_eq!(parse_model("nope"), None);
        assert_eq!(parse_dataset("pubmed"), Some(Dataset::Pubmed));
        assert_eq!(parse_baseline("awb-gcn"), Some(BaselineKind::AwbGcn));
    }
}
