//! Human-readable rendering of the bottleneck profile.
//!
//! `aurora_sim --profile out.json` writes the raw [`ProfileReport`] and
//! prints this module's text form: a run-level bound mix, a roofline
//! summary, the per-layer breakdown and the slot-heaviest tiles — the
//! "where did the cycles go" view the taxonomy exists for.

use crate::emit::{dump_json, Cell, Table};
use aurora_core::{Bound, SimReport};

fn pct(f: f64) -> Cell {
    Cell::percent(100.0 * f, 1)
}

/// Run-level mix: one row per bound with cycles, share of the attributed
/// total, and the run-wide slack behind the dominant bound.
pub fn mix_table(r: &SimReport) -> Table {
    let p = &r.profile;
    let mut t = Table::new(format!(
        "bound mix — {} on {} ({})",
        r.accelerator, r.workload, r.model
    ))
    .columns(&["bound", "cycles", "share", "slack vs dominant"]);
    let dominant = p.dominant();
    for b in Bound::ALL {
        let cycles = p.mix.of(b);
        t.row(vec![
            b.label().into(),
            cycles.into(),
            pct(p.mix.fraction(b)),
            (p.mix.of(dominant) - cycles).into(),
        ]);
    }
    t.note(format!(
        "dominant: {}; exposed controller overhead {} cycles ({:.2}% of {} total)",
        dominant.label(),
        p.overhead_cycles,
        100.0 * p.overhead_fraction(),
        r.total_cycles
    ));
    t.note(format!(
        "NoC model link utilisation: {:.2}",
        p.link_utilisation
    ));
    t
}

/// Per-layer attribution: bound shares, sub-accelerator utilisation and
/// the roofline x-coordinate of each layer.
pub fn layer_table(r: &SimReport) -> Table {
    let p = &r.profile;
    let mut t = Table::new("per-layer attribution").columns(&[
        "layer",
        "tiles",
        "dominant",
        "compute",
        "noc",
        "dram",
        "imbal",
        "util A",
        "util B",
        "util DRAM",
        "ops/byte",
    ]);
    for l in &p.layers {
        t.row(vec![
            l.layer.into(),
            l.tiles.into(),
            l.dominant.label().into(),
            pct(l.mix.fraction(Bound::Compute)),
            pct(l.mix.fraction(Bound::Noc)),
            pct(l.mix.fraction(Bound::Dram)),
            pct(l.mix.fraction(Bound::Imbalance)),
            pct(l.util_a),
            pct(l.util_b),
            pct(l.util_dram),
            Cell::float(l.operational_intensity, 2),
        ]);
    }
    t
}

/// The `k` slot-heaviest tiles — where optimisation effort pays first.
pub fn top_tiles_table(r: &SimReport, k: usize) -> Table {
    let p = &r.profile;
    let mut t = Table::new(format!("top {k} limiting tiles")).columns(&[
        "layer",
        "tile",
        "slot cycles",
        "bound",
        "stage",
        "imbalance",
        "hot router",
    ]);
    for tile in p.top_limiting_tiles(k) {
        let side = tile.critical_side();
        t.row(vec![
            tile.layer.into(),
            tile.tile.into(),
            tile.slot_cycles.into(),
            tile.bound.label().into(),
            match tile.critical {
                aurora_core::profile::CriticalStage::A => "A",
                aurora_core::profile::CriticalStage::B => "B",
            }
            .into(),
            Cell::ratio(side.imbalance, 2),
            side.hot_router
                .map(|x| Cell::UInt(x as u64))
                .unwrap_or(Cell::Missing),
        ]);
    }
    t
}

/// Roofline header lines (not a table — three derived scalars).
pub fn roofline_lines(r: &SimReport) -> String {
    let p = &r.profile;
    // The machine-balance knee: ops/byte below which DRAM bandwidth, not
    // the array, caps throughput.
    let knee = if p.dram_peak_gbps > 0.0 {
        p.peak_gflops / p.dram_peak_gbps
    } else {
        0.0
    };
    let regime = if p.operational_intensity < knee {
        "bandwidth-limited"
    } else {
        "compute-limited"
    };
    format!(
        "roofline: {:.2} ops/byte ({regime}; knee at {:.2}), \
         {:.2} / {:.1} GFLOP/s achieved/peak, DRAM peak {:.1} GB/s\n",
        p.operational_intensity, knee, p.achieved_gflops, p.peak_gflops, p.dram_peak_gbps
    )
}

/// The full text form printed by `aurora_sim --profile`.
pub fn render(r: &SimReport) -> String {
    if r.profile.is_empty() {
        return format!(
            "profile: empty (the {} cost model records no attribution)\n",
            r.accelerator
        );
    }
    let mut out = String::new();
    out.push_str(&mix_table(r).render());
    out.push_str(&roofline_lines(r));
    out.push_str(&layer_table(r).render());
    out.push_str(&top_tiles_table(r, 8).render());
    out
}

/// Writes the raw profile as JSON and prints the text form.
pub fn emit(r: &SimReport, path: &str) {
    dump_json(path, &r.profile);
    print!("{}", render(r));
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_core::{AcceleratorConfig, AuroraSimulator};
    use aurora_graph::generate;
    use aurora_model::{LayerShape, ModelId};

    fn small_run() -> SimReport {
        let g = generate::rmat(256, 2_000, Default::default(), 11);
        crate::run_inline(
            &AuroraSimulator::new(AcceleratorConfig::small(4)),
            &g,
            ModelId::Gcn,
            &[LayerShape::new(16, 8), LayerShape::new(8, 4)],
            "toy",
            1.0,
        )
    }

    #[test]
    fn render_covers_every_section() {
        let r = small_run();
        let text = render(&r);
        assert!(text.contains("bound mix"));
        assert!(text.contains("roofline:"));
        assert!(text.contains("per-layer attribution"));
        assert!(text.contains("limiting tiles"));
        for b in Bound::ALL {
            assert!(text.contains(b.label()), "missing bound {}", b.label());
        }
    }

    #[test]
    fn mix_rows_cover_all_bounds() {
        let r = small_run();
        assert_eq!(mix_table(&r).num_rows(), 4);
        assert_eq!(layer_table(&r).num_rows(), r.profile.layers.len());
    }

    #[test]
    fn empty_profile_renders_placeholder() {
        let mut r = small_run();
        r.profile = Default::default();
        r.accelerator = "HyGCN".into();
        assert!(render(&r).contains("profile: empty"));
    }
}
