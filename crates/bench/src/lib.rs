//! Experiment harness regenerating the paper's evaluation (§VI).
//!
//! Every table and figure has a binary (see DESIGN.md's experiment index):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1_coverage` | Table I — model-coverage matrix |
//! | `table2_ops` | Table II — per-phase operations |
//! | `fig7_dram` | Fig. 7 — normalized DRAM accesses |
//! | `fig8_noc` | Fig. 8 — on-chip communication latency |
//! | `fig9_perf` | Fig. 9 — normalized execution time + speedup ranges |
//! | `fig10_energy` | Fig. 10 — normalized energy |
//! | `area_table` | §VI-F — area breakdown |
//! | `ablation_mapping` | §IV — degree-aware vs hashing mapping |
//! | `ablation_partition` | §V — dynamic vs fixed partitioning |
//!
//! The shared [`sweep`] runs the paper's protocol — a two-layer GCN over
//! the five datasets on Aurora and all five baselines, every design
//! normalised to the same multipliers/bandwidth/storage — and each binary
//! prints its figure's metric from those runs.

pub mod cli;
pub mod emit;
pub mod history;
pub mod host_fmt;
pub mod profile_fmt;
pub mod protocol;
pub mod sweep;
pub mod table;

pub use emit::{Cell, Table};
pub use protocol::{shapes_for, EvalProtocol};
pub use sweep::{run_standard, CellResult, SweepResult};
pub use table::{normalized_table, print_normalized};

use aurora_core::{AuroraSimulator, SimReport, SimRequest};
use aurora_graph::Csr;
use aurora_model::{LayerShape, ModelId};

/// One-shot Aurora run through the request API — what the deprecated
/// `simulate*` convenience wrappers used to do for the bench binaries.
/// Panics on request-build or simulation errors, like the wrappers did.
pub fn run_inline(
    sim: &AuroraSimulator,
    g: &Csr,
    model: ModelId,
    shapes: &[LayerShape],
    workload: &str,
    density: f64,
) -> SimReport {
    let req = SimRequest::builder(model)
        .config(*sim.config())
        .inline_graph(g.clone())
        .layers(shapes)
        .workload(workload)
        .input_density(density)
        .build()
        .unwrap_or_else(|e| panic!("simulation failed: {e}"));
    sim.run(&req)
        .unwrap_or_else(|e| panic!("simulation failed: {e}"))
}
