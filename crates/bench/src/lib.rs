//! Experiment harness regenerating the paper's evaluation (§VI).
//!
//! Every table and figure has a binary (see DESIGN.md's experiment index):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1_coverage` | Table I — model-coverage matrix |
//! | `table2_ops` | Table II — per-phase operations |
//! | `fig7_dram` | Fig. 7 — normalized DRAM accesses |
//! | `fig8_noc` | Fig. 8 — on-chip communication latency |
//! | `fig9_perf` | Fig. 9 — normalized execution time + speedup ranges |
//! | `fig10_energy` | Fig. 10 — normalized energy |
//! | `area_table` | §VI-F — area breakdown |
//! | `ablation_mapping` | §IV — degree-aware vs hashing mapping |
//! | `ablation_partition` | §V — dynamic vs fixed partitioning |
//!
//! The shared [`sweep`] runs the paper's protocol — a two-layer GCN over
//! the five datasets on Aurora and all five baselines, every design
//! normalised to the same multipliers/bandwidth/storage — and each binary
//! prints its figure's metric from those runs.

pub mod cli;
pub mod emit;
pub mod history;
pub mod host_fmt;
pub mod profile_fmt;
pub mod protocol;
pub mod sweep;
pub mod table;

pub use emit::{Cell, Table};
pub use protocol::{shapes_for, EvalProtocol};
pub use sweep::{run_standard, CellResult, SweepResult};
pub use table::{normalized_table, print_normalized};
