//! The shared accelerator × dataset sweep behind Figs. 7-10.

use crate::protocol::{shapes_for, EvalProtocol};
use aurora_baselines::{BaselineKind, BaselineParams};
use aurora_core::{AcceleratorConfig, AuroraSimulator, SimReport};
use aurora_model::ModelId;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One (accelerator, dataset) cell of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    pub accelerator: String,
    pub dataset: String,
    pub cycles: u64,
    pub seconds: f64,
    pub dram_bytes: u64,
    pub dram_accesses: u64,
    pub noc_cycles: u64,
    pub energy_joules: f64,
    /// Per-layer total cycles (Fig. 9 reports each layer).
    pub layer_cycles: Vec<u64>,
}

impl CellResult {
    fn of(report: &SimReport) -> Self {
        Self {
            accelerator: report.accelerator.clone(),
            dataset: report.workload.clone(),
            cycles: report.total_cycles,
            seconds: report.seconds(),
            dram_bytes: report.dram.total_bytes(),
            dram_accesses: report.dram_accesses(),
            noc_cycles: report.noc_cycles(),
            energy_joules: report.energy_joules(),
            layer_cycles: report.layers.iter().map(|l| l.total_cycles).collect(),
        }
    }
}

/// The full sweep result: row per accelerator, column per dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    pub accelerators: Vec<String>,
    pub datasets: Vec<String>,
    pub cells: Vec<CellResult>,
}

impl SweepResult {
    /// Looks up one cell, or `None` when the pair was never swept (a
    /// partial sweep, or a typo'd accelerator/dataset name).
    pub fn try_cell(&self, accelerator: &str, dataset: &str) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.accelerator == accelerator && c.dataset == dataset)
    }

    /// Looks up one cell.
    ///
    /// # Panics
    /// Panics when the pair is missing; use [`Self::try_cell`] to handle
    /// partial sweeps gracefully.
    pub fn cell(&self, accelerator: &str, dataset: &str) -> &CellResult {
        self.try_cell(accelerator, dataset)
            .unwrap_or_else(|| panic!("missing cell {accelerator}/{dataset}"))
    }

    /// A metric matrix `[accelerator][dataset]`; missing cells become NaN
    /// instead of aborting, so partial sweeps still render.
    pub fn matrix(&self, metric: impl Fn(&CellResult) -> f64) -> Vec<Vec<f64>> {
        self.accelerators
            .iter()
            .map(|a| {
                self.datasets
                    .iter()
                    .map(|d| self.try_cell(a, d).map(&metric).unwrap_or(f64::NAN))
                    .collect()
            })
            .collect()
    }
}

/// Runs the paper's protocol (two-layer GCN, all six accelerators, the
/// five-dataset suite) and returns the result matrix. Dataset runs execute
/// in parallel with Rayon.
pub fn run_standard(protocols: &[EvalProtocol]) -> SweepResult {
    let model = ModelId::Gcn;
    let cells: Vec<CellResult> = protocols
        .par_iter()
        .flat_map(|p| {
            let spec = p.spec();
            let name = p.dataset.name().to_string();
            let g = spec.synthesize();
            let shapes = shapes_for(&spec, p.hidden);
            let mut out = Vec::with_capacity(6);
            let aurora = crate::run_inline(
                &AuroraSimulator::new(AcceleratorConfig::default()),
                &g,
                model,
                &shapes,
                &name,
                spec.feature_density,
            );
            out.push(CellResult::of(&aurora));
            for b in BaselineKind::ALL {
                let r = b
                    .build(BaselineParams::default())
                    .simulate(&g, model, &shapes, &name);
                out.push(CellResult::of(&r));
            }
            out
        })
        .collect();
    SweepResult {
        accelerators: std::iter::once("Aurora".to_string())
            .chain(BaselineKind::ALL.iter().map(|b| b.name().to_string()))
            .collect(),
        datasets: protocols
            .iter()
            .map(|p| p.dataset.name().to_string())
            .collect(),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_completes_and_aurora_wins() {
        let sweep = run_standard(&EvalProtocol::tiny());
        assert_eq!(sweep.cells.len(), 6 * 5);
        for d in &sweep.datasets {
            let aurora = sweep.cell("Aurora", d);
            for a in &sweep.accelerators {
                if a != "Aurora" {
                    let c = sweep.cell(a, d);
                    assert!(
                        c.cycles >= aurora.cycles,
                        "{a} faster than Aurora on {d}: {} < {}",
                        c.cycles,
                        aurora.cycles
                    );
                }
            }
        }
    }

    #[test]
    fn matrix_shape() {
        let sweep = run_standard(&EvalProtocol::tiny()[..2]);
        let m = sweep.matrix(|c| c.cycles as f64);
        assert_eq!(m.len(), 6);
        assert_eq!(m[0].len(), 2);
        assert!(m.iter().flatten().all(|&v| v > 0.0));
    }
}
