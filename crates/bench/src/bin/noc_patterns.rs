//! Cycle-level NoC characterisation: classic synthetic patterns on the
//! plain mesh vs the bypass-augmented fabric — the microarchitecture-level
//! view behind Fig. 2's reconfiguration story.

use aurora_bench::{Cell, Table};
use aurora_noc::{run_pattern, BypassSegment, NocConfig, Pattern};

fn main() {
    let k = 8;
    let msgs = 8;
    let words = 16;
    let patterns = [
        ("uniform", Pattern::UniformRandom),
        ("transpose", Pattern::Transpose),
        ("bit-compl", Pattern::BitComplement),
        ("tornado", Pattern::Tornado),
        ("hotspot", Pattern::Hotspot(k * k / 2 + k / 2)),
        ("neighbor", Pattern::NeighborX),
    ];

    let bypass_cfg = || {
        NocConfig::with_bypass(
            k,
            (0..k)
                .map(|r| BypassSegment {
                    index: r,
                    from: 0,
                    to: k - 1,
                })
                .collect(),
            (0..k)
                .map(|c| BypassSegment {
                    index: c,
                    from: 0,
                    to: k - 1,
                })
                .collect(),
        )
    };

    let mut table = Table::new(format!("{k}×{k} NoC, {msgs} messages/node × {words} words"))
        .columns(&[
            "pattern",
            "mesh cyc",
            "byp cyc",
            "p50",
            "p90",
            "p99",
            "mesh hops",
            "byp hops",
        ]);
    for (name, p) in patterns {
        let (mesh, byp) = match (
            run_pattern(NocConfig::mesh(k), p, msgs, words),
            run_pattern(bypass_cfg(), p, msgs, words),
        ) {
            (Ok(m), Ok(b)) => (m, b),
            (m, b) => {
                let err = m.err().or(b.err()).expect("one side failed");
                eprintln!("  {name}: skipped ({err})");
                continue;
            }
        };
        table.row(vec![
            name.into(),
            mesh.pattern_cycles.into(),
            byp.pattern_cycles.into(),
            byp.p50.into(),
            byp.p90.into(),
            byp.p99.into(),
            Cell::float(mesh.stats.avg_hops(), 2),
            Cell::float(byp.stats.avg_hops(), 2),
        ]);
    }
    table.print();
    table.write_json("results/noc_patterns.json");

    println!("\nring mode (weight-stationary rotation):");
    let ring = run_pattern(NocConfig::rings(k), Pattern::NeighborX, msgs, words)
        .expect("intra-row pattern drains on rings");
    println!(
        "  neighbor-X: {} cycles, {} packets, avg latency {:.1}",
        ring.pattern_cycles,
        ring.stats.packets_delivered,
        ring.stats.avg_packet_latency()
    );
}
