//! Incremental-vs-from-scratch gate for streaming graph sessions.
//!
//! ```text
//! delta_bench [--quick] [--gate RATIO] [--deltas N]
//! ```
//!
//! Drives a sliding-window edit stream — each delta removes existing
//! edges whose sources fall in a small vertex window and inserts fresh
//! ones there, the window sliding per delta — through a [`SimSession`]
//! and, for every applied delta, re-runs the post-delta graph from
//! scratch through the one-shot `AuroraSimulator::run`. Three contracts
//! are hard failures in every mode:
//!
//! * **Bit-identity** — the session's report is byte-identical
//!   (serialized JSON) to the from-scratch report after every delta,
//!   across k ∈ {4, 8} × {mesh+bypass, mesh-only} × worker threads
//!   {1, 2, 4}, and invalid deltas produce the *same typed error* as
//!   `GraphDelta::apply` with the session left usable.
//! * **Burst replay** — re-applying the recorded delta stream on a
//!   second session from the same base reproduces the digest chain and
//!   final report exactly.
//! * **No-op hit** — an empty delta answers from the session without an
//!   engine run and does not advance the digest chain.
//!
//! The wall-clock claim is gated only in full mode (`--gate`, default
//! 5.0): on rmat-16k with per-delta churn ≤ 1 % of edges, the
//! incremental re-simulation must be at least `RATIO`× faster than the
//! from-scratch runs it replaces. `--quick` shrinks the workloads for
//! the CI gate (`scripts/check.sh`) and prints the speedup
//! informationally.

use aurora_bench::cli::{fail, Args};
use aurora_bench::emit::{Cell, Table};
use aurora_core::{
    chain_digest, AcceleratorConfig, AuroraSimulator, EngineCore, GraphDelta, GraphSpec, SimRequest,
};
use aurora_graph::Csr;
use aurora_model::{LayerShape, ModelId};
use rayon::pool::ThreadPool;
use std::time::Instant;

/// xorshift64* — deterministic, dependency-free stream randomness.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One sliding-window delta against `g`: remove up to `churn` existing
/// edges sourced inside `window`, insert the same number of new ones
/// sourced there (destinations anywhere). The window is what makes the
/// stream *incremental-friendly* — touched sources span a handful of
/// tiles, the realistic shape of an evolving graph region.
fn window_delta(g: &Csr, window: std::ops::Range<u32>, churn: usize, rng: &mut Rng) -> GraphDelta {
    let n = g.num_vertices() as u64;
    let mut in_window: Vec<(u32, u32)> = Vec::new();
    for v in window.clone() {
        for &d in g.neighbors(v) {
            in_window.push((v, d));
        }
    }
    // sample removals without replacement
    let mut remove_edges = Vec::with_capacity(churn.min(in_window.len()));
    for _ in 0..churn.min(in_window.len()) {
        let i = rng.below(in_window.len() as u64) as usize;
        remove_edges.push(in_window.swap_remove(i));
    }
    remove_edges.sort_unstable();
    let mut insert_edges: Vec<(u32, u32)> = Vec::with_capacity(remove_edges.len());
    let mut tries = 0usize;
    while insert_edges.len() < remove_edges.len() && tries < churn * 64 {
        tries += 1;
        let u = window.start + rng.below((window.end - window.start) as u64) as u32;
        let v = rng.below(n) as u32;
        let e = (u, v);
        if u == v
            || g.has_edge(u, v)
            || insert_edges.contains(&e)
            || remove_edges.binary_search(&e).is_ok()
        {
            continue;
        }
        insert_edges.push(e);
    }
    GraphDelta {
        insert_edges,
        remove_edges,
        ..GraphDelta::default()
    }
}

/// The feature width sets the tile count: the capacity tiling fits
/// `onchip_bytes × feature_fraction / (f_in × 8)` vertices per tile, so
/// a GNN-realistic hidden width (128–256) splits these graphs into
/// several tiles — the shape the dirty-tile skip exists for. A tiny
/// `f_in` would collapse every graph into one tile and the "incremental"
/// run would redo all the work.
fn base_request(cfg: AcceleratorConfig, n: usize, m: usize, f_in: usize, seed: u64) -> SimRequest {
    SimRequest::builder(ModelId::Gcn)
        .config(cfg)
        .rmat(n, m, seed)
        .layers(&[LayerShape::new(f_in, f_in / 4)])
        .workload("delta_bench")
        .build()
        .expect("valid request")
}

fn report_json(r: &aurora_core::SimReport) -> String {
    serde_json::to_string(r).expect("report serializes")
}

/// Runs the post-delta graph from scratch through the one-shot path the
/// sessions must be indistinguishable from.
fn from_scratch(req: &SimRequest, g: &Csr) -> (aurora_core::SimReport, f64) {
    let fresh_req = SimRequest {
        graph: GraphSpec::Inline(g.clone()),
        ..req.clone()
    };
    let sim = AuroraSimulator::new(req.config).with_engine_core(EngineCore::Arena);
    let start = Instant::now();
    let report = sim.run(&fresh_req).expect("from-scratch run");
    (report, start.elapsed().as_secs_f64() * 1e3)
}

struct StreamOutcome {
    /// Serialized final report (the cross-thread identity key).
    final_json: String,
    /// Digest chain head after the stream.
    final_digest: String,
    /// Summed per-delta apply time, ms.
    incremental_ms: f64,
    /// Summed per-delta from-scratch time, ms.
    scratch_ms: f64,
}

/// Opens a session on `req`, applies `deltas` sliding-window edits of
/// `churn` edges each, and checks every contract the bench gates.
fn run_stream(req: &SimRequest, deltas: usize, window_len: u32, churn: usize) -> StreamOutcome {
    let sim = AuroraSimulator::new(req.config).with_engine_core(EngineCore::Arena);
    let mut session = sim.open_session(req).expect("session opens");
    // the open replays the one-shot run exactly
    let (fresh0, _) = from_scratch(req, session.graph());
    assert_eq!(
        report_json(session.last_report()),
        report_json(&fresh0),
        "open must match a one-shot run of the base request"
    );

    let n = session.graph().num_vertices() as u32;
    let mut rng = Rng::new(0x5eed ^ req.digest().len() as u64 ^ (churn as u64) << 7);
    let mut recorded: Vec<GraphDelta> = Vec::new();
    let mut expect_digest = session.digest().to_string();
    let mut incremental_ms = 0.0;
    let mut scratch_ms = 0.0;

    for step in 0..deltas {
        // stride the window across the whole vertex range so successive
        // deltas exercise different tiles (R-MAT packs its hubs into the
        // low ids; re-hitting only tile 0 would measure the single most
        // expensive tile rather than typical streaming churn)
        let stride = (n / deltas.max(1) as u32).max(window_len);
        let start = (step as u32 * stride) % n.saturating_sub(window_len).max(1);
        let delta = window_delta(
            session.graph(),
            start..(start + window_len).min(n),
            churn,
            &mut rng,
        );
        assert!(
            !delta.is_empty(),
            "window {start} produced an empty delta; widen the window"
        );
        let t = Instant::now();
        let outcome = session.apply(&delta).expect("delta applies");
        incremental_ms += t.elapsed().as_secs_f64() * 1e3;
        assert!(!outcome.cached);
        expect_digest = chain_digest(&expect_digest, &delta);
        assert_eq!(outcome.digest, expect_digest, "digest chain drifted");

        let (fresh, fresh_ms) = from_scratch(req, session.graph());
        scratch_ms += fresh_ms;
        assert_eq!(
            report_json(session.last_report()),
            report_json(&fresh),
            "incremental report diverged from from-scratch at delta {step}"
        );
        recorded.push(delta);
    }

    // error identity: an invalid delta fails with exactly the typed
    // error the pure apply produces, and the session stays usable
    let bad = GraphDelta {
        remove_edges: vec![(0, n + 17)],
        ..GraphDelta::default()
    };
    let direct = bad.apply(session.graph()).expect_err("bad delta rejected");
    let through_session = session.apply(&bad).expect_err("session rejects too");
    assert_eq!(
        direct.to_string(),
        through_session.to_string(),
        "session error must be identical to the pure apply error"
    );
    assert_eq!(session.digest(), expect_digest, "failed apply advanced");
    let (fresh_after, _) = from_scratch(req, session.graph());
    assert_eq!(
        report_json(session.last_report()),
        report_json(&fresh_after),
        "session diverged after a failed apply"
    );

    // empty delta: a replay, not a run
    let runs = session.runs();
    let noop = session
        .apply(&GraphDelta::default())
        .expect("no-op applies");
    assert!(noop.cached, "empty delta must be served from the session");
    assert_eq!(noop.digest, expect_digest);
    assert_eq!(session.runs(), runs, "no-op must not run the engine");

    // burst replay: a second session over the recorded stream lands on
    // the same digests and the same final report
    let mut replay = sim.open_session(req).expect("replay session opens");
    for (i, delta) in recorded.iter().enumerate() {
        let out = replay.apply(delta).expect("replay applies");
        assert!(!out.cached, "replay delta {i} unexpectedly cached");
    }
    assert_eq!(replay.digest(), session.digest(), "replay digest diverged");
    assert_eq!(
        report_json(replay.last_report()),
        report_json(session.last_report()),
        "replay final report diverged"
    );

    StreamOutcome {
        final_json: report_json(session.last_report()),
        final_digest: expect_digest,
        incremental_ms,
        scratch_ms,
    }
}

fn main() {
    let mut quick = false;
    let mut gate = 5.0f64;
    let mut deltas = 0usize; // 0 = per-mode default
    let mut args = Args::from_env();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--gate" => gate = args.parse("--gate"),
            "--deltas" => deltas = args.parse("--deltas"),
            other => fail(&format!("unknown flag {other}")),
        }
    }

    // Identity matrix: every radix × NoC mode × thread count must be
    // indistinguishable from one-shot runs, and identical across thread
    // counts.
    let (n, m, steps) = if quick {
        (2_048, 16_000, if deltas > 0 { deltas } else { 2 })
    } else {
        (4_096, 40_000, if deltas > 0 { deltas } else { 3 })
    };
    let window_len = 128u32;
    let churn = (m / 200).max(8); // ≤ 1% of edges counting inserts + removes

    let mut t = Table::new(format!(
        "delta_bench identity matrix — rmat-{n} ({m} edges), {steps} deltas of ≤{churn}+{churn} edges"
    ))
    .columns(&["config", "threads", "incr ms", "scratch ms", "speedup"]);

    for k in [4usize, 8] {
        for flexible in [true, false] {
            let mut cfg = AcceleratorConfig::small(k);
            cfg.flexible_noc = flexible;
            let req = base_request(cfg, n, m, 128, 11);
            let mode = if flexible { "bypass" } else { "mesh" };
            let mut golden: Option<(String, String)> = None;
            for threads in [1usize, 2, 4] {
                let outcome =
                    ThreadPool::new(threads).install(|| run_stream(&req, steps, window_len, churn));
                match &golden {
                    None => {
                        golden = Some((outcome.final_json.clone(), outcome.final_digest.clone()))
                    }
                    Some((json, digest)) => {
                        assert_eq!(
                            &outcome.final_json, json,
                            "k={k} {mode}: report differs at {threads} threads"
                        );
                        assert_eq!(
                            &outcome.final_digest, digest,
                            "k={k} {mode}: digest differs at {threads} threads"
                        );
                    }
                }
                t.row(vec![
                    Cell::Str(format!("k={k} {mode}")),
                    Cell::UInt(threads as u64),
                    Cell::float(outcome.incremental_ms, 1),
                    Cell::float(outcome.scratch_ms, 1),
                    Cell::ratio(outcome.scratch_ms / outcome.incremental_ms.max(1e-9), 1),
                ]);
            }
        }
    }
    t.note("every row bit-identical to from-scratch runs; burst replay + error identity + no-op checked per row");
    t.print();

    // Wall-clock gate (full mode): rmat-16k, ≤1 % churn per delta.
    if quick {
        println!(
            "delta_bench --quick: identity gates passed; speedup gate skipped (full mode only)"
        );
        return;
    }
    let (n, m) = (16_384usize, 160_000usize);
    // 8 windows stride the full vertex range: the stream visits the
    // expensive hub tile (R-MAT packs hubs into the low ids) once and
    // spends the rest on ordinary tiles, the steady-state mix of a
    // sliding-window stream
    let steps = if deltas > 0 { deltas } else { 8 };
    let churn = m / 800; // inserts + removes ≤ 0.25% of edges, well under 1%
    let req = base_request(AcceleratorConfig::small(8), n, m, 256, 9);
    // best-of-3: wall-clock on shared CI hosts is noisy in one direction
    // only, so the minimum of repeated runs is the standard estimator of
    // the true cost; every repetition still checks all the identity
    // contracts
    let (mut incr_ms, mut scratch_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        let outcome = run_stream(&req, steps, 128, churn);
        incr_ms = incr_ms.min(outcome.incremental_ms);
        scratch_ms = scratch_ms.min(outcome.scratch_ms);
    }
    let speedup = scratch_ms / incr_ms.max(1e-9);
    let mut g = Table::new(format!(
        "delta_bench speedup gate — rmat-16k, {steps} deltas of ≤{churn}+{churn} edges (≤1% churn)"
    ))
    .columns(&["incr ms", "scratch ms", "speedup", "gate"]);
    g.row(vec![
        Cell::float(incr_ms, 1),
        Cell::float(scratch_ms, 1),
        Cell::ratio(speedup, 2),
        Cell::ratio(gate, 2),
    ]);
    g.print();
    assert!(
        speedup >= gate,
        "incremental re-simulation speedup {speedup:.2}x below the {gate:.2}x gate"
    );
    println!("delta_bench: all gates passed");
}
