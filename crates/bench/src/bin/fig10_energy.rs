//! Fig. 10 — normalized total energy (control + compute + DRAM + buffers
//! + interconnect) per dataset.
//!
//! Paper-reported average energy reductions: HyGCN 89 %, AWB-GCN 77 %,
//! GCNAX 42 %, ReGNN 69 %, FlowGNN 71 %; Aurora's reconfiguration energy
//! stays below 3 % of its total.

use aurora_bench::protocol::shapes_for;
use aurora_bench::{print_normalized, run_inline, run_standard, Cell, EvalProtocol, Table};
use aurora_core::{AcceleratorConfig, AuroraSimulator};
use aurora_model::ModelId;

fn main() {
    let sweep = run_standard(&EvalProtocol::standard());
    print_normalized("Fig. 10: energy consumption", &sweep, |c| c.energy_joules);

    // the reconfiguration-energy claim (§VI-E)
    let mut reconf = Table::new("Aurora reconfiguration-energy fraction per dataset")
        .columns(&["dataset", "fraction", "claim"]);
    for p in EvalProtocol::standard() {
        let spec = p.spec();
        let g = spec.synthesize();
        let r = run_inline(
            &AuroraSimulator::new(AcceleratorConfig::default()),
            &g,
            ModelId::Gcn,
            &shapes_for(&spec, p.hidden),
            p.dataset.name(),
            1.0,
        );
        let f = r.energy.reconfiguration_fraction();
        reconf.row(vec![
            p.dataset.name().into(),
            Cell::percent(f * 100.0, 3),
            if f < 0.03 { "< 3% ✓" } else { "EXCEEDS 3%" }.into(),
        ]);
    }
    reconf.print();
    reconf.write_json("results/fig10_reconf.json");
    aurora_bench::table::dump_json("results/fig10_energy.json", &sweep);
}
