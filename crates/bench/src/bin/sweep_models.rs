//! Model-diversity sweep — the Table I versatility story quantified: every
//! zoo model on Aurora, with the baselines that *can* run it alongside.
//! Prior accelerators either reject the model outright or pay their fixed
//! engines' imbalance; Aurora repartitions per model.

use aurora_baselines::{BaselineKind, BaselineParams};
use aurora_core::{AcceleratorConfig, AuroraSimulator};
use aurora_graph::Dataset;
use aurora_model::{LayerShape, ModelId};

fn main() {
    let spec = Dataset::Citeseer.spec();
    let g = spec.synthesize();
    let shapes = [LayerShape::new(spec.feature_dim, spec.feature_dim)];
    println!(
        "dataset: Citeseer ({} vertices, {} edges), single {}-wide layer\n",
        g.num_vertices(),
        g.num_edges(),
        spec.feature_dim
    );
    print!("{:<20}{:>12}{:>10}", "model", "Aurora cyc", "A/B");
    for b in BaselineKind::ALL {
        print!("{:>12}", b.name());
    }
    println!();

    let p = BaselineParams::default();
    for id in ModelId::ALL {
        let aurora = AuroraSimulator::new(AcceleratorConfig::default()).simulate_with_density(
            &g,
            id,
            &shapes,
            "Citeseer",
            spec.feature_density,
        );
        let l0 = &aurora.layers[0];
        print!(
            "{:<20}{:>12}{:>5}/{:<4}",
            id.name(),
            aurora.total_cycles,
            l0.partition.a,
            l0.partition.b
        );
        for b in BaselineKind::ALL {
            let chassis = b.build(p);
            if chassis.supports(id) {
                let r = chassis.simulate(&g, id, &shapes, "Citeseer");
                print!("{:>11.2}x", r.total_cycles as f64 / aurora.total_cycles as f64);
            } else {
                print!("{:>12}", "—");
            }
        }
        println!();
    }
    println!(
        "\n'—' = unsupported model (Table I); ratios are baseline/Aurora\n\
         execution time on the models both can run."
    );
}
