//! Model-diversity sweep — the Table I versatility story quantified: every
//! zoo model on Aurora, with the baselines that *can* run it alongside.
//! Prior accelerators either reject the model outright or pay their fixed
//! engines' imbalance; Aurora repartitions per model.

use aurora_baselines::{BaselineKind, BaselineParams};
use aurora_bench::{run_inline, Cell, Table};
use aurora_core::{AcceleratorConfig, AuroraSimulator};
use aurora_graph::Dataset;
use aurora_model::{LayerShape, ModelId};

fn main() {
    let spec = Dataset::Citeseer.spec();
    let g = spec.synthesize();
    let shapes = [LayerShape::new(spec.feature_dim, spec.feature_dim)];
    println!(
        "dataset: Citeseer ({} vertices, {} edges), single {}-wide layer\n",
        g.num_vertices(),
        g.num_edges(),
        spec.feature_dim
    );

    let mut headers = vec!["model", "Aurora cyc", "A/B"];
    headers.extend(BaselineKind::ALL.iter().map(|b| b.name()));
    let mut table = Table::new("model-diversity sweep").columns(&headers);

    let p = BaselineParams::default();
    for id in ModelId::ALL {
        let aurora = run_inline(
            &AuroraSimulator::new(AcceleratorConfig::default()),
            &g,
            id,
            &shapes,
            "Citeseer",
            spec.feature_density,
        );
        let l0 = &aurora.layers[0];
        let mut row: Vec<Cell> = vec![
            id.name().into(),
            aurora.total_cycles.into(),
            format!("{}/{}", l0.partition.a, l0.partition.b).into(),
        ];
        for b in BaselineKind::ALL {
            let chassis = b.build(p);
            if chassis.supports(id) {
                let r = chassis.simulate(&g, id, &shapes, "Citeseer");
                row.push(Cell::ratio(
                    r.total_cycles as f64 / aurora.total_cycles as f64,
                    2,
                ));
            } else {
                row.push(Cell::Missing);
            }
        }
        table.row(row);
    }
    table.note(
        "'—' = unsupported model (Table I); ratios are baseline/Aurora \
         execution time on the models both can run.",
    );
    table.print();
    table.write_json("results/sweep_models.json");
}
