//! Table II — required operations per execution phase per model,
//! regenerated from the model specs (plus the op counts a concrete layer
//! implies, which feed Algorithm 2).

use aurora_model::{LayerShape, ModelId, Phase, Workload};

fn main() {
    println!("=== Table II: required operations per phase ===");
    println!(
        "{:<20}{:<12}{:<34}{:<14}{:<30}",
        "Model", "Category", "Edge Update", "Aggregation", "Vertex Update"
    );
    for id in ModelId::ALL {
        let s = id.spec();
        let fmt = |p: Phase| -> String {
            let ops = s.phase(p).op_kinds();
            if ops.is_empty() {
                "Null".to_string()
            } else {
                ops.iter()
                    .map(|o| o.notation())
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        };
        println!(
            "{:<20}{:<12}{:<34}{:<14}{:<30}",
            s.name(),
            s.category.name(),
            fmt(Phase::EdgeUpdate),
            fmt(Phase::Aggregation),
            fmt(Phase::VertexUpdate)
        );
    }

    // concrete op counts for a reference layer (n = 10k, m = 50k, 128→64)
    println!("\nconcrete op counts (n=10000, m=50000, 128→64):");
    println!(
        "{:<20}{:>16}{:>16}{:>16}{:>8}",
        "Model", "O_ue", "O_a", "O_uv", "E_f"
    );
    for id in ModelId::ALL {
        let c = Workload::from_sizes(id, 10_000, 50_000, LayerShape::new(128, 64)).op_counts();
        println!(
            "{:<20}{:>16}{:>16}{:>16}{:>8}",
            id.name(),
            c.edge_update,
            c.aggregation,
            c.vertex_update,
            c.edge_feature_dim
        );
    }
}
