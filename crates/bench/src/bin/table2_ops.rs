//! Table II — required operations per execution phase per model,
//! regenerated from the model specs (plus the op counts a concrete layer
//! implies, which feed Algorithm 2).

use aurora_bench::{Cell, Table};
use aurora_model::{LayerShape, ModelId, Phase, Workload};

fn main() {
    let mut table = Table::new("Table II: required operations per phase").columns(&[
        "Model",
        "Category",
        "Edge Update",
        "Aggregation",
        "Vertex Update",
    ]);
    for id in ModelId::ALL {
        let s = id.spec();
        let fmt = |p: Phase| -> String {
            let ops = s.phase(p).op_kinds();
            if ops.is_empty() {
                "Null".to_string()
            } else {
                ops.iter()
                    .map(|o| o.notation())
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        };
        table.row(vec![
            s.name().into(),
            s.category.name().into(),
            fmt(Phase::EdgeUpdate).into(),
            fmt(Phase::Aggregation).into(),
            fmt(Phase::VertexUpdate).into(),
        ]);
    }
    table.print();

    // concrete op counts for a reference layer (n = 10k, m = 50k, 128→64)
    println!();
    let mut counts = Table::new("concrete op counts (n=10000, m=50000, 128→64)")
        .columns(&["Model", "O_ue", "O_a", "O_uv", "E_f"]);
    for id in ModelId::ALL {
        let c = Workload::from_sizes(id, 10_000, 50_000, LayerShape::new(128, 64)).op_counts();
        counts.row(vec![
            id.name().into(),
            c.edge_update.into(),
            c.aggregation.into(),
            c.vertex_update.into(),
            Cell::UInt(c.edge_feature_dim as u64),
        ]);
    }
    counts.print();
    table.write_json("results/table2_ops.json");
    counts.write_json("results/table2_op_counts.json");
}
