//! Old-vs-new timing for the aggregation-traffic estimator.
//!
//! ```text
//! noc_kernel_bench [--reps N] [--quick]
//! ```
//!
//! Times the seed's O(E·hops) per-edge route walker (inlined below —
//! the library keeps it only as a `#[cfg(test)]` oracle) against the
//! shipped O(E + k⁴) route-table kernel on R-MAT graphs at the paper's
//! k=8 sub-array radix, and prints the speedup per workload. Every
//! timed pair is also checked for bit-identical estimates, so the bench
//! doubles as an end-to-end equivalence test over full-size graphs.
//!
//! Wall-clock only — simulated cycles are identical by construction.
//! `scripts/check.sh` runs this with `--quick` as an informational
//! step; it never gates.

use aurora_bench::cli::{fail, Args};
use aurora_bench::emit::{Cell, Table};
use aurora_core::noc_model::{aggregation_traffic, OnChipEstimate, DEFAULT_LINK_UTILISATION};
use aurora_graph::generate;
use aurora_mapping::{degree_aware, VertexMapping};
use aurora_noc::routing::{compute_route, next_node};
use aurora_noc::{NocConfig, NocError, Port, TopologyMode};
use std::time::Instant;

/// The seed's estimator: walk every edge's route hop by hop. Kept here
/// verbatim (plus the `finalize` folding it shares with the kernel) so
/// the bench measures the real replaced code path, not a strawman.
fn legacy_aggregation_traffic(
    cfg: &NocConfig,
    mapping: &VertexMapping,
    edges: impl Iterator<Item = (u32, u32)>,
    msg_words: usize,
    link_utilisation: f64,
) -> Result<OnChipEstimate, NocError> {
    let k = cfg.k;
    let flits_per_msg = msg_words.div_ceil(cfg.words_per_flit).max(1) as u64;
    let mut load = vec![0u64; k * k];
    let mut eject = vec![0u64; k * k];
    let mut flit_hops = 0u64;
    let mut bypass_hops = 0u64;
    let mut messages = 0u64;
    let mut total_hops = 0u64;

    for (u, v) in edges {
        if !mapping.range.contains(&u) {
            continue;
        }
        let src = mapping.pe_of(u);
        let dst = if mapping.range.contains(&v) {
            mapping.pe_of(v)
        } else {
            src % k
        };
        messages += 1;
        let mut cur = src;
        let mut guard = 0;
        while cur != dst {
            let port = compute_route(cfg, cur, dst)?;
            load[cur] += flits_per_msg;
            flit_hops += flits_per_msg;
            total_hops += 1;
            if matches!(port, Port::BypassH | Port::BypassV) {
                bypass_hops += flits_per_msg;
            }
            cur = next_node(cfg, cur, port)?.ok_or(NocError::RoutingLivelock { src, dst })?;
            guard += 1;
            if guard > 4 * k * k {
                return Err(NocError::RoutingLivelock { src, dst });
            }
        }
        eject[cur] += flits_per_msg;
    }

    for (node, e) in eject.iter().enumerate() {
        let width =
            1 + (cfg.h_bypass_peer(node).is_some() || cfg.v_bypass_peer(node).is_some()) as u64;
        load[node] += e.div_ceil(width.max(1));
    }

    if messages == 0 {
        return Ok(OnChipEstimate::default());
    }
    let (hot_router, max_router_load) = load
        .iter()
        .copied()
        .enumerate()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(i, l)| (Some(i), l))
        .unwrap_or((None, 0));
    let kk = cfg.k as u64;
    let links = 4 * kk * (kk - 1)
        + 2 * (cfg.row_bypass.len() + cfg.col_bypass.len()) as u64
        + if cfg.mode == TopologyMode::Rings {
            kk
        } else {
            0
        };
    let bandwidth_bound = (flit_hops as f64 / (links as f64 * link_utilisation)).ceil() as u64;
    let avg_hops = total_hops as f64 / messages as f64;
    let cycles = bandwidth_bound.max(max_router_load) + avg_hops.ceil() as u64 + flits_per_msg;
    Ok(OnChipEstimate {
        cycles,
        flit_hops,
        messages,
        avg_hops,
        max_router_load,
        hot_router,
        bypass_hops,
    })
}

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    (best, last.expect("reps >= 1"))
}

fn main() {
    let mut reps = 10usize;
    let mut args = Args::from_env();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reps" => reps = args.parse("--reps"),
            "--quick" => reps = 3,
            other => fail(&format!("unknown flag {other}")),
        }
    }
    let reps = reps.max(1);

    let k = 8usize;
    let msg_words = 16;
    let cfg = NocConfig::mesh(k);
    let graphs = [
        (
            "rmat-4k",
            generate::rmat(4_096, 40_000, Default::default(), 7),
        ),
        (
            "rmat-16k",
            generate::rmat(16_384, 160_000, Default::default(), 9),
        ),
    ];

    let mut t = Table::new(format!(
        "noc_kernel_bench — k={k}, {msg_words}-word messages, best of {reps}"
    ))
    .columns(&["workload", "edges", "walker ms", "kernel ms", "speedup"]);

    for (name, g) in &graphs {
        // One tile spanning the whole graph: worst case for the walker
        // (every edge routed), steady state for the kernel.
        let n = g.num_vertices();
        let c_pe = n.div_ceil(k * k);
        let mapping = degree_aware::map(0..n as u32, &g.degrees(), k, c_pe);

        let (walker_ms, walker) = time_ms(reps, || {
            legacy_aggregation_traffic(
                &cfg,
                &mapping,
                g.edges(),
                msg_words,
                DEFAULT_LINK_UTILISATION,
            )
            .expect("mesh routes every pair")
        });
        let (kernel_ms, kernel) = time_ms(reps, || {
            aggregation_traffic(
                &cfg,
                &mapping,
                g.edges(),
                msg_words,
                DEFAULT_LINK_UTILISATION,
            )
            .expect("mesh routes every pair")
        });
        assert_eq!(kernel, walker, "{name}: kernel must match the walker");

        t.row(vec![
            Cell::Str((*name).to_string()),
            Cell::UInt(g.num_edges() as u64),
            Cell::float(walker_ms, 2),
            Cell::float(kernel_ms, 2),
            Cell::ratio(walker_ms / kernel_ms, 1),
        ]);
    }
    t.note("estimates asserted bit-identical; wall-clock only, cycles unchanged by construction");
    t.print();
}
