//! Performance-regression harness.
//!
//! ```text
//! perf_regress [--name NAME] [--k N]
//!              [--check --baseline BENCH_seed.json [--tolerance PCT]]
//!              [--record] [--history BENCH_history.jsonl]
//!              [--wall-gate RATIO]
//! ```
//!
//! Runs a pinned workload matrix — a two-layer GCN, GraphSAGE (mean)
//! and GIN on fixed-seed synthetic R-MAT graphs — and writes
//! `BENCH_<NAME>.json` at the invocation directory (the repo root when
//! run through `scripts/check.sh`). Each entry records the simulated
//! cycle count, the bound-attribution fractions and the dominant bound
//! from the profiler, plus host wall-time for context.
//!
//! The generators are deterministic, so simulated cycles are exact: any
//! drift is a code change, not noise. Under `--check` the run exits
//! non-zero when any workload's cycles regress more than `--tolerance`
//! percent (default 5) over the baseline file — wall-time is recorded
//! but never gated by default, since it tracks the host machine. Each
//! row also shows its wall-time ratio against the baseline host run,
//! and under `--check` any workload running slower than 2x baseline
//! wall time is called out informationally.
//!
//! `--record` appends one NDJSON row per workload — cycles, wall-ms,
//! allocation count, dominant bound, git revision, timestamp — to the
//! perf-history ledger (`--history`, default `BENCH_history.jsonl`).
//! Recording runs the matrix serially with the span profiler and the
//! counting allocator on, so each row's allocation count is that
//! workload's alone; simulated cycles are unaffected (the determinism
//! suite pins this). Each row also carries `allocs_steady`: the
//! allocations a second, warmed run attributes to the steady-state
//! stages (tile precompute + mapping + engine walk). The arena-backed
//! engine keeps this near zero, so the column is a churn regression
//! signal independent of first-run warm-up cost.
//!
//! `--wall-gate RATIO` (opt-in, needs `--baseline`) turns wall-clock
//! drift into an exit code: a workload fails when its wall time
//! exceeds `RATIO` × the baseline wall *and* the regression is
//! sustained — the majority of its last three ledger rows also exceed
//! the gate (a single noisy run never fails; with fewer than two prior
//! rows the current run decides alone). Wall-gate failures exit 3,
//! distinct from cycle regressions (exit 1), so callers can treat them
//! as advisory — `scripts/check.sh` does.
//!
//! Regenerate the committed baseline after an intentional model change:
//! `cargo run --release -p aurora-bench --bin perf_regress -- --name seed`

use aurora_bench::cli::{fail, Args};
use aurora_bench::emit::{dump_json, Cell, Table};
use aurora_bench::history::{self, HistoryRow};
use aurora_bench::run_inline;
use aurora_core::{AcceleratorConfig, AuroraSimulator, Bound};
use aurora_graph::generate;
use aurora_model::{LayerShape, ModelId};
use aurora_telemetry::{span, Stage};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One pinned workload's measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WorkloadResult {
    /// Stable key, e.g. `gcn/rmat-4k`.
    workload: String,
    /// Simulated cycles (deterministic; the gated metric).
    cycles: u64,
    /// Bound-attribution fractions of the run's tile slots.
    compute_frac: f64,
    noc_frac: f64,
    dram_frac: f64,
    imbalance_frac: f64,
    /// The run's dominant bound label.
    dominant: String,
    /// Host wall-time of the simulation (context only, never gated).
    wall_ms: f64,
}

/// The `BENCH_<name>.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchRecord {
    name: String,
    /// PE-array radix of the pinned matrix.
    k: usize,
    results: Vec<WorkloadResult>,
}

/// The pinned matrix: deterministic graphs × two-layer models. Returns
/// each workload's result plus its attributed allocation count and the
/// steady-state allocation count of a warmed second run (both 0 unless
/// `profiled`).
fn matrix(k: usize, profiled: bool) -> Vec<(WorkloadResult, u64, u64)> {
    let graphs = [
        (
            "rmat-1k",
            generate::rmat(1_024, 8_000, Default::default(), 3),
        ),
        (
            "rmat-4k",
            generate::rmat(4_096, 40_000, Default::default(), 7),
        ),
    ];
    let models = [
        ("gcn", ModelId::Gcn),
        ("sage-mean", ModelId::SageMean),
        ("gin", ModelId::Gin),
    ];
    let shapes = [LayerShape::new(64, 32), LayerShape::new(32, 16)];
    let cfg = AcceleratorConfig::small(k);

    let run = |(gname, g, mname, model): (&str, &aurora_graph::Csr, &str, ModelId)| {
        let start = Instant::now();
        let r = run_inline(&AuroraSimulator::new(cfg), g, model, &shapes, gname, 1.0);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let allocs = r
            .host_profile
            .as_ref()
            .map(|hp| hp.stages.iter().map(|s| s.alloc_count).sum())
            .unwrap_or(0);
        // Second, warmed run: the first run sized this thread's engine
        // arena, so allocations the span profiler now attributes to the
        // steady-state stages measure genuine per-tile churn rather than
        // warm-up growth. Only meaningful (and only paid for) under
        // `--record`, where the matrix runs serially with profiling on.
        let allocs_steady = if profiled {
            let mark = span::mark();
            let steady_start = Instant::now();
            let _ = run_inline(&AuroraSimulator::new(cfg), g, model, &shapes, gname, 1.0);
            let hp = span::collect(&mark, steady_start.elapsed());
            [Stage::TilePrecompute, Stage::Mapping, Stage::EngineWalk]
                .iter()
                .filter_map(|s| hp.stage(*s))
                .map(|h| h.alloc_count)
                .sum()
        } else {
            0
        };
        let p = &r.profile;
        (
            WorkloadResult {
                workload: format!("{mname}/{gname}"),
                cycles: r.total_cycles,
                compute_frac: p.mix.fraction(Bound::Compute),
                noc_frac: p.mix.fraction(Bound::Noc),
                dram_frac: p.mix.fraction(Bound::Dram),
                imbalance_frac: p.mix.fraction(Bound::Imbalance),
                dominant: p.dominant().label().to_string(),
                wall_ms,
            },
            allocs,
            allocs_steady,
        )
    };

    let combos: Vec<(&str, &aurora_graph::Csr, &str, ModelId)> = graphs
        .iter()
        .flat_map(|(gname, g)| models.iter().map(move |(mname, m)| (*gname, g, *mname, *m)))
        .collect();
    if profiled {
        // The span profiler and the counting allocator accumulate in
        // process-global state keyed only by the active stage, so
        // concurrent simulations would attribute into each other's
        // windows. Recording runs the matrix serially; the workloads are
        // deterministic, so the recorded cycles are identical either way.
        combos.into_iter().map(run).collect()
    } else {
        // The six (graph, model) workloads are independent simulations,
        // so they fan out over the worker pool (`AURORA_THREADS`). The
        // ordered collect keeps the result vector in the sequential
        // graphs-outer / models-inner order, and each simulation is
        // itself deterministic, so the recorded cycles are identical at
        // every thread count; wall-time is measured per workload inside
        // its task and stays informational.
        combos.into_par_iter().map(run).collect()
    }
}

/// `git rev-parse --short HEAD` of the working tree, or `unknown`.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn main() {
    let mut name = "run".to_string();
    let mut k = 8usize;
    let mut check = false;
    let mut record = false;
    let mut history_path = "BENCH_history.jsonl".to_string();
    let mut baseline_path: Option<String> = None;
    let mut tolerance = 5.0f64;
    let mut wall_gate: Option<f64> = None;

    let mut args = Args::from_env();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--name" => name = args.value("--name"),
            "--k" => k = args.parse("--k"),
            "--baseline" => baseline_path = Some(args.value("--baseline")),
            "--tolerance" => tolerance = args.parse("--tolerance"),
            "--check" => check = true,
            "--record" => record = true,
            "--history" => history_path = args.value("--history"),
            "--wall-gate" => wall_gate = Some(args.parse("--wall-gate")),
            other => fail(&format!("unknown flag {other}")),
        }
    }
    if check && baseline_path.is_none() {
        fail("--check needs --baseline <file>");
    }
    if let Some(gate) = wall_gate {
        if gate <= 1.0 {
            fail("--wall-gate must be > 1.0 (a ratio over the baseline wall time)");
        }
        if baseline_path.is_none() {
            fail("--wall-gate needs --baseline <file>");
        }
    }
    if record {
        // Attribute wall time and allocations per stage; cycles are
        // unaffected (`SimReport` stays byte-identical — pinned by the
        // determinism tests).
        aurora_core::host_init();
        aurora_core::span::set_span_profiling(true);
        aurora_telemetry::alloc::set_alloc_profiling(true);
    }

    // Prior ledger rows, for the sustained-drift filter of the wall
    // gate; read before this run appends its own.
    let prior_history: Vec<HistoryRow> = if std::path::Path::new(&history_path).exists() {
        history::load(&history_path).unwrap_or_else(|e| fail(&e))
    } else {
        Vec::new()
    };

    let measured = matrix(k, record);
    let record_doc = BenchRecord {
        name: name.clone(),
        k,
        results: measured.iter().map(|(r, _, _)| r.clone()).collect(),
    };

    let baseline: Option<BenchRecord> = baseline_path.as_ref().map(|p| {
        let body = std::fs::read_to_string(p).unwrap_or_else(|e| fail(&format!("read {p}: {e}")));
        serde_json::from_str(&body).unwrap_or_else(|e| fail(&format!("parse {p}: {e}")))
    });

    let mut t = Table::new(format!("perf_regress — k={k}, tolerance {tolerance}%")).columns(&[
        "workload", "cycles", "baseline", "delta", "dominant", "wall ms", "wall Δ",
    ]);
    let mut regressions = Vec::new();
    let mut wall_regressions = Vec::new();
    let mut wall_gate_failures = Vec::new();
    for (r, _, _) in &measured {
        let base = baseline
            .as_ref()
            .and_then(|b| b.results.iter().find(|x| x.workload == r.workload));
        let (base_cell, delta_cell, wall_cell) = match base {
            Some(b) => {
                let delta = 100.0 * (r.cycles as f64 - b.cycles as f64) / b.cycles as f64;
                if delta > tolerance {
                    regressions.push(format!(
                        "{}: {} -> {} cycles (+{delta:.2}% > {tolerance}%)",
                        r.workload, b.cycles, r.cycles
                    ));
                }
                // Wall-time ratio vs the baseline host run. Informational
                // only: the host machine and its load differ between runs,
                // so this never gates — but a >2x slowdown is worth a look.
                let wall_ratio = if b.wall_ms > 0.0 {
                    r.wall_ms / b.wall_ms
                } else {
                    1.0
                };
                if wall_ratio > 2.0 {
                    wall_regressions.push(format!(
                        "{}: {:.1} ms -> {:.1} ms ({wall_ratio:.2}x baseline wall time)",
                        r.workload, b.wall_ms, r.wall_ms
                    ));
                }
                if let Some(gate) = wall_gate {
                    if b.wall_ms > 0.0 && wall_ratio > gate {
                        // Sustained? The majority of the last three
                        // ledger rows for this workload must also exceed
                        // the gate; with fewer than two prior rows the
                        // current run decides alone.
                        let prior: Vec<f64> = prior_history
                            .iter()
                            .filter(|h| h.workload == r.workload)
                            .map(|h| h.wall_ms)
                            .collect();
                        let tail = &prior[prior.len().saturating_sub(3)..];
                        let sustained = tail.len() < 2
                            || tail.iter().filter(|w| **w > gate * b.wall_ms).count() * 2
                                >= tail.len();
                        if sustained {
                            wall_gate_failures.push(format!(
                                "{}: {:.1} ms vs baseline {:.1} ms \
                                 ({wall_ratio:.2}x > gate {gate}x, sustained over the ledger)",
                                r.workload, r.wall_ms, b.wall_ms
                            ));
                        } else {
                            println!(
                                "wall-gate: {} at {wall_ratio:.2}x is over the {gate}x gate but \
                                 not sustained in {history_path}; not failing",
                                r.workload
                            );
                        }
                    }
                }
                (
                    Cell::UInt(b.cycles),
                    Cell::percent(delta, 2),
                    Cell::ratio(wall_ratio, 2),
                )
            }
            None => (Cell::Missing, Cell::Missing, Cell::Missing),
        };
        t.row(vec![
            r.workload.clone().into(),
            r.cycles.into(),
            base_cell,
            delta_cell,
            r.dominant.clone().into(),
            Cell::float(r.wall_ms, 1),
            wall_cell,
        ]);
    }
    if let (Some(b), true) = (&baseline, check) {
        for missing in b
            .results
            .iter()
            .filter(|x| !record_doc.results.iter().any(|r| r.workload == x.workload))
        {
            regressions.push(format!("{}: missing from this run", missing.workload));
        }
    }
    t.note("cycles are deterministic (fixed-seed generators); wall-time is informational");
    t.print();

    let out = format!("BENCH_{name}.json");
    dump_json(&out, &record_doc);

    if record {
        let ts = unix_now();
        let rev = git_rev();
        let rows: Vec<HistoryRow> = measured
            .iter()
            .map(|(r, allocs, allocs_steady)| HistoryRow {
                ts,
                git_rev: rev.clone(),
                name: name.clone(),
                k: k as u64,
                workload: r.workload.clone(),
                cycles: r.cycles,
                wall_ms: r.wall_ms,
                allocs: *allocs,
                allocs_steady: *allocs_steady,
                dominant: r.dominant.clone(),
            })
            .collect();
        history::append(&history_path, &rows)
            .unwrap_or_else(|e| fail(&format!("append {history_path}: {e}")));
        println!(
            "history: {} rows appended to {history_path} (rev {rev}, ts {ts})",
            rows.len()
        );
    }

    if check {
        if !wall_regressions.is_empty() {
            println!("wall-time note (informational, never gated):");
            for w in &wall_regressions {
                println!("  {w}");
            }
        }
        if regressions.is_empty() {
            println!("perf check passed: no workload regressed more than {tolerance}%");
        } else {
            eprintln!("perf check FAILED:");
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
    }
    if !wall_gate_failures.is_empty() {
        eprintln!("wall-clock gate FAILED:");
        for w in &wall_gate_failures {
            eprintln!("  {w}");
        }
        std::process::exit(3);
    }
}
