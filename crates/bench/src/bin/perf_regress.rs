//! Performance-regression harness.
//!
//! ```text
//! perf_regress [--name NAME] [--k N]
//!              [--check --baseline BENCH_seed.json [--tolerance PCT]]
//! ```
//!
//! Runs a pinned workload matrix — a two-layer GCN, GraphSAGE (mean)
//! and GIN on fixed-seed synthetic R-MAT graphs — and writes
//! `BENCH_<NAME>.json` at the invocation directory (the repo root when
//! run through `scripts/check.sh`). Each entry records the simulated
//! cycle count, the bound-attribution fractions and the dominant bound
//! from the profiler, plus host wall-time for context.
//!
//! The generators are deterministic, so simulated cycles are exact: any
//! drift is a code change, not noise. Under `--check` the run exits
//! non-zero when any workload's cycles regress more than `--tolerance`
//! percent (default 5) over the baseline file — wall-time is recorded
//! but never gated, since it tracks the host machine. Each row also
//! shows its wall-time ratio against the baseline host run, and under
//! `--check` any workload running slower than 2x baseline wall time is
//! called out informationally (printed, never an exit-code failure).
//!
//! Regenerate the committed baseline after an intentional model change:
//! `cargo run --release -p aurora-bench --bin perf_regress -- --name seed`

use aurora_bench::cli::{fail, Args};
use aurora_bench::emit::{dump_json, Cell, Table};
use aurora_core::{AcceleratorConfig, AuroraSimulator, Bound};
use aurora_graph::generate;
use aurora_model::{LayerShape, ModelId};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One pinned workload's measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WorkloadResult {
    /// Stable key, e.g. `gcn/rmat-4k`.
    workload: String,
    /// Simulated cycles (deterministic; the gated metric).
    cycles: u64,
    /// Bound-attribution fractions of the run's tile slots.
    compute_frac: f64,
    noc_frac: f64,
    dram_frac: f64,
    imbalance_frac: f64,
    /// The run's dominant bound label.
    dominant: String,
    /// Host wall-time of the simulation (context only, never gated).
    wall_ms: f64,
}

/// The `BENCH_<name>.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchRecord {
    name: String,
    /// PE-array radix of the pinned matrix.
    k: usize,
    results: Vec<WorkloadResult>,
}

/// The pinned matrix: deterministic graphs × two-layer models.
fn matrix(k: usize) -> Vec<WorkloadResult> {
    let graphs = [
        (
            "rmat-1k",
            generate::rmat(1_024, 8_000, Default::default(), 3),
        ),
        (
            "rmat-4k",
            generate::rmat(4_096, 40_000, Default::default(), 7),
        ),
    ];
    let models = [
        ("gcn", ModelId::Gcn),
        ("sage-mean", ModelId::SageMean),
        ("gin", ModelId::Gin),
    ];
    let shapes = [LayerShape::new(64, 32), LayerShape::new(32, 16)];
    let cfg = AcceleratorConfig::small(k);

    // The six (graph, model) workloads are independent simulations, so
    // they fan out over the worker pool (`AURORA_THREADS`). The ordered
    // collect keeps the result vector in the sequential graphs-outer /
    // models-inner order, and each simulation is itself deterministic, so
    // the recorded cycles are identical at every thread count; wall-time
    // is measured per workload inside its task and stays informational.
    let combos: Vec<(&str, &aurora_graph::Csr, &str, ModelId)> = graphs
        .iter()
        .flat_map(|(gname, g)| models.iter().map(move |(mname, m)| (*gname, g, *mname, *m)))
        .collect();
    combos
        .into_par_iter()
        .map(|(gname, g, mname, model)| {
            let start = Instant::now();
            let r = AuroraSimulator::new(cfg).simulate(g, model, &shapes, gname);
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            let p = &r.profile;
            WorkloadResult {
                workload: format!("{mname}/{gname}"),
                cycles: r.total_cycles,
                compute_frac: p.mix.fraction(Bound::Compute),
                noc_frac: p.mix.fraction(Bound::Noc),
                dram_frac: p.mix.fraction(Bound::Dram),
                imbalance_frac: p.mix.fraction(Bound::Imbalance),
                dominant: p.dominant().label().to_string(),
                wall_ms,
            }
        })
        .collect()
}

fn main() {
    let mut name = "run".to_string();
    let mut k = 8usize;
    let mut check = false;
    let mut baseline_path: Option<String> = None;
    let mut tolerance = 5.0f64;

    let mut args = Args::from_env();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--name" => name = args.value("--name"),
            "--k" => k = args.parse("--k"),
            "--baseline" => baseline_path = Some(args.value("--baseline")),
            "--tolerance" => tolerance = args.parse("--tolerance"),
            "--check" => check = true,
            other => fail(&format!("unknown flag {other}")),
        }
    }
    if check && baseline_path.is_none() {
        fail("--check needs --baseline <file>");
    }

    let record = BenchRecord {
        name: name.clone(),
        k,
        results: matrix(k),
    };

    let baseline: Option<BenchRecord> = baseline_path.as_ref().map(|p| {
        let body = std::fs::read_to_string(p).unwrap_or_else(|e| fail(&format!("read {p}: {e}")));
        serde_json::from_str(&body).unwrap_or_else(|e| fail(&format!("parse {p}: {e}")))
    });

    let mut t = Table::new(format!("perf_regress — k={k}, tolerance {tolerance}%")).columns(&[
        "workload", "cycles", "baseline", "delta", "dominant", "wall ms", "wall Δ",
    ]);
    let mut regressions = Vec::new();
    let mut wall_regressions = Vec::new();
    for r in &record.results {
        let base = baseline
            .as_ref()
            .and_then(|b| b.results.iter().find(|x| x.workload == r.workload));
        let (base_cell, delta_cell, wall_cell) = match base {
            Some(b) => {
                let delta = 100.0 * (r.cycles as f64 - b.cycles as f64) / b.cycles as f64;
                if delta > tolerance {
                    regressions.push(format!(
                        "{}: {} -> {} cycles (+{delta:.2}% > {tolerance}%)",
                        r.workload, b.cycles, r.cycles
                    ));
                }
                // Wall-time ratio vs the baseline host run. Informational
                // only: the host machine and its load differ between runs,
                // so this never gates — but a >2x slowdown is worth a look.
                let wall_ratio = if b.wall_ms > 0.0 {
                    r.wall_ms / b.wall_ms
                } else {
                    1.0
                };
                if wall_ratio > 2.0 {
                    wall_regressions.push(format!(
                        "{}: {:.1} ms -> {:.1} ms ({wall_ratio:.2}x baseline wall time)",
                        r.workload, b.wall_ms, r.wall_ms
                    ));
                }
                (
                    Cell::UInt(b.cycles),
                    Cell::percent(delta, 2),
                    Cell::ratio(wall_ratio, 2),
                )
            }
            None => (Cell::Missing, Cell::Missing, Cell::Missing),
        };
        t.row(vec![
            r.workload.clone().into(),
            r.cycles.into(),
            base_cell,
            delta_cell,
            r.dominant.clone().into(),
            Cell::float(r.wall_ms, 1),
            wall_cell,
        ]);
    }
    if let (Some(b), true) = (&baseline, check) {
        for missing in b
            .results
            .iter()
            .filter(|x| !record.results.iter().any(|r| r.workload == x.workload))
        {
            regressions.push(format!("{}: missing from this run", missing.workload));
        }
    }
    t.note("cycles are deterministic (fixed-seed generators); wall-time is informational");
    t.print();

    let out = format!("BENCH_{name}.json");
    dump_json(&out, &record);

    if check {
        if !wall_regressions.is_empty() {
            println!("wall-time note (informational, never gated):");
            for w in &wall_regressions {
                println!("  {w}");
            }
        }
        if regressions.is_empty() {
            println!("perf check passed: no workload regressed more than {tolerance}%");
        } else {
            eprintln!("perf check FAILED:");
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
    }
}
