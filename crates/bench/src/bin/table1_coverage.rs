//! Table I — GNN coverage of Aurora vs the prior accelerators.

use aurora_baselines::{BaselineKind, BaselineParams};
use aurora_bench::Table;
use aurora_core::Workflow;
use aurora_model::{ModelCategory, ModelId};

fn main() {
    let mut table =
        Table::new("Table I: model coverage").columns(&["design", "C-GNN", "A-GNN", "MP-GNN"]);
    let probe = |cat: ModelCategory| -> ModelId {
        match cat {
            ModelCategory::CGnn => ModelId::Gcn,
            ModelCategory::AGnn => ModelId::Agnn,
            ModelCategory::MpGnn => ModelId::GGcn,
        }
    };
    let p = BaselineParams::default();
    let cats = [
        ModelCategory::CGnn,
        ModelCategory::AGnn,
        ModelCategory::MpGnn,
    ];
    for b in BaselineKind::ALL {
        let c = b.build(p);
        let mut row = vec![c.name.into()];
        for cat in cats {
            row.push(if c.supports(probe(cat)) { "yes" } else { "no" }.into());
        }
        table.row(row);
    }
    // Aurora: the workflow generator produces a supported plan for every
    // zoo model (the unified PE covers every Table II op).
    table.row(vec![
        "Aurora".into(),
        "yes".into(),
        "yes".into(),
        "yes".into(),
    ]);
    table.print();

    println!();
    let mut check = Table::new("Aurora per-model workflow check").columns(&[
        "model",
        "phases",
        "modes",
        "single_accel",
    ]);
    for id in ModelId::ALL {
        let w = Workflow::generate(id);
        check.row(vec![
            id.name().into(),
            w.phases.len().into(),
            w.required_modes().len().into(),
            if w.single_accelerator { "yes" } else { "no" }.into(),
        ]);
    }
    check.print();
    table.write_json("results/table1_coverage.json");
}
