//! Table I — GNN coverage of Aurora vs the prior accelerators.

use aurora_baselines::{BaselineKind, BaselineParams};
use aurora_core::Workflow;
use aurora_model::{ModelCategory, ModelId};

fn main() {
    println!("=== Table I: model coverage ===");
    println!(
        "{:<10}{:>8}{:>8}{:>8}",
        "", "C-GNN", "A-GNN", "MP-GNN"
    );
    let probe = |cat: ModelCategory| -> ModelId {
        match cat {
            ModelCategory::CGnn => ModelId::Gcn,
            ModelCategory::AGnn => ModelId::Agnn,
            ModelCategory::MpGnn => ModelId::GGcn,
        }
    };
    let p = BaselineParams::default();
    for b in BaselineKind::ALL {
        let c = b.build(p);
        print!("{:<10}", c.name);
        for cat in [ModelCategory::CGnn, ModelCategory::AGnn, ModelCategory::MpGnn] {
            print!("{:>8}", if c.supports(probe(cat)) { "yes" } else { "no" });
        }
        println!();
    }
    // Aurora: the workflow generator produces a supported plan for every
    // zoo model (the unified PE covers every Table II op).
    print!("{:<10}", "Aurora");
    for _cat in [ModelCategory::CGnn, ModelCategory::AGnn, ModelCategory::MpGnn] {
        print!("{:>8}", "yes");
    }
    println!();

    println!("\nAurora per-model workflow check:");
    for id in ModelId::ALL {
        let w = Workflow::generate(id);
        println!(
            "  {:<20} phases={} modes={} single_accel={}",
            id.name(),
            w.phases.len(),
            w.required_modes().len(),
            w.single_accelerator
        );
    }
}
