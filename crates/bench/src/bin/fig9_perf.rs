//! Fig. 9 — normalized execution time per layer, plus the speedup ranges
//! of §VI-D.
//!
//! Paper-reported average execution-time reductions: HyGCN 85 %, AWB-GCN
//! 66 %, GCNAX 47 %, ReGNN 28 %, FlowGNN 38 %; per-dataset speedups of
//! 5.0–37.0× (HyGCN), 1.6–3.0× (AWB-GCN), 1.3–1.9× (GCNAX), 1.1–2.4×
//! (ReGNN), 1.1–1.7× (FlowGNN). The Reddit column shows the smallest
//! gains (dense features + graph size, §VI-D).

use aurora_bench::{print_normalized, run_standard, Cell, EvalProtocol, Table};

fn main() {
    let sweep = run_standard(&EvalProtocol::standard());
    print_normalized("Fig. 9: execution time", &sweep, |c| c.cycles as f64);

    // per-layer rows, as the paper's figure plots each layer separately
    let mut headers = vec!["dataset", "layer"];
    headers.extend(sweep.accelerators.iter().map(String::as_str));
    let mut per_layer = Table::new("per-layer normalized execution time").columns(&headers);
    for d in &sweep.datasets {
        let Some(aurora) = sweep.try_cell("Aurora", d) else {
            continue;
        };
        for (li, &ac) in aurora.layer_cycles.iter().enumerate() {
            let mut row: Vec<Cell> = vec![d.as_str().into(), format!("L{li}").into()];
            for a in &sweep.accelerators {
                row.push(match sweep.try_cell(a, d) {
                    Some(c) => Cell::float(
                        c.layer_cycles.get(li).copied().unwrap_or(0) as f64 / ac as f64,
                        2,
                    ),
                    None => Cell::Missing,
                });
            }
            per_layer.row(row);
        }
    }
    per_layer.print();
    per_layer.write_json("results/fig9_per_layer.json");

    // speedup ranges vs each baseline across datasets (§VI-D)
    println!();
    let mut ranges =
        Table::new("speedup ranges (min–max across datasets)").columns(&["baseline", "min", "max"]);
    for a in &sweep.accelerators {
        if a == "Aurora" {
            continue;
        }
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for d in &sweep.datasets {
            if let (Some(c), Some(aur)) = (sweep.try_cell(a, d), sweep.try_cell("Aurora", d)) {
                let s = c.seconds / aur.seconds;
                lo = lo.min(s);
                hi = hi.max(s);
            }
        }
        ranges.row(vec![
            a.as_str().into(),
            Cell::ratio(lo, 1),
            Cell::ratio(hi, 1),
        ]);
    }
    ranges.print();
    ranges.write_json("results/fig9_speedup_ranges.json");
    aurora_bench::table::dump_json("results/fig9_perf.json", &sweep);
}
