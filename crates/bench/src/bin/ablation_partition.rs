//! §V ablation — Algorithm 2's balanced partition vs a fixed 50/50 split:
//! pipeline-stage balance and end-to-end impact, across the model zoo.

use aurora_bench::protocol::{shapes_for, EvalProtocol};
use aurora_bench::{run_inline, Cell, Table};
use aurora_core::{AcceleratorConfig, AuroraSimulator};
use aurora_graph::Dataset;
use aurora_model::ModelId;
use aurora_model::Workload;
use aurora_partition::partition;

fn main() {
    // per-model stage balance on a mid-size dataset
    let p = EvalProtocol::standard()
        .into_iter()
        .find(|p| p.dataset == Dataset::Pubmed)
        .unwrap();
    let spec = p.spec();
    let g = spec.synthesize();
    let shapes = shapes_for(&spec, p.hidden);
    let cfg = AcceleratorConfig::default();

    let mut balance = Table::new("Partition ablation: Algorithm 2 vs fixed 50/50 (Pubmed)")
        .columns(&["model", "a", "b", "balance", "bal(50/50)", "gain"]);
    for id in ModelId::ALL {
        let counts = Workload::of(id, &g, shapes[0]).op_counts();
        let dynamic = partition(&counts, cfg.num_pes(), cfg.flops_per_pe());
        let half = cfg.num_pes() / 2;
        let fixed = aurora_partition::PartitionStrategy {
            a: half,
            b: cfg.num_pes() - half,
            t_a: aurora_partition::time_a(&counts, half, cfg.flops_per_pe()),
            t_b: aurora_partition::time_b(&counts, cfg.num_pes() - half, cfg.flops_per_pe()),
        };
        let gain = fixed.stage_time() / dynamic.stage_time().max(f64::MIN_POSITIVE);
        balance.row(vec![
            id.name().into(),
            dynamic.a.into(),
            dynamic.b.into(),
            Cell::float(dynamic.balance(), 3),
            Cell::float(fixed.balance(), 3),
            Cell::ratio(gain, 2),
        ]);
    }
    balance.print();
    balance.write_json("results/ablation_partition_balance.json");

    // end-to-end effect on the GCN protocol. With the paper's 4 DRAM
    // channels most datasets are off-chip-bound, masking compute balance —
    // so we also report a bandwidth-rich configuration where the pipeline
    // stages are the critical path.
    for (label, channels) in [
        ("paper 4-channel", 4usize),
        ("compute-bound 16-channel", 16),
    ] {
        println!();
        let mut e2e = Table::new(format!("end-to-end, {label} (two-layer GCN)")).columns(&[
            "dataset",
            "dynamic cyc",
            "fixed cyc",
            "red",
        ]);
        for p in EvalProtocol::standard() {
            let spec = p.spec();
            let g = spec.synthesize();
            let shapes = shapes_for(&spec, p.hidden);
            let base = AcceleratorConfig {
                dram_channels: channels,
                ..cfg
            };
            let dynamic = run_inline(
                &AuroraSimulator::new(base),
                &g,
                ModelId::Gcn,
                &shapes,
                p.dataset.name(),
                1.0,
            );
            let fixed_cfg = AcceleratorConfig {
                dynamic_partition: false,
                ..base
            };
            let fixed = run_inline(
                &AuroraSimulator::new(fixed_cfg),
                &g,
                ModelId::Gcn,
                &shapes,
                p.dataset.name(),
                1.0,
            );
            e2e.row(vec![
                p.dataset.name().into(),
                dynamic.total_cycles.into(),
                fixed.total_cycles.into(),
                Cell::percent(
                    100.0 * (1.0 - dynamic.total_cycles as f64 / fixed.total_cycles.max(1) as f64),
                    1,
                ),
            ]);
        }
        e2e.print();
        e2e.write_json(&format!("results/ablation_partition_{channels}ch.json"));
    }
}
