//! Command-line simulator driver.
//!
//! ```text
//! aurora_sim [--dataset cora|citeseer|pubmed|nell|reddit] [--scale N]
//!            [--model gcn|gin|sage-mean|sage-pool|commnet|attention|agnn|
//!                     ggcn|edgeconv1|edgeconv5]
//!            [--hidden N] [--k N] [--hashing] [--no-flex-noc]
//!            [--no-partition] [--baseline hygcn|awb|gcnax|regnn|flowgnn]
//!            [--request FILE] [--threads N]
//!            [--json] [--trace out.json] [--metrics out.json]
//!            [--profile out.json] [--host-profile]
//! ```
//!
//! `--request FILE` bypasses the dataset/model flags entirely: the file
//! holds one `SimRequest` JSON document (or an array of them) in the
//! daemon's wire schema, and each request runs through the canonical
//! `AuroraSimulator::run` entry — the same file can be replayed against
//! a live `aurora_serve` daemon with `serve_bench --request`.
//!
//! `--trace` writes a Chrome trace-event JSON timeline (simulated
//! cycles; load it in Perfetto or `chrome://tracing`) with one track per
//! sub-accelerator plus NoC, DRAM and tile-pipeline tracks. `--metrics`
//! writes the full metrics snapshot (counters / gauges / histograms with
//! model/layer/tile/phase scopes). Both only cover the Aurora engine —
//! the baseline cost models are not instrumented.
//!
//! `--profile` writes the bottleneck-attribution profile (per-tile bound
//! taxonomy, per-layer utilisation, roofline operational intensity) as
//! JSON and prints its human-readable tables; also Aurora-only.
//!
//! `--host-profile` turns on the host-side span profiler: the report
//! gains a per-stage wall-clock breakdown (graph load, partition,
//! mapping, route-table build, tile precompute, traffic kernels, engine
//! walk), printed as a table after the run and carried in the JSON
//! form. With `AURORA_ALLOC_PROFILE=1` each stage also shows its heap
//! allocation count and bytes. Aurora-only, like the other probes.
//!
//! Example: `cargo run --release -p aurora-bench --bin aurora_sim -- \
//!           --dataset pubmed --model gcn --k 32 --trace trace.json`

use aurora_baselines::{BaselineKind, BaselineParams};
use aurora_bench::cli::{self, Args, CommonFlags};
use aurora_bench::protocol::shapes_for;
use aurora_bench::run_inline;
use aurora_core::{AcceleratorConfig, AuroraSimulator, SimReport};
use aurora_graph::Dataset;
use aurora_mapping::MappingPolicy;
use aurora_model::ModelId;

fn print_report(r: &SimReport, json: bool) {
    if json {
        println!("{}", serde_json::to_string_pretty(r).expect("serialize"));
        return;
    }
    if let Some(hp) = &r.host_profile {
        aurora_bench::host_fmt::print(hp);
    }
    println!("=== {} on {} ({}) ===", r.accelerator, r.workload, r.model);
    println!("cycles:       {}", r.total_cycles);
    println!("time:         {:.3} ms", r.seconds() * 1e3);
    println!(
        "DRAM:         {:.2} MB ({} accesses)",
        r.dram.total_bytes() as f64 / 1e6,
        r.dram_accesses()
    );
    println!("NoC cycles:   {}", r.noc_cycles());
    println!("energy:       {:.3} mJ", r.energy_joules() * 1e3);
    for l in &r.layers {
        println!(
            "  layer {}: {} cycles (compute {}, noc {}, dram {}), A/B = {}/{}, {} tiles",
            l.layer,
            l.total_cycles,
            l.compute_cycles,
            l.noc.cycles,
            l.dram_cycles,
            l.partition.a,
            l.partition.b,
            l.tiles
        );
    }
}

fn main() {
    let mut dataset = Dataset::Cora;
    let mut scale = 1usize;
    let mut model = ModelId::Gcn;
    let mut hidden = 16usize;
    let mut k = 32usize;
    let mut policy = MappingPolicy::DegreeAware;
    let mut flex = true;
    let mut dyn_part = true;
    let mut baseline: Option<BaselineKind> = None;
    let mut request_path: Option<String> = None;
    let mut flags = CommonFlags::default();

    let mut args = Args::from_env();
    while let Some(arg) = args.next() {
        if flags.consume(&mut args, &arg) {
            continue;
        }
        match arg.as_str() {
            "--dataset" => {
                dataset = cli::parse_dataset(&args.value("--dataset"))
                    .unwrap_or_else(|| cli::fail("unknown dataset"));
            }
            "--scale" => scale = args.parse("--scale"),
            "--model" => {
                model = cli::parse_model(&args.value("--model"))
                    .unwrap_or_else(|| cli::fail("unknown model"));
            }
            "--hidden" => hidden = args.parse("--hidden"),
            "--k" => k = args.parse("--k"),
            "--baseline" => {
                baseline = Some(
                    cli::parse_baseline(&args.value("--baseline"))
                        .unwrap_or_else(|| cli::fail("unknown baseline")),
                );
            }
            "--request" => request_path = Some(args.value("--request")),
            "--hashing" => policy = MappingPolicy::Hashing,
            "--no-flex-noc" => flex = false,
            "--no-partition" => dyn_part = false,
            other => cli::fail(&format!("unknown flag {other}")),
        }
    }

    let telemetry = flags.telemetry();
    if (flags.observing() || flags.profile.is_some() || flags.host_profile) && baseline.is_some() {
        eprintln!(
            "note: --trace/--metrics/--profile/--host-profile only instrument the Aurora \
             engine, not baselines"
        );
    }

    // Request-file mode: replay the daemon's wire-format documents
    // through the canonical `run` entry; each request carries its own
    // config, graph spec and options.
    if let Some(path) = &request_path {
        if baseline.is_some() {
            cli::fail("--request drives the Aurora engine; it cannot be combined with --baseline");
        }
        let requests = cli::load_requests(path);
        let sim =
            AuroraSimulator::new(AcceleratorConfig::default()).with_telemetry(telemetry.clone());
        let mut last = None;
        for req in &requests {
            eprintln!(
                "request: {} ({}, digest {})",
                req.workload_label(),
                req.model.name(),
                req.digest()
            );
            let report = sim
                .run(req)
                .unwrap_or_else(|e| cli::fail(&format!("simulation failed: {e}")));
            print_report(&report, flags.json);
            last = Some(report);
        }
        flags.write_outputs(
            &telemetry,
            &last.expect("load_requests rejects empty input"),
        );
        return;
    }

    let spec = dataset.spec().scaled(scale);
    let g = spec.synthesize();
    let shapes = shapes_for(&spec, hidden);
    eprintln!(
        "workload: {} (scale 1/{scale}): {} vertices, {} edges, {} features",
        dataset.name(),
        g.num_vertices(),
        g.num_edges(),
        spec.feature_dim
    );

    let report = match baseline {
        Some(b) => {
            if !b.build(BaselineParams::default()).supports(model) {
                cli::fail(&format!("{} does not support {}", b.name(), model.name()));
            }
            b.build(BaselineParams::default())
                .simulate(&g, model, &shapes, dataset.name())
        }
        None => {
            let cfg = AcceleratorConfig {
                k,
                mapping_policy: policy,
                flexible_noc: flex,
                dynamic_partition: dyn_part,
                ..AcceleratorConfig::default()
            };
            run_inline(
                &AuroraSimulator::new(cfg).with_telemetry(telemetry.clone()),
                &g,
                model,
                &shapes,
                dataset.name(),
                spec.feature_density,
            )
        }
    };

    flags.write_outputs(&telemetry, &report);
    print_report(&report, flags.json);
}
