//! Command-line simulator driver.
//!
//! ```text
//! aurora_sim [--dataset cora|citeseer|pubmed|nell|reddit] [--scale N]
//!            [--model gcn|gin|sage-mean|sage-pool|commnet|attention|agnn|
//!                     ggcn|edgeconv1|edgeconv5]
//!            [--hidden N] [--k N] [--hashing] [--no-flex-noc]
//!            [--no-partition] [--baseline hygcn|awb|gcnax|regnn|flowgnn]
//!            [--json] [--trace out.json] [--metrics out.json]
//!            [--profile out.json]
//! ```
//!
//! `--trace` writes a Chrome trace-event JSON timeline (simulated
//! cycles; load it in Perfetto or `chrome://tracing`) with one track per
//! sub-accelerator plus NoC, DRAM and tile-pipeline tracks. `--metrics`
//! writes the full metrics snapshot (counters / gauges / histograms with
//! model/layer/tile/phase scopes). Both only cover the Aurora engine —
//! the baseline cost models are not instrumented.
//!
//! `--profile` writes the bottleneck-attribution profile (per-tile bound
//! taxonomy, per-layer utilisation, roofline operational intensity) as
//! JSON and prints its human-readable tables; also Aurora-only.
//!
//! Example: `cargo run --release -p aurora-bench --bin aurora_sim -- \
//!           --dataset pubmed --model gcn --k 32 --trace trace.json`

use aurora_baselines::{BaselineKind, BaselineParams};
use aurora_bench::protocol::shapes_for;
use aurora_core::{AcceleratorConfig, AuroraSimulator, SimReport, Telemetry};
use aurora_graph::Dataset;
use aurora_mapping::MappingPolicy;
use aurora_model::ModelId;

fn parse_model(s: &str) -> Option<ModelId> {
    Some(match s.to_ascii_lowercase().as_str() {
        "gcn" => ModelId::Gcn,
        "gin" => ModelId::Gin,
        "sage-mean" | "sagemean" => ModelId::SageMean,
        "sage-pool" | "sagepool" => ModelId::SagePool,
        "commnet" => ModelId::CommNet,
        "attention" | "vanilla-attention" => ModelId::VanillaAttention,
        "agnn" => ModelId::Agnn,
        "ggcn" | "g-gcn" => ModelId::GGcn,
        "edgeconv1" | "edgeconv-1" => ModelId::EdgeConv1,
        "edgeconv5" | "edgeconv-5" => ModelId::EdgeConv5,
        _ => return None,
    })
}

fn parse_dataset(s: &str) -> Option<Dataset> {
    Some(match s.to_ascii_lowercase().as_str() {
        "cora" => Dataset::Cora,
        "citeseer" => Dataset::Citeseer,
        "pubmed" => Dataset::Pubmed,
        "nell" => Dataset::Nell,
        "reddit" => Dataset::Reddit,
        _ => return None,
    })
}

fn parse_baseline(s: &str) -> Option<BaselineKind> {
    Some(match s.to_ascii_lowercase().as_str() {
        "hygcn" => BaselineKind::HyGcn,
        "awb" | "awb-gcn" | "awbgcn" => BaselineKind::AwbGcn,
        "gcnax" => BaselineKind::Gcnax,
        "regnn" => BaselineKind::ReGnn,
        "flowgnn" => BaselineKind::FlowGnn,
        _ => return None,
    })
}

fn print_report(r: &SimReport, json: bool) {
    if json {
        println!("{}", serde_json::to_string_pretty(r).expect("serialize"));
        return;
    }
    println!("=== {} on {} ({}) ===", r.accelerator, r.workload, r.model);
    println!("cycles:       {}", r.total_cycles);
    println!("time:         {:.3} ms", r.seconds() * 1e3);
    println!(
        "DRAM:         {:.2} MB ({} accesses)",
        r.dram.total_bytes() as f64 / 1e6,
        r.dram_accesses()
    );
    println!("NoC cycles:   {}", r.noc_cycles());
    println!("energy:       {:.3} mJ", r.energy_joules() * 1e3);
    for l in &r.layers {
        println!(
            "  layer {}: {} cycles (compute {}, noc {}, dram {}), A/B = {}/{}, {} tiles",
            l.layer,
            l.total_cycles,
            l.compute_cycles,
            l.noc.cycles,
            l.dram_cycles,
            l.partition.a,
            l.partition.b,
            l.tiles
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dataset = Dataset::Cora;
    let mut scale = 1usize;
    let mut model = ModelId::Gcn;
    let mut hidden = 16usize;
    let mut k = 32usize;
    let mut policy = MappingPolicy::DegreeAware;
    let mut flex = true;
    let mut dyn_part = true;
    let mut baseline: Option<BaselineKind> = None;
    let mut json = false;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut profile_path: Option<String> = None;

    let mut i = 0;
    let fail = |msg: &str| -> ! {
        eprintln!("error: {msg}\nrun with no args for the defaults; see the doc comment for usage");
        std::process::exit(2)
    };
    while i < args.len() {
        let need = |i: usize| args.get(i + 1).unwrap_or_else(|| fail("missing value"));
        match args[i].as_str() {
            "--dataset" => {
                dataset = parse_dataset(need(i)).unwrap_or_else(|| fail("unknown dataset"));
                i += 1;
            }
            "--scale" => {
                scale = need(i).parse().unwrap_or_else(|_| fail("bad --scale"));
                i += 1;
            }
            "--model" => {
                model = parse_model(need(i)).unwrap_or_else(|| fail("unknown model"));
                i += 1;
            }
            "--hidden" => {
                hidden = need(i).parse().unwrap_or_else(|_| fail("bad --hidden"));
                i += 1;
            }
            "--k" => {
                k = need(i).parse().unwrap_or_else(|_| fail("bad --k"));
                i += 1;
            }
            "--baseline" => {
                baseline =
                    Some(parse_baseline(need(i)).unwrap_or_else(|| fail("unknown baseline")));
                i += 1;
            }
            "--trace" => {
                trace_path = Some(need(i).clone());
                i += 1;
            }
            "--metrics" => {
                metrics_path = Some(need(i).clone());
                i += 1;
            }
            "--profile" => {
                profile_path = Some(need(i).clone());
                i += 1;
            }
            "--hashing" => policy = MappingPolicy::Hashing,
            "--no-flex-noc" => flex = false,
            "--no-partition" => dyn_part = false,
            "--json" => json = true,
            other => fail(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    let spec = dataset.spec().scaled(scale);
    let g = spec.synthesize();
    let shapes = shapes_for(&spec, hidden);
    eprintln!(
        "workload: {} (scale 1/{scale}): {} vertices, {} edges, {} features",
        dataset.name(),
        g.num_vertices(),
        g.num_edges(),
        spec.feature_dim
    );

    let observing = trace_path.is_some() || metrics_path.is_some();
    let telemetry = if observing {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    if (observing || profile_path.is_some()) && baseline.is_some() {
        eprintln!(
            "note: --trace/--metrics/--profile only instrument the Aurora engine, not baselines"
        );
    }

    let report = match baseline {
        Some(b) => {
            if !b.build(BaselineParams::default()).supports(model) {
                fail(&format!("{} does not support {}", b.name(), model.name()));
            }
            b.build(BaselineParams::default())
                .simulate(&g, model, &shapes, dataset.name())
        }
        None => {
            let cfg = AcceleratorConfig {
                k,
                mapping_policy: policy,
                flexible_noc: flex,
                dynamic_partition: dyn_part,
                ..AcceleratorConfig::default()
            };
            AuroraSimulator::new(cfg)
                .with_telemetry(telemetry.clone())
                .simulate_with_density(&g, model, &shapes, dataset.name(), spec.feature_density)
        }
    };

    if let Some(path) = &trace_path {
        let json = telemetry.trace_json().unwrap_or_else(|| {
            // telemetry stayed disabled (baseline run): emit a valid,
            // empty trace document rather than nothing
            Telemetry::enabled().trace_json().expect("enabled")
        });
        std::fs::write(path, json).unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
        eprintln!(
            "trace: {path} ({} events; open in https://ui.perfetto.dev)",
            telemetry.trace_len()
        );
    }
    if let Some(path) = &metrics_path {
        let snapshot = telemetry.snapshot();
        let body = serde_json::to_string_pretty(&snapshot).expect("serialize metrics");
        std::fs::write(path, body).unwrap_or_else(|e| fail(&format!("write {path}: {e}")));
        eprintln!(
            "metrics: {path} ({} counters, {} gauges, {} histograms)",
            snapshot.counters.len(),
            snapshot.gauges.len(),
            snapshot.histograms.len()
        );
    }
    if let Some(path) = &profile_path {
        aurora_bench::profile_fmt::emit(&report, path);
    }
    print_report(&report, json);
}
