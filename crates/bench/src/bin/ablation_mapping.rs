//! §IV ablation — degree-aware mapping + flexible NoC vs the CGRA-ME
//! hashing policy on a plain mesh, on Aurora's own engine.

use aurora_bench::protocol::{shapes_for, EvalProtocol};
use aurora_bench::{run_inline, Cell, Table};
use aurora_core::{AcceleratorConfig, AuroraSimulator};
use aurora_mapping::MappingPolicy;
use aurora_model::ModelId;

fn main() {
    let mut table = Table::new("Mapping ablation: degree-aware + flexible NoC vs hashing + mesh")
        .columns(&[
            "dataset",
            "DA noc cyc",
            "hash noc cyc",
            "noc red",
            "DA total",
            "hash total",
            "total red",
        ]);
    for p in EvalProtocol::standard() {
        let spec = p.spec();
        let g = spec.synthesize();
        let shapes = shapes_for(&spec, p.hidden);
        let da = run_inline(
            &AuroraSimulator::new(AcceleratorConfig::default()),
            &g,
            ModelId::Gcn,
            &shapes,
            p.dataset.name(),
            1.0,
        );
        let hash_cfg = AcceleratorConfig {
            mapping_policy: MappingPolicy::Hashing,
            flexible_noc: false,
            ..AcceleratorConfig::default()
        };
        let hb = run_inline(
            &AuroraSimulator::new(hash_cfg),
            &g,
            ModelId::Gcn,
            &shapes,
            p.dataset.name(),
            1.0,
        );
        let red = |a: u64, b: u64| Cell::percent(100.0 * (1.0 - a as f64 / b.max(1) as f64), 1);
        table.row(vec![
            p.dataset.name().into(),
            da.noc_cycles().into(),
            hb.noc_cycles().into(),
            red(da.noc_cycles(), hb.noc_cycles()),
            da.total_cycles.into(),
            hb.total_cycles.into(),
            red(da.total_cycles, hb.total_cycles),
        ]);
    }
    table.print();
    table.write_json("results/ablation_mapping.json");
}
