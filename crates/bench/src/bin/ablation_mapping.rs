//! §IV ablation — degree-aware mapping + flexible NoC vs the CGRA-ME
//! hashing policy on a plain mesh, on Aurora's own engine.

use aurora_bench::protocol::{shapes_for, EvalProtocol};
use aurora_core::{AcceleratorConfig, AuroraSimulator};
use aurora_mapping::MappingPolicy;
use aurora_model::ModelId;

fn main() {
    println!("=== Mapping ablation: degree-aware + flexible NoC vs hashing + mesh ===");
    println!(
        "{:<10}{:>16}{:>16}{:>10}{:>16}{:>16}{:>10}",
        "dataset", "DA noc cyc", "hash noc cyc", "noc red%", "DA total", "hash total", "total red%"
    );
    for p in EvalProtocol::standard() {
        let spec = p.spec();
        let g = spec.synthesize();
        let shapes = shapes_for(&spec, p.hidden);
        let da = AuroraSimulator::new(AcceleratorConfig::default())
            .simulate(&g, ModelId::Gcn, &shapes, p.dataset.name());
        let hash_cfg = AcceleratorConfig {
            mapping_policy: MappingPolicy::Hashing,
            flexible_noc: false,
            ..AcceleratorConfig::default()
        };
        let hb = AuroraSimulator::new(hash_cfg)
            .simulate(&g, ModelId::Gcn, &shapes, p.dataset.name());
        let red = |a: u64, b: u64| 100.0 * (1.0 - a as f64 / b.max(1) as f64);
        println!(
            "{:<10}{:>16}{:>16}{:>9.1}%{:>16}{:>16}{:>9.1}%",
            p.dataset.name(),
            da.noc_cycles(),
            hb.noc_cycles(),
            red(da.noc_cycles(), hb.noc_cycles()),
            da.total_cycles,
            hb.total_cycles,
            red(da.total_cycles, hb.total_cycles),
        );
    }
}
