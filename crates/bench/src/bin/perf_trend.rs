//! Perf-history ledger reader: per-workload trajectories and drift.
//!
//! ```text
//! perf_trend [--history BENCH_history.jsonl] [--check]
//!            [--drift RATIO] [--window N] [--json]
//! ```
//!
//! Reads the NDJSON ledger that `perf_regress --record` appends to and
//! prints one row per workload: how many runs it has, its latest
//! simulated cycles (with the delta against its first recorded run —
//! exact, since cycles are deterministic), and its wall-clock
//! trajectory (median of the earlier runs vs the latest). A workload is
//! flagged for **sustained drift** when its last `--window` runs
//! (default 3) *all* exceed `--drift` (default 1.25) × the median of
//! the runs before them — one slow run on a loaded host is noise, a
//! trend is not.
//!
//! `--check` validates the ledger itself — every line parses as a
//! history row and timestamps never move backwards — and exits 1 on a
//! violation. `scripts/check.sh` runs this over the committed ledger.
//!
//! Drift is reported, never an exit code: the ledger mixes hosts and
//! build settings, so the wall gate lives in `perf_regress
//! --wall-gate`, which compares like against like.

use aurora_bench::cli::{fail, Args};
use aurora_bench::emit::{Cell, Table};
use aurora_bench::history::{self, HistoryRow};
use std::collections::BTreeMap;

fn main() {
    let mut history_path = "BENCH_history.jsonl".to_string();
    let mut check = false;
    let mut drift = 1.25f64;
    let mut window = 3usize;
    let mut json = false;

    let mut args = Args::from_env();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--history" => history_path = args.value("--history"),
            "--check" => check = true,
            "--drift" => drift = args.parse("--drift"),
            "--window" => window = args.parse("--window"),
            "--json" => json = true,
            other => fail(&format!("unknown flag {other}")),
        }
    }
    if drift <= 1.0 {
        fail("--drift must be > 1.0");
    }
    if window == 0 {
        fail("--window must be >= 1");
    }

    let rows = match history::load(&history_path) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("perf_trend: {e}");
            std::process::exit(1);
        }
    };
    if check {
        if let Err(e) = history::validate(&rows) {
            eprintln!("perf_trend: {history_path}: {e}");
            std::process::exit(1);
        }
        println!(
            "perf_trend: {history_path} ok — {} rows parse, timestamps monotonic",
            rows.len()
        );
    }
    if rows.is_empty() {
        println!("perf_trend: {history_path} holds no rows yet");
        return;
    }

    // Group by workload, preserving append (time) order within each.
    let mut by_workload: BTreeMap<&str, Vec<&HistoryRow>> = BTreeMap::new();
    for row in &rows {
        by_workload.entry(&row.workload).or_default().push(row);
    }

    let mut t = Table::new(format!(
        "perf_trend — {history_path} ({} rows; drift = last {window} all > {drift}x earlier median)",
        rows.len()
    ))
    .columns(&[
        "workload", "runs", "cycles", "cycles Δ", "wall med ms", "wall last ms", "wall Δ",
        "allocs", "steady", "drift",
    ]);
    let mut drifting = Vec::new();
    for (workload, runs) in &by_workload {
        let first = runs.first().expect("group is non-empty");
        let last = runs.last().expect("group is non-empty");
        let cycles_delta =
            100.0 * (last.cycles as f64 - first.cycles as f64) / first.cycles.max(1) as f64;
        let walls: Vec<f64> = runs.iter().map(|r| r.wall_ms).collect();
        let earlier_median = if walls.len() > 1 {
            history::median(&walls[..walls.len() - 1])
        } else {
            walls[0]
        };
        let wall_ratio = if earlier_median > 0.0 {
            last.wall_ms / earlier_median
        } else {
            1.0
        };
        let has_drift = history::sustained_drift(&walls, window, drift);
        if has_drift {
            drifting.push(format!(
                "{workload}: last {window} runs all above {drift}x the earlier median \
                 ({earlier_median:.1} ms; latest {:.1} ms)",
                last.wall_ms
            ));
        }
        t.row(vec![
            (*workload).into(),
            runs.len().into(),
            last.cycles.into(),
            Cell::percent(cycles_delta, 2),
            Cell::float(earlier_median, 1),
            Cell::float(last.wall_ms, 1),
            Cell::ratio(wall_ratio, 2),
            last.allocs.into(),
            last.allocs_steady.into(),
            Cell::Str(if has_drift { "DRIFT" } else { "ok" }.into()),
        ]);
    }
    t.note(
        "cycles Δ is latest vs first recorded run; wall med is the median of all but the latest",
    );
    t.note("allocs come from the counting allocator and are 0 for rows recorded without it");
    t.note("steady is the warmed second run's steady-stage allocations (0 for pre-column rows)");
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&t.to_json_value()).expect("serialize")
        );
    } else {
        t.print();
    }
    if !drifting.is_empty() {
        println!("sustained wall-clock drift:");
        for d in &drifting {
            println!("  {d}");
        }
    }
}
