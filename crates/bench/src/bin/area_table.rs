//! §VI-F — area analysis (TSMC 40 nm, 32 × 32 PEs).
//!
//! Paper figures: MAC array 7.1 % of PE area, memory hierarchy 82.9 %,
//! PE control + reconfigurable switches 3.7 %; PE array 62.74 % of chip,
//! controller 0.9 %, flexible-interconnect additions 5.2 %.

use aurora_bench::{Cell, Table};
use aurora_energy::AreaModel;

fn main() {
    let model = AreaModel::default();
    let b = model.breakdown();

    let pe_total = b.pe_mac + b.pe_memory + b.pe_control + b.pe_misc;
    let mut pe = Table::new(format!(
        "§VI-F area: within one PE ({:.4} mm², {} PEs, TSMC 40 nm seed)",
        model.pe_area_mm2, model.num_pes
    ))
    .columns(&["component", "mm²", "share"]);
    for (name, area) in [
        ("MAC array", b.pe_mac),
        ("memory (SMB/IDMB/ODMB)", b.pe_memory),
        ("control + switches", b.pe_control),
        ("router IF / misc", b.pe_misc),
    ] {
        pe.row(vec![
            name.into(),
            Cell::float(area, 4),
            Cell::percent(100.0 * area / pe_total, 1),
        ]);
    }
    pe.print();

    println!();
    let mut chip = Table::new(format!("§VI-F area: chip ({:.2} mm² total)", b.total_chip))
        .columns(&["component", "mm²", "share"]);
    for (name, area, share) in [
        ("PE array", b.pe_array, 100.0 * b.pe_array / b.total_chip),
        (
            "controller",
            b.controller,
            100.0 * b.controller / b.total_chip,
        ),
        (
            "flexible interconnect",
            b.flexible_interconnect,
            100.0 * b.interconnect_overhead(),
        ),
        (
            "shared SRAM/PHY/misc",
            b.other,
            100.0 * b.other / b.total_chip,
        ),
    ] {
        chip.row(vec![
            name.into(),
            Cell::float(area, 2),
            Cell::percent(share, 2),
        ]);
    }
    chip.note(format!(
        "flexible-interconnect overhead: {:.1}% of chip area ({})",
        100.0 * b.interconnect_overhead(),
        if b.interconnect_overhead() < 0.06 {
            "negligible ✓"
        } else {
            "HIGH"
        }
    ));
    chip.print();
    pe.write_json("results/area_pe.json");
    chip.write_json("results/area_chip.json");
}
