//! §VI-F — area analysis (TSMC 40 nm, 32 × 32 PEs).
//!
//! Paper figures: MAC array 7.1 % of PE area, memory hierarchy 82.9 %,
//! PE control + reconfigurable switches 3.7 %; PE array 62.74 % of chip,
//! controller 0.9 %, flexible-interconnect additions 5.2 %.

use aurora_energy::AreaModel;

fn main() {
    let model = AreaModel::default();
    let b = model.breakdown();
    println!("=== §VI-F area analysis ({} PEs, TSMC 40 nm seed) ===", model.num_pes);
    println!("within one PE ({:.4} mm²):", model.pe_area_mm2);
    let pe_total = b.pe_mac + b.pe_memory + b.pe_control + b.pe_misc;
    println!("  MAC array              {:>8.4} mm²  ({:>5.1}%)", b.pe_mac, 100.0 * b.pe_mac / pe_total);
    println!("  memory (SMB/IDMB/ODMB) {:>8.4} mm²  ({:>5.1}%)", b.pe_memory, 100.0 * b.pe_memory / pe_total);
    println!("  control + switches     {:>8.4} mm²  ({:>5.1}%)", b.pe_control, 100.0 * b.pe_control / pe_total);
    println!("  router IF / misc       {:>8.4} mm²  ({:>5.1}%)", b.pe_misc, 100.0 * b.pe_misc / pe_total);
    println!("chip ({:.2} mm² total):", b.total_chip);
    println!("  PE array               {:>8.2} mm²  ({:>5.2}%)", b.pe_array, 100.0 * b.pe_array / b.total_chip);
    println!("  controller             {:>8.2} mm²  ({:>5.2}%)", b.controller, 100.0 * b.controller / b.total_chip);
    println!("  flexible interconnect  {:>8.2} mm²  ({:>5.2}%)", b.flexible_interconnect, 100.0 * b.interconnect_overhead());
    println!("  shared SRAM/PHY/misc   {:>8.2} mm²  ({:>5.2}%)", b.other, 100.0 * b.other / b.total_chip);
    println!(
        "\nflexible-interconnect overhead: {:.1}% of chip area ({})",
        100.0 * b.interconnect_overhead(),
        if b.interconnect_overhead() < 0.06 { "negligible ✓" } else { "HIGH" }
    );
}
