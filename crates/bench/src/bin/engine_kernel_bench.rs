//! Old-vs-new timing for the engine's per-tile pipeline.
//!
//! ```text
//! engine_kernel_bench [--reps N] [--quick] [--gate RATIO] [--alloc-budget N]
//! ```
//!
//! Runs the same simulation through both engine cores — the legacy
//! per-tile-`Vec` pipeline and the arena-backed SoA pipeline — on R-MAT
//! workloads at the paper's k=8 sub-array radix. Every pair of reports
//! is asserted byte-identical (serialised JSON), so the bench doubles
//! as an end-to-end equivalence check on full-size graphs; the printed
//! speedup is wall-clock only.
//!
//! With `--gate RATIO` the run fails unless the largest workload's
//! speedup reaches the ratio. With `--alloc-budget N` the run fails if
//! a warmed-up arena run attributes more than N heap allocations to the
//! steady-state stages (tile precompute + mapping + engine walk) —
//! the regression gate `scripts/check.sh` uses. Bit-identity is always
//! a hard failure.

use aurora_bench::cli::{fail, Args};
use aurora_bench::emit::{Cell, Table};
use aurora_bench::run_inline;
use aurora_core::{AcceleratorConfig, AuroraSimulator, EngineCore, SimReport};
use aurora_graph::{generate, Csr};
use aurora_model::{LayerShape, ModelId};
use aurora_telemetry::span;
use aurora_telemetry::Stage;
use std::time::Instant;

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    (best, last.expect("reps >= 1"))
}

fn run(sim: &AuroraSimulator, g: &Csr, shapes: &[LayerShape]) -> SimReport {
    run_inline(sim, g, ModelId::Gcn, shapes, "engine_kernel_bench", 1.0)
}

/// Allocations a warmed-up arena run attributes to the steady-state
/// stages, per stage (tile precompute, mapping, engine walk).
fn steady_allocs(sim: &AuroraSimulator, g: &Csr, shapes: &[LayerShape]) -> [(Stage, u64); 3] {
    aurora_telemetry::alloc::set_alloc_profiling(true);
    // two warm-up runs: the first sizes the arena, the second settles
    // allocator reuse; the third run is the measured steady state
    run(sim, g, shapes);
    run(sim, g, shapes);
    let mark = span::mark();
    let start = Instant::now();
    run(sim, g, shapes);
    let profile = span::collect(&mark, start.elapsed());
    aurora_telemetry::alloc::set_alloc_profiling(false);
    [Stage::TilePrecompute, Stage::Mapping, Stage::EngineWalk]
        .map(|s| (s, profile.stage(s).map_or(0, |h| h.alloc_count)))
}

fn main() {
    let mut reps = 10usize;
    let mut quick = false;
    let mut gate = 0.0f64;
    let mut alloc_budget: Option<u64> = None;
    let mut args = Args::from_env();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reps" => reps = args.parse("--reps"),
            "--quick" => {
                quick = true;
                reps = 3;
            }
            "--gate" => gate = args.parse("--gate"),
            "--alloc-budget" => alloc_budget = Some(args.parse("--alloc-budget")),
            other => fail(&format!("unknown flag {other}")),
        }
    }
    let reps = reps.max(1);

    let k = 8usize;
    let shapes = [LayerShape::new(64, 32), LayerShape::new(32, 16)];
    let mut graphs = vec![(
        "rmat-4k",
        generate::rmat(4_096, 40_000, Default::default(), 7),
    )];
    if !quick {
        graphs.push((
            "rmat-16k",
            generate::rmat(16_384, 160_000, Default::default(), 9),
        ));
    }

    let cfg = AcceleratorConfig::small(k);
    let legacy_sim = AuroraSimulator::new(cfg).with_engine_core(EngineCore::Legacy);
    let arena_sim = AuroraSimulator::new(cfg).with_engine_core(EngineCore::Arena);

    let mut t = Table::new(format!(
        "engine_kernel_bench — k={k}, GCN 64→32→16, best of {reps}"
    ))
    .columns(&["workload", "edges", "legacy ms", "arena ms", "speedup"]);

    let mut last_speedup = 0.0f64;
    for (name, g) in &graphs {
        let (legacy_ms, legacy) = time_ms(reps, || run(&legacy_sim, g, &shapes));
        let (arena_ms, arena) = time_ms(reps, || run(&arena_sim, g, &shapes));
        let legacy_json = serde_json::to_string(&legacy).expect("serialise");
        let arena_json = serde_json::to_string(&arena).expect("serialise");
        assert_eq!(
            legacy_json, arena_json,
            "{name}: arena report must be bit-identical to the legacy core"
        );
        last_speedup = legacy_ms / arena_ms;
        t.row(vec![
            Cell::Str((*name).to_string()),
            Cell::UInt(g.num_edges() as u64),
            Cell::float(legacy_ms, 2),
            Cell::float(arena_ms, 2),
            Cell::ratio(last_speedup, 1),
        ]);
    }
    t.note("reports asserted bit-identical; wall-clock only, cycles unchanged by construction");
    t.print();

    // Steady-state allocation audit on the largest workload.
    let (_, g) = graphs.last().expect("at least one workload");
    let stages = steady_allocs(&arena_sim, g, &shapes);
    let total: u64 = stages.iter().map(|(_, c)| c).sum();
    println!();
    println!("steady-state allocations (warmed arena, one run):");
    for (stage, count) in &stages {
        println!("  {stage:?}: {count}");
    }
    println!("  total: {total}");

    if let Some(budget) = alloc_budget {
        if total > budget {
            fail(&format!(
                "steady-state allocations {total} exceed the budget of {budget} \
                 (tile precompute + mapping + engine walk must stay arena-backed)"
            ));
        }
        println!("  within budget of {budget}");
    }
    if gate > 0.0 && last_speedup < gate {
        fail(&format!(
            "speedup {last_speedup:.2}x below the {gate:.2}x gate on the largest workload"
        ));
    }
}
