//! Energy composition of Aurora per dataset — where the joules go
//! (compute / bank buffers / DRAM / NoC / static / reconfiguration),
//! the component view behind Fig. 10's totals.

use aurora_bench::protocol::{shapes_for, EvalProtocol};
use aurora_core::{AcceleratorConfig, AuroraSimulator};
use aurora_model::ModelId;

fn main() {
    println!("=== Aurora energy breakdown (two-layer GCN) ===");
    println!(
        "{:<10}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}{:>12}",
        "dataset", "compute%", "sram%", "dram%", "noc%", "static%", "reconf%", "total mJ"
    );
    for p in EvalProtocol::standard() {
        let spec = p.spec();
        let g = spec.synthesize();
        let r = AuroraSimulator::new(AcceleratorConfig::default()).simulate_with_density(
            &g,
            ModelId::Gcn,
            &shapes_for(&spec, p.hidden),
            p.dataset.name(),
            spec.feature_density,
        );
        let e = &r.energy;
        let t = e.total();
        let pct = |x: f64| 100.0 * x / t;
        println!(
            "{:<10}{:>9.1}%{:>9.1}%{:>9.1}%{:>9.1}%{:>9.1}%{:>9.3}%{:>12.3}",
            p.dataset.name(),
            pct(e.compute),
            pct(e.local_sram + e.global_sram),
            pct(e.dram),
            pct(e.noc),
            pct(e.static_leakage),
            pct(e.reconfiguration),
            t * 1e3
        );
    }
    println!(
        "\nDRAM dominates on the sparse-feature datasets (so Fig. 7's access\n\
         reduction is the main lever behind Fig. 10), while Reddit's dense\n\
         features shift the cost to on-chip communication — the same effect\n\
         that shrinks Aurora's Reddit speedup in §VI-D."
    );
}
