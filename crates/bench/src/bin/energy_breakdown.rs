//! Energy composition of Aurora per dataset — where the joules go
//! (compute / bank buffers / DRAM / NoC / static / reconfiguration),
//! the component view behind Fig. 10's totals.

use aurora_bench::protocol::{shapes_for, EvalProtocol};
use aurora_bench::{run_inline, Cell, Table};
use aurora_core::{AcceleratorConfig, AuroraSimulator};
use aurora_model::ModelId;

fn main() {
    let mut table = Table::new("Aurora energy breakdown (two-layer GCN)").columns(&[
        "dataset", "compute%", "sram%", "dram%", "noc%", "static%", "reconf%", "total mJ",
    ]);
    for p in EvalProtocol::standard() {
        let spec = p.spec();
        let g = spec.synthesize();
        let r = run_inline(
            &AuroraSimulator::new(AcceleratorConfig::default()),
            &g,
            ModelId::Gcn,
            &shapes_for(&spec, p.hidden),
            p.dataset.name(),
            spec.feature_density,
        );
        let e = &r.energy;
        let t = e.total();
        let pct = |x: f64| Cell::percent(100.0 * x / t, 1);
        table.row(vec![
            p.dataset.name().into(),
            pct(e.compute),
            pct(e.local_sram + e.global_sram),
            pct(e.dram),
            pct(e.noc),
            pct(e.static_leakage),
            Cell::percent(100.0 * e.reconfiguration / t, 3),
            Cell::float(t * 1e3, 3),
        ]);
    }
    table.note(
        "DRAM dominates on the sparse-feature datasets (so Fig. 7's access \
         reduction is the main lever behind Fig. 10), while Reddit's dense \
         features shift the cost to on-chip communication — the same effect \
         that shrinks Aurora's Reddit speedup in §VI-D.",
    );
    table.print();
    table.write_json("results/energy_breakdown.json");
}
