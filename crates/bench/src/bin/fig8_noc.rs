//! Fig. 8 — on-chip communication latency (total on-chip communication
//! cycles) for the six accelerators on the five datasets.
//!
//! Paper-reported per-dataset average reductions vs the baselines:
//! Cora 75 %, Citeseer 87 %, Pubmed 50 %, Nell 68 %, Reddit 64 %.

use aurora_bench::{print_normalized, run_standard, EvalProtocol};

fn main() {
    let sweep = run_standard(&EvalProtocol::standard());
    print_normalized("Fig. 8: on-chip communication latency", &sweep, |c| {
        c.noc_cycles as f64
    });
    println!("per-dataset average on-chip latency reduction vs baselines:");
    for d in &sweep.datasets {
        let Some(aurora) = sweep.try_cell("Aurora", d).map(|c| c.noc_cycles as f64) else {
            continue;
        };
        let mut logsum = 0.0;
        let mut n = 0;
        for a in &sweep.accelerators {
            if let Some(c) = sweep.try_cell(a, d).filter(|_| a != "Aurora") {
                logsum += (c.noc_cycles as f64 / aurora).ln();
                n += 1;
            }
        }
        let geo = (logsum / n as f64).exp();
        println!(
            "  {d:<9} {:.0}%  (baselines {geo:.2}x Aurora)",
            (1.0 - 1.0 / geo) * 100.0
        );
    }
    aurora_bench::table::dump_json("results/fig8_noc.json", &sweep);
}
