//! Concurrent client driver for the `aurora_serve` daemon.
//!
//! ```text
//! serve_bench (--socket PATH | --tcp ADDR) [--connections N] [--repeat M]
//!             [--request FILE] [--json] [--cluster] [--kill-one]
//! ```
//!
//! Opens `N` concurrent connections (default 8), each on its own
//! thread with its own NDJSON client, and sends every request in the
//! mix `M` times (default 2). The mix is either `--request FILE` — one
//! `SimRequest` document or an array, the same wire schema `aurora_sim
//! --request` replays locally — or a built-in set of four small
//! distinct R-MAT workloads.
//!
//! The run then *gates* the service contracts, exiting 1 when any is
//! violated:
//!
//! - every request gets a successful response (no timeouts, overloads,
//!   or dropped lines under concurrency),
//! - responses for the same digest carry bit-identical reports — the
//!   determinism contract, independent of which worker or cache path
//!   answered,
//! - with repeats, at least one response is served from the cache
//!   (in fact every response beyond the first per digest must be),
//! - the admin plane answers on the same socket: `health` reports
//!   `ok`, `stats` accounts for at least this run's traffic with
//!   ordered latency quantiles (p50 ≤ p95 ≤ p99), a warm hit ratio,
//!   and live engine-pool counters (`pool.workers` ≥ 1 and executed
//!   regions after the warm pass), and `metrics` carries the
//!   Prometheus exposition including the `aurora_pool_*` gauges.
//!
//! The scraped stats print as a table (suppressed by `--json`).
//!
//! `--cluster` points the gates at an `aurora_serve --router` front-end
//! instead of a single worker: the admin checks read the router's
//! aggregated reply (role `router`, per-shard census, ordered
//! cluster-wide quantiles), and the cache-repeat gate becomes a **warm
//! affinity** gate — at least 90% of all responses must be cache hits,
//! which only holds when digest-affinity routing keeps repeats on the
//! shard that already computed them. `--kill-one` additionally SIGTERMs
//! one worker mid-run (after every connection finishes its first
//! round): the run still requires *zero* client-visible failures — the
//! router absorbs the loss via retry/failover — and afterwards waits
//! for the supervisor to respawn the shard back to `ok`.
//!
//! `scripts/check.sh` runs this against a freshly started daemon as the
//! serve smoke gate, and against a 3-worker cluster (with a mid-run
//! kill) as the cluster smoke gate.

use aurora_bench::cli::{self, Args};
use aurora_bench::emit::{Cell, Table};
use aurora_core::{AcceleratorConfig, SimRequest, SimResponse};
use aurora_model::{LayerShape, ModelId};
use aurora_serve::{Client, Endpoint};
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// The built-in mix: four small, distinct, fast workloads.
fn default_mix() -> Vec<SimRequest> {
    (1u64..=4)
        .map(|seed| {
            SimRequest::builder(ModelId::Gcn)
                .config(AcceleratorConfig::small(4))
                .rmat(128, 800, seed)
                .layer(LayerShape::new(32, 16))
                .workload(format!("bench-{seed}"))
                .build()
                .expect("built-in mix is valid")
        })
        .collect()
}

/// One connection's work: send the whole mix `repeat` times, in order.
/// With a `barrier`, every connection rendezvouses after its first
/// round — the hook the mid-run kill synchronizes on.
fn drive(
    endpoint: &Endpoint,
    mix: &[SimRequest],
    repeat: usize,
    barrier: Option<std::sync::Arc<std::sync::Barrier>>,
) -> Result<Vec<SimResponse>, String> {
    let mut client =
        Client::connect(endpoint).map_err(|e| format!("connect to {endpoint}: {e}"))?;
    let mut responses = Vec::with_capacity(mix.len() * repeat);
    for round in 0..repeat {
        for req in mix {
            let resp = client
                .request(req)
                .map_err(|e| format!("round {round}, {}: {e}", req.workload_label()))?;
            responses.push(resp);
        }
        if round == 0 {
            if let Some(b) = &barrier {
                b.wait();
            }
        }
    }
    Ok(responses)
}

#[derive(Serialize)]
struct Summary {
    connections: usize,
    repeat: usize,
    mix: usize,
    responses: usize,
    cached: usize,
    digests: usize,
}

fn main() {
    let mut endpoint: Option<Endpoint> = None;
    let mut connections = 8usize;
    let mut repeat = 2usize;
    let mut request_path: Option<String> = None;
    let mut json = false;
    let mut cluster = false;
    let mut kill_one = false;

    let mut args = Args::from_env();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => endpoint = Some(Endpoint::Unix(PathBuf::from(args.value("--socket")))),
            "--tcp" => endpoint = Some(Endpoint::Tcp(args.value("--tcp"))),
            "--connections" => connections = args.parse("--connections"),
            "--repeat" => repeat = args.parse("--repeat"),
            "--request" => request_path = Some(args.value("--request")),
            "--json" => json = true,
            "--cluster" => cluster = true,
            "--kill-one" => kill_one = true,
            other => cli::fail(&format!("unknown flag {other}")),
        }
    }
    let Some(endpoint) = endpoint else {
        cli::fail("need --socket PATH or --tcp ADDR");
    };
    if connections == 0 || repeat == 0 {
        cli::fail("--connections and --repeat must be >= 1");
    }
    if kill_one && !cluster {
        cli::fail("--kill-one only makes sense with --cluster (a lone worker cannot fail over)");
    }
    if kill_one && repeat < 2 {
        cli::fail("--kill-one needs --repeat >= 2 (the kill lands after round 0)");
    }
    let mix = match &request_path {
        Some(path) => cli::load_requests(path),
        None => default_mix(),
    };

    // the +1 party is this thread: it joins the rendezvous after every
    // connection's first round, then pulls the trigger while round 1+
    // traffic is in flight
    let barrier = kill_one.then(|| std::sync::Arc::new(std::sync::Barrier::new(connections + 1)));
    let workers: Vec<_> = (0..connections)
        .map(|_| {
            let endpoint = endpoint.clone();
            let mix = mix.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || drive(&endpoint, &mix, repeat, barrier))
        })
        .collect();
    let mut failures = Vec::new();
    let mut killed: Option<(String, u32)> = None;
    if let Some(barrier) = &barrier {
        barrier.wait();
        match kill_one_shard(&endpoint) {
            Ok(shard) => {
                if !json {
                    println!(
                        "serve_bench: SIGTERM to shard {} (pid {}) mid-run",
                        shard.0, shard.1
                    );
                }
                killed = Some(shard);
            }
            Err(e) => failures.push(format!("mid-run kill: {e}")),
        }
    }
    let mut responses = Vec::new();
    for (i, handle) in workers.into_iter().enumerate() {
        match handle.join().expect("connection thread never panics") {
            Ok(batch) => responses.extend(batch),
            Err(e) => failures.push(format!("connection {i}: {e}")),
        }
    }

    // Gate 1: every request answered successfully.
    for resp in &responses {
        if let Some(err) = &resp.error {
            failures.push(format!(
                "request {} (digest {}): {}: {}",
                resp.id, resp.digest, err.kind, err.message
            ));
        }
    }

    // Gate 2: per-digest determinism — every response for a digest
    // carries the same serialized report, no matter which worker ran it
    // or whether the cache answered.
    let mut by_digest: BTreeMap<&str, &str> = BTreeMap::new();
    let rendered: Vec<(String, String, bool)> = responses
        .iter()
        .filter(|r| r.is_ok())
        .map(|r| {
            let body = serde_json::to_string(r.report.as_ref().expect("ok response has report"))
                .expect("report serializes");
            (r.digest.clone(), body, r.cached)
        })
        .collect();
    for (digest, body, _) in &rendered {
        match by_digest.get(digest.as_str()) {
            None => {
                by_digest.insert(digest, body);
            }
            Some(first) if *first != body => {
                failures.push(format!(
                    "digest {digest}: reports diverged across responses"
                ));
            }
            Some(_) => {}
        }
    }

    // Gate 3, single daemon: repeats are served from the cache. With D
    // distinct digests at most D responses may miss (one leader each);
    // every other answer must be a cache hit or an in-flight join.
    //
    // Gate 3, cluster: the warm-affinity ratio. A kill moves digests to
    // other shards (a re-run each) and a respawn starts cold, so the
    // exact bound above no longer holds — but if affinity routing
    // works, those extra misses are bounded by the digest count and at
    // least 90% of all responses still come from warm caches. A router
    // that sprayed digests across shards would sit near 1/num_shards.
    let cached = rendered.iter().filter(|(_, _, c)| *c).count();
    let distinct = by_digest.len();
    if failures.is_empty() && rendered.len() > distinct {
        if cluster {
            let ratio = cached as f64 / rendered.len() as f64;
            if ratio < 0.9 {
                failures.push(format!(
                    "affinity underused: {cached} of {} responses warm ({:.1}%), need >= 90%",
                    rendered.len(),
                    ratio * 100.0
                ));
            }
        } else if cached < rendered.len() - distinct {
            failures.push(format!(
                "cache underused: {} of {} responses cached, expected at least {}",
                cached,
                rendered.len(),
                rendered.len() - distinct
            ));
        }
    }

    // Gate 4: the admin plane on the same socket. Scrape the still-
    // running daemon (or router) and hold the replies to the contracts
    // the dashboards depend on.
    let expect_hits = rendered.len() > distinct;
    let scraped = if cluster {
        scrape_cluster_admin(&endpoint, killed.as_ref())
    } else {
        scrape_admin(&endpoint, responses.len() as u64, expect_hits)
    };
    match scraped {
        Ok(stats) => {
            if !json {
                print_stats(&stats);
            }
        }
        Err(mut admin_failures) => failures.append(&mut admin_failures),
    }

    let summary = Summary {
        connections,
        repeat,
        mix: mix.len(),
        responses: responses.len(),
        cached,
        digests: distinct,
    };
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&summary).expect("serialize")
        );
    } else {
        println!(
            "serve_bench: {} connections x {} repeats x {} requests -> {} responses \
             ({} cached, {} distinct digests) on {endpoint}",
            summary.connections,
            summary.repeat,
            summary.mix,
            summary.responses,
            summary.cached,
            summary.digests,
        );
    }
    if !failures.is_empty() {
        eprintln!("serve_bench FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    if cluster {
        println!(
            "serve_bench: all responses ok, reports deterministic per digest, \
             warm affinity held, cluster admin plane healthy{}",
            if killed.is_some() {
                ", killed shard respawned"
            } else {
                ""
            }
        );
    } else {
        println!(
            "serve_bench: all responses ok, reports deterministic per digest, admin plane healthy"
        );
    }
}

/// Reads `path.to.key` out of a nested admin reply.
fn walk<'a>(value: &'a serde_json::Value, path: &str) -> Option<&'a serde_json::Value> {
    path.split('.').try_fold(value, |v, key| v.get(key))
}

fn walk_u64(value: &serde_json::Value, path: &str) -> u64 {
    walk(value, path).and_then(|v| v.as_u64()).unwrap_or(0)
}

/// Scrapes `health`, `stats` and `metrics` from the live daemon and
/// gates them. Returns the `stats` body for the table, or the list of
/// violated contracts.
fn scrape_admin(
    endpoint: &Endpoint,
    min_requests: u64,
    expect_hits: bool,
) -> Result<serde_json::Value, Vec<String>> {
    let mut failures = Vec::new();
    let mut client = match Client::connect(endpoint) {
        Ok(c) => c,
        Err(e) => return Err(vec![format!("admin connect to {endpoint}: {e}")]),
    };

    match client.admin("health") {
        Ok(health) => {
            let status = health.get("status").and_then(|v| v.as_str()).unwrap_or("");
            if status != "ok" {
                failures.push(format!("admin health: status `{status}`, expected `ok`"));
            }
        }
        Err(e) => failures.push(format!("admin health: {e}")),
    }

    let stats: Option<serde_json::Value> = match client.admin("stats") {
        Ok(reply) => match reply.get("stats") {
            Some(stats) => Some(stats.clone()),
            None => {
                failures.push("admin stats: reply missing `stats` body".to_string());
                None
            }
        },
        Err(e) => {
            failures.push(format!("admin stats: {e}"));
            None
        }
    };
    if let Some(stats) = &stats {
        let requests = walk_u64(stats, "requests");
        if requests < min_requests {
            failures.push(format!(
                "admin stats: {requests} requests accounted, this run sent {min_requests}"
            ));
        }
        let hit_ratio = walk(stats, "hit_ratio")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        if expect_hits && hit_ratio <= 0.0 {
            failures.push("admin stats: hit_ratio is 0 after a repeated mix".to_string());
        }
        let p50 = walk_u64(stats, "latency_us.p50_us");
        let p95 = walk_u64(stats, "latency_us.p95_us");
        let p99 = walk_u64(stats, "latency_us.p99_us");
        if !(p50 <= p95 && p95 <= p99) {
            failures.push(format!(
                "admin stats: latency quantiles out of order (p50 {p50}, p95 {p95}, p99 {p99})"
            ));
        }
        if walk_u64(stats, "latency_us.count") == 0 {
            failures.push("admin stats: empty latency digest after traffic".to_string());
        }
        // Pool observability: after a warm pass the engine has run, so
        // the pool must report a size (≥ 1 even when regions run inline
        // on the caller) and at least one executed parallel region.
        let pool_workers = walk_u64(stats, "pool.workers");
        if pool_workers == 0 {
            failures.push("admin stats: pool.workers is 0 (pool counters missing)".to_string());
        }
        if walk_u64(stats, "pool.regions") == 0 {
            failures.push("admin stats: pool.regions is 0 after engine runs".to_string());
        }
        if walk_u64(stats, "pool.tasks_executed") == 0 {
            failures.push("admin stats: pool.tasks_executed is 0 after engine runs".to_string());
        }
    }

    match client.admin("metrics") {
        Ok(metrics) => {
            let prometheus = metrics
                .get("prometheus")
                .and_then(|v| v.as_str())
                .unwrap_or("");
            for needle in [
                "aurora_serve_requests",
                "aurora_serve_latency_us_bucket",
                "aurora_pool_workers",
                "aurora_pool_regions",
            ] {
                if !prometheus.contains(needle) {
                    failures.push(format!(
                        "admin metrics: Prometheus exposition missing `{needle}`"
                    ));
                }
            }
            if metrics.get("snapshot").is_none() {
                failures.push("admin metrics: reply missing raw `snapshot`".to_string());
            }
        }
        Err(e) => failures.push(format!("admin metrics: {e}")),
    }

    match (failures.is_empty(), stats) {
        (true, Some(stats)) => Ok(stats),
        (_, _) => Err(failures),
    }
}

extern "C" {
    // linked through std, same pattern as the daemon's signal handling
    fn kill(pid: i32, sig: i32) -> i32;
}
const SIGTERM: i32 = 15;

/// Picks the first shard with a pid from the router's health census and
/// SIGTERMs it. Returns `(shard name, pid)`.
fn kill_one_shard(endpoint: &Endpoint) -> Result<(String, u32), String> {
    let mut client =
        Client::connect(endpoint).map_err(|e| format!("connect to {endpoint}: {e}"))?;
    let health = client.admin("health").map_err(|e| format!("health: {e}"))?;
    let shards = health
        .get("shards")
        .and_then(|v| v.as_seq())
        .ok_or("health reply carries no shard census — is this a --router daemon?")?;
    for shard in shards {
        let Some(pid) = shard.get("pid").and_then(|v| v.as_u64()) else {
            continue;
        };
        let name = shard
            .get("name")
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string();
        let rc = unsafe { kill(pid as i32, SIGTERM) };
        if rc != 0 {
            return Err(format!("kill(SIGTERM) of shard {name} pid {pid} failed"));
        }
        return Ok((name, pid as u32));
    }
    Err("no shard exposes a pid (external backends cannot be killed from here)".to_string())
}

/// Scrapes the router's `health` and `stats` and gates the cluster
/// contracts. When a shard was killed mid-run, first waits for the
/// supervisor to respawn it back to `ok`. Returns the aggregate stats
/// body for the table, or the violated contracts.
fn scrape_cluster_admin(
    endpoint: &Endpoint,
    killed: Option<&(String, u32)>,
) -> Result<serde_json::Value, Vec<String>> {
    let mut failures = Vec::new();
    let mut client = match Client::connect(endpoint) {
        Ok(c) => c,
        Err(e) => return Err(vec![format!("admin connect to {endpoint}: {e}")]),
    };

    // the killed shard must come back: health `ok` again with the
    // respawn counted — proof the supervisor noticed and healed
    if let Some((name, old_pid)) = killed {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let health = match client.admin("health") {
                Ok(h) => h,
                Err(e) => {
                    failures.push(format!("admin health during respawn wait: {e}"));
                    break;
                }
            };
            let shard = health
                .get("shards")
                .and_then(|v| v.as_seq())
                .and_then(|shards| {
                    shards
                        .iter()
                        .find(|s| s.get("name").and_then(|v| v.as_str()) == Some(name))
                });
            let healed = shard.is_some_and(|s| {
                s.get("health").and_then(|v| v.as_str()) == Some("ok")
                    && s.get("respawns").and_then(|v| v.as_u64()).unwrap_or(0) >= 1
                    && s.get("pid").and_then(|v| v.as_u64()) != Some(*old_pid as u64)
            });
            if healed {
                break;
            }
            if std::time::Instant::now() >= deadline {
                failures.push(format!(
                    "shard {name} (killed as pid {old_pid}) never respawned back to ok"
                ));
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
    }

    match client.admin("health") {
        Ok(health) => {
            let status = health.get("status").and_then(|v| v.as_str()).unwrap_or("");
            if status != "ok" {
                failures.push(format!("router health: status `{status}`, expected `ok`"));
            }
            let role = health.get("role").and_then(|v| v.as_str()).unwrap_or("");
            if role != "router" {
                failures.push(format!(
                    "router health: role `{role}` — --cluster needs an aurora_serve --router"
                ));
            }
            let shard_count = health
                .get("shards")
                .and_then(|v| v.as_seq())
                .map(|s| s.len())
                .unwrap_or(0);
            if shard_count == 0 {
                failures.push("router health: empty shard census".to_string());
            }
        }
        Err(e) => failures.push(format!("router health: {e}")),
    }

    let stats: Option<serde_json::Value> = match client.admin("stats") {
        Ok(reply) => {
            if walk_u64(&reply, "router.routed") == 0 {
                failures.push("router stats: routed counter is 0 after traffic".to_string());
            }
            match reply.get("stats") {
                Some(stats) => Some(stats.clone()),
                None => {
                    failures.push("router stats: reply missing aggregate `stats` body".to_string());
                    None
                }
            }
        }
        Err(e) => {
            failures.push(format!("router stats: {e}"));
            None
        }
    };
    if let Some(stats) = &stats {
        if walk_u64(stats, "shards_reporting") == 0 {
            failures.push("router stats: no shard reported".to_string());
        }
        if walk_u64(stats, "requests") == 0 {
            failures.push("router stats: aggregate requests is 0 after traffic".to_string());
        }
        let p50 = walk_u64(stats, "latency_us.p50_us");
        let p95 = walk_u64(stats, "latency_us.p95_us");
        let p99 = walk_u64(stats, "latency_us.p99_us");
        if !(p50 <= p95 && p95 <= p99) {
            failures.push(format!(
                "router stats: cluster latency quantiles out of order \
                 (p50 {p50}, p95 {p95}, p99 {p99})"
            ));
        }
        if walk_u64(stats, "latency_us.count") == 0 {
            failures.push("router stats: empty cluster latency digest after traffic".to_string());
        }
    }

    match (failures.is_empty(), stats) {
        (true, Some(stats)) => Ok(stats),
        (_, _) => Err(failures),
    }
}

/// Renders the scraped `stats` body as the shared results table.
fn print_stats(stats: &serde_json::Value) {
    let mut table = Table::new("serve_bench: daemon stats").columns(&[
        "requests",
        "hit ratio",
        "cache",
        "inflight",
        "p50 us",
        "p95 us",
        "p99 us",
        "queue-wait p95 us",
    ]);
    table.row(vec![
        Cell::from(walk_u64(stats, "requests")),
        Cell::percent(
            walk(stats, "hit_ratio")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0)
                * 100.0,
            1,
        ),
        Cell::from(format!(
            "{}/{}",
            walk_u64(stats, "cache_size"),
            walk_u64(stats, "cache_capacity")
        )),
        Cell::from(walk_u64(stats, "inflight")),
        Cell::from(walk_u64(stats, "latency_us.p50_us")),
        Cell::from(walk_u64(stats, "latency_us.p95_us")),
        Cell::from(walk_u64(stats, "latency_us.p99_us")),
        Cell::from(walk_u64(stats, "queue_wait_us.p95_us")),
    ]);
    table.print();
}
