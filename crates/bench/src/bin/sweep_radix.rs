//! Scalability sweep: Aurora's execution profile as the PE-array radix
//! grows (16×16 → 48×48) on a fixed workload — the design-space view
//! behind the paper's choice of 32 × 32.

use aurora_bench::protocol::shapes_for;
use aurora_bench::{run_inline, Cell, Table};
use aurora_core::{AcceleratorConfig, AuroraSimulator};
use aurora_graph::Dataset;
use aurora_model::ModelId;

fn main() {
    let spec = Dataset::Pubmed.spec();
    let g = spec.synthesize();
    let shapes = shapes_for(&spec, 16);
    println!(
        "workload: Pubmed, two-layer GCN ({} vertices, {} edges)",
        g.num_vertices(),
        g.num_edges()
    );
    let mut table = Table::new("radix sweep").columns(&[
        "k",
        "PEs",
        "cycles",
        "compute",
        "noc",
        "dram",
        "energy mJ",
    ]);
    for k in [16usize, 24, 32, 40, 48] {
        let cfg = AcceleratorConfig {
            k,
            ..AcceleratorConfig::default()
        };
        let r = run_inline(
            &AuroraSimulator::new(cfg),
            &g,
            ModelId::Gcn,
            &shapes,
            "Pubmed",
            spec.feature_density,
        );
        let compute: u64 = r.layers.iter().map(|l| l.compute_cycles).sum();
        let dram: u64 = r.layers.iter().map(|l| l.dram_cycles).sum();
        table.row(vec![
            k.into(),
            (k * k).into(),
            r.total_cycles.into(),
            compute.into(),
            r.noc_cycles().into(),
            dram.into(),
            Cell::float(r.energy_joules() * 1e3, 3),
        ]);
    }
    table.note(
        "compute scales with PE count while DRAM stays flat — the array \
         size where the curves cross motivates the paper's 32 × 32 choice.",
    );
    table.print();
    table.write_json("results/sweep_radix.json");
}
