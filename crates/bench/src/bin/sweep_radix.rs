//! Scalability sweep: Aurora's execution profile as the PE-array radix
//! grows (16×16 → 48×48) on a fixed workload — the design-space view
//! behind the paper's choice of 32 × 32.

use aurora_bench::protocol::shapes_for;
use aurora_core::{AcceleratorConfig, AuroraSimulator};
use aurora_graph::Dataset;
use aurora_model::ModelId;

fn main() {
    let spec = Dataset::Pubmed.spec();
    let g = spec.synthesize();
    let shapes = shapes_for(&spec, 16);
    println!(
        "workload: Pubmed, two-layer GCN ({} vertices, {} edges)",
        g.num_vertices(),
        g.num_edges()
    );
    println!(
        "{:>6}{:>8}{:>14}{:>14}{:>14}{:>14}{:>12}",
        "k", "PEs", "cycles", "compute", "noc", "dram", "energy mJ"
    );
    for k in [16usize, 24, 32, 40, 48] {
        let cfg = AcceleratorConfig {
            k,
            ..AcceleratorConfig::default()
        };
        let r = AuroraSimulator::new(cfg).simulate_with_density(
            &g,
            ModelId::Gcn,
            &shapes,
            "Pubmed",
            spec.feature_density,
        );
        let compute: u64 = r.layers.iter().map(|l| l.compute_cycles).sum();
        let dram: u64 = r.layers.iter().map(|l| l.dram_cycles).sum();
        println!(
            "{:>6}{:>8}{:>14}{:>14}{:>14}{:>14}{:>12.3}",
            k,
            k * k,
            r.total_cycles,
            compute,
            r.noc_cycles(),
            dram,
            r.energy_joules() * 1e3
        );
    }
    println!(
        "\ncompute scales with PE count while DRAM stays flat — the array\n\
         size where the curves cross motivates the paper's 32 × 32 choice."
    );
}
