//! Fig. 7 — normalized DRAM accesses of the six accelerators on the five
//! datasets (two-layer GCN, equal multipliers/bandwidth/100 MB storage).
//!
//! Paper-reported per-dataset average reductions vs the baselines:
//! Cora 86 %, Citeseer 60 %, Pubmed 15 %, Nell 57 %, Reddit 65 %.

use aurora_bench::{print_normalized, run_standard, Cell, EvalProtocol, Table};

fn main() {
    let sweep = run_standard(&EvalProtocol::standard());
    print_normalized("Fig. 7: DRAM accesses", &sweep, |c| c.dram_accesses as f64);
    // the paper also reports a per-dataset average across baselines
    let mut avg = Table::new("per-dataset average DRAM-access reduction vs baselines").columns(&[
        "dataset",
        "reduction",
        "baselines vs Aurora",
    ]);
    for d in &sweep.datasets {
        let Some(aurora) = sweep.try_cell("Aurora", d).map(|c| c.dram_accesses as f64) else {
            continue;
        };
        let mut logsum = 0.0;
        let mut n = 0;
        for a in &sweep.accelerators {
            if let Some(c) = sweep.try_cell(a, d).filter(|_| a != "Aurora") {
                logsum += (c.dram_accesses as f64 / aurora).ln();
                n += 1;
            }
        }
        let geo = (logsum / n as f64).exp();
        avg.row(vec![
            d.as_str().into(),
            Cell::percent((1.0 - 1.0 / geo) * 100.0, 0),
            Cell::ratio(geo, 2),
        ]);
    }
    avg.print();
    avg.write_json("results/fig7_dram_reductions.json");
    aurora_bench::table::dump_json("results/fig7_dram.json", &sweep);
}
