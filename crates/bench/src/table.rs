//! ASCII table rendering for the figure binaries.

use crate::sweep::{CellResult, SweepResult};

/// Prints a matrix of `metric` values normalised to Aurora's value per
/// dataset (the paper normalises every figure to the proposed
/// accelerator), plus the per-dataset and overall average reduction Aurora
/// achieves versus the baselines. Returns the per-baseline average factor.
pub fn print_normalized(
    title: &str,
    sweep: &SweepResult,
    metric: impl Fn(&CellResult) -> f64,
) -> Vec<(String, f64)> {
    println!("=== {title} (normalized to Aurora) ===");
    print!("{:<10}", "");
    for d in &sweep.datasets {
        print!("{d:>10}");
    }
    println!("{:>10}", "geomean");

    let mut averages = Vec::new();
    for a in &sweep.accelerators {
        print!("{a:<10}");
        let mut logsum = 0.0;
        for d in &sweep.datasets {
            let v = metric(sweep.cell(a, d));
            let base = metric(sweep.cell("Aurora", d));
            let norm = if base == 0.0 { f64::NAN } else { v / base };
            logsum += norm.max(1e-12).ln();
            print!("{norm:>10.2}");
        }
        let geo = (logsum / sweep.datasets.len() as f64).exp();
        println!("{geo:>10.2}");
        averages.push((a.clone(), geo));
    }

    // the paper's headline: Aurora's average reduction vs each baseline
    println!();
    for (a, geo) in &averages {
        if a != "Aurora" && *geo > 0.0 {
            println!(
                "Aurora reduction vs {a}: {:.0}%  (factor {:.2}x)",
                (1.0 - 1.0 / geo) * 100.0,
                geo
            );
        }
    }
    println!();
    averages
}

/// Writes the sweep as JSON next to the binary run (for EXPERIMENTS.md).
pub fn dump_json(path: &str, sweep: &SweepResult) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).ok();
        }
    }
    if let Ok(s) = serde_json::to_string_pretty(sweep) {
        if std::fs::write(path, s).is_ok() {
            println!("(raw results written to {path})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::EvalProtocol;
    use crate::sweep::run_standard;

    #[test]
    fn normalized_table_prints_and_returns_factors() {
        let sweep = run_standard(&EvalProtocol::tiny()[..1]);
        let factors = print_normalized("test", &sweep, |c| c.cycles as f64);
        assert_eq!(factors.len(), 6);
        let aurora = factors.iter().find(|(a, _)| a == "Aurora").unwrap();
        assert!((aurora.1 - 1.0).abs() < 1e-9, "Aurora normalises to 1.0");
    }
}
