//! Normalised-matrix rendering for the figure binaries, built on the
//! shared [`crate::emit`] table emitter.

use crate::emit::{Cell, Table};
use crate::sweep::{CellResult, SweepResult};

/// Builds the matrix of `metric` values normalised to Aurora's value per
/// dataset (the paper normalises every figure to the proposed
/// accelerator), with a geomean column. Returns the table plus the
/// per-baseline geomean factor.
pub fn normalized_table(
    title: &str,
    sweep: &SweepResult,
    metric: impl Fn(&CellResult) -> f64,
) -> (Table, Vec<(String, f64)>) {
    let mut headers: Vec<&str> = vec!["design"];
    headers.extend(sweep.datasets.iter().map(String::as_str));
    headers.push("geomean");
    let mut table = Table::new(format!("{title} (normalized to Aurora)")).columns(&headers);

    let mut averages = Vec::new();
    for a in &sweep.accelerators {
        let mut cells: Vec<Cell> = vec![a.as_str().into()];
        let mut logsum = 0.0;
        let mut present = 0usize;
        for d in &sweep.datasets {
            // a partial sweep renders a missing cell instead of aborting
            let (v, base) = match (sweep.try_cell(a, d), sweep.try_cell("Aurora", d)) {
                (Some(c), Some(aur)) => (metric(c), metric(aur)),
                _ => {
                    cells.push(Cell::Missing);
                    continue;
                }
            };
            let norm = if base == 0.0 { f64::NAN } else { v / base };
            logsum += norm.max(1e-12).ln();
            present += 1;
            cells.push(Cell::float(norm, 2));
        }
        let geo = (logsum / present.max(1) as f64).exp();
        cells.push(Cell::float(geo, 2));
        table.row(cells);
        averages.push((a.clone(), geo));
    }

    // the paper's headline: Aurora's average reduction vs each baseline
    for (a, geo) in &averages {
        if a != "Aurora" && *geo > 0.0 {
            table.note(format!(
                "Aurora reduction vs {a}: {:.0}%  (factor {geo:.2}x)",
                (1.0 - 1.0 / geo) * 100.0
            ));
        }
    }
    (table, averages)
}

/// Prints the normalised matrix and returns the per-baseline average
/// factor (legacy entry point used by the fig binaries).
pub fn print_normalized(
    title: &str,
    sweep: &SweepResult,
    metric: impl Fn(&CellResult) -> f64,
) -> Vec<(String, f64)> {
    let (table, averages) = normalized_table(title, sweep, metric);
    table.print();
    println!();
    averages
}

/// Writes the sweep as JSON next to the binary run (for EXPERIMENTS.md).
pub fn dump_json(path: &str, sweep: &SweepResult) {
    crate::emit::dump_json(path, sweep);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::EvalProtocol;
    use crate::sweep::run_standard;

    #[test]
    fn normalized_table_prints_and_returns_factors() {
        let sweep = run_standard(&EvalProtocol::tiny()[..1]);
        let (table, factors) = normalized_table("test", &sweep, |c| c.cycles as f64);
        assert_eq!(factors.len(), 6);
        let aurora = factors.iter().find(|(a, _)| a == "Aurora").unwrap();
        assert!((aurora.1 - 1.0).abs() < 1e-9, "Aurora normalises to 1.0");
        let rendered = table.render();
        assert!(rendered.contains("geomean"));
        assert!(rendered.contains("Aurora"));
        // one row per accelerator plus header/title, notes for 5 baselines
        assert_eq!(table.num_rows(), 6);
    }
}
