//! The evaluation protocol: datasets, scales and layer shapes.

use aurora_graph::{Dataset, DatasetSpec};
use aurora_model::LayerShape;
use serde::{Deserialize, Serialize};

/// How one dataset is instantiated for the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalProtocol {
    pub dataset: Dataset,
    /// Down-scaling factor applied to |V| and |E| (1 = full size). The
    /// route-walking estimator touches every edge, so the largest graphs
    /// are scaled to keep the harness interactive; scaling preserves the
    /// degree-distribution shape (R-MAT is self-similar) and the
    /// feature/class dimensions that set per-message volume. DESIGN.md's
    /// substitution table documents this.
    pub scale: usize,
    /// Hidden width of the two-layer GCN (Kipf & Welling use 16).
    pub hidden: usize,
}

impl EvalProtocol {
    /// The paper's five-dataset suite at harness-friendly scales.
    pub fn standard() -> Vec<EvalProtocol> {
        Dataset::ALL
            .iter()
            .map(|&dataset| EvalProtocol {
                dataset,
                scale: match dataset {
                    Dataset::Cora | Dataset::Citeseer | Dataset::Pubmed => 1,
                    Dataset::Nell => 2,
                    Dataset::Reddit => 16,
                },
                hidden: 16,
            })
            .collect()
    }

    /// A miniature suite for fast tests.
    pub fn tiny() -> Vec<EvalProtocol> {
        Dataset::ALL
            .iter()
            .map(|&dataset| EvalProtocol {
                dataset,
                scale: match dataset {
                    Dataset::Cora | Dataset::Citeseer => 4,
                    Dataset::Pubmed => 16,
                    Dataset::Nell => 64,
                    Dataset::Reddit => 512,
                },
                hidden: 16,
            })
            .collect()
    }

    /// The scaled dataset spec.
    pub fn spec(&self) -> DatasetSpec {
        self.dataset.spec().scaled(self.scale)
    }
}

/// The two-layer GCN shapes for a dataset: `F → hidden → classes`.
pub fn shapes_for(spec: &DatasetSpec, hidden: usize) -> [LayerShape; 2] {
    [
        LayerShape::new(spec.feature_dim, hidden),
        LayerShape::new(hidden, spec.classes.max(2)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_covers_all_datasets() {
        let p = EvalProtocol::standard();
        assert_eq!(p.len(), 5);
        assert!(p
            .iter()
            .any(|e| e.dataset == Dataset::Reddit && e.scale > 1));
        assert!(p.iter().any(|e| e.dataset == Dataset::Cora && e.scale == 1));
    }

    #[test]
    fn shapes_follow_dataset_dims() {
        let spec = Dataset::Cora.spec();
        let s = shapes_for(&spec, 16);
        assert_eq!(s[0].f_in, 1433);
        assert_eq!(s[0].f_out, 16);
        assert_eq!(s[1].f_in, 16);
        assert_eq!(s[1].f_out, 7);
    }
}
