//! Shared result emitter for the figure/table binaries.
//!
//! Every bench binary used to hand-roll `print!("{:<10}{:>12.2}…")`
//! column layouts; this module replaces those with one [`Table`] builder
//! that renders an aligned human-readable table, a CSV form, and a JSON
//! sidecar (`results/<name>.json`) for downstream tooling.

use serde::{Serialize, Value};

/// One table cell. Strings align left; numbers align right.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    Str(String),
    UInt(u64),
    Int(i64),
    /// Fixed-precision float.
    Float {
        value: f64,
        precision: usize,
    },
    /// Rendered `{value:.precision}%`.
    Percent {
        value: f64,
        precision: usize,
    },
    /// Rendered `{value:.precision}x`.
    Ratio {
        value: f64,
        precision: usize,
    },
    /// Rendered `—` (and `null` in JSON): not applicable.
    Missing,
}

impl Cell {
    /// Fixed-precision float cell.
    pub fn float(value: f64, precision: usize) -> Self {
        Cell::Float { value, precision }
    }

    /// Percentage cell (`value` already in percent units).
    pub fn percent(value: f64, precision: usize) -> Self {
        Cell::Percent { value, precision }
    }

    /// Ratio cell rendered with an `x` suffix.
    pub fn ratio(value: f64, precision: usize) -> Self {
        Cell::Ratio { value, precision }
    }

    fn text(&self) -> String {
        match self {
            Cell::Str(s) => s.clone(),
            Cell::UInt(v) => v.to_string(),
            Cell::Int(v) => v.to_string(),
            Cell::Float { value, precision } => format!("{value:.precision$}"),
            Cell::Percent { value, precision } => format!("{value:.precision$}%"),
            Cell::Ratio { value, precision } => format!("{value:.precision$}x"),
            Cell::Missing => "—".to_string(),
        }
    }

    fn is_left_aligned(&self) -> bool {
        matches!(self, Cell::Str(_))
    }

    fn to_value(&self) -> Value {
        match self {
            Cell::Str(s) => Value::Str(s.clone()),
            Cell::UInt(v) => Value::UInt(*v),
            Cell::Int(v) => Value::Int(*v),
            Cell::Float { value, .. } | Cell::Percent { value, .. } | Cell::Ratio { value, .. } => {
                Value::Float(*value)
            }
            Cell::Missing => Value::Null,
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Str(s.to_string())
    }
}
impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Str(s)
    }
}
impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::UInt(v)
    }
}
impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::UInt(v as u64)
    }
}
impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::Int(v)
    }
}

/// An aligned results table with optional footnotes.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<Cell>>,
    notes: Vec<String>,
}

impl Table {
    /// An empty table titled `title`.
    pub fn new(title: impl Into<String>) -> Self {
        Table {
            title: title.into(),
            ..Table::default()
        }
    }

    /// Sets the column headers (builder style).
    pub fn columns(mut self, names: &[&str]) -> Self {
        self.columns = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Appends one row.
    ///
    /// # Panics
    /// Panics if the cell count doesn't match the column count.
    pub fn row(&mut self, cells: Vec<Cell>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match the {} columns of `{}`",
            self.columns.len(),
            self.title
        );
        self.rows.push(cells);
        self
    }

    /// Appends a footnote printed under the table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The aligned human-readable rendering.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.chars().count()).collect();
        let texts: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(Cell::text).collect())
            .collect();
        for row in &texts {
            for (i, t) in row.iter().enumerate() {
                widths[i] = widths[i].max(t.chars().count());
            }
        }

        let mut out = String::new();
        out.push_str(&format!("=== {} ===\n", self.title));
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            // headers follow their column's data alignment (first row wins)
            let left = self
                .rows
                .first()
                .map(|r| r[i].is_left_aligned())
                .unwrap_or(true);
            out.push_str(&pad(c, widths[i], left));
        }
        out.push('\n');
        for (row, text) in self.rows.iter().zip(&texts) {
            for (i, t) in text.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&pad(t, widths[i], row[i].is_left_aligned()));
            }
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// RFC-4180-ish CSV (quotes only where needed).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(
                &row.iter()
                    .map(|c| esc(&c.text()))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        out
    }

    /// The JSON sidecar form: `{title, columns, rows, notes}` with typed
    /// cell values (`Missing` → `null`).
    pub fn to_json_value(&self) -> Value {
        Value::Map(vec![
            ("title".into(), Value::Str(self.title.clone())),
            (
                "columns".into(),
                Value::Seq(self.columns.iter().map(|c| Value::Str(c.clone())).collect()),
            ),
            (
                "rows".into(),
                Value::Seq(
                    self.rows
                        .iter()
                        .map(|r| Value::Seq(r.iter().map(Cell::to_value).collect()))
                        .collect(),
                ),
            ),
            (
                "notes".into(),
                Value::Seq(self.notes.iter().map(|n| Value::Str(n.clone())).collect()),
            ),
        ])
    }

    /// Writes the JSON sidecar, creating parent directories.
    pub fn write_json(&self, path: &str) {
        write_json_payload(path, &self.to_json_value());
    }
}

fn pad(s: &str, width: usize, left: bool) -> String {
    let n = s.chars().count();
    let fill = " ".repeat(width.saturating_sub(n));
    if left {
        format!("{s}{fill}")
    } else {
        format!("{fill}{s}")
    }
}

/// Serializes any value as pretty JSON to `path` (parents created),
/// reporting the write on stdout. Shared by the table sidecars and the
/// raw sweep dumps.
pub fn dump_json<T: Serialize>(path: &str, value: &T) {
    write_json_payload(path, &value.to_value());
}

fn write_json_payload(path: &str, value: &Value) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).ok();
        }
    }
    if let Ok(s) = serde_json::to_string_pretty(value) {
        if std::fs::write(path, s).is_ok() {
            println!("(raw results written to {path})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("sample").columns(&["name", "cycles", "speedup"]);
        t.row(vec!["Aurora".into(), 100u64.into(), Cell::ratio(1.0, 2)]);
        t.row(vec!["HyGCN".into(), 900u64.into(), Cell::ratio(9.0, 2)]);
        t.note("ratios are baseline/Aurora");
        t
    }

    #[test]
    fn render_aligns_columns() {
        let r = sample().render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[0], "=== sample ===");
        // header + 2 rows + note
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("name"));
        // numeric columns right-align: both cycle values end at same col
        let c1 = lines[2].find("100").unwrap() + 3;
        let c2 = lines[3].find("900").unwrap() + 3;
        assert_eq!(c1, c2);
        assert!(lines[4].starts_with("note:"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        let mut t = Table::new("t").columns(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("t").columns(&["a", "b"]);
        t.row(vec!["x,y".into(), 1u64.into()]);
        assert_eq!(t.to_csv(), "a,b\n\"x,y\",1\n");
    }

    #[test]
    fn json_sidecar_is_typed() {
        let v = sample().to_json_value();
        let s = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&s).unwrap();
        let rows = back.get("rows").and_then(Value::as_seq).unwrap();
        assert_eq!(rows.len(), 2);
        let first = rows[0].as_seq().unwrap();
        assert_eq!(first[0].as_str(), Some("Aurora"));
        assert_eq!(first[1].as_u64(), Some(100));
        // Missing renders as null
        let mut t = Table::new("m").columns(&["a"]);
        t.row(vec![Cell::Missing]);
        assert!(serde_json::to_string(&t.to_json_value())
            .unwrap()
            .contains("null"));
    }
}
