//! Human-readable rendering of a run's host-side span profile.
//!
//! `aurora_sim --host-profile` (and anything else holding a
//! [`HostProfile`]) prints it through the shared [`Table`] emitter: one
//! row per stage with wall/self split, share of total wall time, and —
//! when the counting allocator was on — allocation counts and bytes.

use crate::emit::{Cell, Table};
use aurora_core::HostProfile;

/// Builds the stage-breakdown table for `profile`.
pub fn table(profile: &HostProfile) -> Table {
    let mut t = Table::new(format!(
        "host profile — {} µs wall, {:.1}% covered by top-level spans",
        profile.total_wall_us,
        profile.coverage() * 100.0
    ))
    .columns(&[
        "stage", "calls", "wall µs", "self µs", "% wall", "allocs", "alloc KB",
    ]);
    for s in &profile.stages {
        let share = if profile.total_wall_us > 0 {
            100.0 * s.wall_us as f64 / profile.total_wall_us as f64
        } else {
            0.0
        };
        let (allocs, alloc_kb) = if profile.alloc_profiled {
            (
                Cell::UInt(s.alloc_count),
                Cell::float(s.alloc_bytes as f64 / 1024.0, 1),
            )
        } else {
            (Cell::Missing, Cell::Missing)
        };
        t.row(vec![
            s.stage.label().into(),
            s.calls.into(),
            s.wall_us.into(),
            s.self_us.into(),
            Cell::percent(share, 1),
            allocs,
            alloc_kb,
        ]);
    }
    t.note("self = wall minus time inside nested spans; mapping nests inside tile_precompute");
    if !profile.alloc_profiled {
        t.note("allocation columns need AURORA_ALLOC_PROFILE=1");
    }
    t
}

/// Prints the table to stdout.
pub fn print(profile: &HostProfile) {
    table(profile).print();
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_core::{HostStage, Stage};

    fn profile(alloc: bool) -> HostProfile {
        HostProfile {
            total_wall_us: 1_000,
            alloc_profiled: alloc,
            stages: vec![
                HostStage {
                    stage: Stage::Partition,
                    calls: 2,
                    wall_us: 600,
                    self_us: 600,
                    alloc_count: 42,
                    alloc_bytes: 4096,
                },
                HostStage {
                    stage: Stage::EngineWalk,
                    calls: 2,
                    wall_us: 400,
                    self_us: 400,
                    alloc_count: 7,
                    alloc_bytes: 512,
                },
            ],
        }
    }

    #[test]
    fn renders_one_row_per_stage_with_shares() {
        let r = table(&profile(true)).render();
        assert!(r.contains("partition"));
        assert!(r.contains("engine_walk"));
        assert!(r.contains("60.0%"));
        assert!(r.contains("42"));
        assert!(
            !r.contains("AURORA_ALLOC_PROFILE"),
            "alloc note only when off"
        );
    }

    #[test]
    fn alloc_columns_are_missing_without_the_gate() {
        let r = table(&profile(false)).render();
        assert!(r.contains("—"), "missing cells render as em dash");
        assert!(r.contains("AURORA_ALLOC_PROFILE"));
    }
}
