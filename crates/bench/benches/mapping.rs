//! Microbenchmarks of the mapping path (§IV): the decision must stay far
//! below the tile-execution time it overlaps with.

use aurora_graph::generate;
use aurora_mapping::{degree_aware, hashing, nqueen, plan::plan_bypass};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_mapping(c: &mut Criterion) {
    let k = 32;
    let n = 8192;
    let g = generate::rmat(n, 8 * n, Default::default(), 7);
    let degrees = g.degrees();

    c.bench_function("nqueen_solve_32", |b| {
        b.iter(|| nqueen::solve(black_box(32)).unwrap())
    });

    c.bench_function("degree_aware_map_8k_vertices", |b| {
        b.iter(|| degree_aware::map(black_box(0..n as u32), &degrees, k, 16))
    });

    c.bench_function("hashing_map_8k_vertices", |b| {
        b.iter(|| hashing::map(black_box(0..n as u32), &degrees, k, 16))
    });

    let mapping = degree_aware::map(0..n as u32, &degrees, k, 16);
    c.bench_function("plan_bypass_8k_vertices", |b| {
        b.iter(|| plan_bypass(black_box(&mapping), g.edges()))
    });
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
