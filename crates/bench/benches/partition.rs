//! Algorithm 2 microbenchmark: the full a ∈ [0, 1024] sweep per layer.

use aurora_model::{LayerShape, ModelId, Workload};
use aurora_partition::partition;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_partition(c: &mut Criterion) {
    let counts = Workload::from_sizes(ModelId::Gcn, 100_000, 1_000_000, LayerShape::new(512, 128))
        .op_counts();
    c.bench_function("partition_sweep_1024_pes", |b| {
        b.iter(|| partition(black_box(&counts), 1024, 22.4e9))
    });

    c.bench_function("workload_characterisation", |b| {
        b.iter(|| {
            Workload::from_sizes(
                black_box(ModelId::GGcn),
                100_000,
                1_000_000,
                LayerShape::new(512, 128),
            )
            .op_counts()
        })
    });
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
