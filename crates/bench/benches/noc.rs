//! NoC microbenchmarks: the cycle-level engine's step loop and the
//! analytic route-walking estimator.

use aurora_core::noc_model;
use aurora_graph::generate;
use aurora_mapping::degree_aware;
use aurora_noc::{run_pattern, BypassSegment, Network, NocConfig, Pattern};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_noc(c: &mut Criterion) {
    c.bench_function("cycle_engine_drain_8x8_random", |b| {
        b.iter(|| {
            let mut net = Network::new(NocConfig::mesh(8));
            for i in 0..64usize {
                net.inject(i, (i * 37 + 11) % 64, 16);
            }
            net.drain(1_000_000).unwrap()
        })
    });

    c.bench_function("cycle_engine_drain_8x8_bypass", |b| {
        b.iter(|| {
            let cfg = NocConfig::with_bypass(
                8,
                vec![BypassSegment {
                    index: 2,
                    from: 0,
                    to: 7,
                }],
                vec![BypassSegment {
                    index: 5,
                    from: 0,
                    to: 7,
                }],
            );
            let mut net = Network::new(cfg);
            for i in 0..64usize {
                net.inject(i, (i * 37 + 11) % 64, 16);
            }
            net.drain(1_000_000).unwrap()
        })
    });

    c.bench_function("pattern_transpose_8x8", |b| {
        b.iter(|| run_pattern(NocConfig::mesh(8), Pattern::Transpose, 4, 16))
    });

    let g = generate::rmat(8192, 65_536, Default::default(), 3);
    let mapping = degree_aware::map(0..8192, &g.degrees(), 32, 8);
    let cfg = NocConfig::mesh(32);
    c.bench_function("estimator_route_walk_64k_edges", |b| {
        b.iter(|| {
            noc_model::aggregation_traffic(
                black_box(&cfg),
                &mapping,
                g.edges(),
                64,
                noc_model::DEFAULT_LINK_UTILISATION,
            )
        })
    });
}

criterion_group!(benches, bench_noc);
criterion_main!(benches);
