//! DRAM-model microbenchmarks: FR-FCFS scheduling under streaming and
//! scattered access patterns.

use aurora_mem::{Dram, DramRequest};
use criterion::{criterion_group, criterion_main, Criterion};

fn run(addrs: impl Iterator<Item = u64>) -> u64 {
    let mut d = Dram::ddr3();
    for (i, addr) in addrs.enumerate() {
        d.submit(DramRequest {
            id: i as u64,
            addr,
            is_write: false,
            arrival: 0,
        });
    }
    d.run_to_completion().finish_cycle
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("frfcfs_sequential_4k_bursts", |b| {
        b.iter(|| run((0..4096u64).map(|i| i * 64)))
    });

    c.bench_function("frfcfs_scattered_1k_bursts", |b| {
        // one bank, a new row per access — the worst case the scheduler
        // has to queue through
        b.iter(|| run((0..1024u64).map(|i| i * 8 * 8 * 1024)))
    });

    c.bench_function("frfcfs_bank_parallel_1k_bursts", |b| {
        b.iter(|| run((0..1024u64).map(|i| (i % 8) * 64 + (i / 8) * 8 * 8 * 1024)))
    });
}

criterion_group!(benches, bench_dram);
criterion_main!(benches);
