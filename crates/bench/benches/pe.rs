//! PE-datapath microbenchmarks: the Fig. 6 configurations.

use aurora_model::Activation;
use aurora_pe::{PeConfig, ProcessingElement};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_pe(c: &mut Criterion) {
    let w: Vec<f64> = (0..128 * 128).map(|i| (i % 17) as f64 * 0.1).collect();
    let x: Vec<f64> = (0..128).map(|i| i as f64 * 0.01).collect();

    c.bench_function("pe_matvec_128x128", |b| {
        let mut pe = ProcessingElement::new(PeConfig::default());
        b.iter(|| pe.exec_matvec(black_box(&w), 128, 128, &x))
    });

    c.bench_function("pe_dot_128", |b| {
        let mut pe = ProcessingElement::new(PeConfig::default());
        b.iter(|| pe.exec_dot(black_box(&x), &x))
    });

    c.bench_function("pe_scalar_mul_128", |b| {
        let mut pe = ProcessingElement::new(PeConfig::default());
        b.iter(|| pe.exec_scalar_mul(black_box(0.5), &x))
    });

    c.bench_function("pe_accumulate_128", |b| {
        let mut pe = ProcessingElement::new(PeConfig::default());
        let mut acc = vec![0.0; 128];
        b.iter(|| pe.exec_accumulate(black_box(&mut acc), &x))
    });

    c.bench_function("ppu_softmax_128", |b| {
        let mut pe = ProcessingElement::new(PeConfig::default());
        let mut v = x.clone();
        b.iter(|| pe.exec_activate(black_box(&mut v), Activation::Softmax))
    });
}

criterion_group!(benches, bench_pe);
criterion_main!(benches);
