//! End-to-end simulator benchmarks: one full Aurora run and one baseline
//! run on a scaled Cora.

use aurora_baselines::{BaselineKind, BaselineParams};
use aurora_core::functional::run_gcn_layer;
use aurora_core::{AcceleratorConfig, AuroraSimulator, SimRequest};
use aurora_graph::Dataset;
use aurora_graph::{generate, FeatureMatrix};
use aurora_mapping::degree_aware;
use aurora_model::reference::init_weights;
use aurora_model::{LayerShape, ModelId};
use aurora_pe::PeConfig;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_engine(c: &mut Criterion) {
    let spec = Dataset::Cora.spec().scaled(2);
    let g = spec.synthesize();
    let shapes = [
        LayerShape::new(spec.feature_dim, 16),
        LayerShape::new(16, spec.classes),
    ];

    c.bench_function("aurora_simulate_cora_half", |b| {
        let sim = AuroraSimulator::new(AcceleratorConfig::default());
        let req = SimRequest::builder(ModelId::Gcn)
            .config(AcceleratorConfig::default())
            .inline_graph(g.clone())
            .layers(&shapes)
            .workload("Cora/2")
            .input_density(spec.feature_density)
            .build()
            .unwrap();
        b.iter(|| sim.run(black_box(&req)).unwrap())
    });

    c.bench_function("functional_gcn_layer_1k_vertices", |b| {
        let g2 = generate::rmat(1024, 8192, Default::default(), 5);
        let x = FeatureMatrix::random(1024, 16, 1.0, 1);
        let w = init_weights(8, 16, 2);
        let mapping = degree_aware::map(0..1024, &g2.degrees(), 8, 32);
        b.iter(|| run_gcn_layer(black_box(&g2), &x, &w, 8, &mapping, PeConfig::default()))
    });

    c.bench_function("baseline_gcnax_simulate_cora_half", |b| {
        let gcnax = BaselineKind::Gcnax.build(BaselineParams::default());
        b.iter(|| gcnax.simulate(black_box(&g), ModelId::Gcn, &shapes, "Cora/2"))
    });
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
