//! NoC configuration: topology mode and bypass-link segmentation.

use crate::error::{BypassKind, NocError};
use crate::topology::NodeId;
use serde::{Deserialize, Serialize};

/// How the reconfigurable fabric is currently wired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyMode {
    /// Plain 2-D mesh (baseline wiring; bypass switches all open).
    Mesh,
    /// Mesh plus configured bypass segments (aggregation sub-accelerator).
    MeshWithBypass,
    /// Each row closed into a unidirectional ring using the row bypass as
    /// the wrap-up link (weight-stationary vertex-update dataflow).
    Rings,
}

/// One configured express segment of a row/column bypass link, attaching
/// the routers at positions `from` and `to` (`from < to`) of row/column
/// `index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BypassSegment {
    /// Row index (for horizontal segments) or column index (vertical).
    pub index: usize,
    /// Start position along the row (column coordinate) or column (row
    /// coordinate).
    pub from: usize,
    /// End position; must exceed `from + 1` to be useful (an express link
    /// over adjacent routers duplicates the mesh link but is allowed).
    pub to: usize,
}

/// Full NoC configuration.
///
/// `Eq`/`Hash` make a configuration usable as a cache key (the route
/// tables of `aurora_noc::routing::RouteTable` are pure functions of the
/// configuration, so the engine memoizes them per distinct config).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NocConfig {
    /// Mesh radix: the network is `k × k`.
    pub k: usize,
    /// Virtual channels per input port.
    pub vcs: usize,
    /// Flit slots per VC buffer.
    pub vc_depth: usize,
    /// Payload words (f64) carried per flit.
    pub words_per_flit: usize,
    /// Wiring mode.
    pub mode: TopologyMode,
    /// Configured horizontal bypass segments (≤ 1 physical link per row,
    /// segmentable into disjoint spans).
    pub row_bypass: Vec<BypassSegment>,
    /// Configured vertical bypass segments.
    pub col_bypass: Vec<BypassSegment>,
}

impl NocConfig {
    /// A plain mesh with the paper's router provisioning (2 VCs, 4-deep).
    pub fn mesh(k: usize) -> Self {
        Self {
            k,
            vcs: 2,
            vc_depth: 4,
            words_per_flit: 4,
            mode: TopologyMode::Mesh,
            row_bypass: Vec::new(),
            col_bypass: Vec::new(),
        }
    }

    /// Mesh with the given bypass segments.
    pub fn with_bypass(k: usize, rows: Vec<BypassSegment>, cols: Vec<BypassSegment>) -> Self {
        Self {
            mode: TopologyMode::MeshWithBypass,
            row_bypass: rows,
            col_bypass: cols,
            ..Self::mesh(k)
        }
    }

    /// Row rings for the weight-stationary vertex-update dataflow.
    pub fn rings(k: usize) -> Self {
        Self {
            mode: TopologyMode::Rings,
            ..Self::mesh(k)
        }
    }

    /// A stable 64-bit content fingerprint of the configuration (FNV-1a
    /// over radix, router provisioning, mode and every bypass segment).
    /// Route tables and traffic profiles are pure functions of the
    /// config, so a cached artifact stamped with this signature is valid
    /// exactly while the signature matches — the invalidation hook the
    /// incremental session engine checks before replaying a clean tile's
    /// profile.
    pub fn signature(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(self.k as u64);
        mix(self.vcs as u64);
        mix(self.vc_depth as u64);
        mix(self.words_per_flit as u64);
        mix(match self.mode {
            TopologyMode::Mesh => 0,
            TopologyMode::MeshWithBypass => 1,
            TopologyMode::Rings => 2,
        });
        for seg in self.row_bypass.iter().chain(self.col_bypass.iter()) {
            mix(seg.index as u64);
            mix(seg.from as u64);
            mix(seg.to as u64);
        }
        mix(self.row_bypass.len() as u64);
        h
    }

    /// Validates structural invariants: positive radix/VCs/buffer
    /// depth/payload, segments in range and running forward, no two
    /// segments on one row/column overlapping or sharing a wire tap
    /// (each physical tap attaches one segment), and bypass segments
    /// only in `MeshWithBypass` mode. A config that passes cannot make
    /// `compute_route`/`next_node` step off the fabric.
    pub fn validate(&self) -> Result<(), NocError> {
        if self.k == 0 {
            return Err(NocError::ZeroRadix);
        }
        if self.vcs == 0 {
            return Err(NocError::NoVirtualChannels);
        }
        if self.vc_depth == 0 {
            return Err(NocError::ZeroVcDepth);
        }
        if self.words_per_flit == 0 {
            return Err(NocError::EmptyFlitPayload);
        }
        if self.mode != TopologyMode::MeshWithBypass
            && !(self.row_bypass.is_empty() && self.col_bypass.is_empty())
        {
            return Err(NocError::BypassRequiresBypassMode);
        }
        for (kind, segs) in [
            (BypassKind::Row, &self.row_bypass),
            (BypassKind::Col, &self.col_bypass),
        ] {
            let mut spans: std::collections::HashMap<usize, Vec<(usize, usize)>> =
                std::collections::HashMap::new();
            for s in segs.iter() {
                if s.index >= self.k {
                    return Err(NocError::SegmentOutOfRange {
                        kind,
                        index: s.index,
                        value: s.index,
                        k: self.k,
                    });
                }
                if s.from >= s.to {
                    return Err(NocError::SegmentNotForward {
                        kind,
                        index: s.index,
                        from: s.from,
                        to: s.to,
                    });
                }
                if s.to >= self.k {
                    return Err(NocError::SegmentOutOfRange {
                        kind,
                        index: s.index,
                        value: s.to,
                        k: self.k,
                    });
                }
                spans.entry(s.index).or_default().push((s.from, s.to));
            }
            for (idx, mut list) in spans {
                list.sort_unstable();
                for w in list.windows(2) {
                    if w[0].1 >= w[1].0 {
                        return Err(NocError::SegmentOverlap { kind, index: idx });
                    }
                }
            }
        }
        Ok(())
    }

    /// The horizontal bypass attachment of node `id`, if any: the node id
    /// at the other end of the segment.
    pub fn h_bypass_peer(&self, id: NodeId) -> Option<NodeId> {
        let (x, y) = (id % self.k, id / self.k);
        self.row_bypass.iter().find_map(|s| {
            if s.index != y {
                None
            } else if s.from == x {
                Some(y * self.k + s.to)
            } else if s.to == x {
                Some(y * self.k + s.from)
            } else {
                None
            }
        })
    }

    /// The vertical bypass attachment of node `id`, if any.
    pub fn v_bypass_peer(&self, id: NodeId) -> Option<NodeId> {
        let (x, y) = (id % self.k, id / self.k);
        self.col_bypass.iter().find_map(|s| {
            if s.index != x {
                None
            } else if s.from == y {
                Some(s.to * self.k + x)
            } else if s.to == y {
                Some(s.from * self.k + x)
            } else {
                None
            }
        })
    }

    /// Flits needed to carry a `msg_words`-word message (at least one —
    /// a zero-word message still occupies a header flit).
    pub fn flits_per_message(&self, msg_words: usize) -> u64 {
        msg_words.div_ceil(self.words_per_flit).max(1) as u64
    }

    /// Number of reconfigurable switch settings changed when reprogramming
    /// from `self` to `other` — used for reconfiguration latency/energy.
    /// The paper reports the latency of one full reconfiguration of a
    /// `k × k` array as `2k − 1` cycles (§VI-D: 63 cycles for 32 × 32).
    pub fn reconfiguration_cycles(&self) -> u64 {
        (2 * self.k - 1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_default_validates() {
        NocConfig::mesh(4).validate().unwrap();
        NocConfig::rings(8).validate().unwrap();
    }

    #[test]
    fn reconfig_latency_matches_paper() {
        assert_eq!(NocConfig::mesh(32).reconfiguration_cycles(), 63);
    }

    #[test]
    fn bypass_peers() {
        let cfg = NocConfig::with_bypass(
            4,
            vec![BypassSegment {
                index: 1,
                from: 0,
                to: 3,
            }],
            vec![BypassSegment {
                index: 2,
                from: 1,
                to: 3,
            }],
        );
        cfg.validate().unwrap();
        // row 1: nodes 4..7; segment joins node 4 and node 7
        assert_eq!(cfg.h_bypass_peer(4), Some(7));
        assert_eq!(cfg.h_bypass_peer(7), Some(4));
        assert_eq!(cfg.h_bypass_peer(5), None);
        assert_eq!(cfg.h_bypass_peer(0), None);
        // col 2: segment joins (2, y=1) = 6 and (2, y=3) = 14
        assert_eq!(cfg.v_bypass_peer(6), Some(14));
        assert_eq!(cfg.v_bypass_peer(14), Some(6));
        assert_eq!(cfg.v_bypass_peer(2), None);
    }

    #[test]
    fn segmented_row_multiple_spans() {
        let cfg = NocConfig::with_bypass(
            8,
            vec![
                BypassSegment {
                    index: 0,
                    from: 0,
                    to: 3,
                },
                BypassSegment {
                    index: 0,
                    from: 4,
                    to: 7,
                },
            ],
            vec![],
        );
        cfg.validate().unwrap();
        assert_eq!(cfg.h_bypass_peer(0), Some(3));
        assert_eq!(cfg.h_bypass_peer(4), Some(7));
    }

    #[test]
    fn overlapping_segments_rejected() {
        let err = NocConfig::with_bypass(
            8,
            vec![
                BypassSegment {
                    index: 0,
                    from: 0,
                    to: 4,
                },
                BypassSegment {
                    index: 0,
                    from: 4,
                    to: 7,
                },
            ],
            vec![],
        )
        .validate()
        .unwrap_err();
        assert_eq!(
            err,
            crate::NocError::SegmentOverlap {
                kind: crate::BypassKind::Row,
                index: 0
            }
        );
    }

    #[test]
    fn out_of_range_segment_rejected() {
        let err = NocConfig::with_bypass(
            4,
            vec![BypassSegment {
                index: 0,
                from: 0,
                to: 4,
            }],
            vec![],
        )
        .validate()
        .unwrap_err();
        assert!(matches!(
            err,
            crate::NocError::SegmentOutOfRange { value: 4, k: 4, .. }
        ));
    }

    #[test]
    fn bypass_needs_right_mode() {
        let mut cfg = NocConfig::mesh(4);
        cfg.row_bypass.push(BypassSegment {
            index: 0,
            from: 0,
            to: 2,
        });
        assert_eq!(
            cfg.validate().unwrap_err(),
            crate::NocError::BypassRequiresBypassMode
        );
    }

    #[test]
    fn degenerate_and_zero_configs_rejected() {
        let err = NocConfig::with_bypass(
            8,
            vec![BypassSegment {
                index: 0,
                from: 3,
                to: 3,
            }],
            vec![],
        )
        .validate()
        .unwrap_err();
        assert!(matches!(err, crate::NocError::SegmentNotForward { .. }));

        let mut cfg = NocConfig::mesh(4);
        cfg.vcs = 0;
        assert_eq!(
            cfg.validate().unwrap_err(),
            crate::NocError::NoVirtualChannels
        );
        let mut cfg = NocConfig::mesh(4);
        cfg.vc_depth = 0;
        assert_eq!(cfg.validate().unwrap_err(), crate::NocError::ZeroVcDepth);
        let mut cfg = NocConfig::mesh(4);
        cfg.words_per_flit = 0;
        assert_eq!(
            cfg.validate().unwrap_err(),
            crate::NocError::EmptyFlitPayload
        );
        assert_eq!(
            NocConfig::mesh(0).validate().unwrap_err(),
            crate::NocError::ZeroRadix
        );
    }
}
