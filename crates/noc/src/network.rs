//! The cycle-driven network engine.

use crate::config::{NocConfig, TopologyMode};
use crate::error::NocError;
use crate::flit::{Flit, Packet, PacketId};
use crate::router::Router;
use crate::routing::{compute_route, next_vc};
use crate::stats::NetworkStats;
use crate::topology::{NodeId, Port};
use std::collections::VecDeque;

/// A `k × k` flexible NoC instance.
#[derive(Debug, Clone)]
pub struct Network {
    cfg: NocConfig,
    routers: Vec<Router>,
    /// `links[node][port] = (downstream node, downstream input port)`.
    links: Vec<[Option<(NodeId, Port)>; Port::COUNT]>,
    /// Unbounded per-node injection queues (PE → router back-pressure is
    /// visible as queue growth).
    inject_q: Vec<VecDeque<Flit>>,
    /// VC currently assigned to the packet being injected at each node.
    inject_vc: Vec<Option<usize>>,
    next_packet: PacketId,
    cycle: u64,
    stats: NetworkStats,
    /// Exact per-packet latencies, recorded at tail ejection.
    latencies: Vec<u64>,
}

impl Network {
    /// Builds and validates the network.
    ///
    /// # Panics
    /// Panics when `cfg` fails validation. Use [`Network::try_new`] to
    /// handle malformed configurations gracefully.
    pub fn new(cfg: NocConfig) -> Self {
        Self::try_new(cfg).expect("invalid NoC config")
    }

    /// Builds the network, reporting a malformed configuration as a
    /// [`NocError`] instead of panicking.
    pub fn try_new(cfg: NocConfig) -> Result<Self, NocError> {
        cfg.validate()?;
        let k = cfg.k;
        let n = k * k;
        let mut links = vec![[None; Port::COUNT]; n];
        for (id, node_links) in links.iter_mut().enumerate() {
            let (x, y) = (id % k, id / k);
            if y > 0 {
                node_links[Port::North.index()] = Some((id - k, Port::South));
            }
            if y + 1 < k {
                node_links[Port::South.index()] = Some((id + k, Port::North));
            }
            if x + 1 < k {
                node_links[Port::East.index()] = Some((id + 1, Port::West));
            } else if cfg.mode == TopologyMode::Rings {
                // wrap-up link over the row bypass wire
                node_links[Port::East.index()] = Some((y * k, Port::West));
            }
            if x > 0 {
                node_links[Port::West.index()] = Some((id - 1, Port::East));
            }
            if let Some(peer) = cfg.h_bypass_peer(id) {
                node_links[Port::BypassH.index()] = Some((peer, Port::BypassH));
            }
            if let Some(peer) = cfg.v_bypass_peer(id) {
                node_links[Port::BypassV.index()] = Some((peer, Port::BypassV));
            }
        }
        Ok(Self {
            routers: (0..n).map(|_| Router::new(cfg.vcs)).collect(),
            links,
            inject_q: vec![VecDeque::new(); n],
            inject_vc: vec![None; n],
            next_packet: 0,
            cycle: 0,
            stats: NetworkStats::new(n),
            latencies: Vec::new(),
            cfg,
        })
    }

    /// The active configuration.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Queues a packet carrying `payload_words` f64 words from `src` to
    /// `dst`. Returns its id.
    pub fn inject(&mut self, src: NodeId, dst: NodeId, payload_words: usize) -> PacketId {
        assert!(src < self.routers.len(), "src out of range");
        assert!(dst < self.routers.len(), "dst out of range");
        let id = self.next_packet;
        self.next_packet += 1;
        let p = Packet::for_payload(id, src, dst, payload_words, self.cfg.words_per_flit);
        for f in p.flits(self.cycle) {
            self.inject_q[src].push_back(f);
        }
        id
    }

    /// Flits still anywhere in the system.
    pub fn in_flight(&self) -> usize {
        self.inject_q.iter().map(|q| q.len()).sum::<usize>()
            + self.routers.iter().map(|r| r.occupancy()).sum::<usize>()
    }

    /// Advances one cycle. Routing failures — a cross-row injection in
    /// ring mode, or a route stepping off a mis-segmented fabric — come
    /// back as a [`NocError`] instead of a panic.
    pub fn step(&mut self) -> Result<(), NocError> {
        let n = self.routers.len();
        let vcs = self.cfg.vcs;
        let depth = self.cfg.vc_depth;

        // 1. Injection: move ≤ 1 flit/node from the PE into the local port.
        for node in 0..n {
            let Some(&flit) = self.inject_q[node].front() else {
                continue;
            };
            let li = Port::Local.index();
            let vc = match self.inject_vc[node] {
                Some(vc) => vc,
                None => {
                    debug_assert!(flit.kind.is_head(), "packet must start with a head flit");
                    // pick the first VC with room for the head flit
                    match (0..vcs).find(|&v| self.routers[node].inputs[li][v].queue.len() < depth) {
                        Some(v) => v,
                        None => continue, // all VCs full: back-pressure
                    }
                }
            };
            if self.routers[node].inputs[li][vc].queue.len() < depth {
                let flit = self.inject_q[node].pop_front().unwrap();
                let is_tail = flit.kind.is_tail();
                self.routers[node].inputs[li][vc].queue.push_back(flit);
                self.inject_vc[node] = if is_tail { None } else { Some(vc) };
            }
        }

        // 2. Route computation for head flits at VC queue heads.
        for node in 0..n {
            for p in 0..Port::COUNT {
                for v in 0..vcs {
                    let vc = &mut self.routers[node].inputs[p][v];
                    if vc.route.is_none() {
                        if let Some(f) = vc.queue.front() {
                            if f.kind.is_head() {
                                vc.route = Some(compute_route(&self.cfg, node, f.dst)?);
                            }
                        }
                    }
                }
            }
        }

        // 3. Snapshot downstream occupancy for credit checks.
        let occupancy: Vec<Vec<Vec<usize>>> = self
            .routers
            .iter()
            .map(|r| {
                r.inputs
                    .iter()
                    .map(|p| p.iter().map(|vc| vc.queue.len()).collect())
                    .collect()
            })
            .collect();

        // 4. Switch allocation + traversal planning.
        struct Move {
            node: NodeId,
            in_port: usize,
            in_vc: usize,
            out: Port,
            downstream: Option<(NodeId, Port, usize)>,
        }
        let mut moves: Vec<Move> = Vec::new();
        for node in 0..n {
            for out in Port::ALL {
                let Some((p, v)) = self.routers[node].allocate(out) else {
                    continue;
                };
                let downstream = if out == Port::Local {
                    None
                } else {
                    let (dn, dport) = self.links[node][out.index()]
                        .ok_or(NocError::MissingLink { node, port: out })?;
                    let dvc = next_vc(&self.cfg, node, out, v);
                    if occupancy[dn][dport.index()][dvc] >= depth {
                        // no credit: the winning flit stalls this cycle
                        self.stats.per_router_stalls[node] += 1;
                        continue;
                    }
                    Some((dn, dport, dvc))
                };
                // Establish wormhole ownership on head flits.
                let head_kind = self.routers[node].inputs[p][v].queue.front().unwrap().kind;
                if head_kind.is_head() {
                    self.routers[node].out_owner[out.index()] = Some((p, v));
                }
                moves.push(Move {
                    node,
                    in_port: p,
                    in_vc: v,
                    out,
                    downstream,
                });
            }
        }

        // 5. Execute traversals.
        for m in moves {
            let flit = {
                let vc = &mut self.routers[m.node].inputs[m.in_port][m.in_vc];
                let mut f = vc.queue.pop_front().unwrap();
                if f.kind.is_tail() {
                    vc.route = None;
                    self.routers[m.node].out_owner[m.out.index()] = None;
                }
                f.hops += 1;
                f
            };
            self.routers[m.node].forwarded += 1;
            self.stats.per_router_forwarded[m.node] += 1;
            if matches!(m.out, Port::BypassH | Port::BypassV) {
                self.stats.bypass_traversals += 1;
            }
            match m.downstream {
                None => {
                    // Ejection at the destination PE.
                    debug_assert_eq!(flit.dst, m.node, "ejected at wrong node");
                    self.stats.flits_delivered += 1;
                    self.stats.total_hops += flit.hops as u64 - 1; // ejection isn't a hop
                    if flit.kind.is_tail() {
                        self.stats.packets_delivered += 1;
                        let lat = self.cycle + 1 - flit.injected_at;
                        self.stats.total_packet_latency += lat;
                        self.stats.max_packet_latency = self.stats.max_packet_latency.max(lat);
                        self.latencies.push(lat);
                    }
                }
                Some((dn, dport, dvc)) => {
                    self.routers[dn].inputs[dport.index()][dvc]
                        .queue
                        .push_back(flit);
                }
            }
        }

        self.cycle += 1;
        self.stats.cycles = self.cycle;
        Ok(())
    }

    /// Runs until all traffic is delivered or `max_cycles` elapse.
    /// Returns `Ok(cycles run)` on drain; a timeout yields
    /// [`NocError::Saturated`] carrying the in-flight flit count and the
    /// most-stalled router, and routing failures propagate from
    /// [`Network::step`].
    pub fn drain(&mut self, max_cycles: u64) -> Result<u64, NocError> {
        let start = self.cycle;
        while self.in_flight() > 0 {
            if self.cycle - start >= max_cycles {
                return Err(NocError::Saturated {
                    residual: self.in_flight(),
                    hot_router: self.stats.hottest_router(),
                });
            }
            self.step()?;
        }
        Ok(self.cycle - start)
    }

    /// Statistics so far.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Mean link utilisation so far: flit-hops delivered over link-cycles
    /// available (0 when nothing ran).
    pub fn utilization(&self) -> f64 {
        if self.cycle == 0 {
            return 0.0;
        }
        let links = {
            let k = self.cfg.k as u64;
            let mesh = 4 * k * (k - 1);
            let bypass = 2 * (self.cfg.row_bypass.len() + self.cfg.col_bypass.len()) as u64;
            let wrap = if self.cfg.mode == TopologyMode::Rings {
                k
            } else {
                0
            };
            mesh + bypass + wrap
        };
        self.stats.total_hops as f64 / (links as f64 * self.cycle as f64)
    }

    /// `(p50, p90, p99)` packet-latency percentiles over everything
    /// delivered so far (zeros when nothing was delivered).
    pub fn latency_percentiles(&self) -> (u64, u64, u64) {
        if self.latencies.is_empty() {
            return (0, 0, 0);
        }
        let mut l = self.latencies.clone();
        l.sort_unstable();
        let pick = |p: f64| l[((l.len() - 1) as f64 * p).round() as usize];
        (pick(0.50), pick(0.90), pick(0.99))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BypassSegment;
    use proptest::prelude::*;

    #[test]
    fn single_packet_crosses_mesh() {
        let mut net = Network::new(NocConfig::mesh(4));
        net.inject(0, 15, 4); // 1 flit, 6 hops
        let cycles = net.drain(1_000).unwrap();
        let s = net.stats();
        assert_eq!(s.packets_delivered, 1);
        assert_eq!(s.flits_delivered, 1);
        assert_eq!(s.total_hops, 6);
        assert!(cycles >= 7, "at least hops + injection");
        assert!(s.max_packet_latency >= 7);
        assert!(s.max_packet_latency <= 20, "uncontended latency small");
    }

    #[test]
    fn local_delivery_zero_hops() {
        let mut net = Network::new(NocConfig::mesh(2));
        net.inject(3, 3, 1);
        net.drain(100).unwrap();
        assert_eq!(net.stats().packets_delivered, 1);
        assert_eq!(net.stats().total_hops, 0);
    }

    #[test]
    fn multi_flit_packet_delivered_in_order() {
        let mut net = Network::new(NocConfig::mesh(3));
        net.inject(0, 8, 20); // 5 flits
        net.drain(1_000).unwrap();
        let s = net.stats();
        assert_eq!(s.packets_delivered, 1);
        assert_eq!(s.flits_delivered, 5);
    }

    #[test]
    fn contention_serialises() {
        // Two single-flit packets from different sources into one sink.
        let mut uncontended = Network::new(NocConfig::mesh(4));
        uncontended.inject(0, 3, 4);
        uncontended.drain(100).unwrap();
        let solo = uncontended.stats().max_packet_latency;

        let mut net = Network::new(NocConfig::mesh(4));
        for src in [0, 4, 8, 12] {
            net.inject(src, 3, 4);
        }
        net.drain(1_000).unwrap();
        assert_eq!(net.stats().packets_delivered, 4);
        assert!(
            net.stats().max_packet_latency > solo,
            "sharing the column into node 3 must add queueing delay"
        );
    }

    #[test]
    fn bypass_reduces_latency_and_is_counted() {
        let far = 7; // (7,0)
        let mut mesh = Network::new(NocConfig::mesh(8));
        mesh.inject(0, far, 4);
        mesh.drain(100).unwrap();
        let mesh_lat = mesh.stats().max_packet_latency;

        let cfg = NocConfig::with_bypass(
            8,
            vec![BypassSegment {
                index: 0,
                from: 0,
                to: 7,
            }],
            vec![],
        );
        let mut byp = Network::new(cfg);
        byp.inject(0, far, 4);
        byp.drain(100).unwrap();
        assert!(byp.stats().bypass_traversals > 0);
        assert!(
            byp.stats().max_packet_latency < mesh_lat,
            "bypass {} !< mesh {}",
            byp.stats().max_packet_latency,
            mesh_lat
        );
        assert_eq!(byp.stats().total_hops, 1);
    }

    #[test]
    fn ring_mode_circulates() {
        let mut net = Network::new(NocConfig::rings(4));
        // (2,1) → (1,1): must go East around the wrap: 3 hops
        let src = 4 + 2;
        let dst = 4 + 1;
        net.inject(src, dst, 4);
        net.drain(100).unwrap();
        assert_eq!(net.stats().packets_delivered, 1);
        assert_eq!(net.stats().total_hops, 3);
    }

    #[test]
    fn vc_buffers_never_overflow() {
        let cfg = NocConfig {
            vc_depth: 2,
            ..NocConfig::mesh(4)
        };
        let mut net = Network::new(cfg);
        for s in 0..16usize {
            for _ in 0..4 {
                net.inject(s, 15 - s, 8);
            }
        }
        let depth = net.cfg.vc_depth;
        for _ in 0..2_000 {
            net.step().unwrap();
            for r in &net.routers {
                for p in &r.inputs {
                    for vc in p {
                        assert!(vc.queue.len() <= depth, "VC overflow");
                    }
                }
            }
            if net.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(net.in_flight(), 0, "network failed to drain");
        assert_eq!(net.stats().packets_delivered, 64);
    }

    #[test]
    fn wormhole_stress_long_packets_tiny_buffers() {
        // depth-1 VCs, 16-flit packets, many crossing flows: the sternest
        // wormhole test — XY routing must still drain without deadlock and
        // without losing flits
        let cfg = NocConfig {
            vc_depth: 1,
            vcs: 2,
            ..NocConfig::mesh(4)
        };
        let mut net = Network::new(cfg);
        for s in 0..16usize {
            net.inject(s, 15 - s, 64); // 16 flits each
            net.inject(s, (s + 7) % 16, 64);
        }
        net.drain(2_000_000).expect("no deadlock");
        assert_eq!(net.stats().packets_delivered, 32);
        assert_eq!(net.stats().flits_delivered, 32 * 16);
    }

    #[test]
    fn try_new_rejects_malformed_bypass_config() {
        // Overlapping segments on row 0: caught by validation up front,
        // never reaching route computation.
        let cfg = NocConfig::with_bypass(
            8,
            vec![
                BypassSegment {
                    index: 0,
                    from: 0,
                    to: 4,
                },
                BypassSegment {
                    index: 0,
                    from: 4,
                    to: 7,
                },
            ],
            vec![],
        );
        assert!(matches!(
            Network::try_new(cfg),
            Err(NocError::SegmentOverlap { .. })
        ));
    }

    #[test]
    fn cross_row_ring_injection_errors_instead_of_panicking() {
        let mut net = Network::new(NocConfig::rings(4));
        net.inject(0, 5, 4); // (0,0) → (1,1): crosses rows
        let err = net.drain(1_000).unwrap_err();
        assert_eq!(err, NocError::CrossRowRingRoute { cur: 0, dst: 5 });
    }

    #[test]
    fn drain_timeout_reports_residual_and_hot_router() {
        let mut net = Network::new(NocConfig::mesh(4));
        for _ in 0..8 {
            net.inject(0, 15, 64);
        }
        // 2 cycles is nowhere near enough: must saturate, not panic.
        match net.drain(2) {
            Err(NocError::Saturated {
                residual,
                hot_router: _,
            }) => assert!(residual > 0),
            other => panic!("expected saturation, got {other:?}"),
        }
        // The same network finishes the job with a real budget.
        net.drain(100_000).unwrap();
    }

    #[test]
    fn injection_rejects_out_of_range() {
        let mut net = Network::new(NocConfig::mesh(2));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.inject(0, 4, 1);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn percentiles_order_and_bounds() {
        let mut net = Network::new(NocConfig::mesh(4));
        for s in 0..16usize {
            net.inject(s, 15 - s, 8);
        }
        net.drain(100_000).unwrap();
        let (p50, p90, p99) = net.latency_percentiles();
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p99 <= net.stats().max_packet_latency);
        assert!(p50 > 0);
    }

    #[test]
    fn utilization_bounded_and_positive() {
        let mut net = Network::new(NocConfig::mesh(4));
        assert_eq!(net.utilization(), 0.0);
        for s in 0..16usize {
            net.inject(s, 15 - s, 16);
        }
        net.drain(100_000).unwrap();
        let u = net.utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn hotspot_shows_in_router_load() {
        let mut net = Network::new(NocConfig::mesh(4));
        // all traffic through the column of node 5
        for _ in 0..10 {
            net.inject(4, 6, 4);
        }
        net.drain(10_000).unwrap();
        assert!(net.stats().load_imbalance() > 1.5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn random_traffic_fully_delivered(
            pairs in proptest::collection::vec((0usize..16, 0usize..16, 1usize..24), 1..60),
            use_bypass in proptest::bool::ANY,
        ) {
            let cfg = if use_bypass {
                NocConfig::with_bypass(
                    4,
                    vec![BypassSegment { index: 1, from: 0, to: 3 }],
                    vec![BypassSegment { index: 2, from: 0, to: 3 }],
                )
            } else {
                NocConfig::mesh(4)
            };
            let mut net = Network::new(cfg);
            let mut flits = 0u64;
            for (s, d, w) in &pairs {
                net.inject(*s, *d, *w);
                flits += (*w).div_ceil(4).max(1) as u64;
            }
            net.drain(200_000).expect("network must drain");
            prop_assert_eq!(net.stats().packets_delivered, pairs.len() as u64);
            prop_assert_eq!(net.stats().flits_delivered, flits);
        }
    }
}
