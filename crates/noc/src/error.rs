//! Typed errors for the NoC layer.
//!
//! Malformed configurations and unroutable traffic used to abort the
//! process deep inside route computation (`panic!("East off the mesh
//! edge…")`) or table formatting. Every failure on the
//! `compute_route → next_node → step → drain` path is now a [`NocError`]:
//! configuration problems are caught up front by `NocConfig::validate`,
//! and runtime routing/drain failures propagate to callers that can
//! report them (a saturated pattern carries its residual flit count and
//! hottest router instead of killing the run).

use crate::topology::{NodeId, Port};
use std::fmt;

/// Which bypass family a segment error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BypassKind {
    Row,
    Col,
}

impl fmt::Display for BypassKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BypassKind::Row => write!(f, "row"),
            BypassKind::Col => write!(f, "col"),
        }
    }
}

/// Everything that can go wrong configuring or driving the fabric.
#[derive(Debug, Clone, PartialEq)]
pub enum NocError {
    /// `k == 0`: the mesh has no routers.
    ZeroRadix,
    /// No virtual channels configured.
    NoVirtualChannels,
    /// Zero-depth VC buffers cannot hold flits.
    ZeroVcDepth,
    /// Flits must carry at least one payload word.
    EmptyFlitPayload,
    /// Bypass segments are configured but the mode is not
    /// `MeshWithBypass`.
    BypassRequiresBypassMode,
    /// A segment's row/col index or endpoint exceeds the radix.
    SegmentOutOfRange {
        kind: BypassKind,
        index: usize,
        value: usize,
        k: usize,
    },
    /// A segment with `from >= to` (must run forward).
    SegmentNotForward {
        kind: BypassKind,
        index: usize,
        from: usize,
        to: usize,
    },
    /// Two segments on one row/col overlap or share a wire tap.
    SegmentOverlap { kind: BypassKind, index: usize },
    /// A ring-mode route was requested across rows (ring traffic is
    /// intra-row by construction of the vertex-update dataflow).
    CrossRowRingRoute { cur: NodeId, dst: NodeId },
    /// A route stepped off the mesh edge (mis-segmented bypass or a
    /// corrupted route decision).
    OffMeshEdge { cur: NodeId, port: Port },
    /// A route selected a bypass port at a node with no attachment.
    MissingBypassAttachment { cur: NodeId, port: Port },
    /// Switch allocation won an output port with no link behind it.
    MissingLink { node: NodeId, port: Port },
    /// A route failed to make progress within the hop bound.
    RoutingLivelock { src: NodeId, dst: NodeId },
    /// The network failed to drain within its cycle budget. Carries the
    /// flits still in flight and the most-stalled router, so a saturated
    /// pattern is reportable instead of fatal.
    Saturated {
        residual: usize,
        hot_router: Option<(NodeId, u64)>,
    },
}

impl fmt::Display for NocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocError::ZeroRadix => write!(f, "mesh radix must be positive"),
            NocError::NoVirtualChannels => write!(f, "need at least one VC"),
            NocError::ZeroVcDepth => write!(f, "VC buffers need capacity"),
            NocError::EmptyFlitPayload => write!(f, "flits must carry payload"),
            NocError::BypassRequiresBypassMode => {
                write!(f, "bypass segments require MeshWithBypass mode")
            }
            NocError::SegmentOutOfRange {
                kind,
                index,
                value,
                k,
            } => write!(
                f,
                "{kind} bypass segment on {kind} {index}: position {value} out of range for k={k}"
            ),
            NocError::SegmentNotForward {
                kind,
                index,
                from,
                to,
            } => write!(
                f,
                "{kind} bypass segment on {kind} {index} must run forward (got {from}..{to})"
            ),
            NocError::SegmentOverlap { kind, index } => write!(
                f,
                "{kind} bypass segments on {kind} {index} overlap or share an endpoint"
            ),
            NocError::CrossRowRingRoute { cur, dst } => write!(
                f,
                "ring traffic must stay within its row ring (route {cur} -> {dst})"
            ),
            NocError::OffMeshEdge { cur, port } => {
                write!(f, "route leaves the mesh edge at node {cur} via {port:?}")
            }
            NocError::MissingBypassAttachment { cur, port } => {
                write!(f, "no bypass attachment at node {cur} for {port:?}")
            }
            NocError::MissingLink { node, port } => {
                write!(f, "no link at node {node} port {port:?}")
            }
            NocError::RoutingLivelock { src, dst } => {
                write!(f, "routing livelock on route {src} -> {dst}")
            }
            NocError::Saturated {
                residual,
                hot_router,
            } => {
                write!(f, "network failed to drain ({residual} flits left")?;
                if let Some((node, stalls)) = hot_router {
                    write!(f, "; hottest router {node} with {stalls} stalls")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl std::error::Error for NocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_diagnostic_detail() {
        let e = NocError::Saturated {
            residual: 17,
            hot_router: Some((5, 420)),
        };
        let s = e.to_string();
        assert!(s.contains("17 flits left"), "{s}");
        assert!(s.contains("router 5"), "{s}");

        let e = NocError::SegmentOverlap {
            kind: BypassKind::Row,
            index: 3,
        };
        assert!(e.to_string().contains("row 3"));
    }
}
