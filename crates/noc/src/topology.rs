//! Mesh coordinates, node ids and router ports.

use serde::{Deserialize, Serialize};

/// Linear node id on a `k × k` mesh (`id = y * k + x`).
pub type NodeId = usize;

/// A 2-D mesh coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coord {
    pub x: usize,
    pub y: usize,
}

impl Coord {
    /// Builds from a linear node id.
    pub fn of(id: NodeId, k: usize) -> Self {
        Self {
            x: id % k,
            y: id / k,
        }
    }

    /// The linear node id.
    pub fn id(self, k: usize) -> NodeId {
        self.y * k + self.x
    }

    /// Manhattan distance.
    pub fn manhattan(self, other: Coord) -> usize {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

/// Router ports. The first five are the conventional mesh router ports;
/// the bypass ports are the +x/+y mux attachments of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Port {
    /// PE injection/ejection.
    Local,
    /// Towards y − 1.
    North,
    /// Towards y + 1.
    South,
    /// Towards x + 1.
    East,
    /// Towards x − 1.
    West,
    /// Attachment of a horizontal bypass segment (same row express link).
    BypassH,
    /// Attachment of a vertical bypass segment (same column express link).
    BypassV,
}

impl Port {
    /// All ports in a fixed arbitration order.
    pub const ALL: [Port; 7] = [
        Port::Local,
        Port::North,
        Port::South,
        Port::East,
        Port::West,
        Port::BypassH,
        Port::BypassV,
    ];

    /// Dense index used for router-internal arrays.
    pub fn index(self) -> usize {
        match self {
            Port::Local => 0,
            Port::North => 1,
            Port::South => 2,
            Port::East => 3,
            Port::West => 4,
            Port::BypassH => 5,
            Port::BypassV => 6,
        }
    }

    /// Number of distinct ports.
    pub const COUNT: usize = 7;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_roundtrip() {
        let k = 5;
        for id in 0..k * k {
            assert_eq!(Coord::of(id, k).id(k), id);
        }
        assert_eq!(Coord::of(7, 5), Coord { x: 2, y: 1 });
    }

    #[test]
    fn manhattan_distance() {
        let a = Coord { x: 1, y: 2 };
        let b = Coord { x: 4, y: 0 };
        assert_eq!(a.manhattan(b), 5);
        assert_eq!(b.manhattan(a), 5);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn port_indices_dense_and_unique() {
        let mut seen = [false; Port::COUNT];
        for p in Port::ALL {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
