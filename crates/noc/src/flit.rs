//! Packets and flits.

use crate::topology::NodeId;
use serde::{Deserialize, Serialize};

/// Packet identifier.
pub type PacketId = u64;

/// Flit position within a packet (wormhole switching operates on these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlitKind {
    /// First flit of a multi-flit packet — carries the route.
    Head,
    /// Interior flit.
    Body,
    /// Last flit — releases the wormhole.
    Tail,
    /// Single-flit packet (head and tail at once).
    Single,
}

impl FlitKind {
    /// Whether this flit opens a wormhole (carries routing info).
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::Single)
    }

    /// Whether this flit closes the wormhole.
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::Single)
    }
}

/// A message to be delivered by the NoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    pub id: PacketId,
    pub src: NodeId,
    pub dst: NodeId,
    /// Number of flits (≥ 1).
    pub num_flits: usize,
}

impl Packet {
    /// A packet carrying `payload_words` f64 words, split into flits of
    /// `words_per_flit`.
    pub fn for_payload(
        id: PacketId,
        src: NodeId,
        dst: NodeId,
        payload_words: usize,
        words_per_flit: usize,
    ) -> Self {
        assert!(words_per_flit > 0);
        Self {
            id,
            src,
            dst,
            num_flits: payload_words.div_ceil(words_per_flit).max(1),
        }
    }

    /// Expands the packet into its flit sequence.
    pub fn flits(&self, injected_at: u64) -> Vec<Flit> {
        (0..self.num_flits)
            .map(|i| Flit {
                packet: self.id,
                kind: if self.num_flits == 1 {
                    FlitKind::Single
                } else if i == 0 {
                    FlitKind::Head
                } else if i == self.num_flits - 1 {
                    FlitKind::Tail
                } else {
                    FlitKind::Body
                },
                src: self.src,
                dst: self.dst,
                injected_at,
                hops: 0,
            })
            .collect()
    }
}

/// One flow-control unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Flit {
    pub packet: PacketId,
    pub kind: FlitKind,
    pub src: NodeId,
    pub dst: NodeId,
    /// Cycle at which the packet entered the source injection queue.
    pub injected_at: u64,
    /// Router-to-router hops taken so far.
    pub hops: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flit_packet() {
        let p = Packet::for_payload(1, 0, 5, 3, 4);
        assert_eq!(p.num_flits, 1);
        let f = p.flits(10);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].kind, FlitKind::Single);
        assert!(f[0].kind.is_head() && f[0].kind.is_tail());
        assert_eq!(f[0].injected_at, 10);
    }

    #[test]
    fn multi_flit_structure() {
        let p = Packet::for_payload(2, 1, 2, 16, 4); // 4 flits
        let f = p.flits(0);
        assert_eq!(f.len(), 4);
        assert_eq!(f[0].kind, FlitKind::Head);
        assert_eq!(f[1].kind, FlitKind::Body);
        assert_eq!(f[2].kind, FlitKind::Body);
        assert_eq!(f[3].kind, FlitKind::Tail);
        assert!(!f[1].kind.is_head() && !f[1].kind.is_tail());
    }

    #[test]
    fn zero_payload_still_one_flit() {
        let p = Packet::for_payload(3, 0, 1, 0, 4);
        assert_eq!(p.num_flits, 1);
    }

    #[test]
    fn flit_count_rounds_up() {
        assert_eq!(Packet::for_payload(4, 0, 1, 17, 4).num_flits, 5);
        assert_eq!(Packet::for_payload(5, 0, 1, 16, 4).num_flits, 4);
    }
}
