//! Network statistics: latency, hops, hotspots, bypass usage.

use aurora_telemetry::{Scope, Telemetry};
use serde::{Deserialize, Serialize};

/// Cumulative statistics of one network run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Packets fully delivered (tail ejected).
    pub packets_delivered: u64,
    /// Flits ejected.
    pub flits_delivered: u64,
    /// Sum of per-packet latencies (inject → tail ejection).
    pub total_packet_latency: u64,
    /// Worst per-packet latency.
    pub max_packet_latency: u64,
    /// Sum of per-flit hop counts.
    pub total_hops: u64,
    /// Flits that traversed a bypass segment.
    pub bypass_traversals: u64,
    /// Flits forwarded by each router (contention/hotspot profile).
    pub per_router_forwarded: Vec<u64>,
    /// Router-cycles in which an allocated flit could not advance because
    /// the downstream VC had no credit — the cycle-level backpressure the
    /// analytical model folds into its link-utilisation derate.
    pub per_router_stalls: Vec<u64>,
}

impl NetworkStats {
    /// Zeroed statistics for a `k × k` network.
    pub fn new(nodes: usize) -> Self {
        Self {
            cycles: 0,
            packets_delivered: 0,
            flits_delivered: 0,
            total_packet_latency: 0,
            max_packet_latency: 0,
            total_hops: 0,
            bypass_traversals: 0,
            per_router_forwarded: vec![0; nodes],
            per_router_stalls: vec![0; nodes],
        }
    }

    /// Mean packet latency in cycles.
    pub fn avg_packet_latency(&self) -> f64 {
        if self.packets_delivered == 0 {
            0.0
        } else {
            self.total_packet_latency as f64 / self.packets_delivered as f64
        }
    }

    /// Mean hops per delivered flit.
    pub fn avg_hops(&self) -> f64 {
        if self.flits_delivered == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.flits_delivered as f64
        }
    }

    /// Peak router load — the busiest router's forwarded-flit count. A
    /// balanced mapping drives this down; hash-mapped high-degree vertices
    /// drive it up.
    pub fn max_router_load(&self) -> u64 {
        self.per_router_forwarded.iter().copied().max().unwrap_or(0)
    }

    /// Ratio of the busiest router's load to the mean (1.0 = perfectly
    /// balanced).
    pub fn load_imbalance(&self) -> f64 {
        let n = self.per_router_forwarded.len();
        if n == 0 {
            return 0.0;
        }
        let total: u64 = self.per_router_forwarded.iter().sum();
        if total == 0 {
            return 1.0;
        }
        self.max_router_load() as f64 / (total as f64 / n as f64)
    }

    /// Total credit-stall events across all routers.
    pub fn total_stalls(&self) -> u64 {
        self.per_router_stalls.iter().sum()
    }

    /// The router that stalled the most: `(index, stall_count)`. `None`
    /// when nothing stalled. Ties resolve to the smallest index so the
    /// answer is deterministic.
    pub fn hottest_router(&self) -> Option<(usize, u64)> {
        self.per_router_stalls
            .iter()
            .copied()
            .enumerate()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .filter(|&(_, stalls)| stalls > 0)
    }

    /// Records this run's router/link statistics as `noc.*` metrics under
    /// `scope`: delivery counters, a per-packet-latency histogram sample
    /// set (sum/max), and hotspot gauges.
    pub fn record_to(&self, telemetry: &Telemetry, scope: &Scope) {
        if !telemetry.is_enabled() {
            return;
        }
        telemetry.counter_add("noc.cycles", scope, self.cycles);
        telemetry.counter_add("noc.packets_delivered", scope, self.packets_delivered);
        telemetry.counter_add("noc.flits_delivered", scope, self.flits_delivered);
        telemetry.counter_add("noc.flit_hops", scope, self.total_hops);
        telemetry.counter_add("noc.bypass_traversals", scope, self.bypass_traversals);
        telemetry.observe("noc.packet_latency_max", scope, self.max_packet_latency);
        telemetry.gauge_set("noc.avg_packet_latency", scope, self.avg_packet_latency());
        telemetry.gauge_set("noc.avg_hops", scope, self.avg_hops());
        telemetry.gauge_set("noc.max_router_load", scope, self.max_router_load() as f64);
        telemetry.gauge_set("noc.load_imbalance", scope, self.load_imbalance());
        telemetry.counter_add("noc.credit_stalls", scope, self.total_stalls());
        if let Some((router, stalls)) = self.hottest_router() {
            telemetry.gauge_set("noc.hot_router", scope, router as f64);
            telemetry.gauge_set("noc.hot_router_stalls", scope, stalls as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_stats_safe() {
        let s = NetworkStats::new(16);
        assert_eq!(s.avg_packet_latency(), 0.0);
        assert_eq!(s.avg_hops(), 0.0);
        assert_eq!(s.max_router_load(), 0);
        assert_eq!(s.load_imbalance(), 1.0);
    }

    #[test]
    fn derived_metrics() {
        let mut s = NetworkStats::new(4);
        s.packets_delivered = 2;
        s.total_packet_latency = 30;
        s.flits_delivered = 8;
        s.total_hops = 24;
        s.per_router_forwarded = vec![10, 0, 0, 10];
        assert_eq!(s.avg_packet_latency(), 15.0);
        assert_eq!(s.avg_hops(), 3.0);
        assert_eq!(s.max_router_load(), 10);
        assert_eq!(s.load_imbalance(), 2.0);
    }

    #[test]
    fn hottest_router_by_stalls() {
        let mut s = NetworkStats::new(4);
        assert_eq!(s.hottest_router(), None);
        assert_eq!(s.total_stalls(), 0);
        s.per_router_stalls = vec![3, 9, 9, 1];
        // Ties resolve to the smallest index.
        assert_eq!(s.hottest_router(), Some((1, 9)));
        assert_eq!(s.total_stalls(), 22);
    }

    #[test]
    fn record_to_exports_the_profile() {
        let mut s = NetworkStats::new(4);
        s.cycles = 100;
        s.packets_delivered = 2;
        s.total_packet_latency = 30;
        s.max_packet_latency = 20;
        s.flits_delivered = 8;
        s.total_hops = 24;
        s.bypass_traversals = 6;
        s.per_router_forwarded = vec![10, 0, 0, 10];
        s.per_router_stalls = vec![0, 7, 2, 0];

        let t = Telemetry::enabled();
        let scope = Scope::model("pattern").phase("uniform");
        s.record_to(&t, &scope);
        let snap = t.snapshot();
        assert_eq!(snap.counter_at("noc.cycles", &scope), Some(100));
        assert_eq!(snap.counter_at("noc.bypass_traversals", &scope), Some(6));
        assert_eq!(snap.gauge_at("noc.avg_hops", &scope), Some(3.0));
        assert_eq!(snap.gauge_at("noc.load_imbalance", &scope), Some(2.0));
        assert_eq!(snap.counter_at("noc.credit_stalls", &scope), Some(9));
        assert_eq!(snap.gauge_at("noc.hot_router", &scope), Some(1.0));
        assert_eq!(snap.gauge_at("noc.hot_router_stalls", &scope), Some(7.0));
    }
}
