//! Synthetic traffic patterns for NoC characterisation.
//!
//! The standard interconnect evaluation patterns, used by the tests and
//! benches to exercise the fabric independently of any GNN workload:
//! uniform random, transpose, bit-complement, tornado, hotspot and
//! nearest-neighbour.

use crate::config::NocConfig;
use crate::error::NocError;
use crate::network::Network;
use crate::stats::NetworkStats;
use crate::topology::{Coord, NodeId};
use serde::{Deserialize, Serialize};

/// The classic synthetic patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// Destination drawn uniformly (deterministic hash of (src, index)).
    UniformRandom,
    /// `(x, y) → (y, x)`.
    Transpose,
    /// `(x, y) → (k−1−x, k−1−y)`.
    BitComplement,
    /// `(x, y) → ((x + k/2 − 1) mod k, y)` — adversarial for rings/meshes.
    Tornado,
    /// Everyone sends to one node.
    Hotspot(NodeId),
    /// `(x, y) → ((x+1) mod k, y)`.
    NeighborX,
}

impl Pattern {
    /// The destination node for `src` under this pattern (`i` = message
    /// index, used only by the random pattern).
    pub fn destination(self, src: NodeId, i: usize, k: usize) -> NodeId {
        let c = Coord::of(src, k);
        match self {
            Pattern::UniformRandom => {
                // splitmix-style deterministic hash
                let mut z = (src as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i as u64)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z ^= z >> 31;
                (z % (k * k) as u64) as NodeId
            }
            Pattern::Transpose => Coord { x: c.y, y: c.x }.id(k),
            Pattern::BitComplement => Coord {
                x: k - 1 - c.x,
                y: k - 1 - c.y,
            }
            .id(k),
            Pattern::Tornado => Coord {
                x: (c.x + k / 2 - 1) % k,
                y: c.y,
            }
            .id(k),
            Pattern::Hotspot(h) => h,
            Pattern::NeighborX => Coord {
                x: (c.x + 1) % k,
                y: c.y,
            }
            .id(k),
        }
    }
}

/// Result of driving one pattern to completion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternRun {
    pub pattern_cycles: u64,
    pub stats: NetworkStats,
    /// Latency percentiles (p50, p90, p99) over delivered packets.
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

/// Injects `messages_per_node` messages of `payload_words` per source under
/// `pattern` and drains the network with a generous auto-sized budget.
/// Self-messages are skipped. Ring-mode fabrics only accept intra-row
/// patterns ([`Pattern::NeighborX`], [`Pattern::Tornado`]).
///
/// A pattern that fails to drain is reported as
/// [`NocError::Saturated`] — carrying the residual flit count and the
/// hottest router — instead of aborting the process; malformed configs
/// and routing failures surface the same way.
pub fn run_pattern(
    cfg: NocConfig,
    pattern: Pattern,
    messages_per_node: usize,
    payload_words: usize,
) -> Result<PatternRun, NocError> {
    run_pattern_with_budget(cfg, pattern, messages_per_node, payload_words, None)
}

/// [`run_pattern`] with an explicit drain budget in cycles (`None` =
/// auto-size generously from the offered load). A tight budget turns a
/// saturating pattern into an observable [`NocError::Saturated`].
pub fn run_pattern_with_budget(
    cfg: NocConfig,
    pattern: Pattern,
    messages_per_node: usize,
    payload_words: usize,
    budget: Option<u64>,
) -> Result<PatternRun, NocError> {
    let k = cfg.k;
    let mut net = Network::try_new(cfg)?;
    let mut latencies_possible = 0u64;
    for src in 0..k * k {
        for i in 0..messages_per_node {
            let dst = pattern.destination(src, i, k);
            if dst != src {
                net.inject(src, dst, payload_words);
                latencies_possible += 1;
            }
        }
    }
    let budget = budget.unwrap_or(10_000 + latencies_possible * 64 * payload_words as u64);
    let cycles = net.drain(budget)?;
    // percentile estimation from the aggregate stats: we track exact
    // per-packet latencies in the engine's histogram
    let (p50, p90, p99) = net.latency_percentiles();
    Ok(PatternRun {
        pattern_cycles: cycles,
        stats: net.stats().clone(),
        p50,
        p90,
        p99,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn destinations_in_range() {
        let k = 8;
        for p in [
            Pattern::UniformRandom,
            Pattern::Transpose,
            Pattern::BitComplement,
            Pattern::Tornado,
            Pattern::Hotspot(5),
            Pattern::NeighborX,
        ] {
            for src in 0..k * k {
                let d = p.destination(src, 3, k);
                assert!(d < k * k, "{p:?} escaped the mesh");
            }
        }
    }

    #[test]
    fn transpose_is_involutive() {
        let k = 6;
        for src in 0..k * k {
            let d = Pattern::Transpose.destination(src, 0, k);
            assert_eq!(Pattern::Transpose.destination(d, 0, k), src);
        }
    }

    #[test]
    fn uniform_random_completes() {
        let run = run_pattern(NocConfig::mesh(4), Pattern::UniformRandom, 4, 8).unwrap();
        assert!(run.stats.packets_delivered > 0);
        assert!(run.p50 <= run.p90 && run.p90 <= run.p99);
        assert!(run.p99 >= 1);
    }

    #[test]
    fn hotspot_has_heavier_tail_than_neighbor() {
        let hot = run_pattern(NocConfig::mesh(4), Pattern::Hotspot(5), 4, 8).unwrap();
        let nbr = run_pattern(NocConfig::mesh(4), Pattern::NeighborX, 4, 8).unwrap();
        assert!(
            hot.p99 > nbr.p99,
            "hotspot p99 {} vs neighbor p99 {}",
            hot.p99,
            nbr.p99
        );
        assert!(hot.pattern_cycles > nbr.pattern_cycles);
    }

    #[test]
    fn tornado_runs_on_rings() {
        let run = run_pattern(NocConfig::rings(4), Pattern::Tornado, 2, 4).unwrap();
        assert!(run.stats.packets_delivered > 0);
    }

    #[test]
    fn bit_complement_stresses_bisection() {
        let bc = run_pattern(NocConfig::mesh(6), Pattern::BitComplement, 2, 8).unwrap();
        let nb = run_pattern(NocConfig::mesh(6), Pattern::NeighborX, 2, 8).unwrap();
        assert!(bc.stats.avg_hops() > nb.stats.avg_hops());
    }

    #[test]
    fn undrained_pattern_is_reported_not_fatal() {
        // A hotspot with a starvation budget cannot drain: the error
        // carries the residual flit count and the hottest router so the
        // caller can report the saturation.
        let err = run_pattern_with_budget(NocConfig::mesh(4), Pattern::Hotspot(5), 8, 16, Some(3))
            .unwrap_err();
        match err {
            NocError::Saturated {
                residual,
                hot_router,
            } => {
                assert!(residual > 0, "flits must remain in flight");
                if let Some((node, _)) = hot_router {
                    assert!(node < 16);
                }
            }
            other => panic!("expected Saturated, got {other:?}"),
        }
    }

    #[test]
    fn cross_row_pattern_on_rings_is_an_error() {
        // Transpose crosses rows; ring fabrics cannot route it.
        let err = run_pattern(NocConfig::rings(4), Pattern::Transpose, 1, 4).unwrap_err();
        assert!(matches!(err, NocError::CrossRowRingRoute { .. }));
    }
}
