//! Route computation for the three fabric modes.
//!
//! * **Mesh** — dimension-ordered XY routing (deadlock-free).
//! * **MeshWithBypass** — XY routing where a bypass segment in the current
//!   dimension is taken when it brings the flit strictly closer than the
//!   mesh hop would; dimension order is preserved, so deadlock freedom is
//!   too.
//! * **Rings** — each row circulates in the +x direction, wrapping from
//!   `x = k − 1` back to `x = 0` over the row's bypass wire. A dateline at
//!   the wrap switches packets to VC 1, breaking the ring's cyclic channel
//!   dependency.

use crate::config::{NocConfig, TopologyMode};
use crate::error::NocError;
use crate::topology::{Coord, NodeId, Port};

/// Computes the output port for a flit at `cur` destined to `dst`.
///
/// Ring mode only routes within a row (ring traffic is intra-row by
/// construction of the vertex-update dataflow); a cross-row request
/// yields [`NocError::CrossRowRingRoute`] instead of aborting the run.
pub fn compute_route(cfg: &NocConfig, cur: NodeId, dst: NodeId) -> Result<Port, NocError> {
    let k = cfg.k;
    let c = Coord::of(cur, k);
    let d = Coord::of(dst, k);
    if c == d {
        return Ok(Port::Local);
    }
    match cfg.mode {
        TopologyMode::Rings => {
            if c.y != d.y {
                return Err(NocError::CrossRowRingRoute { cur, dst });
            }
            Ok(Port::East) // +x, wrapping at k − 1
        }
        TopologyMode::Mesh | TopologyMode::MeshWithBypass => {
            if c.x != d.x {
                // Resolve X first. Consider the horizontal bypass if it
                // strictly beats the mesh hop.
                if cfg.mode == TopologyMode::MeshWithBypass {
                    if let Some(peer) = cfg.h_bypass_peer(cur) {
                        let px = peer % k;
                        let cur_gap = c.x.abs_diff(d.x);
                        let peer_gap = px.abs_diff(d.x);
                        if peer_gap + 1 < cur_gap {
                            return Ok(Port::BypassH);
                        }
                    }
                }
                if c.x < d.x {
                    Ok(Port::East)
                } else {
                    Ok(Port::West)
                }
            } else {
                // X resolved; resolve Y, considering the vertical bypass.
                if cfg.mode == TopologyMode::MeshWithBypass {
                    if let Some(peer) = cfg.v_bypass_peer(cur) {
                        let py = peer / k;
                        let cur_gap = c.y.abs_diff(d.y);
                        let peer_gap = py.abs_diff(d.y);
                        if peer_gap + 1 < cur_gap {
                            return Ok(Port::BypassV);
                        }
                    }
                }
                if c.y < d.y {
                    Ok(Port::South)
                } else {
                    Ok(Port::North)
                }
            }
        }
    }
}

/// The VC a flit occupies on the downstream router after leaving `cur`
/// through `out`. Ring wrap crossings move to VC 1 (dateline); everything
/// else keeps its VC.
pub fn next_vc(cfg: &NocConfig, cur: NodeId, out: Port, in_vc: usize) -> usize {
    if cfg.mode == TopologyMode::Rings && out == Port::East && cur % cfg.k == cfg.k - 1 {
        1.min(cfg.vcs - 1)
    } else {
        in_vc
    }
}

/// Number of router-to-router hops the route from `src` to `dst` takes
/// under `cfg` (follows `compute_route` exactly). Fails with the
/// underlying routing error, or [`NocError::RoutingLivelock`] if the
/// walk exceeds the hop bound without reaching `dst`.
pub fn hop_count(cfg: &NocConfig, src: NodeId, dst: NodeId) -> Result<usize, NocError> {
    let mut cur = src;
    let mut hops = 0;
    while cur != dst {
        let port = compute_route(cfg, cur, dst)?;
        cur = next_node(cfg, cur, port)?.ok_or(NocError::RoutingLivelock { src, dst })?;
        hops += 1;
        if hops > 4 * cfg.k * cfg.k {
            return Err(NocError::RoutingLivelock { src, dst });
        }
    }
    Ok(hops)
}

/// The node reached by leaving `cur` through `port` (`Ok(None)` for
/// Local). A port that steps off the fabric — the mesh edge in a
/// non-ring mode, or a bypass port at a node without an attachment, as
/// produced by mis-segmented bypass configs — is a [`NocError`] rather
/// than a panic.
pub fn next_node(cfg: &NocConfig, cur: NodeId, port: Port) -> Result<Option<NodeId>, NocError> {
    let k = cfg.k;
    let c = Coord::of(cur, k);
    let off_edge = |ok: bool, node: NodeId| {
        if ok {
            Ok(Some(node))
        } else {
            Err(NocError::OffMeshEdge { cur, port })
        }
    };
    match port {
        Port::Local => Ok(None),
        Port::North => off_edge(c.y > 0, cur.wrapping_sub(k)),
        Port::South => off_edge(c.y + 1 < k, cur + k),
        Port::East => {
            if c.x + 1 < k {
                Ok(Some(cur + 1))
            } else if cfg.mode == TopologyMode::Rings {
                Ok(Some(c.y * k)) // wrap over the row bypass wire
            } else {
                Err(NocError::OffMeshEdge { cur, port })
            }
        }
        Port::West => off_edge(c.x > 0, cur.wrapping_sub(1)),
        Port::BypassH => cfg
            .h_bypass_peer(cur)
            .map(Some)
            .ok_or(NocError::MissingBypassAttachment { cur, port }),
        Port::BypassV => cfg
            .v_bypass_peer(cur)
            .map(Some)
            .ok_or(NocError::MissingBypassAttachment { cur, port }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BypassSegment;
    use proptest::prelude::*;

    #[test]
    fn xy_routes_x_first() {
        let cfg = NocConfig::mesh(4);
        // from (0,0) to (2,2): East first
        assert_eq!(compute_route(&cfg, 0, 10), Ok(Port::East));
        // from (2,0) to (2,2): x resolved, go South
        assert_eq!(compute_route(&cfg, 2, 10), Ok(Port::South));
        assert_eq!(compute_route(&cfg, 10, 10), Ok(Port::Local));
        // from (3,3) to (0,0)
        assert_eq!(compute_route(&cfg, 15, 0), Ok(Port::West));
    }

    #[test]
    fn mesh_hop_count_is_manhattan() {
        let cfg = NocConfig::mesh(5);
        for src in 0..25 {
            for dst in 0..25 {
                let c = Coord::of(src, 5);
                let d = Coord::of(dst, 5);
                assert_eq!(hop_count(&cfg, src, dst), Ok(c.manhattan(d)));
            }
        }
    }

    #[test]
    fn bypass_shortens_long_row_route() {
        let cfg = NocConfig::with_bypass(
            8,
            vec![BypassSegment {
                index: 0,
                from: 0,
                to: 7,
            }],
            vec![],
        );
        // (0,0) → (7,0): mesh = 7 hops, bypass = 1
        assert_eq!(compute_route(&cfg, 0, 7), Ok(Port::BypassH));
        assert_eq!(hop_count(&cfg, 0, 7), Ok(1));
        // (1,0) → (7,0): mesh from 1 is 6; via West to 0 then bypass would
        // be 2, but dimension-ordered greedy at node 1 only looks at its own
        // attachment — node 1 has none, so it walks East.
        assert_eq!(compute_route(&cfg, 1, 7), Ok(Port::East));
    }

    #[test]
    fn bypass_not_taken_when_worse() {
        let cfg = NocConfig::with_bypass(
            8,
            vec![BypassSegment {
                index: 0,
                from: 0,
                to: 7,
            }],
            vec![],
        );
        // (0,0) → (2,0): bypass to 7 is worse; mesh East.
        assert_eq!(compute_route(&cfg, 0, 2), Ok(Port::East));
    }

    #[test]
    fn vertical_bypass_used_after_x_resolved() {
        let cfg = NocConfig::with_bypass(
            8,
            vec![],
            vec![BypassSegment {
                index: 3,
                from: 0,
                to: 6,
            }],
        );
        // (3,0) → (3,7): V bypass 0→6 then one mesh hop
        assert_eq!(compute_route(&cfg, 3, 3 + 7 * 8), Ok(Port::BypassV));
        assert_eq!(hop_count(&cfg, 3, 3 + 7 * 8), Ok(2));
    }

    #[test]
    fn ring_wraps_and_switches_vc() {
        let cfg = NocConfig::rings(4);
        // (3,1) → (0,1): East over the wrap
        let cur = 4 + 3;
        assert_eq!(compute_route(&cfg, cur, 4), Ok(Port::East));
        assert_eq!(next_node(&cfg, cur, Port::East), Ok(Some(4)));
        assert_eq!(next_vc(&cfg, cur, Port::East, 0), 1, "dateline crossing");
        assert_eq!(next_vc(&cfg, 4, Port::East, 0), 0, "no dateline mid-row");
        // full circle is k−... from (1,1) to (0,1): 3 hops around
        assert_eq!(hop_count(&cfg, 5, 4), Ok(3));
    }

    #[test]
    fn ring_rejects_cross_row() {
        let cfg = NocConfig::rings(4);
        assert_eq!(
            compute_route(&cfg, 0, 5),
            Err(crate::NocError::CrossRowRingRoute { cur: 0, dst: 5 })
        );
    }

    #[test]
    fn walking_off_the_fabric_is_an_error_not_a_panic() {
        let cfg = NocConfig::mesh(4);
        // East off the right edge (node 3 = (3,0)).
        assert!(matches!(
            next_node(&cfg, 3, Port::East),
            Err(crate::NocError::OffMeshEdge { cur: 3, .. })
        ));
        // North off the top edge.
        assert!(matches!(
            next_node(&cfg, 1, Port::North),
            Err(crate::NocError::OffMeshEdge { cur: 1, .. })
        ));
        // West off the left edge.
        assert!(matches!(
            next_node(&cfg, 4, Port::West),
            Err(crate::NocError::OffMeshEdge { cur: 4, .. })
        ));
        // Bypass port at a node with no attachment.
        assert!(matches!(
            next_node(&cfg, 0, Port::BypassH),
            Err(crate::NocError::MissingBypassAttachment { cur: 0, .. })
        ));
    }

    proptest! {
        #[test]
        fn routes_always_terminate_with_bypass(
            src in 0usize..64,
            dst in 0usize..64,
            row_to in 2usize..8,
            col_to in 2usize..8,
        ) {
            let cfg = NocConfig::with_bypass(
                8,
                vec![BypassSegment { index: 3, from: 0, to: row_to.min(7) }],
                vec![BypassSegment { index: 5, from: 1, to: col_to.min(7) }],
            );
            cfg.validate().unwrap();
            let h = hop_count(&cfg, src, dst).unwrap();
            let manhattan = Coord::of(src, 8).manhattan(Coord::of(dst, 8));
            prop_assert!(h <= manhattan, "bypass never lengthens a route");
        }
    }
}
