//! Route computation for the three fabric modes.
//!
//! * **Mesh** — dimension-ordered XY routing (deadlock-free).
//! * **MeshWithBypass** — XY routing where a bypass segment in the current
//!   dimension is taken when it brings the flit strictly closer than the
//!   mesh hop would; dimension order is preserved, so deadlock freedom is
//!   too.
//! * **Rings** — each row circulates in the +x direction, wrapping from
//!   `x = k − 1` back to `x = 0` over the row's bypass wire. A dateline at
//!   the wrap switches packets to VC 1, breaking the ring's cyclic channel
//!   dependency.

use crate::config::{NocConfig, TopologyMode};
use crate::error::NocError;
use crate::topology::{Coord, NodeId, Port};

/// Computes the output port for a flit at `cur` destined to `dst`.
///
/// Ring mode only routes within a row (ring traffic is intra-row by
/// construction of the vertex-update dataflow); a cross-row request
/// yields [`NocError::CrossRowRingRoute`] instead of aborting the run.
pub fn compute_route(cfg: &NocConfig, cur: NodeId, dst: NodeId) -> Result<Port, NocError> {
    let k = cfg.k;
    let c = Coord::of(cur, k);
    let d = Coord::of(dst, k);
    if c == d {
        return Ok(Port::Local);
    }
    match cfg.mode {
        TopologyMode::Rings => {
            if c.y != d.y {
                return Err(NocError::CrossRowRingRoute { cur, dst });
            }
            Ok(Port::East) // +x, wrapping at k − 1
        }
        TopologyMode::Mesh | TopologyMode::MeshWithBypass => {
            if c.x != d.x {
                // Resolve X first. Consider the horizontal bypass if it
                // strictly beats the mesh hop.
                if cfg.mode == TopologyMode::MeshWithBypass {
                    if let Some(peer) = cfg.h_bypass_peer(cur) {
                        let px = peer % k;
                        let cur_gap = c.x.abs_diff(d.x);
                        let peer_gap = px.abs_diff(d.x);
                        if peer_gap + 1 < cur_gap {
                            return Ok(Port::BypassH);
                        }
                    }
                }
                if c.x < d.x {
                    Ok(Port::East)
                } else {
                    Ok(Port::West)
                }
            } else {
                // X resolved; resolve Y, considering the vertical bypass.
                if cfg.mode == TopologyMode::MeshWithBypass {
                    if let Some(peer) = cfg.v_bypass_peer(cur) {
                        let py = peer / k;
                        let cur_gap = c.y.abs_diff(d.y);
                        let peer_gap = py.abs_diff(d.y);
                        if peer_gap + 1 < cur_gap {
                            return Ok(Port::BypassV);
                        }
                    }
                }
                if c.y < d.y {
                    Ok(Port::South)
                } else {
                    Ok(Port::North)
                }
            }
        }
    }
}

/// The VC a flit occupies on the downstream router after leaving `cur`
/// through `out`. Ring wrap crossings move to VC 1 (dateline); everything
/// else keeps its VC.
pub fn next_vc(cfg: &NocConfig, cur: NodeId, out: Port, in_vc: usize) -> usize {
    if cfg.mode == TopologyMode::Rings && out == Port::East && cur % cfg.k == cfg.k - 1 {
        1.min(cfg.vcs - 1)
    } else {
        in_vc
    }
}

/// Number of router-to-router hops the route from `src` to `dst` takes
/// under `cfg` (follows `compute_route` exactly). Fails with the
/// underlying routing error, or [`NocError::RoutingLivelock`] if the
/// route cannot reach `dst`.
///
/// Convenience for one-off queries: it builds a [`RouteTable`] for `cfg`
/// and reads the answer out of it. Callers with many queries against one
/// configuration should hold a [`RouteTable`] themselves.
pub fn hop_count(cfg: &NocConfig, src: NodeId, dst: NodeId) -> Result<usize, NocError> {
    RouteTable::build(cfg)?.hops(src, dst)
}

/// Precomputed summary of one `(src, dst)` route: everything a traffic
/// estimator needs except the per-node identities (walk those with
/// [`RouteTable::load_nodes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteSummary {
    /// Router-to-router hops (0 when `src == dst`).
    pub hops: u32,
    /// How many of those hops ride a bypass segment.
    pub bypass_hops: u32,
}

/// Per-node resolution state used while building the table (per
/// destination): hop/bypass counts for resolved nodes, or a marker.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RouteState {
    Unknown,
    Done {
        hops: u32,
        bypass: u32,
    },
    /// The route fails (routing error, no progress, or a cycle). The
    /// *which* error is not stored — [`RouteTable::summary`] re-derives it
    /// by replaying the hop-by-hop walk, which reproduces it exactly.
    Failed,
}

/// `ports` sentinel for "`compute_route` errors at this pair".
const PORT_ERR: u8 = u8::MAX;

/// `hops` sentinel for "this pair is unroutable".
const HOPS_ERR: u32 = u32::MAX;

/// Precomputed routes of one [`NocConfig`]: a dense next-hop LUT plus a
/// per-pair [`RouteSummary`], one entry per `(src, dst)` PE pair — k⁴
/// entries for a `k × k` fabric.
///
/// Routes are pure functions of the configuration, so the table is built
/// **once** per config via the same fallible routing functions the
/// cycle-level engine uses ([`compute_route`] / [`next_node`]): a
/// mis-segmented bypass config fails [`RouteTable::build`] up front, and
/// per-pair route errors (e.g. a cross-row ring request) are returned
/// exactly as the hop-by-hop walk would produce them. Traffic estimators
/// then charge each *distinct* pair once, scaled by its message
/// multiplicity, instead of re-walking every edge — the O(E·hops) →
/// O(E + k⁴) rewrite of `aggregation_traffic`.
///
/// Storage is deliberately compact (9 bytes/pair — ~9 MB at the paper's
/// k = 32, where the engine may cache several tables): ports are
/// byte-encoded and failing pairs hold a sentinel whose exact [`NocError`]
/// is re-derived on demand by replaying the walk. The per-node
/// load-contribution list of a route is likewise not materialized (that
/// would be O(k⁵) memory); [`Self::load_nodes`] replays it as a cheap LUT
/// chase instead.
#[derive(Debug, Clone)]
pub struct RouteTable {
    cfg: NocConfig,
    n: usize,
    /// `ports[cur * n + dst]`: index into [`Port::ALL`] of the output port
    /// at `cur` towards `dst`, or [`PORT_ERR`].
    ports: Vec<u8>,
    /// `hops[src * n + dst]`, or [`HOPS_ERR`] for unroutable pairs.
    hops: Vec<u32>,
    /// `bypass[src * n + dst]`: how many of the hops ride bypass segments.
    bypass: Vec<u32>,
}

impl RouteTable {
    /// Builds the table for `cfg`. Configuration-level problems surface
    /// here as the [`NocConfig::validate`] error; per-pair routing errors
    /// are recorded per pair and returned by the accessors.
    pub fn build(cfg: &NocConfig) -> Result<RouteTable, NocError> {
        cfg.validate()?;
        let n = cfg.k * cfg.k;
        let mut ports = Vec::with_capacity(n * n);
        for cur in 0..n {
            for dst in 0..n {
                ports.push(match compute_route(cfg, cur, dst) {
                    Ok(p) => encode_port(p),
                    Err(_) => PORT_ERR,
                });
            }
        }

        // Resolve every pair's summary by chasing the LUT with memoized
        // back-fill: each node is walked at most once per destination, so
        // the whole table costs O(k⁴), not O(k⁴ · hops).
        let mut hops = vec![HOPS_ERR; n * n];
        let mut bypass = vec![0u32; n * n];
        let mut state = vec![RouteState::Unknown; n];
        let mut stack: Vec<(NodeId, bool)> = Vec::with_capacity(n);
        let mut on_stack = vec![false; n];
        for dst in 0..n {
            state.iter_mut().for_each(|s| *s = RouteState::Unknown);
            state[dst] = RouteState::Done { hops: 0, bypass: 0 };
            for src in 0..n {
                if state[src] == RouteState::Unknown {
                    stack.clear();
                    let mut cur = src;
                    let terminal = loop {
                        if state[cur] != RouteState::Unknown {
                            break state[cur];
                        }
                        if on_stack[cur] {
                            break RouteState::Failed; // cycle in the next-hop graph
                        }
                        let step = match decode_port(ports[cur * n + dst]) {
                            None => None, // compute_route error
                            Some(port) => match next_node(cfg, cur, port) {
                                // An `Err` or mid-route `Ok(None)` (no
                                // progress) both fail the walk.
                                Err(_) | Ok(None) => None,
                                Ok(Some(next)) => {
                                    Some((next, matches!(port, Port::BypassH | Port::BypassV)))
                                }
                            },
                        };
                        match step {
                            Some((next, byp)) => {
                                on_stack[cur] = true;
                                stack.push((cur, byp));
                                cur = next;
                            }
                            None => {
                                // Record the failure at the node that hit it,
                                // so later sources routing through it (and
                                // `cur == src` itself) resolve immediately.
                                state[cur] = RouteState::Failed;
                                break RouteState::Failed;
                            }
                        }
                    };
                    // Back-fill the walked prefix from the terminal state.
                    let mut acc = terminal;
                    for &(node, byp) in stack.iter().rev() {
                        on_stack[node] = false;
                        if let RouteState::Done { hops, bypass } = acc {
                            acc = RouteState::Done {
                                hops: hops + 1,
                                bypass: bypass + byp as u32,
                            };
                        }
                        state[node] = acc;
                    }
                }
                if let RouteState::Done { hops: h, bypass: b } = state[src] {
                    hops[src * n + dst] = h;
                    bypass[src * n + dst] = b;
                }
            }
        }
        Ok(RouteTable {
            cfg: cfg.clone(),
            n,
            ports,
            hops,
            bypass,
        })
    }

    /// Replays the hop-by-hop walk of a pair the build marked unroutable,
    /// reproducing the exact [`NocError`] the walk yields — including the
    /// livelock guard.
    fn derive_error(&self, src: NodeId, dst: NodeId) -> NocError {
        let cfg = &self.cfg;
        let mut cur = src;
        let mut guard = 0;
        while cur != dst {
            let port = match compute_route(cfg, cur, dst) {
                Ok(p) => p,
                Err(e) => return e,
            };
            cur = match next_node(cfg, cur, port) {
                Ok(Some(next)) => next,
                Ok(None) => return NocError::RoutingLivelock { src, dst },
                Err(e) => return e,
            };
            guard += 1;
            if guard > 4 * cfg.k * cfg.k {
                return NocError::RoutingLivelock { src, dst };
            }
        }
        unreachable!("pair certified unroutable by the build")
    }

    /// The configuration this table was built for.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Number of `(src, dst)` pairs held (k⁴).
    pub fn num_pairs(&self) -> usize {
        self.n * self.n
    }

    /// The content fingerprint of the configuration this table was built
    /// from ([`NocConfig::signature`]). The table is a pure function of
    /// its config, so two tables with equal signatures route identically
    /// — cached per-tile traffic profiles carry this stamp and are
    /// invalidated when it stops matching.
    pub fn signature(&self) -> u64 {
        self.cfg.signature()
    }

    /// The output port at `cur` towards `dst` (LUT lookup).
    pub fn next_hop(&self, cur: NodeId, dst: NodeId) -> Result<Port, NocError> {
        match decode_port(self.ports[cur * self.n + dst]) {
            Some(p) => Ok(p),
            None => Err(compute_route(&self.cfg, cur, dst)
                .expect_err("build marked this pair's route computation failing")),
        }
    }

    /// The precomputed summary of the `src → dst` route.
    pub fn summary(&self, src: NodeId, dst: NodeId) -> Result<RouteSummary, NocError> {
        let i = src * self.n + dst;
        if self.hops[i] == HOPS_ERR {
            Err(self.derive_error(src, dst))
        } else {
            Ok(RouteSummary {
                hops: self.hops[i],
                bypass_hops: self.bypass[i],
            })
        }
    }

    /// Hop count of the `src → dst` route (table-backed [`hop_count`]).
    pub fn hops(&self, src: NodeId, dst: NodeId) -> Result<usize, NocError> {
        self.summary(src, dst).map(|s| s.hops as usize)
    }

    /// The nodes that *forward* a `src → dst` message — `src` and every
    /// intermediate router, excluding `dst` (which ejects) — in route
    /// order. Exactly the nodes whose load a hop-by-hop walk increments.
    /// Empty for unroutable pairs.
    pub fn load_nodes(&self, src: NodeId, dst: NodeId) -> LoadNodes<'_> {
        let h = self.hops[src * self.n + dst];
        LoadNodes {
            table: self,
            cur: src,
            dst,
            remaining: if h == HOPS_ERR { 0 } else { h },
        }
    }
}

fn encode_port(p: Port) -> u8 {
    Port::ALL.iter().position(|q| *q == p).expect("port in ALL") as u8
}

fn decode_port(code: u8) -> Option<Port> {
    Port::ALL.get(code as usize).copied()
}

/// Iterator over the forwarding nodes of one route (see
/// [`RouteTable::load_nodes`]).
#[derive(Debug)]
pub struct LoadNodes<'a> {
    table: &'a RouteTable,
    cur: NodeId,
    dst: NodeId,
    remaining: u32,
}

impl Iterator for LoadNodes<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let node = self.cur;
        // The summary certified this route, so the chase cannot fail.
        let port = decode_port(self.table.ports[node * self.table.n + self.dst])
            .expect("certified route has a next hop");
        self.cur = next_node(&self.table.cfg, node, port)
            .expect("certified route stays on the fabric")
            .expect("certified route makes progress");
        Some(node)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for LoadNodes<'_> {}

/// The node reached by leaving `cur` through `port` (`Ok(None)` for
/// Local). A port that steps off the fabric — the mesh edge in a
/// non-ring mode, or a bypass port at a node without an attachment, as
/// produced by mis-segmented bypass configs — is a [`NocError`] rather
/// than a panic.
pub fn next_node(cfg: &NocConfig, cur: NodeId, port: Port) -> Result<Option<NodeId>, NocError> {
    let k = cfg.k;
    let c = Coord::of(cur, k);
    let off_edge = |ok: bool, node: NodeId| {
        if ok {
            Ok(Some(node))
        } else {
            Err(NocError::OffMeshEdge { cur, port })
        }
    };
    match port {
        Port::Local => Ok(None),
        Port::North => off_edge(c.y > 0, cur.wrapping_sub(k)),
        Port::South => off_edge(c.y + 1 < k, cur + k),
        Port::East => {
            if c.x + 1 < k {
                Ok(Some(cur + 1))
            } else if cfg.mode == TopologyMode::Rings {
                Ok(Some(c.y * k)) // wrap over the row bypass wire
            } else {
                Err(NocError::OffMeshEdge { cur, port })
            }
        }
        Port::West => off_edge(c.x > 0, cur.wrapping_sub(1)),
        Port::BypassH => cfg
            .h_bypass_peer(cur)
            .map(Some)
            .ok_or(NocError::MissingBypassAttachment { cur, port }),
        Port::BypassV => cfg
            .v_bypass_peer(cur)
            .map(Some)
            .ok_or(NocError::MissingBypassAttachment { cur, port }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BypassSegment;
    use proptest::prelude::*;

    #[test]
    fn xy_routes_x_first() {
        let cfg = NocConfig::mesh(4);
        // from (0,0) to (2,2): East first
        assert_eq!(compute_route(&cfg, 0, 10), Ok(Port::East));
        // from (2,0) to (2,2): x resolved, go South
        assert_eq!(compute_route(&cfg, 2, 10), Ok(Port::South));
        assert_eq!(compute_route(&cfg, 10, 10), Ok(Port::Local));
        // from (3,3) to (0,0)
        assert_eq!(compute_route(&cfg, 15, 0), Ok(Port::West));
    }

    #[test]
    fn mesh_hop_count_is_manhattan() {
        let cfg = NocConfig::mesh(5);
        for src in 0..25 {
            for dst in 0..25 {
                let c = Coord::of(src, 5);
                let d = Coord::of(dst, 5);
                assert_eq!(hop_count(&cfg, src, dst), Ok(c.manhattan(d)));
            }
        }
    }

    #[test]
    fn bypass_shortens_long_row_route() {
        let cfg = NocConfig::with_bypass(
            8,
            vec![BypassSegment {
                index: 0,
                from: 0,
                to: 7,
            }],
            vec![],
        );
        // (0,0) → (7,0): mesh = 7 hops, bypass = 1
        assert_eq!(compute_route(&cfg, 0, 7), Ok(Port::BypassH));
        assert_eq!(hop_count(&cfg, 0, 7), Ok(1));
        // (1,0) → (7,0): mesh from 1 is 6; via West to 0 then bypass would
        // be 2, but dimension-ordered greedy at node 1 only looks at its own
        // attachment — node 1 has none, so it walks East.
        assert_eq!(compute_route(&cfg, 1, 7), Ok(Port::East));
    }

    #[test]
    fn bypass_not_taken_when_worse() {
        let cfg = NocConfig::with_bypass(
            8,
            vec![BypassSegment {
                index: 0,
                from: 0,
                to: 7,
            }],
            vec![],
        );
        // (0,0) → (2,0): bypass to 7 is worse; mesh East.
        assert_eq!(compute_route(&cfg, 0, 2), Ok(Port::East));
    }

    #[test]
    fn vertical_bypass_used_after_x_resolved() {
        let cfg = NocConfig::with_bypass(
            8,
            vec![],
            vec![BypassSegment {
                index: 3,
                from: 0,
                to: 6,
            }],
        );
        // (3,0) → (3,7): V bypass 0→6 then one mesh hop
        assert_eq!(compute_route(&cfg, 3, 3 + 7 * 8), Ok(Port::BypassV));
        assert_eq!(hop_count(&cfg, 3, 3 + 7 * 8), Ok(2));
    }

    #[test]
    fn ring_wraps_and_switches_vc() {
        let cfg = NocConfig::rings(4);
        // (3,1) → (0,1): East over the wrap
        let cur = 4 + 3;
        assert_eq!(compute_route(&cfg, cur, 4), Ok(Port::East));
        assert_eq!(next_node(&cfg, cur, Port::East), Ok(Some(4)));
        assert_eq!(next_vc(&cfg, cur, Port::East, 0), 1, "dateline crossing");
        assert_eq!(next_vc(&cfg, 4, Port::East, 0), 0, "no dateline mid-row");
        // full circle is k−... from (1,1) to (0,1): 3 hops around
        assert_eq!(hop_count(&cfg, 5, 4), Ok(3));
    }

    #[test]
    fn ring_rejects_cross_row() {
        let cfg = NocConfig::rings(4);
        assert_eq!(
            compute_route(&cfg, 0, 5),
            Err(crate::NocError::CrossRowRingRoute { cur: 0, dst: 5 })
        );
    }

    #[test]
    fn walking_off_the_fabric_is_an_error_not_a_panic() {
        let cfg = NocConfig::mesh(4);
        // East off the right edge (node 3 = (3,0)).
        assert!(matches!(
            next_node(&cfg, 3, Port::East),
            Err(crate::NocError::OffMeshEdge { cur: 3, .. })
        ));
        // North off the top edge.
        assert!(matches!(
            next_node(&cfg, 1, Port::North),
            Err(crate::NocError::OffMeshEdge { cur: 1, .. })
        ));
        // West off the left edge.
        assert!(matches!(
            next_node(&cfg, 4, Port::West),
            Err(crate::NocError::OffMeshEdge { cur: 4, .. })
        ));
        // Bypass port at a node with no attachment.
        assert!(matches!(
            next_node(&cfg, 0, Port::BypassH),
            Err(crate::NocError::MissingBypassAttachment { cur: 0, .. })
        ));
    }

    /// Walks the route hop-by-hop exactly like the pre-table `hop_count`
    /// did — the oracle for the table-backed implementation.
    fn walked_hop_count(cfg: &NocConfig, src: NodeId, dst: NodeId) -> Result<usize, NocError> {
        let mut cur = src;
        let mut hops = 0;
        while cur != dst {
            let port = compute_route(cfg, cur, dst)?;
            cur = next_node(cfg, cur, port)?.ok_or(NocError::RoutingLivelock { src, dst })?;
            hops += 1;
            if hops > 4 * cfg.k * cfg.k {
                return Err(NocError::RoutingLivelock { src, dst });
            }
        }
        Ok(hops)
    }

    #[test]
    fn ring_hop_counts_are_directed_distances() {
        // Regression: table-backed hop_count on rings must keep the
        // directed +x distance (b − a mod k) within a row and the
        // cross-row error outside it.
        let k = 4;
        let cfg = NocConfig::rings(k);
        for row in 0..k {
            for a in 0..k {
                for b in 0..k {
                    let src = row * k + a;
                    let dst = row * k + b;
                    assert_eq!(hop_count(&cfg, src, dst), Ok((b + k - a) % k));
                }
            }
        }
        assert_eq!(
            hop_count(&cfg, 0, 5),
            Err(NocError::CrossRowRingRoute { cur: 0, dst: 5 })
        );
    }

    #[test]
    fn route_table_matches_walked_routes() {
        for cfg in [
            NocConfig::mesh(4),
            NocConfig::rings(4),
            NocConfig::with_bypass(
                8,
                vec![BypassSegment {
                    index: 0,
                    from: 0,
                    to: 7,
                }],
                vec![BypassSegment {
                    index: 5,
                    from: 1,
                    to: 6,
                }],
            ),
        ] {
            let table = RouteTable::build(&cfg).unwrap();
            let n = cfg.k * cfg.k;
            assert_eq!(table.num_pairs(), n * n);
            for src in 0..n {
                for dst in 0..n {
                    assert_eq!(
                        table.hops(src, dst),
                        walked_hop_count(&cfg, src, dst),
                        "{cfg:?} {src}->{dst}"
                    );
                    if let Ok(s) = table.summary(src, dst) {
                        let nodes: Vec<_> = table.load_nodes(src, dst).collect();
                        assert_eq!(nodes.len(), s.hops as usize);
                        if s.hops > 0 {
                            assert_eq!(nodes[0], src);
                            assert!(!nodes.contains(&dst), "dst ejects, never forwards");
                        }
                    } else {
                        assert_eq!(table.load_nodes(src, dst).count(), 0);
                    }
                }
            }
        }
    }

    #[test]
    fn route_table_rejects_invalid_config() {
        let mut cfg = NocConfig::mesh(4);
        cfg.vcs = 0;
        assert_eq!(
            RouteTable::build(&cfg).unwrap_err(),
            NocError::NoVirtualChannels
        );
    }

    proptest! {
        #[test]
        fn routes_always_terminate_with_bypass(
            src in 0usize..64,
            dst in 0usize..64,
            row_to in 2usize..8,
            col_to in 2usize..8,
        ) {
            let cfg = NocConfig::with_bypass(
                8,
                vec![BypassSegment { index: 3, from: 0, to: row_to.min(7) }],
                vec![BypassSegment { index: 5, from: 1, to: col_to.min(7) }],
            );
            cfg.validate().unwrap();
            let h = hop_count(&cfg, src, dst).unwrap();
            let manhattan = Coord::of(src, 8).manhattan(Coord::of(dst, 8));
            prop_assert!(h <= manhattan, "bypass never lengthens a route");
        }
    }
}
