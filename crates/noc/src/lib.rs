//! Cycle-level flexible Network-on-Chip — §III-B/C, Figs. 2-4.
//!
//! Aurora's interconnect is a 2-D mesh augmented with one **bi-directional
//! bypassing link per row and per column**. Each bypassing link contains
//! link switches, so it can be segmented into shorter express links that
//! bridge long-distance communication, provide extra injection bandwidth
//! for high-degree vertices, or serve as the wrap-up link that closes each
//! row into a **ring** for weight-stationary dataflow in the vertex-update
//! sub-accelerator.
//!
//! The router (Fig. 4) is a conventional VC wormhole router — route
//! computation, VC allocation, switch allocation, VC buffers, crossbar —
//! with muxes at +x/+y that attach the bypass segments.
//!
//! The simulation is flit-level and cycle-driven: one flit per link per
//! cycle, credit-based backpressure, round-robin switch allocation, and
//! wormhole output ownership from head to tail.
//!
//! ```
//! use aurora_noc::{Network, NocConfig};
//!
//! let mut net = Network::new(NocConfig::mesh(4));
//! net.inject(0, 15, 32); // 32 words from corner to corner
//! net.drain(10_000).expect("delivered");
//! assert_eq!(net.stats().packets_delivered, 1);
//! assert_eq!(net.stats().avg_hops(), 6.0); // Manhattan distance on XY
//! ```

pub mod config;
pub mod error;
pub mod flit;
pub mod network;
pub mod router;
pub mod routing;
pub mod stats;
pub mod topology;
pub mod traffic;

pub use config::{BypassSegment, NocConfig, TopologyMode};
pub use error::{BypassKind, NocError};
pub use flit::{Flit, FlitKind, Packet, PacketId};
pub use network::Network;
pub use routing::{RouteSummary, RouteTable};
pub use stats::NetworkStats;
pub use topology::{Coord, NodeId, Port};
pub use traffic::{run_pattern, run_pattern_with_budget, Pattern, PatternRun};
