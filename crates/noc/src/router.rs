//! The reconfigurable wormhole router (Fig. 4).
//!
//! Each router has up to seven ports (five mesh ports plus the two bypass
//! attachments behind the +x/+y muxes), `vcs` virtual-channel buffers per
//! port, per-output round-robin switch allocation, and wormhole ownership:
//! once a head flit wins an output, the output is held until the tail flit
//! releases it. The two-stage horizontal/vertical crossbar of the paper is
//! modelled by the one-flit-per-output-per-cycle constraint.

use crate::flit::Flit;
use crate::topology::Port;
use std::collections::VecDeque;

/// One virtual-channel buffer and its current route.
#[derive(Debug, Clone, Default)]
pub struct VcState {
    pub queue: VecDeque<Flit>,
    /// Output port held by the packet currently traversing this VC.
    pub route: Option<Port>,
}

/// Per-router state.
#[derive(Debug, Clone)]
pub struct Router {
    /// `inputs[port][vc]`.
    pub inputs: Vec<Vec<VcState>>,
    /// Wormhole ownership per output port: `(in_port, in_vc)`.
    pub out_owner: [Option<(usize, usize)>; Port::COUNT],
    /// Round-robin pointer per output port.
    rr: [usize; Port::COUNT],
    /// Flits forwarded through this router (hotspot statistic).
    pub forwarded: u64,
}

impl Router {
    /// A router with `vcs` VCs on every port.
    pub fn new(vcs: usize) -> Self {
        Self {
            inputs: (0..Port::COUNT)
                .map(|_| (0..vcs).map(|_| VcState::default()).collect())
                .collect(),
            out_owner: [None; Port::COUNT],
            rr: [0; Port::COUNT],
            forwarded: 0,
        }
    }

    /// Total buffered flits (used by drain detection and tests).
    pub fn occupancy(&self) -> usize {
        self.inputs
            .iter()
            .flat_map(|p| p.iter())
            .map(|vc| vc.queue.len())
            .sum()
    }

    /// Chooses at most one `(in_port, in_vc)` to traverse towards output
    /// `out` this cycle, honouring wormhole ownership, with round-robin
    /// fairness over `(port, vc)` pairs.
    pub fn allocate(&mut self, out: Port) -> Option<(usize, usize)> {
        let oi = out.index();
        if let Some((p, v)) = self.out_owner[oi] {
            // The wormhole owner sends whenever it has a flit ready.
            let vc = &self.inputs[p][v];
            if vc.route == Some(out) && !vc.queue.is_empty() {
                return Some((p, v));
            }
            return None;
        }
        // No owner: arbitrate among VCs whose *head* flit opens a packet
        // routed to `out`.
        let vcs = self.inputs[0].len();
        let total = Port::COUNT * vcs;
        let start = self.rr[oi];
        for k in 0..total {
            let slot = (start + k) % total;
            let (p, v) = (slot / vcs, slot % vcs);
            let vc = &self.inputs[p][v];
            if vc.route == Some(out) {
                if let Some(f) = vc.queue.front() {
                    if f.kind.is_head() {
                        self.rr[oi] = (slot + 1) % total;
                        return Some((p, v));
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::{FlitKind, Packet};

    fn head_flit(id: u64, dst: usize) -> Flit {
        Packet::for_payload(id, 0, dst, 1, 4).flits(0)[0]
    }

    #[test]
    fn empty_router_allocates_nothing() {
        let mut r = Router::new(2);
        for p in Port::ALL {
            assert_eq!(r.allocate(p), None);
        }
        assert_eq!(r.occupancy(), 0);
    }

    #[test]
    fn single_candidate_wins() {
        let mut r = Router::new(2);
        r.inputs[Port::Local.index()][0]
            .queue
            .push_back(head_flit(1, 3));
        r.inputs[Port::Local.index()][0].route = Some(Port::East);
        assert_eq!(r.allocate(Port::East), Some((Port::Local.index(), 0)));
        assert_eq!(r.allocate(Port::West), None);
    }

    #[test]
    fn round_robin_alternates() {
        let mut r = Router::new(1);
        for p in [Port::North, Port::West] {
            r.inputs[p.index()][0].queue.push_back(head_flit(1, 3));
            r.inputs[p.index()][0].route = Some(Port::East);
        }
        let first = r.allocate(Port::East).unwrap();
        // simulate the grant consuming nothing; arbitration pointer moved,
        // so the other input wins next.
        let second = r.allocate(Port::East).unwrap();
        assert_ne!(first, second, "round robin must alternate");
    }

    #[test]
    fn owner_holds_output() {
        let mut r = Router::new(1);
        let pi = Port::North.index();
        r.inputs[pi][0].queue.push_back(Flit {
            packet: 9,
            kind: FlitKind::Body,
            src: 0,
            dst: 3,
            injected_at: 0,
            hops: 0,
        });
        r.inputs[pi][0].route = Some(Port::East);
        // No ownership yet and head is a Body flit → nothing allocated.
        assert_eq!(r.allocate(Port::East), None);
        // With ownership the body flit proceeds.
        r.out_owner[Port::East.index()] = Some((pi, 0));
        assert_eq!(r.allocate(Port::East), Some((pi, 0)));
    }

    #[test]
    fn owner_blocks_other_inputs() {
        let mut r = Router::new(1);
        r.out_owner[Port::East.index()] = Some((Port::North.index(), 0));
        // competitor with a head flit
        r.inputs[Port::West.index()][0]
            .queue
            .push_back(head_flit(2, 3));
        r.inputs[Port::West.index()][0].route = Some(Port::East);
        assert_eq!(
            r.allocate(Port::East),
            None,
            "owned output must not be granted to another VC"
        );
    }
}
