//! The shared analytic chassis all baseline models run on.
//!
//! Methodology (matching the paper's §VI-A): count each phase's arithmetic
//! operations and memory-hierarchy accesses under the baseline's dataflow,
//! convert to time through the engine throughputs and the shared DRAM
//! model, and overlap compute with off-chip transfer through double
//! buffering. All baselines are normalised to Aurora's multiplier count,
//! DRAM bandwidth and 100 MB of on-chip storage.
//!
//! On-chip communication uses the *same* route-walking estimator as the
//! Aurora engine (`aurora_core::noc_model`) — but with the hashing-based
//! mapping on a plain mesh-equivalent fabric, scaled by each design's
//! interconnect-quality factor ("HyGCN, AWB-GCN, GCNAX, ReGNN, and FlowGNN
//! only use simple interconnects … to enable the communication between
//! PEs", §VI-D). This makes the hot-spot effect of hash-mapped high-degree
//! vertices emerge mechanically for the baselines, exactly as it does for
//! Aurora.

use aurora_core::noc_model::{self, OnChipEstimate};
use aurora_core::report::{LayerReport, NocReport, PhaseCycles, SimReport};
use aurora_energy::{ActivityCounts, EnergyModel};
use aurora_graph::{Csr, Tiling};
use aurora_mapping::hashing;
use aurora_mem::MemoryController;
use aurora_model::{LayerShape, ModelCategory, ModelId, Phase, Workload};
use aurora_noc::NocConfig;
use aurora_partition::PartitionStrategy;
use serde::{Deserialize, Serialize};

/// Resources every baseline is normalised to (§VI-A "the baseline
/// accelerators are scaled to be equipped with the same number of
/// multipliers and DRAM bandwidth as Aurora … with 100 MB on-chip
/// storage").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineParams {
    pub num_multipliers: usize,
    pub clock_mhz: u64,
    pub dram_channels: usize,
    pub onchip_bytes: usize,
}

impl Default for BaselineParams {
    fn default() -> Self {
        Self {
            num_multipliers: 1024 * 16, // 1024 PEs × 16 lanes
            clock_mhz: 700,
            dram_channels: 4,
            onchip_bytes: 100 * 1024 * 1024,
        }
    }
}

impl BaselineParams {
    /// Mesh radix of the PE-grid-equivalent fabric (16 multipliers per PE,
    /// like Aurora's normalisation).
    pub fn mesh_k(&self) -> usize {
        (((self.num_multipliers / 16) as f64).sqrt().round() as usize).max(2)
    }
}

/// The dataflow knobs that differentiate the designs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataflowKnobs {
    /// Fraction of multipliers hard-wired to the irregular (aggregation)
    /// engine; `None` = one unified/rebalanced engine.
    pub engine_split: Option<f64>,
    /// Fraction of the shorter phase hidden by pipelining (0 = fully
    /// sequential phases, 1 = perfect tandem pipeline).
    pub pipeline_overlap: f64,
    /// Resident weight copies; each copy is streamed from DRAM and eats
    /// feature residency ("the weight matrix needs to be duplicated in all
    /// processing elements", §VI-B).
    pub weight_copies: usize,
    /// Fraction of on-chip storage available for feature residency.
    pub feature_budget_fraction: f64,
    /// Multiplier on neighbour-gather miss traffic (lower = smarter
    /// tiling/loop order).
    pub gather_efficiency: f64,
    /// Minimum gather miss rate even when the graph fits on chip —
    /// rigid buffer partitioning and streaming dataflows re-fetch.
    pub miss_floor: f64,
    /// Whether inter-phase intermediates spill to DRAM (designs without
    /// Aurora's direct A→B forwarding and without fused loops).
    pub spill_intermediates: bool,
    /// Fraction of aggregation operations eliminated as redundant
    /// (ReGNN's contribution).
    pub redundancy_elim: f64,
    /// Interconnect-quality multiplier on the mesh-equivalent on-chip
    /// estimate (≥ 1; crossbars between engines serialise, queues add
    /// latency).
    pub interconnect_factor: f64,
    /// Whether the design executes edge-update operations at all.
    pub supports_edge_ops: bool,
    /// Whether attention (A-GNN) models are supported.
    pub supports_attention: bool,
    /// Compute utilisation of the regular (dense) engine.
    pub util_regular: f64,
    /// Compute utilisation of the irregular (sparse) engine.
    pub util_irregular: f64,
}

/// One baseline accelerator = shared chassis + its knobs.
#[derive(Debug, Clone)]
pub struct BaselineChassis {
    pub name: &'static str,
    pub params: BaselineParams,
    pub knobs: DataflowKnobs,
}

impl BaselineChassis {
    /// Whether the design can execute `model` (Table I).
    pub fn supports(&self, model: ModelId) -> bool {
        let spec = model.spec();
        match spec.category {
            // GCN's scalar edge scaling folds into the adjacency matrix
            // for matrix-abstraction designs, so C-GNNs always run.
            ModelCategory::CGnn => true,
            ModelCategory::AGnn => self.knobs.supports_attention,
            ModelCategory::MpGnn => self.knobs.supports_edge_ops,
        }
    }

    /// On-chip estimate for one layer: hashing-mapped traffic on the
    /// mesh-equivalent fabric, first tile extrapolated across tiles.
    fn onchip_estimate(&self, g: &Csr, msg_words: usize, f_in: usize) -> OnChipEstimate {
        let k = self.params.mesh_k();
        let f_bytes = (f_in * 8).max(8);
        let c_pe = (self.params.onchip_bytes as f64 * self.knobs.feature_budget_fraction
            / (k * k) as f64
            / f_bytes as f64)
            .floor()
            .max(1.0) as usize;
        let tile_size = (k * k * c_pe).min(g.num_vertices().max(1));
        let tiling = Tiling::with_tile_size(g, tile_size.max(1));
        let cfg = NocConfig::mesh(k);
        let mut total = OnChipEstimate::default();
        for sg in tiling.subgraphs(g) {
            let range = sg.vertex_range();
            let degrees: Vec<u32> = range.clone().map(|v| g.degree(v) as u32).collect();
            let mapping = hashing::map(range, &degrees, k, c_pe);
            let est = noc_model::aggregation_traffic(
                &cfg,
                &mapping,
                sg.edges(),
                msg_words,
                noc_model::DEFAULT_LINK_UTILISATION,
            )
            .expect("plain mesh config routes every message");
            total = total.then(&est);
        }
        total.cycles = (total.cycles as f64 * self.knobs.interconnect_factor).ceil() as u64;
        total
    }

    /// Simulates inference, mirroring `AuroraSimulator::simulate`'s
    /// contract.
    ///
    /// # Panics
    /// Panics if the design does not support the model (check
    /// [`Self::supports`] first — the harness only compares on common
    /// ground, like the paper).
    pub fn simulate(
        &self,
        g: &Csr,
        model: ModelId,
        shapes: &[LayerShape],
        workload: &str,
    ) -> SimReport {
        assert!(
            self.supports(model),
            "{} does not support {}",
            self.name,
            model.name()
        );
        let p = &self.params;
        let kn = &self.knobs;
        let mut mem = MemoryController::new(p.dram_channels);
        let mut activity = ActivityCounts::default();
        let mut layers = Vec::new();
        let mut total_cycles = 0u64;
        let n = g.num_vertices();
        let m = g.num_edges();
        let clock_hz = p.clock_mhz as f64 * 1e6;

        for (li, &shape) in shapes.iter().enumerate() {
            let w = Workload::of(model, g, shape);
            let counts = w.op_counts();
            let spec = model.spec();

            // --- compute time ------------------------------------------
            let irregular =
                (counts.edge_update + counts.aggregation) as f64 * (1.0 - kn.redundancy_elim);
            let regular = counts.vertex_update as f64;
            let total_flops = 2.0 * p.num_multipliers as f64 * clock_hz;
            let (t_irr, t_reg) = match kn.engine_split {
                Some(f) => (
                    irregular / (total_flops * f * kn.util_irregular),
                    if regular == 0.0 {
                        0.0
                    } else {
                        regular / (total_flops * (1.0 - f) * kn.util_regular)
                    },
                ),
                None => (
                    irregular / (total_flops * kn.util_irregular),
                    regular / (total_flops * kn.util_regular),
                ),
            };
            // tandem engines overlap up to `pipeline_overlap` of the
            // shorter phase; a unified engine is inherently sequential.
            let overlap = if kn.engine_split.is_some() {
                kn.pipeline_overlap
            } else {
                0.0
            };
            let t_compute = t_irr.max(t_reg) + (1.0 - overlap) * t_irr.min(t_reg);
            let compute_cycles = (t_compute * clock_hz).ceil() as u64;

            // --- on-chip communication ---------------------------------
            let msg_words = if spec.has_edge_update() {
                spec.edge_feature_dim(shape.f_in)
            } else {
                shape.f_in
            };
            let noc = self.onchip_estimate(g, msg_words, shape.f_in);

            // --- DRAM traffic -------------------------------------------
            let f_bytes = (shape.f_in * 8) as u64;
            let weight_bytes = w.weight_bytes();
            let mut mem_cycles = 0u64;
            // duplicated weight copies each stream from DRAM
            mem_cycles += mem.stream_read(weight_bytes * kn.weight_copies as u64);
            mem_cycles += mem.stream_read(n as u64 * f_bytes); // base features
                                                               // residency window after weights claim their copies
            let budget = (p.onchip_bytes as f64 * kn.feature_budget_fraction
                - (weight_bytes * kn.weight_copies as u64) as f64)
                .max(f_bytes as f64);
            let window = (budget / f_bytes as f64).max(1.0);
            let p_miss = (1.0 - window / n as f64).max(kn.miss_floor);
            // Edge-driven misses, capped by sweep reuse: a window pass never
            // needs to re-stream the feature table more than twice per
            // window (high-average-degree graphs amortise).
            let windows = (n as f64 / window).ceil().max(1.0);
            let gather_elems =
                (m as f64 * p_miss * kn.gather_efficiency).min(2.0 * n as f64 * windows);
            let gather_bytes = (gather_elems * f_bytes as f64) as u64;
            mem_cycles += mem.random_read(gather_bytes);
            if spec.uses_edge_embeddings() {
                mem_cycles += mem.stream_read((m * msg_words * 8) as u64);
            }
            // inter-phase intermediates: Aurora forwards A→B directly;
            // these designs either stage in global SRAM or spill to DRAM.
            let inter_bytes = (n * shape.f_in * 8) as u64;
            if kn.spill_intermediates {
                mem_cycles += mem.stream_write(inter_bytes);
                mem_cycles += mem.stream_read(inter_bytes);
            } else {
                activity.global_sram_words += 2 * inter_bytes / 8;
            }
            let out_dim = if spec.has_vertex_update() {
                shape.f_out
            } else {
                msg_words.max(shape.f_in)
            };
            mem_cycles += mem.stream_write((n * out_dim * 8) as u64);
            let dram_cycles = mem.to_accel_cycles(mem_cycles, p.clock_mhz);

            // --- combine: compute+on-chip vs double-buffered DRAM --------
            let exec = compute_cycles + noc.cycles;
            let layer_cycles = exec.max(dram_cycles);
            total_cycles += layer_cycles;

            // --- activity ------------------------------------------------
            for ph in [Phase::EdgeUpdate, Phase::Aggregation, Phase::VertexUpdate] {
                let (mu, ad) = w.phase_mult_add(ph);
                if ph == Phase::Aggregation {
                    let keep = 1.0 - kn.redundancy_elim;
                    activity.fp_mults += (mu as f64 * keep) as u64;
                    activity.fp_adds += (ad as f64 * keep) as u64;
                } else {
                    activity.fp_mults += mu;
                    activity.fp_adds += ad;
                }
            }
            activity.local_sram_words += counts.total() + (n * (shape.f_in + out_dim)) as u64;
            activity.noc_flit_hops += noc.flit_hops;

            layers.push(LayerReport {
                layer: li,
                shape,
                partition: PartitionStrategy {
                    a: (p.num_multipliers as f64 * kn.engine_split.unwrap_or(1.0)) as usize / 16,
                    b: 0,
                    t_a: t_irr,
                    t_b: t_reg,
                },
                tiles: 1,
                op_counts: counts,
                compute_cycles,
                phase_cycles: PhaseCycles {
                    sub_a_compute: (t_irr * clock_hz).ceil() as u64,
                    sub_b_compute: (t_reg * clock_hz).ceil() as u64,
                    sub_a_noc: noc.cycles,
                    sub_b_noc: 0,
                },
                noc: NocReport::from(noc),
                dram_cycles,
                total_cycles: layer_cycles,
            });
        }

        activity.cycles = total_cycles;
        activity.dram_bytes = mem.counters().total_bytes();
        let energy = EnergyModel {
            clock_mhz: p.clock_mhz as f64,
            ..EnergyModel::default()
        }
        .evaluate(&activity);

        SimReport {
            accelerator: self.name.into(),
            model: model.name().into(),
            workload: workload.into(),
            layers,
            total_cycles,
            clock_mhz: p.clock_mhz,
            dram: mem.counters(),
            activity,
            energy,
            reconfigurations: 0,
            instructions: Vec::new(),
            metrics: aurora_telemetry::MetricsSnapshot::default(),
            // Baseline cost models don't decompose their pipeline; only
            // the Aurora engine produces a bound attribution.
            profile: aurora_core::profile::ProfileReport::default(),
            host_profile: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kinds::BaselineKind;
    use aurora_graph::generate;

    #[test]
    fn chassis_runs_gcn() {
        let g = generate::rmat(256, 2000, Default::default(), 1);
        let b = BaselineKind::Gcnax.build(BaselineParams::default());
        let r = b.simulate(&g, ModelId::Gcn, &[LayerShape::new(64, 32)], "t");
        assert!(r.total_cycles > 0);
        assert!(r.dram.total_bytes() > 0);
        assert!(r.energy_joules() > 0.0);
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn unsupported_model_rejected() {
        let g = generate::ring(8);
        let b = BaselineKind::HyGcn.build(BaselineParams::default());
        b.simulate(&g, ModelId::GGcn, &[LayerShape::new(8, 4)], "t");
    }

    #[test]
    fn redundancy_elimination_reduces_ops() {
        let g = generate::rmat(128, 1000, Default::default(), 2);
        let regnn = BaselineKind::ReGnn.build(BaselineParams::default());
        let hygcn = BaselineKind::HyGcn.build(BaselineParams::default());
        let r1 = regnn.simulate(&g, ModelId::Gcn, &[LayerShape::new(32, 16)], "t");
        let r2 = hygcn.simulate(&g, ModelId::Gcn, &[LayerShape::new(32, 16)], "t");
        assert!(r1.activity.fp_adds < r2.activity.fp_adds);
    }

    #[test]
    fn mesh_k_matches_aurora_grid() {
        assert_eq!(BaselineParams::default().mesh_k(), 32);
    }
}
