//! The five baseline designs as knob settings on the shared chassis.
//!
//! Each setting encodes the published dataflow properties the paper's
//! comparison leans on (§I Table I, §VI-B/C/D discussion). The constants
//! are calibrated so the *ordering* and rough factors of the paper's
//! results hold (EXPERIMENTS.md records measured vs published numbers).

use crate::chassis::{BaselineChassis, BaselineParams, DataflowKnobs};
use serde::{Deserialize, Serialize};

/// The compared accelerators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BaselineKind {
    HyGcn,
    AwbGcn,
    Gcnax,
    ReGnn,
    FlowGnn,
}

impl BaselineKind {
    /// All baselines in the paper's presentation order.
    pub const ALL: [BaselineKind; 5] = [
        BaselineKind::HyGcn,
        BaselineKind::AwbGcn,
        BaselineKind::Gcnax,
        BaselineKind::ReGnn,
        BaselineKind::FlowGnn,
    ];

    /// Display name as in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::HyGcn => "HyGCN",
            BaselineKind::AwbGcn => "AWB-GCN",
            BaselineKind::Gcnax => "GCNAX",
            BaselineKind::ReGnn => "ReGNN",
            BaselineKind::FlowGnn => "FlowGNN",
        }
    }

    /// Instantiates the design on the shared chassis.
    pub fn build(self, params: BaselineParams) -> BaselineChassis {
        BaselineChassis {
            name: self.name(),
            params,
            knobs: self.knobs(),
        }
    }

    /// The published-dataflow knob settings.
    pub fn knobs(self) -> DataflowKnobs {
        match self {
            // HyGCN: tandem SIMD aggregation engine + systolic combination
            // engine in a fixed 1:7 multiplier split (§VI-A); edge-driven
            // gather with only window-level reuse; rigid buffer
            // partitioning; an inter-engine crossbar that serialises the
            // phase hand-off; no edge-update or attention support.
            BaselineKind::HyGcn => DataflowKnobs {
                engine_split: Some(1.0 / 8.0),
                pipeline_overlap: 0.4,
                weight_copies: 1,
                feature_budget_fraction: 0.3,
                gather_efficiency: 1.0,
                miss_floor: 0.7,
                spill_intermediates: false,
                redundancy_elim: 0.0,
                interconnect_factor: 2.0,
                supports_edge_ops: false,
                supports_attention: false,
                util_regular: 0.85,
                util_irregular: 0.35,
            },
            // AWB-GCN: unified SpMM engine with runtime workload
            // rebalancing (good utilisation) but strictly sequential
            // (A·X)·W phases, the weight matrix duplicated in all PE
            // groups, and the intermediate product written back.
            BaselineKind::AwbGcn => DataflowKnobs {
                engine_split: None,
                pipeline_overlap: 0.0,
                weight_copies: 16,
                feature_budget_fraction: 0.45,
                gather_efficiency: 0.8,
                miss_floor: 0.12,
                spill_intermediates: true,
                redundancy_elim: 0.0,
                interconnect_factor: 1.45,
                supports_edge_ops: false,
                supports_attention: false,
                util_regular: 0.85,
                util_irregular: 0.75,
            },
            // GCNAX: a single flexible engine whose optimised loop order /
            // tiling makes its DRAM traffic the best of the baselines
            // (Fig. 7 shows it closest to Aurora) — fused loops keep the
            // intermediate on chip — but phases stay sequential and the
            // on-chip fabric is hash-mapped.
            BaselineKind::Gcnax => DataflowKnobs {
                engine_split: None,
                pipeline_overlap: 0.0,
                weight_copies: 2,
                feature_budget_fraction: 0.6,
                gather_efficiency: 0.3,
                miss_floor: 0.03,
                spill_intermediates: false,
                redundancy_elim: 0.0,
                // GCNAX's fabric is simple switches sized for tiled dense
                // loops; irregular gather traffic serialises on it
                interconnect_factor: 2.2,
                supports_edge_ops: false,
                supports_attention: false,
                util_regular: 0.8,
                util_irregular: 0.8,
            },
            // ReGNN: redundancy-eliminated neighbourhood message passing
            // (fewer aggregation ops, better locality) on heterogeneous
            // agg/comb engines; supports message passing but not
            // attention; "performance is restricted by the separate
            // executions of graph and neural operations".
            BaselineKind::ReGnn => DataflowKnobs {
                engine_split: Some(0.4),
                pipeline_overlap: 0.55,
                weight_copies: 1,
                feature_budget_fraction: 0.5,
                gather_efficiency: 0.45,
                miss_floor: 0.1,
                spill_intermediates: false,
                redundancy_elim: 0.25,
                interconnect_factor: 1.45,
                supports_edge_ops: true,
                supports_attention: false,
                util_regular: 0.75,
                util_irregular: 0.6,
            },
            // FlowGNN: generic message-passing dataflow with node/edge
            // queues and multi-level parallelism — full model coverage,
            // decent pipelining, but fixed heterogeneous engines,
            // duplicated weights and queue staging between stages.
            BaselineKind::FlowGnn => DataflowKnobs {
                engine_split: Some(0.5),
                pipeline_overlap: 0.7,
                weight_copies: 4,
                feature_budget_fraction: 0.5,
                gather_efficiency: 0.55,
                miss_floor: 0.15,
                spill_intermediates: false,
                redundancy_elim: 0.0,
                interconnect_factor: 1.35,
                supports_edge_ops: true,
                supports_attention: true,
                util_regular: 0.75,
                util_irregular: 0.65,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_core::{AuroraSimulator, SimRequest};
    use aurora_graph::generate;
    use aurora_model::{LayerShape, ModelId};

    /// One-shot Aurora run through the request API (the baselines keep
    /// their own `simulate` trait method — only Aurora reference runs in
    /// these tests go through `SimRequest`).
    fn run_aurora(
        sim: &AuroraSimulator,
        g: &aurora_graph::Csr,
        shapes: &[LayerShape],
        workload: &str,
        density: f64,
    ) -> aurora_core::SimReport {
        let req = SimRequest::builder(ModelId::Gcn)
            .config(*sim.config())
            .inline_graph(g.clone())
            .layers(shapes)
            .workload(workload)
            .input_density(density)
            .build()
            .unwrap();
        sim.run(&req).unwrap()
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = BaselineKind::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names, ["HyGCN", "AWB-GCN", "GCNAX", "ReGNN", "FlowGNN"]);
    }

    #[test]
    fn table1_support_matrix() {
        use BaselineKind::*;
        let p = BaselineParams::default();
        // C-GNN: everyone
        for b in BaselineKind::ALL {
            assert!(b.build(p).supports(ModelId::Gcn), "{}", b.name());
        }
        // A-GNN: FlowGNN only
        assert!(FlowGnn.build(p).supports(ModelId::Agnn));
        for b in [HyGcn, AwbGcn, Gcnax, ReGnn] {
            assert!(!b.build(p).supports(ModelId::Agnn), "{}", b.name());
        }
        // MP-GNN: ReGNN and FlowGNN
        for b in [ReGnn, FlowGnn] {
            assert!(b.build(p).supports(ModelId::GGcn), "{}", b.name());
        }
        for b in [HyGcn, AwbGcn, Gcnax] {
            assert!(!b.build(p).supports(ModelId::EdgeConv1), "{}", b.name());
        }
    }

    /// The paper's headline result: Aurora is faster than every baseline,
    /// HyGCN is the slowest, and GCNAX has the lowest baseline DRAM
    /// traffic.
    #[test]
    fn aurora_wins_and_orderings_hold() {
        let g = generate::rmat(4096, 40_000, Default::default(), 11);
        let shapes = [LayerShape::new(256, 128), LayerShape::new(128, 16)];
        let p = BaselineParams::default();
        let aurora = run_aurora(&AuroraSimulator::paper(), &g, &shapes, "t", 1.0);
        let runs: Vec<(BaselineKind, _)> = BaselineKind::ALL
            .iter()
            .map(|b| (*b, b.build(p).simulate(&g, ModelId::Gcn, &shapes, "t")))
            .collect();
        for (b, r) in &runs {
            assert!(
                r.total_cycles > aurora.total_cycles,
                "{} ({}) must be slower than Aurora ({})",
                b.name(),
                r.total_cycles,
                aurora.total_cycles
            );
            assert!(
                r.dram.total_bytes() >= aurora.dram.total_bytes(),
                "{} DRAM below Aurora's",
                b.name()
            );
        }
        let dram = |k: BaselineKind| {
            runs.iter()
                .find(|(b, _)| *b == k)
                .unwrap()
                .1
                .dram
                .total_bytes()
        };
        for b in BaselineKind::ALL {
            assert!(
                dram(b) >= dram(BaselineKind::Gcnax),
                "GCNAX should have the least baseline DRAM (vs {})",
                b.name()
            );
        }
    }

    /// Averaged over several workloads, HyGCN is the slowest design and
    /// ReGNN the closest competitor — the two ends of the paper's Fig. 9
    /// reduction ordering. (Individual datasets may deviate, as the
    /// paper's own per-dataset bars do.)
    #[test]
    fn average_ordering_ends_hold() {
        use aurora_graph::Dataset;
        let p = BaselineParams::default();
        let mut log_ratio = std::collections::HashMap::new();
        for (ds, scale) in [
            (Dataset::Cora, 1),
            (Dataset::Citeseer, 1),
            (Dataset::Pubmed, 4),
        ] {
            let spec = ds.spec().scaled(scale);
            let g = spec.synthesize();
            let shapes = [
                LayerShape::new(spec.feature_dim, 16),
                LayerShape::new(16, spec.classes.max(2)),
            ];
            let aurora = run_aurora(
                &AuroraSimulator::paper(),
                &g,
                &shapes,
                ds.name(),
                spec.feature_density,
            );
            for b in BaselineKind::ALL {
                let r = b.build(p).simulate(&g, ModelId::Gcn, &shapes, ds.name());
                *log_ratio.entry(b.name()).or_insert(0.0) +=
                    (r.total_cycles as f64 / aurora.total_cycles as f64).ln();
            }
        }
        let hygcn = log_ratio["HyGCN"];
        let regnn = log_ratio["ReGNN"];
        for (name, v) in &log_ratio {
            assert!(
                hygcn >= *v,
                "HyGCN should be slowest on average (vs {name})"
            );
            assert!(*v > 0.0, "{name} must be slower than Aurora on average");
        }
        // ReGNN and FlowGNN are the two closest competitors (paper: 28 %
        // and 38 % reductions); which of the two leads varies by workload.
        let closer = log_ratio
            .iter()
            .filter(|(name, v)| **name != "ReGNN" && **v < regnn)
            .count();
        assert!(
            closer <= 1,
            "ReGNN should be among the two closest baselines"
        );
    }
}
