//! Mechanistic cost models of the five baseline accelerators the paper
//! compares against (§VI-A): HyGCN, AWB-GCN, GCNAX, ReGNN, FlowGNN.
//!
//! These accelerators are closed-source; the paper evaluates them with the
//! same op-counting/access-counting methodology it uses for Aurora, after
//! normalising every design to the same multiplier count, DRAM bandwidth
//! and on-chip storage (100 MB). We do the same: each baseline is a set of
//! dataflow *knobs* on a shared analytic chassis that mirrors the paper's
//! qualitative characterisation of each design:
//!
//! | design | engines | weights | inter-phase | feature reuse | edge ops |
//! |---|---|---|---|---|---|
//! | HyGCN | fixed 1:7 SIMD/systolic tandem | per-engine | global buffer | window-miss gather | none |
//! | AWB-GCN | unified, runtime rebalancing | duplicated in all PEs | buffer, spills | shard-limited | none |
//! | GCNAX | single flexible engine | single copy | buffer | optimised loop order/tiling | none |
//! | ReGNN | fixed agg/comb tandem | per-engine | global buffer | redundancy-eliminated gather | message-passing |
//! | FlowGNN | fixed node/edge dataflow queues | duplicated | queues (on-chip) | moderate | full message-passing |

pub mod chassis;
pub mod kinds;

pub use chassis::{BaselineChassis, BaselineParams};
pub use kinds::BaselineKind;
