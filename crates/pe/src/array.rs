//! Weight-stationary execution across a row of PEs (the compute side of
//! the NoC's ring mode).
//!
//! §III-B: "Multiple rings could be configured to support weight-stationary
//! dataflow for vertex update." Each PE of a row holds a slice of the
//! weight matrix's rows; aggregated vertex vectors circulate the ring, and
//! each PE contributes its slice of the output as the vector passes. After
//! the pipeline fills, one vector completes per rotation step.

use crate::config::PeConfig;
use crate::pe::ProcessingElement;
use crate::Cycles;

/// A ring of `k` PEs jointly holding one `f_out × f_in` weight matrix.
#[derive(Debug, Clone)]
pub struct WeightStationaryRow {
    pes: Vec<ProcessingElement>,
    /// Row-major weight slice per PE: PE `i` owns output rows
    /// `slice_starts[i] .. slice_starts[i + 1]`.
    slices: Vec<Vec<f64>>,
    slice_starts: Vec<usize>,
    f_in: usize,
    f_out: usize,
}

impl WeightStationaryRow {
    /// Distributes `weight` (`f_out × f_in`, row-major) across `k` PEs in
    /// contiguous output-row slices (the earlier PEs take the remainder).
    ///
    /// # Panics
    /// Panics on shape mismatch or `k == 0`.
    pub fn new(weight: &[f64], f_out: usize, f_in: usize, k: usize, pe_cfg: PeConfig) -> Self {
        assert!(k > 0, "need at least one PE");
        assert_eq!(weight.len(), f_out * f_in, "weight shape mismatch");
        let base = f_out / k;
        let extra = f_out % k;
        let mut slices = Vec::with_capacity(k);
        let mut slice_starts = Vec::with_capacity(k + 1);
        let mut row = 0usize;
        for i in 0..k {
            let rows = base + usize::from(i < extra);
            slice_starts.push(row);
            slices.push(weight[row * f_in..(row + rows) * f_in].to_vec());
            row += rows;
        }
        slice_starts.push(row);
        debug_assert_eq!(row, f_out);
        Self {
            pes: (0..k).map(|_| ProcessingElement::new(pe_cfg)).collect(),
            slices,
            slice_starts,
            f_in,
            f_out,
        }
    }

    /// Ring width.
    pub fn k(&self) -> usize {
        self.pes.len()
    }

    /// Runs a batch of aggregated vectors through the ring. Returns the
    /// output vectors and the total cycles: the systolic schedule fills the
    /// ring in `k − 1` steps, then completes one vector per step, where a
    /// step costs the slowest PE's slice time (plus one ring hop).
    ///
    /// # Panics
    /// Panics if any vector's width differs from `f_in`.
    pub fn run(&mut self, vectors: &[Vec<f64>]) -> (Vec<Vec<f64>>, Cycles) {
        let k = self.k();
        let mut outputs = Vec::with_capacity(vectors.len());
        let mut max_step: Cycles = 0;
        for v in vectors {
            assert_eq!(v.len(), self.f_in, "input width mismatch");
            let mut out = vec![0.0; self.f_out];
            for (i, pe) in self.pes.iter_mut().enumerate() {
                let rows = self.slice_starts[i + 1] - self.slice_starts[i];
                if rows == 0 {
                    continue;
                }
                let (slice_out, c) = pe.exec_matvec(&self.slices[i], rows, self.f_in, v);
                out[self.slice_starts[i]..self.slice_starts[i + 1]].copy_from_slice(&slice_out);
                max_step = max_step.max(c + 1); // +1: the ring hop
            }
            outputs.push(out);
        }
        // systolic makespan: fill (k − 1 steps) + one completion per vector
        let cycles = max_step * (vectors.len() as Cycles + k as Cycles - 1);
        (outputs, cycles)
    }

    /// Aggregate multiply count across the ring (energy accounting).
    pub fn total_mults(&self) -> u64 {
        self.pes.iter().map(|p| p.stats().mults).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_model::linalg;

    fn weight(f_out: usize, f_in: usize) -> Vec<f64> {
        (0..f_out * f_in)
            .map(|i| (i % 13) as f64 * 0.25 - 1.0)
            .collect()
    }

    #[test]
    fn matches_reference_matvec() {
        let (f_out, f_in, k) = (10, 6, 4);
        let w = weight(f_out, f_in);
        let mut ring = WeightStationaryRow::new(&w, f_out, f_in, k, PeConfig::default());
        let vectors: Vec<Vec<f64>> = (0..5)
            .map(|i| (0..f_in).map(|j| (i * j) as f64 * 0.1 - 0.3).collect())
            .collect();
        let (outs, cycles) = ring.run(&vectors);
        assert!(cycles > 0);
        for (v, out) in vectors.iter().zip(&outs) {
            let expect = linalg::matvec(&w, f_out, f_in, v);
            for (a, b) in out.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn uneven_slices_cover_all_rows() {
        // f_out = 7 over k = 3 → slices of 3, 2, 2
        let (f_out, f_in, k) = (7, 4, 3);
        let w = weight(f_out, f_in);
        let mut ring = WeightStationaryRow::new(&w, f_out, f_in, k, PeConfig::default());
        let v = vec![1.0; f_in];
        let (outs, _) = ring.run(std::slice::from_ref(&v));
        let expect = linalg::matvec(&w, f_out, f_in, &v);
        assert_eq!(outs[0].len(), 7);
        for (a, b) in outs[0].iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn more_pes_than_rows_is_fine() {
        let (f_out, f_in, k) = (2, 3, 8);
        let w = weight(f_out, f_in);
        let mut ring = WeightStationaryRow::new(&w, f_out, f_in, k, PeConfig::default());
        let (outs, _) = ring.run(&[vec![0.5; f_in]]);
        assert_eq!(outs[0].len(), 2);
    }

    #[test]
    fn pipelining_amortises_the_fill() {
        let (f_out, f_in, k) = (32, 16, 8);
        let w = weight(f_out, f_in);
        let one = {
            let mut ring = WeightStationaryRow::new(&w, f_out, f_in, k, PeConfig::default());
            ring.run(&[vec![1.0; f_in]]).1
        };
        let thirty_two = {
            let mut ring = WeightStationaryRow::new(&w, f_out, f_in, k, PeConfig::default());
            let vs: Vec<Vec<f64>> = (0..32).map(|_| vec![1.0; f_in]).collect();
            ring.run(&vs).1
        };
        // 32 vectors must cost far less than 32 single runs
        assert!(
            thirty_two < one * 16,
            "pipelined {thirty_two} vs 32 × fill-dominated {one}"
        );
        assert!(thirty_two > one, "more work still costs more");
    }

    #[test]
    fn mult_count_matches_work() {
        let (f_out, f_in, k) = (8, 8, 4);
        let w = weight(f_out, f_in);
        let mut ring = WeightStationaryRow::new(&w, f_out, f_in, k, PeConfig::default());
        ring.run(&[vec![1.0; f_in], vec![2.0; f_in]]);
        assert_eq!(ring.total_mults(), 2 * (f_out * f_in) as u64);
    }
}
