//! The reuse FIFO (Fig. 5) — a double buffer holding intermediate feature
//! vectors received from neighbouring PEs (vertex-update phase) and updated
//! edge features (aggregation phase), enabling inter-PE data exchange
//! without a round trip through the bank buffer.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A bounded FIFO of feature vectors with occupancy statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReuseFifo {
    depth: usize,
    queue: VecDeque<Vec<f64>>,
    /// Successful pushes.
    pub pushes: u64,
    /// Successful pops.
    pub pops: u64,
    /// Pushes rejected because the FIFO was full (back-pressure events).
    pub stalls: u64,
    /// High-water mark of occupancy.
    pub peak_occupancy: usize,
}

impl ReuseFifo {
    /// A FIFO holding at most `depth` vectors.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "FIFO depth must be positive");
        Self {
            depth,
            queue: VecDeque::with_capacity(depth),
            pushes: 0,
            pops: 0,
            stalls: 0,
            peak_occupancy: 0,
        }
    }

    /// Capacity in vectors.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether the FIFO is full.
    pub fn is_full(&self) -> bool {
        self.queue.len() == self.depth
    }

    /// Attempts to enqueue; on a full FIFO the vector is returned to the
    /// caller and a stall is recorded (the producing PE must retry — this
    /// is the back-pressure the NoC model observes).
    pub fn push(&mut self, v: Vec<f64>) -> Result<(), Vec<f64>> {
        if self.is_full() {
            self.stalls += 1;
            Err(v)
        } else {
            self.queue.push_back(v);
            self.pushes += 1;
            self.peak_occupancy = self.peak_occupancy.max(self.queue.len());
            Ok(())
        }
    }

    /// Dequeues the oldest vector.
    pub fn pop(&mut self) -> Option<Vec<f64>> {
        let v = self.queue.pop_front();
        if v.is_some() {
            self.pops += 1;
        }
        v
    }

    /// Drops all contents (tile switch).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut f = ReuseFifo::new(4);
        f.push(vec![1.0]).unwrap();
        f.push(vec![2.0]).unwrap();
        assert_eq!(f.pop(), Some(vec![1.0]));
        assert_eq!(f.pop(), Some(vec![2.0]));
        assert_eq!(f.pop(), None);
        assert_eq!(f.pops, 2);
    }

    #[test]
    fn backpressure_on_full() {
        let mut f = ReuseFifo::new(2);
        f.push(vec![1.0]).unwrap();
        f.push(vec![2.0]).unwrap();
        assert!(f.is_full());
        let rejected = f.push(vec![3.0]);
        assert_eq!(rejected, Err(vec![3.0]), "vector handed back on stall");
        assert_eq!(f.stalls, 1);
        f.pop();
        assert!(f.push(vec![3.0]).is_ok());
    }

    #[test]
    fn peak_occupancy_tracked() {
        let mut f = ReuseFifo::new(8);
        for i in 0..5 {
            f.push(vec![i as f64]).unwrap();
        }
        for _ in 0..3 {
            f.pop();
        }
        f.push(vec![9.0]).unwrap();
        assert_eq!(f.peak_occupancy, 5);
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn clear_empties() {
        let mut f = ReuseFifo::new(2);
        f.push(vec![1.0]).unwrap();
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.pushes, 1, "stats survive clears");
    }
}
