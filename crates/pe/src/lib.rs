//! Reconfigurable processing element (PE) model — §III-D, Figs. 5-6.
//!
//! Each Aurora PE contains a distributed bank buffer, a router interface, a
//! reuse FIFO, a post-processing unit (PPU), a buffer controller, and an
//! array of multipliers and adders joined by a reconfigurable interconnect.
//! The datapath supports three configurations (Fig. 6):
//!
//! * **(a) MAC chain** — multipliers paired into an adder tree:
//!   `V × V`, `M × V`, `V · V`;
//! * **(b) parallel scalar** — multipliers operate independently with no
//!   accumulation: `Scalar × V`, `V ⊙ V`;
//! * **(c) accumulate bypass** — multipliers bypassed, adders only: `Σ V`.
//!
//! The model is *functional + cycle-counting*: every operation returns both
//! the numeric result (validated against `aurora-model`'s reference
//! executors) and the cycles it occupies the datapath.
//!
//! ```
//! use aurora_pe::{PeConfig, ProcessingElement};
//!
//! let mut pe = ProcessingElement::new(PeConfig::default());
//! let (y, cycles) = pe.exec_matvec(&[1.0, 2.0, 3.0, 4.0], 2, 2, &[1.0, 1.0]);
//! assert_eq!(y, vec![3.0, 7.0]);
//! assert!(cycles > 0);
//! let mut acc = vec![0.0; 2];
//! pe.exec_accumulate(&mut acc, &y); // switches to the bypass datapath
//! assert_eq!(pe.stats().reconfigurations, 1);
//! ```

pub mod array;
pub mod buffer;
pub mod config;
pub mod fifo;
pub mod mac;
pub mod pe;
pub mod ppu;

pub use array::WeightStationaryRow;
pub use buffer::BankBuffer;
pub use config::{DatapathMode, PeConfig};
pub use fifo::ReuseFifo;
pub use mac::MacArray;
pub use pe::{PeStats, ProcessingElement};
pub use ppu::PostProcessingUnit;

/// Cycle count type used throughout the PE model.
pub type Cycles = u64;
