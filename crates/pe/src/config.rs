//! PE datapath configurations (Fig. 6).

use aurora_model::OpKind;
use serde::{Deserialize, Serialize};

/// The three reconfigurable-interconnect settings of the MAC array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DatapathMode {
    /// Fig. 6 (a): multipliers paired into one adder, adders chained for
    /// accumulation — `V × V`, `M × V`, `V · V`.
    MacChain,
    /// Fig. 6 (b): a constant loaded into the multipliers, results written
    /// back without accumulation — `Scalar × V`, `V ⊙ V`.
    ParallelScalar,
    /// Fig. 6 (c): multipliers and adders bypassed into a pure accumulate
    /// path — `Σ V` (and element-wise max, which uses the same adder slots
    /// in compare mode).
    AccumulateBypass,
}

impl DatapathMode {
    /// The mode required by a primitive op. PPU ops (activation, concat)
    /// don't occupy the MAC array; they return `None`.
    pub fn for_op(op: OpKind) -> Option<DatapathMode> {
        match op {
            OpKind::MatVec | OpKind::VecDot => Some(DatapathMode::MacChain),
            OpKind::ScalarVec | OpKind::VecHadamard => Some(DatapathMode::ParallelScalar),
            OpKind::AccumVec | OpKind::VecAdd => Some(DatapathMode::AccumulateBypass),
            OpKind::MaxVec => Some(DatapathMode::AccumulateBypass),
            OpKind::Act(_) | OpKind::Concat => None,
        }
    }
}

/// Static PE hardware parameters plus its current datapath mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeConfig {
    /// Number of multipliers (= adders) in the MAC array.
    pub lanes: usize,
    /// Bank-buffer capacity in bytes (100 KB in the paper, §VI-A).
    pub buffer_bytes: usize,
    /// Number of buffer banks.
    pub banks: usize,
    /// Reuse-FIFO capacity in vectors.
    pub fifo_depth: usize,
    /// PPU throughput in elements per cycle.
    pub ppu_width: usize,
    /// Cycles to switch the reconfigurable interconnect between modes.
    pub reconfig_cycles: u64,
}

impl Default for PeConfig {
    /// The paper's PE: 100 KB distributed bank buffer; a 16-lane MAC array,
    /// 8 banks, a modest reuse FIFO, and a 1-cycle datapath switch.
    fn default() -> Self {
        Self {
            lanes: 16,
            buffer_bytes: 100 * 1024,
            banks: 8,
            fifo_depth: 16,
            ppu_width: 4,
            reconfig_cycles: 1,
        }
    }
}

impl PeConfig {
    /// Vertices of feature width `f` (double precision) that fit in the
    /// bank buffer — Algorithm 1's `C_PE`.
    pub fn vertex_capacity(&self, feature_dim: usize) -> usize {
        (self.buffer_bytes / (feature_dim.max(1) * 8)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_model::Activation;

    #[test]
    fn op_to_mode_matches_fig6() {
        assert_eq!(
            DatapathMode::for_op(OpKind::MatVec),
            Some(DatapathMode::MacChain)
        );
        assert_eq!(
            DatapathMode::for_op(OpKind::VecDot),
            Some(DatapathMode::MacChain)
        );
        assert_eq!(
            DatapathMode::for_op(OpKind::ScalarVec),
            Some(DatapathMode::ParallelScalar)
        );
        assert_eq!(
            DatapathMode::for_op(OpKind::VecHadamard),
            Some(DatapathMode::ParallelScalar)
        );
        assert_eq!(
            DatapathMode::for_op(OpKind::AccumVec),
            Some(DatapathMode::AccumulateBypass)
        );
        assert_eq!(DatapathMode::for_op(OpKind::Act(Activation::ReLU)), None);
        assert_eq!(DatapathMode::for_op(OpKind::Concat), None);
    }

    #[test]
    fn default_matches_paper() {
        let c = PeConfig::default();
        assert_eq!(c.buffer_bytes, 100 * 1024);
        assert!(c.lanes.is_power_of_two());
    }

    #[test]
    fn vertex_capacity() {
        let c = PeConfig::default();
        // 100 KB / (100 features × 8 B) = 128
        assert_eq!(c.vertex_capacity(100), 128);
        assert_eq!(c.vertex_capacity(0), c.buffer_bytes / 8);
        // huge features still give at least 1
        assert_eq!(c.vertex_capacity(1 << 30), 1);
    }
}
