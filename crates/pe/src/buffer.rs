//! Distributed bank buffer (Fig. 5) — "used to increase the memory
//! bandwidth to accommodate the random memory access caused by graph
//! irregularity".
//!
//! The model tracks allocation (so residency decisions can be validated)
//! and charges cycles for bank conflicts: a batch of accesses completes in
//! as many cycles as the most-loaded bank receives requests.

use crate::Cycles;
use serde::{Deserialize, Serialize};

/// Byte-addressed banked SRAM buffer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BankBuffer {
    capacity: usize,
    banks: usize,
    /// Interleave granularity in bytes (one double word).
    line: usize,
    used: usize,
    /// Read accesses (word granularity), for energy accounting.
    pub reads: u64,
    /// Write accesses (word granularity).
    pub writes: u64,
}

impl BankBuffer {
    /// A buffer of `capacity` bytes across `banks` banks with 8-byte
    /// interleaving.
    pub fn new(capacity: usize, banks: usize) -> Self {
        assert!(banks > 0, "need at least one bank");
        Self {
            capacity,
            banks,
            line: 8,
            used: 0,
            reads: 0,
            writes: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Bytes still free.
    pub fn free(&self) -> usize {
        self.capacity - self.used
    }

    /// Reserves `bytes`; returns `false` (and allocates nothing) if the
    /// buffer would overflow.
    pub fn allocate(&mut self, bytes: usize) -> bool {
        if bytes > self.free() {
            false
        } else {
            self.used += bytes;
            true
        }
    }

    /// Releases `bytes`.
    ///
    /// # Panics
    /// Panics if more is freed than was allocated.
    pub fn release(&mut self, bytes: usize) {
        assert!(bytes <= self.used, "releasing more than allocated");
        self.used -= bytes;
    }

    /// Clears all allocations (tile switch).
    pub fn reset(&mut self) {
        self.used = 0;
    }

    fn conflict_cycles(&self, addresses: &[usize]) -> Cycles {
        if addresses.is_empty() {
            return 0;
        }
        let mut per_bank = vec![0u64; self.banks];
        for &a in addresses {
            per_bank[(a / self.line) % self.banks] += 1;
        }
        *per_bank.iter().max().unwrap()
    }

    /// Reads the given byte addresses; returns the cycles consumed (the
    /// max number of requests landing on one bank).
    pub fn read(&mut self, addresses: &[usize]) -> Cycles {
        self.reads += addresses.len() as u64;
        self.conflict_cycles(addresses)
    }

    /// Writes the given byte addresses; same conflict model as reads.
    pub fn write(&mut self, addresses: &[usize]) -> Cycles {
        self.writes += addresses.len() as u64;
        self.conflict_cycles(addresses)
    }

    /// Cycles to stream `words` sequential 8-byte words (perfect
    /// interleaving: `ceil(words / banks)`).
    pub fn stream_read(&mut self, words: usize) -> Cycles {
        self.reads += words as u64;
        words.div_ceil(self.banks) as Cycles
    }

    /// Sequential-write analogue of [`Self::stream_read`].
    pub fn stream_write(&mut self, words: usize) -> Cycles {
        self.writes += words as u64;
        words.div_ceil(self.banks) as Cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn allocation_tracking() {
        let mut b = BankBuffer::new(100, 4);
        assert!(b.allocate(60));
        assert_eq!(b.free(), 40);
        assert!(!b.allocate(41), "over-allocation rejected");
        assert_eq!(b.used(), 60, "failed allocation changes nothing");
        b.release(10);
        assert_eq!(b.used(), 50);
        b.reset();
        assert_eq!(b.used(), 0);
    }

    #[test]
    #[should_panic(expected = "releasing more")]
    fn release_checked() {
        BankBuffer::new(10, 1).release(1);
    }

    #[test]
    fn sequential_access_is_conflict_free() {
        let mut b = BankBuffer::new(1024, 4);
        // 8 consecutive words hit banks 0,1,2,3,0,1,2,3 → 2 cycles.
        let addrs: Vec<usize> = (0..8).map(|i| i * 8).collect();
        assert_eq!(b.read(&addrs), 2);
        assert_eq!(b.reads, 8);
    }

    #[test]
    fn same_bank_access_serialises() {
        let mut b = BankBuffer::new(1024, 4);
        // all on bank 0
        let addrs: Vec<usize> = (0..5).map(|i| i * 8 * 4).collect();
        assert_eq!(b.read(&addrs), 5);
    }

    #[test]
    fn empty_access_is_free() {
        let mut b = BankBuffer::new(64, 2);
        assert_eq!(b.read(&[]), 0);
        assert_eq!(b.write(&[]), 0);
    }

    #[test]
    fn stream_access_cycles() {
        let mut b = BankBuffer::new(1024, 8);
        assert_eq!(b.stream_read(16), 2);
        assert_eq!(b.stream_write(17), 3);
        assert_eq!(b.reads, 16);
        assert_eq!(b.writes, 17);
    }

    proptest! {
        #[test]
        fn conflict_cycles_bounded(
            addrs in proptest::collection::vec(0usize..4096, 0..100),
            banks in 1usize..16
        ) {
            let mut b = BankBuffer::new(1 << 20, banks);
            let c = b.read(&addrs) as usize;
            // at least the perfectly balanced cost, at most full serialisation
            prop_assert!(c <= addrs.len());
            prop_assert!(c >= addrs.len().div_ceil(banks));
        }
    }
}
