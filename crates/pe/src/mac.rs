//! The reconfigurable MAC array (Fig. 6) — functional + cycle model.

use crate::config::DatapathMode;
use crate::Cycles;

/// Pipeline fill cost of the adder tree in MAC-chain mode.
fn tree_depth(lanes: usize) -> Cycles {
    (usize::BITS - (lanes.max(1) - 1).leading_zeros()) as Cycles
}

/// An array of `lanes` multipliers and `lanes` adders with a reconfigurable
/// interconnect.
#[derive(Debug, Clone)]
pub struct MacArray {
    lanes: usize,
    mode: DatapathMode,
    /// Multiply operations performed (for energy accounting).
    pub mults: u64,
    /// Add/compare operations performed.
    pub adds: u64,
    /// Busy cycles accumulated.
    pub busy_cycles: Cycles,
    /// Mode switches performed.
    pub reconfigurations: u64,
}

impl MacArray {
    /// A MAC array with `lanes` multiplier/adder pairs, initially in
    /// MAC-chain mode.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "need at least one lane");
        Self {
            lanes,
            mode: DatapathMode::MacChain,
            mults: 0,
            adds: 0,
            busy_cycles: 0,
            reconfigurations: 0,
        }
    }

    /// Current datapath mode.
    pub fn mode(&self) -> DatapathMode {
        self.mode
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Switches the interconnect; returns the cycles it costs (0 when the
    /// mode is already set).
    pub fn set_mode(&mut self, mode: DatapathMode, reconfig_cycles: Cycles) -> Cycles {
        if self.mode == mode {
            0
        } else {
            self.mode = mode;
            self.reconfigurations += 1;
            self.busy_cycles += reconfig_cycles;
            reconfig_cycles
        }
    }

    fn require(&self, mode: DatapathMode) {
        assert_eq!(
            self.mode, mode,
            "datapath is in {:?}, operation requires {:?}",
            self.mode, mode
        );
    }

    fn charge(&mut self, cycles: Cycles) -> Cycles {
        self.busy_cycles += cycles;
        cycles
    }

    /// `a · b` in MAC-chain mode. Cycles: one multiply round per `lanes`
    /// elements, plus the adder-tree drain.
    pub fn dot(&mut self, a: &[f64], b: &[f64]) -> (f64, Cycles) {
        self.require(DatapathMode::MacChain);
        assert_eq!(a.len(), b.len(), "dot length mismatch");
        let r: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        self.mults += a.len() as u64;
        self.adds += a.len().saturating_sub(1) as u64;
        let rounds = a.len().div_ceil(self.lanes) as Cycles;
        let cycles = self.charge(rounds + tree_depth(self.lanes));
        (r, cycles)
    }

    /// `W · x` (row-major `rows × cols`) in MAC-chain mode. Rows are
    /// pipelined: after the first tree fill, one row completes per
    /// `ceil(cols / lanes)` cycles.
    pub fn matvec(&mut self, w: &[f64], rows: usize, cols: usize, x: &[f64]) -> (Vec<f64>, Cycles) {
        self.require(DatapathMode::MacChain);
        assert_eq!(w.len(), rows * cols, "weight shape mismatch");
        assert_eq!(x.len(), cols, "input length mismatch");
        let mut y = vec![0.0; rows];
        for (r, yr) in y.iter_mut().enumerate() {
            *yr = w[r * cols..(r + 1) * cols]
                .iter()
                .zip(x)
                .map(|(a, b)| a * b)
                .sum();
        }
        self.mults += (rows * cols) as u64;
        self.adds += (rows * cols.saturating_sub(1)) as u64;
        let per_row = cols.div_ceil(self.lanes) as Cycles;
        let cycles = self.charge(per_row * rows as Cycles + tree_depth(self.lanes));
        (y, cycles)
    }

    /// `s · a` in parallel-scalar mode (constant loaded to multipliers).
    pub fn scalar_mul(&mut self, s: f64, a: &[f64]) -> (Vec<f64>, Cycles) {
        self.require(DatapathMode::ParallelScalar);
        let y = a.iter().map(|x| s * x).collect();
        self.mults += a.len() as u64;
        let cycles = self.charge(a.len().div_ceil(self.lanes) as Cycles);
        (y, cycles)
    }

    /// `a ⊙ b` in parallel-scalar mode.
    pub fn hadamard(&mut self, a: &[f64], b: &[f64]) -> (Vec<f64>, Cycles) {
        self.require(DatapathMode::ParallelScalar);
        assert_eq!(a.len(), b.len(), "hadamard length mismatch");
        let y = a.iter().zip(b).map(|(x, y)| x * y).collect();
        self.mults += a.len() as u64;
        let cycles = self.charge(a.len().div_ceil(self.lanes) as Cycles);
        (y, cycles)
    }

    /// `acc += a` in accumulate-bypass mode (multipliers bypassed).
    pub fn accumulate(&mut self, acc: &mut [f64], a: &[f64]) -> Cycles {
        self.require(DatapathMode::AccumulateBypass);
        assert_eq!(acc.len(), a.len(), "accumulate length mismatch");
        for (x, y) in acc.iter_mut().zip(a) {
            *x += y;
        }
        self.adds += a.len() as u64;
        self.charge(a.len().div_ceil(self.lanes) as Cycles)
    }

    /// `acc = max(acc, a)` element-wise, using the adder slots in compare
    /// mode (GraphSAGE-Pool aggregation).
    pub fn max_accumulate(&mut self, acc: &mut [f64], a: &[f64]) -> Cycles {
        self.require(DatapathMode::AccumulateBypass);
        assert_eq!(acc.len(), a.len(), "max length mismatch");
        for (x, y) in acc.iter_mut().zip(a) {
            *x = x.max(*y);
        }
        self.adds += a.len() as u64;
        self.charge(a.len().div_ceil(self.lanes) as Cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_model::linalg;
    use proptest::prelude::*;

    #[test]
    fn tree_depth_values() {
        assert_eq!(tree_depth(1), 0);
        assert_eq!(tree_depth(2), 1);
        assert_eq!(tree_depth(16), 4);
        assert_eq!(tree_depth(17), 5);
    }

    #[test]
    fn dot_matches_reference_and_costs() {
        let mut mac = MacArray::new(4);
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 2.0, 2.0, 2.0, 2.0];
        let (r, c) = mac.dot(&a, &b);
        assert_eq!(r, linalg::dot(&a, &b));
        // 5 elements over 4 lanes → 2 rounds + tree depth 2.
        assert_eq!(c, 4);
        assert_eq!(mac.mults, 5);
    }

    #[test]
    fn matvec_matches_reference() {
        let mut mac = MacArray::new(8);
        let w: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let x = [1.0, -1.0, 2.0, 0.5];
        let (y, c) = mac.matvec(&w, 3, 4, &x);
        assert_eq!(y, linalg::matvec(&w, 3, 4, &x));
        // per row: ceil(4/8)=1, 3 rows + depth 3
        assert_eq!(c, 6);
    }

    #[test]
    fn mode_enforcement() {
        let mut mac = MacArray::new(4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mac.scalar_mul(2.0, &[1.0]);
        }));
        assert!(r.is_err(), "scalar op must be rejected in MacChain mode");
    }

    #[test]
    fn reconfiguration_costs_once() {
        let mut mac = MacArray::new(4);
        assert_eq!(mac.set_mode(DatapathMode::ParallelScalar, 3), 3);
        assert_eq!(mac.set_mode(DatapathMode::ParallelScalar, 3), 0);
        assert_eq!(mac.reconfigurations, 1);
        let (y, _) = mac.scalar_mul(0.5, &[2.0, 4.0]);
        assert_eq!(y, vec![1.0, 2.0]);
    }

    #[test]
    fn accumulate_and_max() {
        let mut mac = MacArray::new(4);
        mac.set_mode(DatapathMode::AccumulateBypass, 1);
        let mut acc = vec![1.0, -5.0];
        mac.accumulate(&mut acc, &[1.0, 1.0]);
        assert_eq!(acc, vec![2.0, -4.0]);
        mac.max_accumulate(&mut acc, &[0.0, 7.0]);
        assert_eq!(acc, vec![2.0, 7.0]);
        assert_eq!(mac.mults, 0, "bypass mode never multiplies");
    }

    #[test]
    fn busy_cycles_accumulate() {
        let mut mac = MacArray::new(16);
        let a = vec![1.0; 32];
        let before = mac.busy_cycles;
        mac.dot(&a, &a);
        assert!(mac.busy_cycles > before);
    }

    proptest! {
        #[test]
        fn dot_always_matches_reference(
            v in proptest::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 1..64),
            lanes in 1usize..32
        ) {
            let (a, b): (Vec<f64>, Vec<f64>) = v.into_iter().unzip();
            let mut mac = MacArray::new(lanes);
            let (r, cycles) = mac.dot(&a, &b);
            prop_assert!((r - linalg::dot(&a, &b)).abs() < 1e-9);
            prop_assert!(cycles >= a.len().div_ceil(lanes) as u64);
        }

        #[test]
        fn more_lanes_never_slower(len in 1usize..200) {
            let a = vec![1.0; len];
            let mut narrow = MacArray::new(2);
            let mut wide = MacArray::new(32);
            let (_, c2) = narrow.dot(&a, &a);
            let (_, c32) = wide.dot(&a, &a);
            // wide tree is deeper (5 vs 1) but rounds dominate for any
            // length; allow equality for tiny vectors
            prop_assert!(c32 <= c2 + 4);
        }
    }
}
