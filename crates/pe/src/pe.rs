//! The assembled processing element (Fig. 5).

use crate::buffer::BankBuffer;
use crate::config::{DatapathMode, PeConfig};
use crate::fifo::ReuseFifo;
use crate::mac::MacArray;
use crate::ppu::PostProcessingUnit;
use crate::Cycles;
use aurora_model::Activation;
use serde::{Deserialize, Serialize};

/// Aggregated activity counters of one PE, used for energy accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeStats {
    pub mults: u64,
    pub adds: u64,
    pub buffer_reads: u64,
    pub buffer_writes: u64,
    pub fifo_pushes: u64,
    pub fifo_pops: u64,
    pub fifo_stalls: u64,
    pub ppu_elements: u64,
    pub reconfigurations: u64,
    pub busy_cycles: Cycles,
}

/// One reconfigurable PE: MAC array + bank buffer + reuse FIFO + PPU.
///
/// Every `exec_*` helper charges the bank buffer for operand reads and
/// result writes, runs the datapath, and returns the cycles the operation
/// occupies the PE: `max(compute, memory)` — the distributed buffer double-
/// buffers operand delivery against compute (§III-D).
#[derive(Debug, Clone)]
pub struct ProcessingElement {
    config: PeConfig,
    pub mac: MacArray,
    pub buffer: BankBuffer,
    pub fifo: ReuseFifo,
    pub ppu: PostProcessingUnit,
}

impl ProcessingElement {
    /// Builds a PE from its configuration.
    pub fn new(config: PeConfig) -> Self {
        Self {
            mac: MacArray::new(config.lanes),
            buffer: BankBuffer::new(config.buffer_bytes, config.banks),
            fifo: ReuseFifo::new(config.fifo_depth),
            ppu: PostProcessingUnit::new(config.ppu_width),
            config,
        }
    }

    /// The PE's static configuration.
    pub fn config(&self) -> &PeConfig {
        &self.config
    }

    fn ensure_mode(&mut self, mode: DatapathMode) -> Cycles {
        self.mac.set_mode(mode, self.config.reconfig_cycles)
    }

    /// `W · x` with operands streamed from the bank buffer.
    pub fn exec_matvec(
        &mut self,
        w: &[f64],
        rows: usize,
        cols: usize,
        x: &[f64],
    ) -> (Vec<f64>, Cycles) {
        let reconf = self.ensure_mode(DatapathMode::MacChain);
        let mem = self.buffer.stream_read(w.len() + x.len());
        let (y, compute) = self.mac.matvec(w, rows, cols, x);
        let wr = self.buffer.stream_write(y.len());
        (y, reconf + compute.max(mem) + wr)
    }

    /// `a · b`.
    pub fn exec_dot(&mut self, a: &[f64], b: &[f64]) -> (f64, Cycles) {
        let reconf = self.ensure_mode(DatapathMode::MacChain);
        let mem = self.buffer.stream_read(a.len() + b.len());
        let (r, compute) = self.mac.dot(a, b);
        let wr = self.buffer.stream_write(1);
        (r, reconf + compute.max(mem) + wr)
    }

    /// `s · a`.
    pub fn exec_scalar_mul(&mut self, s: f64, a: &[f64]) -> (Vec<f64>, Cycles) {
        let reconf = self.ensure_mode(DatapathMode::ParallelScalar);
        let mem = self.buffer.stream_read(a.len());
        let (y, compute) = self.mac.scalar_mul(s, a);
        let wr = self.buffer.stream_write(y.len());
        (y, reconf + compute.max(mem) + wr)
    }

    /// `a ⊙ b`.
    pub fn exec_hadamard(&mut self, a: &[f64], b: &[f64]) -> (Vec<f64>, Cycles) {
        let reconf = self.ensure_mode(DatapathMode::ParallelScalar);
        let mem = self.buffer.stream_read(a.len() + b.len());
        let (y, compute) = self.mac.hadamard(a, b);
        let wr = self.buffer.stream_write(y.len());
        (y, reconf + compute.max(mem) + wr)
    }

    /// `acc += a` (Fig. 6 (c) bypass path).
    pub fn exec_accumulate(&mut self, acc: &mut [f64], a: &[f64]) -> Cycles {
        let reconf = self.ensure_mode(DatapathMode::AccumulateBypass);
        let mem = self.buffer.stream_read(a.len());
        let compute = self.mac.accumulate(acc, a);
        reconf + compute.max(mem)
    }

    /// `acc = max(acc, a)` element-wise.
    pub fn exec_max_accumulate(&mut self, acc: &mut [f64], a: &[f64]) -> Cycles {
        let reconf = self.ensure_mode(DatapathMode::AccumulateBypass);
        let mem = self.buffer.stream_read(a.len());
        let compute = self.mac.max_accumulate(acc, a);
        reconf + compute.max(mem)
    }

    /// Activation in the PPU (runs concurrently with the MAC array, so no
    /// mode switch).
    pub fn exec_activate(&mut self, a: &mut [f64], act: Activation) -> Cycles {
        let c = self.ppu.activate(a, act);
        let wr = self.buffer.stream_write(a.len());
        c + wr
    }

    /// Concatenation in the PPU.
    pub fn exec_concat(&mut self, a: &[f64], b: &[f64]) -> (Vec<f64>, Cycles) {
        let (out, c) = self.ppu.concat(a, b);
        let wr = self.buffer.stream_write(out.len());
        (out, c + wr)
    }

    /// Snapshot of all activity counters.
    pub fn stats(&self) -> PeStats {
        PeStats {
            mults: self.mac.mults,
            adds: self.mac.adds,
            buffer_reads: self.buffer.reads,
            buffer_writes: self.buffer.writes,
            fifo_pushes: self.fifo.pushes,
            fifo_pops: self.fifo.pops,
            fifo_stalls: self.fifo.stalls,
            ppu_elements: self.ppu.elements,
            reconfigurations: self.mac.reconfigurations,
            busy_cycles: self.mac.busy_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_graph::{FeatureMatrix, GraphBuilder};
    use aurora_model::reference::GnnLayer;
    use aurora_model::zoo::gcn::Gcn;

    fn pe() -> ProcessingElement {
        ProcessingElement::new(PeConfig::default())
    }

    #[test]
    fn matvec_functional() {
        let mut pe = pe();
        let w = vec![1.0, 2.0, 3.0, 4.0];
        let (y, c) = pe.exec_matvec(&w, 2, 2, &[1.0, 1.0]);
        assert_eq!(y, vec![3.0, 7.0]);
        assert!(c > 0);
        assert!(pe.stats().buffer_reads >= 6);
    }

    #[test]
    fn mode_switches_counted_once_per_change() {
        let mut pe = pe();
        pe.exec_matvec(&[1.0], 1, 1, &[1.0]); // already MacChain
        pe.exec_scalar_mul(2.0, &[1.0]); // switch
        pe.exec_hadamard(&[1.0], &[1.0]); // no switch
        let mut acc = [0.0];
        pe.exec_accumulate(&mut acc, &[1.0]); // switch
        assert_eq!(pe.stats().reconfigurations, 2);
    }

    #[test]
    fn stats_accumulate_across_ops() {
        let mut pe = pe();
        pe.exec_dot(&[1.0, 2.0], &[3.0, 4.0]);
        let mut v = vec![-1.0, 1.0];
        pe.exec_activate(&mut v, Activation::ReLU);
        let s = pe.stats();
        assert_eq!(s.mults, 2);
        assert_eq!(s.ppu_elements, 2);
        assert!(s.buffer_writes > 0);
    }

    /// End-to-end functional validation: a GCN layer executed through the
    /// PE datapath must match the reference executor exactly.
    #[test]
    fn gcn_layer_via_pe_matches_reference() {
        let mut b = GraphBuilder::new(4);
        b.add_undirected_edge(0, 1)
            .add_undirected_edge(1, 2)
            .add_undirected_edge(2, 3)
            .add_undirected_edge(3, 0);
        let g = b.build();
        let f_in = 3;
        let f_out = 2;
        let x = FeatureMatrix::random(4, f_in, 1.0, 7);
        let w = aurora_model::reference::init_weights(f_out, f_in, 21);
        let reference = Gcn::new(f_in, f_out, w.clone(), vec![0.0; f_out]).forward(&g, &x);

        let mut pe = pe();
        let deg: Vec<f64> = (0..4u32).map(|v| g.degree(v) as f64 + 1.0).collect();
        let mut out = FeatureMatrix::zeros(4, f_out);
        for v in 0..4u32 {
            // aggregation: scalar-scaled neighbour features accumulated
            let mut m = vec![0.0; f_in];
            let s_self = 1.0 / (deg[v as usize] * deg[v as usize]).sqrt();
            let (scaled, _) = pe.exec_scalar_mul(s_self, x.row(v as usize));
            pe.exec_accumulate(&mut m, &scaled);
            for &u in g.neighbors(v) {
                let s = 1.0 / (deg[u as usize] * deg[v as usize]).sqrt();
                let (scaled, _) = pe.exec_scalar_mul(s, x.row(u as usize));
                pe.exec_accumulate(&mut m, &scaled);
            }
            // vertex update: M×V then ReLU in the PPU
            let (mut y, _) = pe.exec_matvec(&w, f_out, f_in, &m);
            pe.exec_activate(&mut y, Activation::ReLU);
            out.row_mut(v as usize).copy_from_slice(&y);
        }
        assert!(
            out.max_abs_diff(&reference) < 1e-9,
            "PE datapath diverges from reference by {}",
            out.max_abs_diff(&reference)
        );
    }

    #[test]
    fn memory_bound_op_costs_memory_cycles() {
        // tiny MAC vs few banks: a long scalar op becomes memory-bound
        let cfg = PeConfig {
            lanes: 64,
            banks: 1,
            ..PeConfig::default()
        };
        let mut pe = ProcessingElement::new(cfg);
        let a = vec![1.0; 64];
        let (_, c) = pe.exec_scalar_mul(2.0, &a);
        // compute = 1 cycle; memory read = 64 cycles on one bank
        assert!(c >= 64, "cycles {c} should be memory-dominated");
    }
}
