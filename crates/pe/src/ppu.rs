//! Post-Processing Unit (Fig. 5): "the non-linear activation function
//! and/or vector concatenation are performed in the PPU, if necessary,
//! before writing the output feature to the distributed bank buffer".

use crate::Cycles;
use aurora_model::linalg;
use aurora_model::Activation;

/// The PPU: activations and concatenation at `width` elements per cycle.
#[derive(Debug, Clone)]
pub struct PostProcessingUnit {
    width: usize,
    /// Elements processed (for energy accounting).
    pub elements: u64,
}

impl PostProcessingUnit {
    /// A PPU processing `width` elements per cycle.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "PPU width must be positive");
        Self { width, elements: 0 }
    }

    fn charge(&mut self, n: usize) -> Cycles {
        self.elements += n as u64;
        n.div_ceil(self.width) as Cycles
    }

    /// Applies an activation in place, returning the cycles consumed.
    /// Softmax is applied across the whole vector (two passes).
    pub fn activate(&mut self, a: &mut [f64], act: Activation) -> Cycles {
        match act {
            Activation::ReLU => linalg::relu_inplace(a),
            Activation::Sigmoid => linalg::sigmoid_inplace(a),
            Activation::Softmax => linalg::softmax_inplace(a),
        }
        let base = self.charge(a.len());
        match act {
            Activation::ReLU => base,
            // transcendental paths take an extra pass through the unit
            Activation::Sigmoid | Activation::Softmax => base * 2,
        }
    }

    /// Concatenates two vectors, returning `(result, cycles)` — a pure
    /// data-movement cost.
    pub fn concat(&mut self, a: &[f64], b: &[f64]) -> (Vec<f64>, Cycles) {
        let out = linalg::concat(a, b);
        let cycles = self.charge(out.len());
        (out, cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_semantics_and_cost() {
        let mut ppu = PostProcessingUnit::new(4);
        let mut v = vec![-1.0, 2.0, -3.0, 4.0, 5.0];
        let c = ppu.activate(&mut v, Activation::ReLU);
        assert_eq!(v, vec![0.0, 2.0, 0.0, 4.0, 5.0]);
        assert_eq!(c, 2); // ceil(5/4)
        assert_eq!(ppu.elements, 5);
    }

    #[test]
    fn sigmoid_costs_double() {
        let mut ppu = PostProcessingUnit::new(4);
        let mut v = vec![0.0; 4];
        let c = ppu.activate(&mut v, Activation::Sigmoid);
        assert_eq!(c, 2);
        assert!(v.iter().all(|&x| (x - 0.5).abs() < 1e-12));
    }

    #[test]
    fn softmax_normalises() {
        let mut ppu = PostProcessingUnit::new(8);
        let mut v = vec![1.0, 2.0, 3.0];
        ppu.activate(&mut v, Activation::Softmax);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concat_cost_is_total_length() {
        let mut ppu = PostProcessingUnit::new(2);
        let (out, c) = ppu.concat(&[1.0, 2.0], &[3.0]);
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
        assert_eq!(c, 2); // ceil(3/2)
    }
}
