//! Host-side wall-clock span profiler.
//!
//! The rest of this crate observes the *simulated* machine in cycles;
//! this module observes the *host*: where the wall-clock milliseconds
//! and allocations of a run actually go, per canonical pipeline
//! [`Stage`]. The data feeds `SimReport.host_profile`, the
//! `aurora_sim --host-profile` table, and the `ROADMAP` item-5
//! zero-alloc work that needs per-stage churn numbers before anyone
//! touches the hot path.
//!
//! Design:
//!
//! * **Off by default, branch-cheap when off.** [`enter`] checks one
//!   relaxed atomic and returns an inert guard unless span or
//!   allocation profiling was switched on ([`set_span_profiling`],
//!   `AURORA_HOST_PROFILE=1` via [`host_init`]). Nothing here ever
//!   touches the simulated-cycle results: profiling on or off, the
//!   engine computes byte-identical reports (tested in
//!   `crates/bench/tests/host_profile.rs`).
//! * **Process-global accumulation.** Stage statistics live in a fixed
//!   array of atomics — no locks, no allocation (the counters are also
//!   written from inside the global allocator, which must not
//!   allocate). Per-run attribution takes a [`mark`] before the run and
//!   [`collect`]s the delta after; concurrent runs in one process (the
//!   serve daemon) therefore see *mixed* deltas — host profiles are a
//!   single-run-at-a-time tool, and the serve integration documents
//!   that caveat.
//! * **Thread-local stage nesting.** The active stage is a thread-local
//!   byte; [`SpanGuard`]s form the stack (each guard remembers its
//!   parent and restores it on drop), and a child's elapsed time is
//!   added to the parent's `child_ns` so self-time is `total − child`.
//!   Worker closures in parallel regions use [`stage_scope`] to tag
//!   their thread for allocation attribution without timing overhead,
//!   plus a real [`enter`] where per-stage CPU time is wanted
//!   ([`Stage::Mapping`] inside tile precompute).
//!
//! Stage semantics: every stage except [`Stage::Mapping`] and
//! [`Stage::Other`] is a **disjoint top-level** phase of one engine run
//! — their wall-µs sum is comparable to the run's total wall time and
//! [`HostProfile::coverage`] reports the ratio (the ≥90 % acceptance
//! gate). `Mapping` is worker-side CPU time *inside* `TilePrecompute`
//! (it can exceed the precompute wall time on a multi-core host), and
//! `Other` absorbs allocations made outside any span.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Once;
use std::time::{Duration, Instant};

/// Number of [`Stage`] variants (the profiler's fixed table size).
pub const STAGE_COUNT: usize = 10;

/// Canonical host-side pipeline stages of one engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Stage {
    /// Graph specification resolution (dataset/R-MAT/ring synthesis).
    GraphLoad,
    /// Workflow generation from the model description.
    Workflow,
    /// Interval partitioning + Algorithm-2 tile assignment.
    Partition,
    /// Worker-side per-tile mapping work inside tile precompute
    /// (CPU time across workers; **not** a disjoint top-level stage).
    Mapping,
    /// Per-`NocConfig` route-table construction.
    RouteTableBuild,
    /// Parallel per-tile precompute (the `pres` region).
    TilePrecompute,
    /// NoC traffic kernels (miss binning + route-table walks).
    TrafficKernels,
    /// The stateful cycle-level engine walk.
    EngineWalk,
    /// Per-layer result assembly and report roll-up.
    Finalize,
    /// Fallback bucket: allocations outside any span land here.
    Other,
}

impl Stage {
    /// Every stage, in table order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::GraphLoad,
        Stage::Workflow,
        Stage::Partition,
        Stage::Mapping,
        Stage::RouteTableBuild,
        Stage::TilePrecompute,
        Stage::TrafficKernels,
        Stage::EngineWalk,
        Stage::Finalize,
        Stage::Other,
    ];

    /// Stable display label (also the metric `phase` label).
    pub fn label(self) -> &'static str {
        match self {
            Stage::GraphLoad => "graph_load",
            Stage::Workflow => "workflow",
            Stage::Partition => "partition",
            Stage::Mapping => "mapping",
            Stage::RouteTableBuild => "route_table_build",
            Stage::TilePrecompute => "tile_precompute",
            Stage::TrafficKernels => "traffic_kernels",
            Stage::EngineWalk => "engine_walk",
            Stage::Finalize => "finalize",
            Stage::Other => "other",
        }
    }

    /// Whether this stage is one of the disjoint top-level phases whose
    /// wall-time sum is comparable to the run's total wall time.
    /// `Mapping` (nested worker CPU time) and `Other` (no span) are not.
    pub fn is_top_level(self) -> bool {
        !matches!(self, Stage::Mapping | Stage::Other)
    }

    #[inline]
    fn index(self) -> usize {
        self as usize
    }
}

/// One stage's process-global accumulators. Plain relaxed atomics: the
/// numbers are observational (merged per-thread contributions), never
/// synchronization.
struct StageCell {
    calls: AtomicU64,
    total_ns: AtomicU64,
    child_ns: AtomicU64,
    alloc_count: AtomicU64,
    alloc_bytes: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)] // const used only as array-repeat seed
const ZERO_CELL: StageCell = StageCell {
    calls: AtomicU64::new(0),
    total_ns: AtomicU64::new(0),
    child_ns: AtomicU64::new(0),
    alloc_count: AtomicU64::new(0),
    alloc_bytes: AtomicU64::new(0),
};

static STATS: [StageCell; STAGE_COUNT] = [ZERO_CELL; STAGE_COUNT];

static SPAN_ENABLED: AtomicBool = AtomicBool::new(false);

/// Sentinel for "no active stage" in the thread-local byte.
const NO_STAGE: u8 = u8::MAX;

thread_local! {
    // const-init: no lazy-init allocation, safe to read from the
    // global allocator via `try_with`
    static CURRENT_STAGE: Cell<u8> = const { Cell::new(NO_STAGE) };
}

/// Switches the wall-clock span profiler on or off (process-global).
pub fn set_span_profiling(on: bool) {
    SPAN_ENABLED.store(on, Ordering::SeqCst);
}

/// Whether the span profiler is currently recording.
pub fn span_profiling_enabled() -> bool {
    SPAN_ENABLED.load(Ordering::Relaxed)
}

/// Whether spans must maintain the thread-local stage (timing or
/// allocation attribution wants it).
#[inline]
fn attribution_active() -> bool {
    SPAN_ENABLED.load(Ordering::Relaxed) || crate::alloc::alloc_profiling_enabled()
}

static INIT: Once = Once::new();

/// Applies the `AURORA_HOST_PROFILE` / `AURORA_ALLOC_PROFILE`
/// environment gates, once per process. Called from the engine's entry
/// points so every binary honors the variables without its own wiring;
/// explicit `set_*` calls afterwards still win.
pub fn host_init() {
    INIT.call_once(|| {
        if env_flag("AURORA_HOST_PROFILE") {
            set_span_profiling(true);
        }
        if env_flag("AURORA_ALLOC_PROFILE") {
            crate::alloc::set_alloc_profiling(true);
        }
    });
}

fn env_flag(name: &str) -> bool {
    std::env::var(name)
        .map(|v| matches!(v.as_str(), "1" | "true" | "on"))
        .unwrap_or(false)
}

/// Records one allocation of `bytes` against the calling thread's
/// active stage ([`Stage::Other`] when none). Called from the global
/// allocator: must not allocate, lock, or lazily initialize anything.
#[inline]
pub(crate) fn record_alloc(bytes: usize) {
    let stage = CURRENT_STAGE.try_with(Cell::get).unwrap_or(NO_STAGE);
    let idx = if stage == NO_STAGE {
        Stage::Other.index()
    } else {
        stage as usize
    };
    STATS[idx].alloc_count.fetch_add(1, Ordering::Relaxed);
    STATS[idx]
        .alloc_bytes
        .fetch_add(bytes as u64, Ordering::Relaxed);
}

/// RAII scope for one timed span. Created by [`enter`]; records its
/// elapsed wall time into the stage table on drop and credits the
/// elapsed time to the parent stage's child accumulator.
pub struct SpanGuard {
    stage: Stage,
    parent: u8,
    start: Instant,
    active: bool,
}

/// Opens a timed span for `stage` on this thread. Inert (one relaxed
/// load, no clock read) unless span or allocation profiling is on.
#[inline]
pub fn enter(stage: Stage) -> SpanGuard {
    if !attribution_active() {
        return SpanGuard {
            stage,
            parent: NO_STAGE,
            start: Instant::now(),
            active: false,
        };
    }
    let parent = CURRENT_STAGE
        .try_with(|c| {
            let p = c.get();
            c.set(stage.index() as u8);
            p
        })
        .unwrap_or(NO_STAGE);
    SpanGuard {
        stage,
        parent,
        start: Instant::now(),
        active: true,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let elapsed = self.start.elapsed().as_nanos() as u64;
        let idx = self.stage.index();
        STATS[idx].calls.fetch_add(1, Ordering::Relaxed);
        STATS[idx].total_ns.fetch_add(elapsed, Ordering::Relaxed);
        let _ = CURRENT_STAGE.try_with(|c| c.set(self.parent));
        if self.parent != NO_STAGE {
            STATS[self.parent as usize]
                .child_ns
                .fetch_add(elapsed, Ordering::Relaxed);
        }
    }
}

/// RAII tag that sets the thread's active stage without timing it —
/// used inside parallel-region worker closures so the allocations they
/// make attribute to the orchestrating stage.
pub struct StageScope {
    prev: u8,
    active: bool,
}

/// Tags the calling thread as working for `stage` (allocation
/// attribution only; no clock reads). Inert when profiling is off.
#[inline]
pub fn stage_scope(stage: Stage) -> StageScope {
    if !attribution_active() {
        return StageScope {
            prev: NO_STAGE,
            active: false,
        };
    }
    let prev = CURRENT_STAGE
        .try_with(|c| {
            let p = c.get();
            c.set(stage.index() as u8);
            p
        })
        .unwrap_or(NO_STAGE);
    StageScope { prev, active: true }
}

impl Drop for StageScope {
    fn drop(&mut self) {
        if self.active {
            let _ = CURRENT_STAGE.try_with(|c| c.set(self.prev));
        }
    }
}

/// A point-in-time copy of the global stage table, taken with [`mark`]
/// before a run so [`collect`] can report that run's delta.
pub struct ProfileMark {
    snap: [[u64; 5]; STAGE_COUNT],
}

fn load_all() -> [[u64; 5]; STAGE_COUNT] {
    let mut out = [[0u64; 5]; STAGE_COUNT];
    for (i, cell) in STATS.iter().enumerate() {
        out[i] = [
            cell.calls.load(Ordering::Relaxed),
            cell.total_ns.load(Ordering::Relaxed),
            cell.child_ns.load(Ordering::Relaxed),
            cell.alloc_count.load(Ordering::Relaxed),
            cell.alloc_bytes.load(Ordering::Relaxed),
        ];
    }
    out
}

/// Snapshots the stage table before a run.
pub fn mark() -> ProfileMark {
    ProfileMark { snap: load_all() }
}

/// Collects the per-stage delta since `mark` into a [`HostProfile`].
/// `wall` is the run's end-to-end wall time (the coverage denominator).
pub fn collect(mark: &ProfileMark, wall: Duration) -> HostProfile {
    let now = load_all();
    let mut stages = Vec::new();
    for (i, stage) in Stage::ALL.iter().enumerate() {
        let d: Vec<u64> = (0..5)
            .map(|j| now[i][j].saturating_sub(mark.snap[i][j]))
            .collect();
        let (calls, total_ns, child_ns, alloc_count, alloc_bytes) = (d[0], d[1], d[2], d[3], d[4]);
        if calls == 0 && alloc_count == 0 {
            continue;
        }
        stages.push(HostStage {
            stage: *stage,
            calls,
            wall_us: total_ns / 1_000,
            // worker-side children can outlive the caller's wall span
            // on a multi-core host; clamp instead of wrapping
            self_us: total_ns.saturating_sub(child_ns) / 1_000,
            alloc_count,
            alloc_bytes,
        });
    }
    HostProfile {
        total_wall_us: wall.as_micros() as u64,
        alloc_profiled: crate::alloc::alloc_profiling_enabled(),
        stages,
    }
}

/// One stage's share of a run: wall time, call count, self vs. children
/// split, and (when `AURORA_ALLOC_PROFILE=1`) allocation churn.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostStage {
    pub stage: Stage,
    /// Times a span for this stage opened during the run.
    pub calls: u64,
    /// Total wall time inside this stage's spans, microseconds.
    pub wall_us: u64,
    /// Wall time minus time attributed to nested child spans.
    pub self_us: u64,
    /// Heap allocations attributed to this stage (0 unless alloc
    /// profiling was on).
    pub alloc_count: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

/// Host-side profile of one engine run: per-stage wall-µs breakdown
/// plus allocation attribution. Attached to `SimReport.host_profile`
/// when span profiling is on; `None` otherwise, so default-path reports
/// stay byte-identical.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostProfile {
    /// End-to-end wall time of the run, microseconds.
    pub total_wall_us: u64,
    /// Whether allocation accounting was active during the run.
    pub alloc_profiled: bool,
    /// Stages that saw activity, in canonical [`Stage::ALL`] order.
    pub stages: Vec<HostStage>,
}

impl HostProfile {
    /// The entry for `stage`, if it saw any activity.
    pub fn stage(&self, stage: Stage) -> Option<&HostStage> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// Fraction of `total_wall_us` covered by the disjoint top-level
    /// stages' wall time — a lower bound on profiler coverage (nested
    /// `Mapping` time and span-less gaps are excluded).
    pub fn coverage(&self) -> f64 {
        if self.total_wall_us == 0 {
            return 0.0;
        }
        let covered: u64 = self
            .stages
            .iter()
            .filter(|s| s.stage.is_top_level())
            .map(|s| s.wall_us)
            .sum();
        covered as f64 / self.total_wall_us as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The span tests mutate process-global profiler state; serialize
    /// them and always restore the flags.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    struct FlagRestore;
    impl Drop for FlagRestore {
        fn drop(&mut self) {
            set_span_profiling(false);
            crate::alloc::set_alloc_profiling(false);
        }
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _l = LOCK.lock().unwrap();
        let _r = FlagRestore;
        set_span_profiling(false);
        let before = mark();
        {
            let _g = enter(Stage::Partition);
            std::hint::black_box(42);
        }
        let profile = collect(&before, Duration::from_micros(10));
        assert!(profile.stage(Stage::Partition).is_none());
    }

    #[test]
    fn nested_spans_split_self_and_child_time() {
        let _l = LOCK.lock().unwrap();
        let _r = FlagRestore;
        set_span_profiling(true);
        let before = mark();
        {
            let _outer = enter(Stage::TilePrecompute);
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = enter(Stage::Mapping);
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let profile = collect(&before, Duration::from_millis(5));
        let outer = profile.stage(Stage::TilePrecompute).expect("outer stage");
        let inner = profile.stage(Stage::Mapping).expect("inner stage");
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        assert!(inner.wall_us >= 1_000, "inner slept ≥2 ms: {inner:?}");
        assert!(
            outer.wall_us >= inner.wall_us,
            "outer encloses inner: {outer:?} vs {inner:?}"
        );
        // inner's time was attributed to outer's children
        assert!(
            outer.self_us <= outer.wall_us - inner.wall_us / 2,
            "self time excludes child: {outer:?} vs inner {inner:?}"
        );
    }

    #[test]
    fn guard_restores_parent_stage_across_threads() {
        let _l = LOCK.lock().unwrap();
        let _r = FlagRestore;
        set_span_profiling(true);
        let before = mark();
        {
            let _outer = enter(Stage::EngineWalk);
            // a different thread has its own stage stack
            std::thread::spawn(|| {
                let _g = enter(Stage::Partition);
            })
            .join()
            .unwrap();
            {
                let _inner = enter(Stage::Finalize);
            }
        }
        let profile = collect(&before, Duration::from_micros(100));
        assert_eq!(profile.stage(Stage::EngineWalk).unwrap().calls, 1);
        assert_eq!(profile.stage(Stage::Partition).unwrap().calls, 1);
        assert_eq!(profile.stage(Stage::Finalize).unwrap().calls, 1);
        // the spawned thread's Partition span had no parent; EngineWalk
        // only absorbed Finalize as a child
        let walk = profile.stage(Stage::EngineWalk).unwrap();
        assert!(walk.wall_us >= profile.stage(Stage::Finalize).unwrap().wall_us);
    }

    #[test]
    fn alloc_attribution_follows_the_active_stage() {
        let _l = LOCK.lock().unwrap();
        let _r = FlagRestore;
        crate::alloc::set_alloc_profiling(true);
        let before = mark();
        {
            let _g = enter(Stage::RouteTableBuild);
            let v: Vec<u64> = Vec::with_capacity(4096);
            std::hint::black_box(&v);
        }
        let profile = collect(&before, Duration::from_micros(100));
        let stage = profile
            .stage(Stage::RouteTableBuild)
            .expect("stage with allocations");
        assert!(
            stage.alloc_count >= 1,
            "vector allocation counted: {stage:?}"
        );
        assert!(
            stage.alloc_bytes >= 4096 * 8,
            "vector bytes counted: {stage:?}"
        );
        assert!(profile.alloc_profiled);
    }

    #[test]
    fn stage_scope_tags_allocations_without_timing() {
        let _l = LOCK.lock().unwrap();
        let _r = FlagRestore;
        crate::alloc::set_alloc_profiling(true);
        let before = mark();
        {
            let _s = stage_scope(Stage::TrafficKernels);
            let v: Vec<u8> = Vec::with_capacity(1024);
            std::hint::black_box(&v);
        }
        let profile = collect(&before, Duration::from_micros(100));
        let stage = profile.stage(Stage::TrafficKernels).expect("tagged stage");
        assert_eq!(stage.calls, 0, "scopes are not timed spans");
        assert!(stage.alloc_bytes >= 1024, "{stage:?}");
    }

    #[test]
    fn coverage_counts_only_top_level_stages() {
        let p = HostProfile {
            total_wall_us: 1_000,
            alloc_profiled: false,
            stages: vec![
                HostStage {
                    stage: Stage::EngineWalk,
                    calls: 1,
                    wall_us: 600,
                    self_us: 600,
                    alloc_count: 0,
                    alloc_bytes: 0,
                },
                HostStage {
                    stage: Stage::TilePrecompute,
                    calls: 1,
                    wall_us: 350,
                    self_us: 100,
                    alloc_count: 0,
                    alloc_bytes: 0,
                },
                HostStage {
                    stage: Stage::Mapping,
                    calls: 8,
                    wall_us: 900, // worker CPU time, ignored by coverage
                    self_us: 900,
                    alloc_count: 0,
                    alloc_bytes: 0,
                },
            ],
        };
        assert!((p.coverage() - 0.95).abs() < 1e-9);
    }

    #[test]
    fn profile_round_trips_through_serde() {
        let p = HostProfile {
            total_wall_us: 123,
            alloc_profiled: true,
            stages: vec![HostStage {
                stage: Stage::GraphLoad,
                calls: 2,
                wall_us: 50,
                self_us: 40,
                alloc_count: 7,
                alloc_bytes: 512,
            }],
        };
        let v = serde::Serialize::to_value(&p);
        let back: HostProfile = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn stage_table_is_complete() {
        assert_eq!(Stage::ALL.len(), STAGE_COUNT);
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i, "ALL order matches discriminants");
        }
        let labels: std::collections::BTreeSet<_> = Stage::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), STAGE_COUNT, "labels are distinct");
    }
}
