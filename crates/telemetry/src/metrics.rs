//! The metrics registry: named counters, gauges and log-scale histograms
//! keyed by `(name, scope)`.

use crate::scope::Scope;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// Log₂-bucketed histogram of `u64` samples. Bucket `i` counts samples
/// whose bit length is `i` (i.e. values in `[2^(i−1), 2^i)`; bucket 0
/// counts zeros), so the 65 buckets cover the full `u64` range with
/// relative-error resolution — the right shape for cycle and byte
/// distributions that span many orders of magnitude.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// `buckets[i]` counts samples with bit length `i` (65 entries,
    /// trailing zero buckets trimmed).
    pub buckets: Vec<u64>,
}

impl Histogram {
    /// Bucket index of a value: its bit length.
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Lower bound of bucket `i` (inclusive).
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        let idx = Self::bucket_of(value);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Arithmetic mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: the inclusive upper bound of the first
    /// bucket at which the cumulative count reaches `q · count`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                // upper bound of bucket i, capped at the observed max
                let hi = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                return hi.min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median (approximate, bucket upper bound). 0 when empty.
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 95th percentile (approximate, bucket upper bound). 0 when empty.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (approximate, bucket upper bound). 0 when empty.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// One-line `count/mean/p50/p95/max` summary for report footers.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.1} p50={} p95={} max={}",
            self.count,
            self.mean(),
            self.p50(),
            self.p95(),
            self.max
        )
    }
}

/// In-memory metric store. Keys are `(name, scope)`; maps are ordered so
/// snapshots serialize deterministically.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<(String, Scope), u64>,
    gauges: BTreeMap<(String, Scope), f64>,
    histograms: BTreeMap<(String, Scope), Histogram>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a monotonic counter.
    pub fn counter_add(&mut self, name: &str, scope: &Scope, delta: u64) {
        if let Some(v) = self.counters.get_mut(&(name.to_string(), scope.clone())) {
            *v += delta;
        } else {
            self.counters
                .insert((name.to_string(), scope.clone()), delta);
        }
    }

    /// Sets a gauge to its latest value.
    pub fn gauge_set(&mut self, name: &str, scope: &Scope, value: f64) {
        self.gauges.insert((name.to_string(), scope.clone()), value);
    }

    /// Records a histogram sample.
    pub fn observe(&mut self, name: &str, scope: &Scope, value: u64) {
        self.histograms
            .entry((name.to_string(), scope.clone()))
            .or_default()
            .observe(value);
    }

    /// Immutable, serializable copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|((name, scope), &value)| CounterEntry {
                    name: name.clone(),
                    scope: scope.clone(),
                    value,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|((name, scope), &value)| GaugeEntry {
                    name: name.clone(),
                    scope: scope.clone(),
                    value,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|((name, scope), h)| HistogramEntry {
                    name: name.clone(),
                    scope: scope.clone(),
                    histogram: h.clone(),
                })
                .collect(),
        }
    }
}

/// Histogram shard count. Samples for a given `(name, scope)` always
/// land in the same shard, so per-key histograms never need merging —
/// sharding only spreads lock contention across unrelated keys.
const HIST_SHARDS: usize = 8;

/// Thread-safe metric store backing [`crate::Recorder`]. Counters and
/// gauges are atomics behind a read-mostly lock (the write lock is only
/// taken to insert a new key); histograms take one shard `Mutex` per
/// sample. Every mutation is commutative per key — counter adds sum,
/// histogram merges are order-free, and gauge writes from the simulator
/// are per-run-scoped — so concurrent recording produces the same
/// snapshot as any sequential interleaving. Snapshots iterate
/// `BTreeMap`s, giving one deterministic merge order no matter which
/// thread recorded what.
#[derive(Debug, Default)]
pub struct ConcurrentRegistry {
    counters: RwLock<BTreeMap<(String, Scope), AtomicU64>>,
    /// Gauge values stored as `f64::to_bits`.
    gauges: RwLock<BTreeMap<(String, Scope), AtomicU64>>,
    histograms: [Mutex<BTreeMap<(String, Scope), Histogram>>; HIST_SHARDS],
}

/// Shard selector: a tiny deterministic hash of the metric name (the
/// scope shares the shard — one name rarely spans many scopes at once).
fn shard_of(name: &str) -> usize {
    let mut h: usize = 5381;
    for b in name.bytes() {
        h = h.wrapping_mul(33) ^ b as usize;
    }
    h % HIST_SHARDS
}

impl ConcurrentRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a monotonic counter.
    pub fn counter_add(&self, name: &str, scope: &Scope, delta: u64) {
        {
            let read = self.counters.read().expect("counter map poisoned");
            if let Some(c) = read.get(&(name.to_string(), scope.clone())) {
                c.fetch_add(delta, Ordering::Relaxed);
                return;
            }
        }
        let mut write = self.counters.write().expect("counter map poisoned");
        write
            .entry((name.to_string(), scope.clone()))
            .or_default()
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets a gauge to its latest value.
    pub fn gauge_set(&self, name: &str, scope: &Scope, value: f64) {
        {
            let read = self.gauges.read().expect("gauge map poisoned");
            if let Some(g) = read.get(&(name.to_string(), scope.clone())) {
                g.store(value.to_bits(), Ordering::Relaxed);
                return;
            }
        }
        let mut write = self.gauges.write().expect("gauge map poisoned");
        write
            .entry((name.to_string(), scope.clone()))
            .or_default()
            .store(value.to_bits(), Ordering::Relaxed);
    }

    /// Records a histogram sample.
    pub fn observe(&self, name: &str, scope: &Scope, value: u64) {
        self.histograms[shard_of(name)]
            .lock()
            .expect("histogram shard poisoned")
            .entry((name.to_string(), scope.clone()))
            .or_default()
            .observe(value);
    }

    /// Immutable, serializable copy of every metric, in `(name, scope)`
    /// order regardless of which threads recorded.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .expect("counter map poisoned")
            .iter()
            .map(|((name, scope), v)| CounterEntry {
                name: name.clone(),
                scope: scope.clone(),
                value: v.load(Ordering::Relaxed),
            })
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("gauge map poisoned")
            .iter()
            .map(|((name, scope), v)| GaugeEntry {
                name: name.clone(),
                scope: scope.clone(),
                value: f64::from_bits(v.load(Ordering::Relaxed)),
            })
            .collect();
        let mut merged: BTreeMap<(String, Scope), Histogram> = BTreeMap::new();
        for shard in &self.histograms {
            for (key, h) in shard.lock().expect("histogram shard poisoned").iter() {
                merged.insert(key.clone(), h.clone());
            }
        }
        let histograms = merged
            .into_iter()
            .map(|((name, scope), histogram)| HistogramEntry {
                name,
                scope,
                histogram,
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// One counter in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    pub name: String,
    pub scope: Scope,
    pub value: u64,
}

/// One gauge in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeEntry {
    pub name: String,
    pub scope: Scope,
    pub value: f64,
}

/// One histogram in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramEntry {
    pub name: String,
    pub scope: Scope,
    pub histogram: Histogram,
}

/// Serializable dump of a [`Registry`], embedded in `SimReport` and
/// written by `aurora_sim --metrics`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterEntry>,
    pub gauges: Vec<GaugeEntry>,
    pub histograms: Vec<HistogramEntry>,
}

impl MetricsSnapshot {
    /// True when nothing was recorded (telemetry disabled).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Sum of every counter with this name, across scopes.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// The counter with exactly this name and scope.
    pub fn counter_at(&self, name: &str, scope: &Scope) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name && &c.scope == scope)
            .map(|c| c.value)
    }

    /// The gauge with exactly this name and scope.
    pub fn gauge_at(&self, name: &str, scope: &Scope) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.name == name && &g.scope == scope)
            .map(|g| g.value)
    }

    /// The histogram with exactly this name and scope.
    pub fn histogram_at(&self, name: &str, scope: &Scope) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|h| h.name == name && &h.scope == scope)
            .map(|h| &h.histogram)
    }

    /// `(p50, p95, p99)` of the histogram `name` at `scope`, or zeros
    /// when it was never observed.
    pub fn quantiles_at(&self, name: &str, scope: &Scope) -> (u64, u64, u64) {
        match self.histogram_at(name, scope) {
            Some(h) => (h.p50(), h.p95(), h.p99()),
            None => (0, 0, 0),
        }
    }

    /// True when any counter, gauge or histogram (in any scope) carries
    /// this name — the metric-name completeness check.
    pub fn contains_name(&self, name: &str) -> bool {
        self.counters.iter().any(|c| c.name == name)
            || self.gauges.iter().any(|g| g.name == name)
            || self.histograms.iter().any(|h| h.name == name)
    }

    /// Per-name activity since `prev`: counter increments plus histogram
    /// sample-count increments (keyed `<name>.count`), summed across
    /// scopes and name-ordered. Names that did not move are absent, so
    /// an idle interval yields an empty map — the `--metrics-every`
    /// zero-delta suppression contract. Gauges are point-in-time and
    /// carry no delta semantics, so they are excluded.
    pub fn delta_since(&self, prev: &MetricsSnapshot) -> BTreeMap<String, u64> {
        fn totals(snap: &MetricsSnapshot) -> BTreeMap<String, u64> {
            let mut out = BTreeMap::new();
            for c in &snap.counters {
                *out.entry(c.name.clone()).or_insert(0) += c.value;
            }
            for h in &snap.histograms {
                *out.entry(format!("{}.count", h.name)).or_insert(0) += h.histogram.count;
            }
            out
        }
        let before = totals(prev);
        let mut now = totals(self);
        now.retain(|name, total| {
            let prior = before.get(name).copied().unwrap_or(0);
            *total = total.saturating_sub(prior);
            *total > 0
        });
        now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_scope() {
        let mut r = Registry::new();
        let s0 = Scope::model("GCN").layer(0);
        let s1 = Scope::model("GCN").layer(1);
        r.counter_add("bytes", &s0, 10);
        r.counter_add("bytes", &s0, 5);
        r.counter_add("bytes", &s1, 3);
        let snap = r.snapshot();
        assert_eq!(snap.counter_at("bytes", &s0), Some(15));
        assert_eq!(snap.counter_at("bytes", &s1), Some(3));
        assert_eq!(snap.counter_total("bytes"), 18);
    }

    #[test]
    fn gauges_keep_last_value() {
        let mut r = Registry::new();
        r.gauge_set("balance", &Scope::ROOT, 0.4);
        r.gauge_set("balance", &Scope::ROOT, 0.9);
        assert_eq!(r.snapshot().gauge_at("balance", &Scope::ROOT), Some(0.9));
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_floor(11), 1024);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1106);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1000);
        assert!((h.mean() - 221.2).abs() < 1e-9);
        assert!(h.quantile(0.5) <= 100);
        assert_eq!(h.quantile(1.0), 1000);
        // zero goes to bucket 0
        h.observe(0);
        assert_eq!(h.min, 0);
        assert_eq!(h.buckets[0], 1);
    }

    #[test]
    fn quantiles_respect_bucket_boundaries() {
        let mut h = Histogram::default();
        // 10 samples of 8 (bucket 4: [8, 16)) and 1 sample of 1000
        // (bucket 10: [512, 1024)).
        for _ in 0..10 {
            h.observe(8);
        }
        h.observe(1000);
        // p50 lands in bucket 4; its inclusive upper bound is 15.
        assert_eq!(h.p50(), 15);
        // p95 needs ⌈0.95·11⌉ = 11 samples; only bucket 10's cumulative
        // count reaches that, and its upper bound is capped at max.
        assert_eq!(h.p95(), 1000);
        assert_eq!(h.max, 1000);
    }

    #[test]
    fn quantiles_on_boundary_values() {
        let mut h = Histogram::default();
        // Powers of two sit at the *bottom* of their bucket: 2^i has bit
        // length i+1, so 16 opens bucket 5 whose range is [16, 32).
        h.observe(16);
        assert_eq!(Histogram::bucket_of(16), 5);
        assert_eq!(Histogram::bucket_floor(5), 16);
        // With one sample every quantile is that sample, clamped by
        // min/max rather than the bucket bound (31).
        assert_eq!(h.p50(), 16);
        assert_eq!(h.p95(), 16);
        assert_eq!(h.quantile(1.0), 16);
    }

    #[test]
    fn summary_of_empty_histogram() {
        let h = Histogram::default();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p95(), 0);
        assert_eq!(h.summary(), "n=0 mean=0.0 p50=0 p95=0 max=0");
    }

    #[test]
    fn p99_sits_between_p95_and_max() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert!(h.p95() <= h.p99());
        assert!(h.p99() <= h.max);
        // p99 needs ⌈0.99·1000⌉ = 990 samples; bucket 10 ([512, 1024))
        // is the first to reach that, upper bound capped at max = 1000.
        assert_eq!(h.p99(), 1000);
    }

    #[test]
    fn snapshot_quantiles_and_name_lookup() {
        let mut r = Registry::new();
        r.observe("lat", &Scope::ROOT, 8);
        r.counter_add("hits", &Scope::ROOT, 1);
        r.gauge_set("depth", &Scope::ROOT, 2.0);
        let snap = r.snapshot();
        let (p50, p95, p99) = snap.quantiles_at("lat", &Scope::ROOT);
        assert_eq!((p50, p95, p99), (8, 8, 8));
        assert_eq!(snap.quantiles_at("absent", &Scope::ROOT), (0, 0, 0));
        assert!(snap.contains_name("lat"));
        assert!(snap.contains_name("hits"));
        assert!(snap.contains_name("depth"));
        assert!(!snap.contains_name("absent"));
    }

    #[test]
    fn delta_since_reports_only_movement() {
        let mut r = Registry::new();
        r.counter_add("reqs", &Scope::ROOT, 3);
        r.counter_add("reqs", &Scope::model("GCN"), 1);
        r.counter_add("idle", &Scope::ROOT, 5);
        r.observe("lat", &Scope::ROOT, 10);
        let before = r.snapshot();

        assert!(before.delta_since(&before).is_empty(), "idle interval");
        assert_eq!(
            before.delta_since(&MetricsSnapshot::default()),
            BTreeMap::from([
                ("idle".to_string(), 5),
                ("lat.count".to_string(), 1),
                ("reqs".to_string(), 4),
            ])
        );

        r.counter_add("reqs", &Scope::ROOT, 2);
        r.observe("lat", &Scope::ROOT, 20);
        r.observe("lat", &Scope::ROOT, 30);
        let after = r.snapshot();
        assert_eq!(
            after.delta_since(&before),
            BTreeMap::from([("lat.count".to_string(), 2), ("reqs".to_string(), 2)])
        );
    }

    #[test]
    fn snapshot_is_deterministic_and_serializable() {
        let mut r = Registry::new();
        r.counter_add("z", &Scope::ROOT, 1);
        r.counter_add("a", &Scope::ROOT, 2);
        r.observe("lat", &Scope::model("GIN"), 7);
        let s1 = serde_json::to_string(&r.snapshot()).unwrap();
        let s2 = serde_json::to_string(&r.snapshot()).unwrap();
        assert_eq!(s1, s2);
        // names sorted: "a" before "z"
        assert!(s1.find("\"a\"").unwrap() < s1.find("\"z\"").unwrap());
        let back: MetricsSnapshot = serde_json::from_str(&s1).unwrap();
        assert_eq!(back, r.snapshot());
    }
}
