//! Metric scopes: the label set every metric is keyed by.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The labels a metric sample is attributed to. All fields are optional;
/// an empty scope means "whole simulation". Scopes order
/// lexicographically (model, then layer, tile, phase) so registry
/// snapshots are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Scope {
    /// Model name (e.g. `GCN`).
    pub model: Option<String>,
    /// Layer index within the run.
    pub layer: Option<u32>,
    /// Tile (subgraph) index within the layer.
    pub tile: Option<u32>,
    /// Phase name (e.g. `aggregation`, `vertex-update`).
    pub phase: Option<String>,
}

impl Scope {
    /// The empty (run-wide) scope.
    pub const ROOT: Scope = Scope {
        model: None,
        layer: None,
        tile: None,
        phase: None,
    };

    /// Scope for a whole model run.
    pub fn model(model: impl Into<String>) -> Self {
        Scope {
            model: Some(model.into()),
            ..Self::ROOT
        }
    }

    /// Narrows to a layer.
    pub fn layer(&self, layer: usize) -> Self {
        Scope {
            layer: Some(layer as u32),
            ..self.clone()
        }
    }

    /// Narrows to a tile.
    pub fn tile(&self, tile: usize) -> Self {
        Scope {
            tile: Some(tile as u32),
            ..self.clone()
        }
    }

    /// Narrows to a phase.
    pub fn phase(&self, phase: impl Into<String>) -> Self {
        Scope {
            phase: Some(phase.into()),
            ..self.clone()
        }
    }

    /// True when no label is set.
    pub fn is_root(&self) -> bool {
        *self == Self::ROOT
    }
}

impl fmt::Display for Scope {
    /// Prometheus-style rendering: `{model=GCN,layer=0,tile=3}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            return Ok(());
        }
        let mut sep = "";
        write!(f, "{{")?;
        if let Some(m) = &self.model {
            write!(f, "{sep}model={m}")?;
            sep = ",";
        }
        if let Some(l) = self.layer {
            write!(f, "{sep}layer={l}")?;
            sep = ",";
        }
        if let Some(t) = self.tile {
            write!(f, "{sep}tile={t}")?;
            sep = ",";
        }
        if let Some(p) = &self.phase {
            write!(f, "{sep}phase={p}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrowing_builders_compose() {
        let s = Scope::model("GCN").layer(2).tile(7).phase("aggregation");
        assert_eq!(s.model.as_deref(), Some("GCN"));
        assert_eq!(s.layer, Some(2));
        assert_eq!(s.tile, Some(7));
        assert_eq!(s.phase.as_deref(), Some("aggregation"));
        assert_eq!(
            s.to_string(),
            "{model=GCN,layer=2,tile=7,phase=aggregation}"
        );
    }

    #[test]
    fn root_scope_renders_empty() {
        assert_eq!(Scope::ROOT.to_string(), "");
        assert!(Scope::default().is_root());
    }

    #[test]
    fn scopes_order_deterministically() {
        let a = Scope::model("A").layer(0);
        let b = Scope::model("A").layer(1);
        let c = Scope::model("B");
        assert!(a < b && b < c);
    }
}
