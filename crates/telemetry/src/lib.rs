//! Observability layer for the Aurora simulator.
//!
//! Two coordinated facilities, both keyed on **simulated cycles**:
//!
//! * a metrics [`Registry`] — named counters, gauges and log-scale
//!   [`Histogram`]s, labeled with a [`Scope`] (model / layer / tile /
//!   phase) — snapshotted into the serializable [`MetricsSnapshot`]
//!   embedded in `SimReport`;
//! * a span/event recorder ([`TraceBuffer`]) that emits Chrome
//!   trace-event JSON loadable in Perfetto, with one track per
//!   sub-accelerator plus NoC, DRAM, tile-pipeline and controller
//!   tracks (see [`tracks`]).
//!
//! Snapshots also render to the Prometheus text exposition format via
//! [`expo::render`], the scrape surface of the serve daemon's
//! `{"admin":"metrics"}` command.
//!
//! A third facility observes the **host** instead of the simulated
//! machine: the wall-clock span profiler ([`span`]) and the env-gated
//! allocation accounting ([`alloc`]) attribute a run's wall-µs and
//! heap churn to canonical pipeline [`Stage`]s, surfaced as
//! `SimReport.host_profile`.
//!
//! Probes go through the cheap-to-clone [`Telemetry`] handle. A
//! disabled handle (the default) carries no sink: every probe is a
//! single `Option` check that branches over an empty body, so
//! instrumented code runs at full speed when observability is off.
//! All probe events funnel through the [`Sink`] trait; [`NullSink`] is
//! the no-op implementation and [`Recorder`] the standard
//! registry-plus-trace implementation used by the simulator binaries.

pub mod alloc;
pub mod expo;
pub mod metrics;
pub mod names;
pub mod scope;
pub mod span;
pub mod trace;

pub use metrics::{ConcurrentRegistry, Histogram, MetricsSnapshot, Registry};
pub use scope::Scope;
pub use span::{host_init, HostProfile, HostStage, Stage};
pub use trace::{tracks, ArgValue, TraceBuffer};

/// Counting wrapper around the system allocator, installed for every
/// binary linking this crate. Pass-through (one relaxed load) unless
/// `AURORA_ALLOC_PROFILE=1` switches accounting on.
#[global_allocator]
static GLOBAL_ALLOC: alloc::CountingAllocator = alloc::CountingAllocator;

use std::sync::{Arc, Mutex};

/// One probe event, borrowed from the call site. Everything the
/// simulator reports flows through [`Sink::record`] as one of these.
#[derive(Debug)]
pub enum Event<'a> {
    /// Add `delta` to the counter `name` at `scope`.
    CounterAdd {
        name: &'a str,
        scope: &'a Scope,
        delta: u64,
    },
    /// Set the gauge `name` at `scope` to `value`.
    GaugeSet {
        name: &'a str,
        scope: &'a Scope,
        value: f64,
    },
    /// Record `value` into the histogram `name` at `scope`.
    Observe {
        name: &'a str,
        scope: &'a Scope,
        value: u64,
    },
    /// A complete span on a timeline track, in simulated cycles.
    Span {
        track: &'a str,
        name: &'a str,
        ts: u64,
        dur: u64,
        args: Vec<(String, ArgValue)>,
    },
    /// An instant marker on a timeline track.
    Instant {
        track: &'a str,
        name: &'a str,
        ts: u64,
    },
    /// A counter-series sample on a timeline track.
    CounterSample {
        track: &'a str,
        name: &'a str,
        ts: u64,
        value: f64,
    },
}

/// Destination for probe events. Sinks are shared across simulation
/// threads, so recording takes `&self` and implementations must be
/// `Send + Sync` (interior mutability where state is kept).
pub trait Sink: Send + Sync {
    fn record(&self, event: Event<'_>);
}

/// The default sink: drops everything. `record` is an empty inlined
/// body, so probes against it compile to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    #[inline(always)]
    fn record(&self, _event: Event<'_>) {}
}

/// The standard sink: a [`ConcurrentRegistry`] plus a locked
/// [`TraceBuffer`]. Safe to share across threads; metric merges are
/// commutative and snapshots/trace renders use one deterministic order
/// (see the field types' docs), so a parallel run reports exactly what
/// the sequential run would.
#[derive(Debug)]
pub struct Recorder {
    registry: ConcurrentRegistry,
    trace: Mutex<TraceBuffer>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    pub fn new() -> Self {
        Self {
            registry: ConcurrentRegistry::new(),
            trace: Mutex::new(TraceBuffer::with_canonical_tracks()),
        }
    }

    /// Serializable copy of every metric recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Chrome trace-event JSON of the recorded timeline.
    pub fn trace_json(&self) -> String {
        self.trace
            .lock()
            .expect("trace buffer poisoned")
            .to_chrome_json()
    }

    /// Number of timeline events recorded so far.
    pub fn trace_len(&self) -> usize {
        self.trace.lock().expect("trace buffer poisoned").len()
    }
}

impl Sink for Recorder {
    fn record(&self, event: Event<'_>) {
        match event {
            Event::CounterAdd { name, scope, delta } => {
                self.registry.counter_add(name, scope, delta)
            }
            Event::GaugeSet { name, scope, value } => self.registry.gauge_set(name, scope, value),
            Event::Observe { name, scope, value } => self.registry.observe(name, scope, value),
            Event::Span {
                track,
                name,
                ts,
                dur,
                args,
            } => self
                .trace
                .lock()
                .expect("trace buffer poisoned")
                .span(track, name, ts, dur, args),
            Event::Instant { track, name, ts } => self
                .trace
                .lock()
                .expect("trace buffer poisoned")
                .instant(track, name, ts),
            Event::CounterSample {
                track,
                name,
                ts,
                value,
            } => self
                .trace
                .lock()
                .expect("trace buffer poisoned")
                .counter(track, name, ts, value),
        }
    }
}

/// Cheap-to-clone handle threaded through the simulator. Disabled by
/// default ([`Telemetry::disabled`], also `Default`): probes on a
/// disabled handle reduce to one branch on a `None`. The handle is
/// `Send + Sync` — clones may record from any pool thread; counters go
/// through atomics and only histogram/trace probes take a short lock.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Recorder>>,
}

impl Telemetry {
    /// A handle that records nothing (the default).
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A handle backed by a fresh [`Recorder`]. Clones share it.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(Recorder::new())),
        }
    }

    /// Whether probes on this handle record anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Routes an event to the shared recorder, if any.
    #[inline]
    pub fn record(&self, event: Event<'_>) {
        if let Some(inner) = &self.inner {
            inner.record(event);
        }
    }

    /// Adds `delta` to counter `name` at `scope`.
    #[inline]
    pub fn counter_add(&self, name: &str, scope: &Scope, delta: u64) {
        if self.inner.is_some() {
            self.record(Event::CounterAdd { name, scope, delta });
        }
    }

    /// Sets gauge `name` at `scope`.
    #[inline]
    pub fn gauge_set(&self, name: &str, scope: &Scope, value: f64) {
        if self.inner.is_some() {
            self.record(Event::GaugeSet { name, scope, value });
        }
    }

    /// Records a histogram sample for `name` at `scope`.
    #[inline]
    pub fn observe(&self, name: &str, scope: &Scope, value: u64) {
        if self.inner.is_some() {
            self.record(Event::Observe { name, scope, value });
        }
    }

    /// Records a complete span on a timeline track (cycles).
    #[inline]
    pub fn span(&self, track: &str, name: &str, ts: u64, dur: u64, args: Vec<(String, ArgValue)>) {
        if self.inner.is_some() {
            self.record(Event::Span {
                track,
                name,
                ts,
                dur,
                args,
            });
        }
    }

    /// Records an instant marker on a timeline track (cycles).
    #[inline]
    pub fn instant(&self, track: &str, name: &str, ts: u64) {
        if self.inner.is_some() {
            self.record(Event::Instant { track, name, ts });
        }
    }

    /// Records a counter-series sample on a timeline track (cycles).
    #[inline]
    pub fn counter_sample(&self, track: &str, name: &str, ts: u64, value: f64) {
        if self.inner.is_some() {
            self.record(Event::CounterSample {
                track,
                name,
                ts,
                value,
            });
        }
    }

    /// Serializable copy of every metric recorded so far. Empty when
    /// the handle is disabled.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Chrome trace-event JSON of the recorded timeline, or `None`
    /// when the handle is disabled.
    pub fn trace_json(&self) -> Option<String> {
        self.inner.as_ref().map(|inner| inner.trace_json())
    }

    /// Number of timeline events recorded so far (0 when disabled).
    pub fn trace_len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.trace_len(),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        t.counter_add("c", &Scope::ROOT, 1);
        t.span(tracks::SUB_A, "s", 0, 10, vec![]);
        assert!(!t.is_enabled());
        assert!(t.snapshot().is_empty());
        assert_eq!(t.trace_json(), None);
        assert_eq!(t.trace_len(), 0);
    }

    #[test]
    fn clones_share_one_recorder() {
        let t = Telemetry::enabled();
        let t2 = t.clone();
        t.counter_add("c", &Scope::ROOT, 2);
        t2.counter_add("c", &Scope::ROOT, 3);
        assert_eq!(t.snapshot().counter_at("c", &Scope::ROOT), Some(5));
    }

    #[test]
    fn events_route_to_registry_and_trace() {
        let t = Telemetry::enabled();
        let s = Scope::model("GCN").layer(0);
        t.observe("tile_cycles", &s, 123);
        t.gauge_set("balance", &s, 0.75);
        t.span(
            tracks::SUB_B,
            "vertex update",
            10,
            20,
            vec![("rows".into(), 8u64.into())],
        );
        t.instant(tracks::CONTROLLER, "map", 5);
        t.counter_sample(tracks::DRAM, "bytes", 10, 64.0);

        let snap = t.snapshot();
        assert_eq!(snap.histogram_at("tile_cycles", &s).unwrap().count, 1);
        assert_eq!(snap.gauge_at("balance", &s), Some(0.75));
        assert_eq!(t.trace_len(), 3);
        let json = t.trace_json().unwrap();
        assert!(json.contains("vertex update"));
        assert!(json.contains(tracks::SUB_B));
    }

    #[test]
    fn null_sink_drops_events() {
        let sink = NullSink;
        sink.record(Event::CounterAdd {
            name: "x",
            scope: &Scope::ROOT,
            delta: 1,
        });
        // Nothing to assert — the point is it compiles to nothing and
        // satisfies the Sink contract.
    }

    #[test]
    fn telemetry_handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Telemetry>();
        assert_send_sync::<Recorder>();
        assert_send_sync::<NullSink>();
    }

    #[test]
    fn cross_thread_recording_merges_deterministically() {
        // The same probe stream recorded sequentially and split over 4
        // threads must yield identical snapshots: counter adds and
        // histogram merges are commutative, and snapshot/render order
        // comes from BTreeMaps, not thread arrival order.
        const THREADS: usize = 4;
        const PER_THREAD: usize = 250;

        let sequential = Telemetry::enabled();
        for t in 0..THREADS {
            for i in 0..PER_THREAD {
                let scope = Scope::model("GCN").layer(t);
                sequential.counter_add("edges", &scope, (i + 1) as u64);
                sequential.observe("tile_cycles", &scope, (i * 37 + t) as u64);
            }
        }

        let parallel = Telemetry::enabled();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let handle = parallel.clone();
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        let scope = Scope::model("GCN").layer(t);
                        handle.counter_add("edges", &scope, (i + 1) as u64);
                        handle.observe("tile_cycles", &scope, (i * 37 + t) as u64);
                    }
                });
            }
        });

        assert_eq!(sequential.snapshot(), parallel.snapshot());
    }
}
