//! Env-gated allocation accounting.
//!
//! [`CountingAllocator`] wraps the system allocator and, when switched
//! on (`AURORA_ALLOC_PROFILE=1` via [`host_init`](crate::host_init), or
//! [`set_alloc_profiling`]), attributes every allocation's count and
//! byte size to the calling thread's active [`Stage`](crate::Stage).
//! The crate installs it as the `#[global_allocator]`, so every binary
//! linking `aurora-telemetry` gets the gate for free.
//!
//! The disabled path is one relaxed atomic load before delegating to
//! [`System`] — cheap enough to leave installed permanently. The
//! enabled path must stay allocation-free and lock-free: it runs inside
//! `alloc()` itself, so it only touches the fixed atomic stage table
//! and a const-initialized thread-local (`try_with`, never lazy-init).
//!
//! Deallocations are deliberately not counted: the profile answers
//! "which stage churns memory", and alloc count/bytes is the churn
//! signal `ROADMAP` item 5 needs. `realloc` and `alloc_zeroed` count at
//! their (new) full size.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, Ordering};

static ALLOC_ENABLED: AtomicBool = AtomicBool::new(false);

/// Switches allocation accounting on or off (process-global).
pub fn set_alloc_profiling(on: bool) {
    ALLOC_ENABLED.store(on, Ordering::SeqCst);
}

/// Whether allocation accounting is currently recording.
pub fn alloc_profiling_enabled() -> bool {
    ALLOC_ENABLED.load(Ordering::Relaxed)
}

/// System-allocator wrapper that counts allocations per active stage
/// when [`alloc_profiling_enabled`]. Installed as the global allocator
/// by this crate's root.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ALLOC_ENABLED.load(Ordering::Relaxed) {
            crate::span::record_alloc(layout.size());
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ALLOC_ENABLED.load(Ordering::Relaxed) {
            crate::span::record_alloc(layout.size());
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ALLOC_ENABLED.load(Ordering::Relaxed) {
            crate::span::record_alloc(new_size);
        }
        System.realloc(ptr, layout, new_size)
    }
}
