//! Prometheus text-format exposition of a [`MetricsSnapshot`].
//!
//! [`render`] turns a snapshot into the plain-text format every
//! Prometheus-compatible scraper understands, so the serve daemon's
//! `{"admin":"metrics"}` answer can be piped straight into a collector.
//! The rendering is fully deterministic: snapshots are already in
//! `(name, scope)` order, names sanitize by a pure character map, and
//! numbers format without locale or hash-order influence — the same
//! snapshot always renders byte-identically (golden-tested below).
//!
//! Mapping:
//!
//! * metric names gain an `aurora_` prefix and non-`[A-Za-z0-9_]`
//!   characters become `_` (`serve.latency_us` →
//!   `aurora_serve_latency_us`);
//! * [`Scope`] fields become the `model` / `layer` / `tile` / `phase`
//!   labels;
//! * counters and gauges are one sample line per scope under a shared
//!   `# TYPE` header;
//! * the log₂ [`Histogram`](crate::Histogram) renders as cumulative
//!   `_bucket{le="..."}` lines (bucket *i*'s inclusive upper bound is
//!   `2^i − 1`), a `+Inf` bucket, `_sum`, and `_count` — the standard
//!   Prometheus histogram triple.
//!
//! Counters keep their recorded names (no `_total` suffix is invented):
//! the names are already a stable cross-crate contract in
//! [`names`](crate::names).

use crate::metrics::MetricsSnapshot;
use crate::scope::Scope;
use std::fmt::Write;

/// Renders `snapshot` in the Prometheus text exposition format.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();

    let mut last: Option<&str> = None;
    for c in &snapshot.counters {
        type_header(&mut out, &mut last, &c.name, "counter");
        let _ = writeln!(
            out,
            "{}{} {}",
            metric_name(&c.name),
            labels(&c.scope, &[]),
            c.value
        );
    }

    let mut last: Option<&str> = None;
    for g in &snapshot.gauges {
        type_header(&mut out, &mut last, &g.name, "gauge");
        let _ = writeln!(
            out,
            "{}{} {}",
            metric_name(&g.name),
            labels(&g.scope, &[]),
            float(g.value)
        );
    }

    let mut last: Option<&str> = None;
    for h in &snapshot.histograms {
        type_header(&mut out, &mut last, &h.name, "histogram");
        let name = metric_name(&h.name);
        let mut cumulative = 0u64;
        for (i, &count) in h.histogram.buckets.iter().enumerate() {
            cumulative += count;
            let le = bucket_le(i);
            let _ = writeln!(
                out,
                "{name}_bucket{} {cumulative}",
                labels(&h.scope, &[("le", &le)])
            );
        }
        let _ = writeln!(
            out,
            "{name}_bucket{} {}",
            labels(&h.scope, &[("le", "+Inf")]),
            h.histogram.count
        );
        let _ = writeln!(
            out,
            "{name}_sum{} {}",
            labels(&h.scope, &[]),
            h.histogram.sum
        );
        let _ = writeln!(
            out,
            "{name}_count{} {}",
            labels(&h.scope, &[]),
            h.histogram.count
        );
    }

    out
}

/// Emits one `# TYPE` header per metric family. Snapshot entries are
/// name-sorted, so a family's scopes are contiguous and `last` suffices.
fn type_header<'a>(out: &mut String, last: &mut Option<&'a str>, name: &'a str, kind: &str) {
    if *last != Some(name) {
        let _ = writeln!(out, "# TYPE {} {kind}", metric_name(name));
        *last = Some(name);
    }
}

/// `aurora_`-prefixed name with every non-`[A-Za-z0-9_]` byte mapped to
/// `_` — a pure function, so identical names always collide identically.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("aurora_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' {
            c
        } else {
            '_'
        });
    }
    out
}

/// Inclusive upper bound of log₂ bucket `i` as an `le` label value.
fn bucket_le(i: usize) -> String {
    if i == 0 {
        "0".to_string()
    } else if i >= 64 {
        u64::MAX.to_string()
    } else {
        ((1u64 << i) - 1).to_string()
    }
}

/// `{model="GCN",layer="0",le="15"}` — scope labels in canonical order
/// plus any extra pairs; empty string for a root scope with no extras.
fn labels(scope: &Scope, extra: &[(&str, &str)]) -> String {
    let mut pairs: Vec<(&str, String)> = Vec::new();
    if let Some(m) = &scope.model {
        pairs.push(("model", m.clone()));
    }
    if let Some(l) = scope.layer {
        pairs.push(("layer", l.to_string()));
    }
    if let Some(t) = scope.tile {
        pairs.push(("tile", t.to_string()));
    }
    if let Some(p) = &scope.phase {
        pairs.push(("phase", p.clone()));
    }
    for (k, v) in extra {
        pairs.push((k, v.to_string()));
    }
    if pairs.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
    out
}

/// Prometheus label-value escaping: backslash, double quote, newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Gauge value formatting: shortest round-trip decimal, with the
/// Prometheus spellings for the non-finite cases.
fn float(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn names_sanitize_deterministically() {
        assert_eq!(metric_name("serve.latency_us"), "aurora_serve_latency_us");
        assert_eq!(
            metric_name("noc.route_table.builds"),
            "aurora_noc_route_table_builds"
        );
        assert_eq!(metric_name("a-b c"), "aurora_a_b_c");
    }

    #[test]
    fn label_values_escape() {
        let s = Scope::model("G\"C\\N");
        assert_eq!(labels(&s, &[]), "{model=\"G\\\"C\\\\N\"}");
    }

    #[test]
    fn bucket_bounds_are_inclusive_powers_of_two() {
        assert_eq!(bucket_le(0), "0");
        assert_eq!(bucket_le(1), "1");
        assert_eq!(bucket_le(4), "15");
        assert_eq!(bucket_le(64), u64::MAX.to_string());
    }

    /// Golden exposition: pins the exact text format. A diff here is a
    /// contract change for every scraper of `{"admin":"metrics"}` —
    /// update deliberately.
    #[test]
    fn golden_exposition_format() {
        let mut r = Registry::new();
        r.counter_add("serve.requests", &Scope::ROOT, 5);
        r.counter_add("serve.requests", &Scope::model("GCN").layer(0), 2);
        r.gauge_set("serve.inflight", &Scope::ROOT, 2.0);
        for v in [0u64, 1, 3, 8] {
            r.observe("serve.latency_us", &Scope::ROOT, v);
        }
        let expected = "\
# TYPE aurora_serve_requests counter
aurora_serve_requests 5
aurora_serve_requests{model=\"GCN\",layer=\"0\"} 2
# TYPE aurora_serve_inflight gauge
aurora_serve_inflight 2
# TYPE aurora_serve_latency_us histogram
aurora_serve_latency_us_bucket{le=\"0\"} 1
aurora_serve_latency_us_bucket{le=\"1\"} 2
aurora_serve_latency_us_bucket{le=\"3\"} 3
aurora_serve_latency_us_bucket{le=\"7\"} 3
aurora_serve_latency_us_bucket{le=\"15\"} 4
aurora_serve_latency_us_bucket{le=\"+Inf\"} 4
aurora_serve_latency_us_sum 12
aurora_serve_latency_us_count 4
";
        assert_eq!(render(&r.snapshot()), expected);
    }

    #[test]
    fn rendering_is_deterministic_across_recording_orders() {
        let mut a = Registry::new();
        a.counter_add("z", &Scope::ROOT, 1);
        a.counter_add("a", &Scope::model("GIN"), 2);
        a.observe("lat", &Scope::ROOT, 7);
        let mut b = Registry::new();
        b.observe("lat", &Scope::ROOT, 7);
        b.counter_add("a", &Scope::model("GIN"), 2);
        b.counter_add("z", &Scope::ROOT, 1);
        assert_eq!(render(&a.snapshot()), render(&b.snapshot()));
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render(&MetricsSnapshot::default()), "");
    }
}
