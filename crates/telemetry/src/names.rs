//! Canonical names of cross-crate metrics.
//!
//! Most probes name their metric at the call site; the constants here are
//! for metrics that are *written* by one crate and *asserted on* by
//! another (engine ↔ tests), where a typo'd string would silently record
//! into a fresh metric instead of failing to compile.

/// Route tables constructed (one per distinct `NocConfig` the engine's
/// traffic cache sees; a cached run builds each config's table once).
pub const NOC_ROUTE_TABLE_BUILDS: &str = "noc.route_table.builds";

/// Total `(src, dst)` pairs precomputed across all route-table builds
/// (k⁴ per build).
pub const NOC_ROUTE_TABLE_PAIRS: &str = "noc.route_table.pairs";

/// Tile traffic-profile cache hits: a later layer reused a tile's binned
/// unit-flit profile instead of re-binning its edges.
pub const NOC_TILE_PROFILE_HITS: &str = "noc.tile_profile.hits";

/// Tile traffic-profile cache misses: the O(E) counting pass ran.
pub const NOC_TILE_PROFILE_MISSES: &str = "noc.tile_profile.misses";

/// Simulation requests admitted by the serve front end (accepted for
/// execution or answered from cache; rejected requests count under
/// [`SERVE_REJECT_OVERLOADED`] / [`SERVE_ERRORS`] instead).
pub const SERVE_REQUESTS: &str = "serve.requests";

/// Requests answered from the content-addressed result cache — including
/// followers that joined an identical in-flight simulation — without a
/// fresh engine run.
pub const SERVE_CACHE_HITS: &str = "serve.cache.hits";

/// Requests that led a fresh engine run (cache leader).
pub const SERVE_CACHE_MISSES: &str = "serve.cache.misses";

/// Requests currently inside the service (queued or executing). Gauge.
pub const SERVE_INFLIGHT: &str = "serve.inflight";

/// End-to-end request latency in microseconds, observed on every return
/// path (hit, miss, and error alike). Log2 histogram. **Inclusive**: a
/// sample covers queue wait, engine execution, and cache bookkeeping —
/// subtract [`SERVE_QUEUE_WAIT_US`] to isolate service time.
pub const SERVE_LATENCY_US: &str = "serve.latency_us";

/// Time a led job spent on the admission queue before a worker picked it
/// up, in microseconds. Log2 histogram, observed once per executed job
/// on the leader's return path (cache hits and joins queue nothing and
/// record nothing; a leader that times out waiting loses its sample).
pub const SERVE_QUEUE_WAIT_US: &str = "serve.queue_wait_us";

/// Requests rejected at admission because the bounded queue was full.
pub const SERVE_REJECT_OVERLOADED: &str = "serve.reject.overloaded";

/// Requests whose caller stopped waiting (the simulation still completes
/// and warms the cache).
pub const SERVE_TIMEOUTS: &str = "serve.timeouts";

/// Requests that failed with a typed error (bad request or `SimError`).
pub const SERVE_ERRORS: &str = "serve.errors";

/// Every `serve.*` metric the service emits, for completeness tests: a
/// representative request mix must surface each of these in a snapshot,
/// so a typo'd or silently dropped probe fails a test instead of
/// shipping a dead dashboard panel.
pub const SERVE_ALL: &[&str] = &[
    SERVE_REQUESTS,
    SERVE_CACHE_HITS,
    SERVE_CACHE_MISSES,
    SERVE_INFLIGHT,
    SERVE_LATENCY_US,
    SERVE_QUEUE_WAIT_US,
    SERVE_REJECT_OVERLOADED,
    SERVE_TIMEOUTS,
    SERVE_ERRORS,
];
