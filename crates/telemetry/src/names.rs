//! Canonical names of cross-crate metrics.
//!
//! Most probes name their metric at the call site; the constants here are
//! for metrics that are *written* by one crate and *asserted on* by
//! another (engine ↔ tests), where a typo'd string would silently record
//! into a fresh metric instead of failing to compile.

/// Route tables constructed (one per distinct `NocConfig` the engine's
/// traffic cache sees; a cached run builds each config's table once).
pub const NOC_ROUTE_TABLE_BUILDS: &str = "noc.route_table.builds";

/// Total `(src, dst)` pairs precomputed across all route-table builds
/// (k⁴ per build).
pub const NOC_ROUTE_TABLE_PAIRS: &str = "noc.route_table.pairs";

/// Tile traffic-profile cache hits: a later layer reused a tile's binned
/// unit-flit profile instead of re-binning its edges.
pub const NOC_TILE_PROFILE_HITS: &str = "noc.tile_profile.hits";

/// Tile traffic-profile cache misses: the O(E) counting pass ran.
pub const NOC_TILE_PROFILE_MISSES: &str = "noc.tile_profile.misses";

/// Simulation requests admitted by the serve front end (accepted for
/// execution or answered from cache; rejected requests count under
/// [`SERVE_REJECT_OVERLOADED`] / [`SERVE_ERRORS`] instead).
pub const SERVE_REQUESTS: &str = "serve.requests";

/// Requests answered from the content-addressed result cache — including
/// followers that joined an identical in-flight simulation — without a
/// fresh engine run.
pub const SERVE_CACHE_HITS: &str = "serve.cache.hits";

/// Requests that led a fresh engine run (cache leader).
pub const SERVE_CACHE_MISSES: &str = "serve.cache.misses";

/// Requests currently inside the service (queued or executing). Gauge.
pub const SERVE_INFLIGHT: &str = "serve.inflight";

/// End-to-end request latency in microseconds, observed on every return
/// path (hit, miss, and error alike). Log2 histogram. **Inclusive**: a
/// sample covers queue wait, engine execution, and cache bookkeeping —
/// subtract [`SERVE_QUEUE_WAIT_US`] to isolate service time.
pub const SERVE_LATENCY_US: &str = "serve.latency_us";

/// Time a led job spent on the admission queue before a worker picked it
/// up, in microseconds. Log2 histogram, observed once per executed job
/// on the leader's return path (cache hits and joins queue nothing and
/// record nothing; a leader that times out waiting loses its sample).
pub const SERVE_QUEUE_WAIT_US: &str = "serve.queue_wait_us";

/// Requests rejected at admission because the bounded queue was full.
pub const SERVE_REJECT_OVERLOADED: &str = "serve.reject.overloaded";

/// Requests whose caller stopped waiting (the simulation still completes
/// and warms the cache).
pub const SERVE_TIMEOUTS: &str = "serve.timeouts";

/// Requests that failed with a typed error (bad request or `SimError`).
pub const SERVE_ERRORS: &str = "serve.errors";

/// Every `serve.*` metric the service emits, for completeness tests: a
/// representative request mix must surface each of these in a snapshot,
/// so a typo'd or silently dropped probe fails a test instead of
/// shipping a dead dashboard panel.
pub const SERVE_ALL: &[&str] = &[
    SERVE_REQUESTS,
    SERVE_CACHE_HITS,
    SERVE_CACHE_MISSES,
    SERVE_INFLIGHT,
    SERVE_LATENCY_US,
    SERVE_QUEUE_WAIT_US,
    SERVE_REJECT_OVERLOADED,
    SERVE_TIMEOUTS,
    SERVE_ERRORS,
];

/// Configured size of the work-stealing pool, counting the caller
/// thread (so ≥ 1 even when every region runs inline). Gauge at the
/// root scope.
pub const POOL_WORKERS: &str = "pool.workers";

/// Parallel regions executed since process start — including regions
/// the pool ran inline (single thread or single chunk). Gauge.
pub const POOL_REGIONS: &str = "pool.regions";

/// Deepest observed nesting of parallel regions on any one thread.
/// Gauge.
pub const POOL_MAX_DEPTH: &str = "pool.max_depth";

/// Region chunks executed, per worker (`phase="workerN"`; the caller
/// thread helping a region counts under `phase="caller"`). Gauge.
pub const POOL_TASKS_EXECUTED: &str = "pool.tasks.executed";

/// Chunks a thread took from *another* thread's deque rather than its
/// own. Same per-worker scoping as [`POOL_TASKS_EXECUTED`]. Gauge.
pub const POOL_TASKS_STOLEN: &str = "pool.tasks.stolen";

/// Wall microseconds a thread spent executing chunks (same per-worker
/// scoping). Gauge.
pub const POOL_BUSY_US: &str = "pool.busy_us";

/// Wall microseconds a worker spent parked waiting for work. The
/// caller's help-loop wait also counts here under `phase="caller"`.
/// Gauge.
pub const POOL_IDLE_US: &str = "pool.idle_us";

/// Every `pool.*` metric the pool-stats exporter emits, mirroring
/// [`SERVE_ALL`]: the completeness test drives a parallel workload and
/// asserts each name lands in the snapshot.
pub const POOL_ALL: &[&str] = &[
    POOL_WORKERS,
    POOL_REGIONS,
    POOL_MAX_DEPTH,
    POOL_TASKS_EXECUTED,
    POOL_TASKS_STOLEN,
    POOL_BUSY_US,
    POOL_IDLE_US,
];

/// Per-stage wall time from the host span profiler, exported with the
/// stage label as `phase`. Gauge, microseconds.
pub const HOST_SPAN_WALL_US: &str = "host.span.wall_us";

/// Per-stage span call count from the host span profiler. Gauge.
pub const HOST_SPAN_CALLS: &str = "host.span.calls";

/// Per-stage heap allocations attributed by the counting allocator
/// (`AURORA_ALLOC_PROFILE=1`). Gauge.
pub const HOST_ALLOC_COUNT: &str = "host.alloc.count";

/// Bytes requested by those allocations. Gauge.
pub const HOST_ALLOC_BYTES: &str = "host.alloc.bytes";

/// Every `host.*` metric the host-profile exporter emits, mirroring
/// [`SERVE_ALL`] for completeness tests.
pub const HOST_ALL: &[&str] = &[
    HOST_SPAN_WALL_US,
    HOST_SPAN_CALLS,
    HOST_ALLOC_COUNT,
    HOST_ALLOC_BYTES,
];
