//! Canonical names of cross-crate metrics.
//!
//! Most probes name their metric at the call site; the constants here are
//! for metrics that are *written* by one crate and *asserted on* by
//! another (engine ↔ tests), where a typo'd string would silently record
//! into a fresh metric instead of failing to compile.

/// Route tables constructed (one per distinct `NocConfig` the engine's
/// traffic cache sees; a cached run builds each config's table once).
pub const NOC_ROUTE_TABLE_BUILDS: &str = "noc.route_table.builds";

/// Total `(src, dst)` pairs precomputed across all route-table builds
/// (k⁴ per build).
pub const NOC_ROUTE_TABLE_PAIRS: &str = "noc.route_table.pairs";

/// Tile traffic-profile cache hits: a later layer reused a tile's binned
/// unit-flit profile instead of re-binning its edges.
pub const NOC_TILE_PROFILE_HITS: &str = "noc.tile_profile.hits";

/// Tile traffic-profile cache misses: the O(E) counting pass ran.
pub const NOC_TILE_PROFILE_MISSES: &str = "noc.tile_profile.misses";
