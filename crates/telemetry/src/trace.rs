//! Simulated-cycle timeline recorder emitting Chrome trace-event JSON.
//!
//! Timestamps are **simulated accelerator cycles**, not wall-clock: the
//! emitted `ts`/`dur` fields carry cycles in the trace's microsecond
//! slots, so one viewer-µs reads as one cycle in Perfetto or
//! `chrome://tracing`. Each named track becomes one thread (`tid`) of a
//! single process, labelled through `thread_name` metadata events and
//! ordered by registration through `thread_sort_index`.

use serde::Value;
use serde_json;

/// Canonical track names used by the simulator probes. Binaries and tests
/// reference these so the trace layout is stable.
pub mod tracks {
    /// Edge-update + aggregation pipeline stage.
    pub const SUB_A: &str = "Sub-accelerator A (edge update + aggregation)";
    /// Vertex-update pipeline stage.
    pub const SUB_B: &str = "Sub-accelerator B (vertex update)";
    /// On-chip network traffic.
    pub const NOC: &str = "NoC traffic";
    /// Off-chip DRAM channel activity.
    pub const DRAM: &str = "DRAM channels";
    /// Per-tile double-buffered pipeline (the overlap envelope).
    pub const TILES: &str = "Tile pipeline (double-buffer overlap)";
    /// Controller decisions: workflow generation, partition, mapping,
    /// reconfiguration.
    pub const CONTROLLER: &str = "Controller";
}

/// Argument value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    U64(u64),
    F64(f64),
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl ArgValue {
    fn to_value(&self) -> Value {
        match self {
            ArgValue::U64(u) => Value::UInt(*u),
            ArgValue::F64(f) => Value::Float(*f),
            ArgValue::Str(s) => Value::Str(s.clone()),
        }
    }
}

/// One recorded event (before rendering).
#[derive(Debug, Clone)]
enum Recorded {
    /// Complete event (`ph: "X"`).
    Span {
        track: usize,
        name: String,
        ts: u64,
        dur: u64,
        args: Vec<(String, ArgValue)>,
    },
    /// Instant event (`ph: "i"`).
    Instant { track: usize, name: String, ts: u64 },
    /// Counter sample (`ph: "C"`), rendered as a stacked series.
    Counter {
        track: usize,
        name: String,
        ts: u64,
        value: f64,
    },
}

impl Recorded {
    fn ts(&self) -> u64 {
        match self {
            Recorded::Span { ts, .. }
            | Recorded::Instant { ts, .. }
            | Recorded::Counter { ts, .. } => *ts,
        }
    }

    fn track(&self) -> usize {
        match self {
            Recorded::Span { track, .. }
            | Recorded::Instant { track, .. }
            | Recorded::Counter { track, .. } => *track,
        }
    }

    fn name(&self) -> &str {
        match self {
            Recorded::Span { name, .. }
            | Recorded::Instant { name, .. }
            | Recorded::Counter { name, .. } => name,
        }
    }

    /// Rank for the output total order: spans, then instants, then
    /// counter samples at the same `(ts, track)`.
    fn kind_rank(&self) -> u8 {
        match self {
            Recorded::Span { .. } => 0,
            Recorded::Instant { .. } => 1,
            Recorded::Counter { .. } => 2,
        }
    }
}

/// Accumulates spans / instants / counter samples on named tracks and
/// renders them as Chrome trace-event JSON.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    tracks: Vec<String>,
    events: Vec<Recorded>,
}

const PID: u64 = 1;

impl TraceBuffer {
    pub fn new() -> Self {
        Self::default()
    }

    /// A buffer with the canonical simulator tracks (see [`tracks`])
    /// pre-registered, so `tid` assignment does not depend on which
    /// track happens to record first — required for a deterministic
    /// trace layout when several threads share one buffer.
    pub fn with_canonical_tracks() -> Self {
        let mut t = Self::default();
        for name in [
            tracks::SUB_A,
            tracks::SUB_B,
            tracks::NOC,
            tracks::DRAM,
            tracks::TILES,
            tracks::CONTROLLER,
        ] {
            t.track_id(name);
        }
        t
    }

    /// Interns a track name; tid is registration order + 1.
    fn track_id(&mut self, name: &str) -> usize {
        if let Some(i) = self.tracks.iter().position(|t| t == name) {
            i
        } else {
            self.tracks.push(name.to_string());
            self.tracks.len() - 1
        }
    }

    /// Records a complete span of `dur` cycles starting at cycle `ts`.
    pub fn span(
        &mut self,
        track: &str,
        name: &str,
        ts: u64,
        dur: u64,
        args: Vec<(String, ArgValue)>,
    ) {
        let track = self.track_id(track);
        self.events.push(Recorded::Span {
            track,
            name: name.to_string(),
            ts,
            dur,
            args,
        });
    }

    /// Records an instant marker at cycle `ts`.
    pub fn instant(&mut self, track: &str, name: &str, ts: u64) {
        let track = self.track_id(track);
        self.events.push(Recorded::Instant {
            track,
            name: name.to_string(),
            ts,
        });
    }

    /// Records a counter sample at cycle `ts`.
    pub fn counter(&mut self, track: &str, name: &str, ts: u64, value: f64) {
        let track = self.track_id(track);
        self.events.push(Recorded::Counter {
            track,
            name: name.to_string(),
            ts,
            value,
        });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the Chrome trace-event JSON document (pretty-printed).
    ///
    /// Layout: a top-level object with `traceEvents` (metadata first,
    /// then events sorted by timestamp) and `displayTimeUnit`. Load the
    /// file in [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        let mut events: Vec<Value> = Vec::with_capacity(self.events.len() + 2 * self.tracks.len());

        events.push(meta_event(
            "process_name",
            PID,
            None,
            vec![("name".into(), Value::Str("aurora-sim".into()))],
        ));
        for (i, name) in self.tracks.iter().enumerate() {
            let tid = (i + 1) as u64;
            events.push(meta_event(
                "thread_name",
                PID,
                Some(tid),
                vec![("name".into(), Value::Str(name.clone()))],
            ));
            events.push(meta_event(
                "thread_sort_index",
                PID,
                Some(tid),
                vec![("sort_index".into(), Value::UInt(tid))],
            ));
        }

        // Total order over (ts, track, kind, name): the rendered
        // document is identical however recording threads interleaved.
        let mut sorted: Vec<&Recorded> = self.events.iter().collect();
        sorted.sort_by(|a, b| {
            (a.ts(), a.track(), a.kind_rank(), a.name()).cmp(&(
                b.ts(),
                b.track(),
                b.kind_rank(),
                b.name(),
            ))
        });
        for e in sorted {
            events.push(render_event(e));
        }

        let doc = Value::Map(vec![
            ("traceEvents".into(), Value::Seq(events)),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
            (
                "otherData".into(),
                Value::Map(vec![(
                    "time_unit".into(),
                    Value::Str("simulated accelerator cycles (1 viewer-us = 1 cycle)".into()),
                )]),
            ),
        ]);
        serde_json::to_string_pretty(&doc).expect("trace document serializes")
    }
}

fn meta_event(name: &str, pid: u64, tid: Option<u64>, args: Vec<(String, Value)>) -> Value {
    let mut fields = vec![
        ("name".into(), Value::Str(name.into())),
        ("ph".into(), Value::Str("M".into())),
        ("pid".into(), Value::UInt(pid)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".into(), Value::UInt(tid)));
    }
    fields.push(("args".into(), Value::Map(args)));
    Value::Map(fields)
}

fn render_event(e: &Recorded) -> Value {
    match e {
        Recorded::Span {
            track,
            name,
            ts,
            dur,
            args,
        } => {
            let mut fields = vec![
                ("name".into(), Value::Str(name.clone())),
                ("cat".into(), Value::Str("sim".into())),
                ("ph".into(), Value::Str("X".into())),
                ("ts".into(), Value::UInt(*ts)),
                ("dur".into(), Value::UInt(*dur)),
                ("pid".into(), Value::UInt(PID)),
                ("tid".into(), Value::UInt((*track + 1) as u64)),
            ];
            if !args.is_empty() {
                fields.push((
                    "args".into(),
                    Value::Map(
                        args.iter()
                            .map(|(k, v)| (k.clone(), v.to_value()))
                            .collect(),
                    ),
                ));
            }
            Value::Map(fields)
        }
        Recorded::Instant { track, name, ts } => Value::Map(vec![
            ("name".into(), Value::Str(name.clone())),
            ("cat".into(), Value::Str("sim".into())),
            ("ph".into(), Value::Str("i".into())),
            ("s".into(), Value::Str("t".into())),
            ("ts".into(), Value::UInt(*ts)),
            ("pid".into(), Value::UInt(PID)),
            ("tid".into(), Value::UInt((*track + 1) as u64)),
        ]),
        Recorded::Counter {
            track,
            name,
            ts,
            value,
        } => Value::Map(vec![
            ("name".into(), Value::Str(name.clone())),
            ("ph".into(), Value::Str("C".into())),
            ("ts".into(), Value::UInt(*ts)),
            ("pid".into(), Value::UInt(PID)),
            ("tid".into(), Value::UInt((*track + 1) as u64)),
            (
                "args".into(),
                Value::Map(vec![("value".into(), Value::Float(*value))]),
            ),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_intern_and_keep_registration_order() {
        let mut t = TraceBuffer::new();
        t.span(tracks::SUB_A, "a", 0, 10, vec![]);
        t.span(tracks::SUB_B, "b", 0, 10, vec![]);
        t.span(tracks::SUB_A, "a2", 10, 5, vec![]);
        assert_eq!(
            t.tracks,
            vec![tracks::SUB_A.to_string(), tracks::SUB_B.to_string()]
        );
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn chrome_json_is_valid_and_has_required_fields() {
        let mut t = TraceBuffer::new();
        t.span(
            tracks::SUB_A,
            "tile 0",
            100,
            50,
            vec![("vertices".into(), ArgValue::U64(64))],
        );
        t.instant(tracks::CONTROLLER, "reconfigure", 90);
        t.counter(tracks::DRAM, "bytes_in_flight", 100, 4096.0);

        let json = t.to_chrome_json();
        let doc: Value = serde_json::from_str(&json).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(Value::as_seq).unwrap();
        // 1 process_name + 3 tracks × 2 metadata + 3 events
        assert_eq!(events.len(), 1 + 3 * 2 + 3);

        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .expect("has a complete event");
        assert_eq!(span.get("ts").and_then(Value::as_u64), Some(100));
        assert_eq!(span.get("dur").and_then(Value::as_u64), Some(50));
        assert_eq!(span.get("pid").and_then(Value::as_u64), Some(1));
        assert!(span.get("tid").and_then(Value::as_u64).is_some());
        assert_eq!(
            span.get("args")
                .and_then(|a| a.get("vertices"))
                .and_then(Value::as_u64),
            Some(64)
        );
    }

    #[test]
    fn events_sorted_by_timestamp_in_output() {
        let mut t = TraceBuffer::new();
        t.span(tracks::SUB_A, "late", 100, 1, vec![]);
        t.span(tracks::SUB_A, "early", 5, 1, vec![]);
        let json = t.to_chrome_json();
        assert!(json.find("early").unwrap() < json.find("late").unwrap());
    }
}
