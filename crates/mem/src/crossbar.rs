//! The DRAM-interface ↔ PE-row crossbar (§III-A): distributes incoming
//! feature/weight streams to the rows of the PE array so multiple rows can
//! be filled concurrently.

use serde::{Deserialize, Serialize};

/// A `ports × rows` crossbar with per-port word-per-cycle throughput.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Crossbar {
    /// DRAM-side ports.
    ports: usize,
    /// PE-array rows it fans out to.
    rows: usize,
    /// Words moved (for energy accounting).
    pub words_moved: u64,
}

impl Crossbar {
    /// A crossbar with `ports` memory-side ports feeding `rows` PE rows.
    pub fn new(ports: usize, rows: usize) -> Self {
        assert!(ports > 0 && rows > 0);
        Self {
            ports,
            rows,
            words_moved: 0,
        }
    }

    /// Number of memory-side ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Cycles to distribute `words_per_row[i]` words to each PE row.
    ///
    /// Rows are served concurrently up to the port count; the cost is the
    /// optimal (longest-processing-time) schedule of the row transfers onto
    /// the ports, computed exactly as `max(max_row, ceil(total / ports))`
    /// — valid because transfers are word-preemptible streams.
    pub fn distribute(&mut self, words_per_row: &[usize]) -> u64 {
        assert!(
            words_per_row.len() <= self.rows,
            "more rows addressed than exist"
        );
        let total: u64 = words_per_row.iter().map(|&w| w as u64).sum();
        self.words_moved += total;
        let max_row = words_per_row.iter().copied().max().unwrap_or(0) as u64;
        max_row.max(total.div_ceil(self.ports as u64))
    }

    /// Cycles to gather results from the rows back to memory (same model).
    pub fn collect(&mut self, words_per_row: &[usize]) -> u64 {
        self.distribute(words_per_row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_distribution_parallelises() {
        let mut xb = Crossbar::new(4, 8);
        // 8 rows × 100 words over 4 ports = 200 cycles
        assert_eq!(xb.distribute(&[100; 8]), 200);
        assert_eq!(xb.words_moved, 800);
    }

    #[test]
    fn skewed_row_dominates() {
        let mut xb = Crossbar::new(4, 8);
        // one 1000-word row is the critical path
        assert_eq!(xb.distribute(&[1000, 10, 10, 10]), 1000);
    }

    #[test]
    fn empty_transfer_free() {
        let mut xb = Crossbar::new(2, 4);
        assert_eq!(xb.distribute(&[]), 0);
        assert_eq!(xb.distribute(&[0, 0]), 0);
    }

    #[test]
    fn single_port_serialises() {
        let mut xb = Crossbar::new(1, 4);
        assert_eq!(xb.distribute(&[10, 20, 30]), 60);
    }

    #[test]
    #[should_panic(expected = "more rows")]
    fn too_many_rows_rejected() {
        Crossbar::new(2, 2).distribute(&[1, 1, 1]);
    }
}
