//! Physical address decomposition.

use serde::{Deserialize, Serialize};

/// How addresses spread across banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Interleave {
    /// Consecutive bursts rotate across banks (bank-interleaved): streams
    /// exploit bank-level parallelism.
    BankInterleaved,
    /// A whole row fills before moving to the next bank (row-interleaved):
    /// streams maximise row-buffer hits on one bank at a time.
    RowInterleaved,
}

/// Bank/row decomposition of physical addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapping {
    /// Number of banks (across all ranks).
    pub banks: usize,
    /// Row size in bytes (row-buffer size per bank).
    pub row_bytes: usize,
    /// Interleave granularity in bytes (one burst).
    pub block_bytes: usize,
    /// Bank-spreading policy.
    pub interleave: Interleave,
}

impl AddressMapping {
    /// An 8-bank bank-interleaved device with 8 KB rows and 64 B bursts.
    pub fn default_ddr3() -> Self {
        Self {
            banks: 8,
            row_bytes: 8 * 1024,
            block_bytes: 64,
            interleave: Interleave::BankInterleaved,
        }
    }

    /// The row-interleaved variant of [`Self::default_ddr3`].
    pub fn row_interleaved_ddr3() -> Self {
        Self {
            interleave: Interleave::RowInterleaved,
            ..Self::default_ddr3()
        }
    }

    /// `(bank, row)` of a byte address.
    pub fn decode(&self, addr: u64) -> (usize, u64) {
        let block = addr / self.block_bytes as u64;
        let blocks_per_row = (self.row_bytes / self.block_bytes) as u64;
        match self.interleave {
            Interleave::BankInterleaved => {
                let bank = (block % self.banks as u64) as usize;
                let row = (block / self.banks as u64) / blocks_per_row;
                (bank, row)
            }
            Interleave::RowInterleaved => {
                let row_index = block / blocks_per_row;
                let bank = (row_index % self.banks as u64) as usize;
                let row = row_index / self.banks as u64;
                (bank, row)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_blocks_rotate_banks() {
        let m = AddressMapping::default_ddr3();
        let banks: Vec<usize> = (0..8u64).map(|i| m.decode(i * 64).0).collect();
        assert_eq!(banks, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn same_block_same_location() {
        let m = AddressMapping::default_ddr3();
        assert_eq!(m.decode(0), m.decode(63));
        assert_ne!(m.decode(0).0, m.decode(64).0);
    }

    #[test]
    fn row_interleave_keeps_a_row_on_one_bank() {
        let m = AddressMapping::row_interleaved_ddr3();
        // every burst of the first 8 KB lands on bank 0, row 0
        for blk in 0..128u64 {
            assert_eq!(m.decode(blk * 64), (0, 0));
        }
        // the next row goes to bank 1
        assert_eq!(m.decode(8 * 1024), (1, 0));
    }

    #[test]
    fn interleave_changes_streaming_behaviour() {
        use crate::dram::{Dram, DramRequest};
        use crate::timing::DramTiming;
        let run = |mapping: AddressMapping| {
            let mut d = Dram::new(DramTiming::ddr3_1600(), mapping);
            for i in 0..512u64 {
                d.submit(DramRequest {
                    id: i,
                    addr: i * 64,
                    is_write: false,
                    arrival: 0,
                });
            }
            d.run_to_completion()
        };
        let bank = run(AddressMapping::default_ddr3());
        let row = run(AddressMapping::row_interleaved_ddr3());
        // both serve a sequential stream well; row-interleave has strictly
        // more row hits, bank-interleave more bank parallelism
        assert!(row.hit_rate() >= bank.hit_rate());
        assert!(bank.finish_cycle <= row.finish_cycle + 200);
    }

    #[test]
    fn rows_advance_after_bank_sweep() {
        let m = AddressMapping::default_ddr3();
        let blocks_per_row = (m.row_bytes / m.block_bytes) as u64; // 128
                                                                   // bank 0's second row starts after banks*blocks_per_row blocks
        let addr = 8 * blocks_per_row * 64;
        let (bank, row) = m.decode(addr);
        assert_eq!(bank, 0);
        assert_eq!(row, 1);
    }
}
