//! DRAM timing parameters (memory-clock cycles).

use serde::{Deserialize, Serialize};

/// Bank/channel timing constraints of a DDRx device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTiming {
    /// Activate → column command (row open) delay.
    pub t_rcd: u64,
    /// Precharge delay (row close).
    pub t_rp: u64,
    /// Column access (CAS) latency.
    pub t_cl: u64,
    /// Data-burst occupancy of the shared data bus per access.
    pub t_burst: u64,
    /// Row cycle time: minimum spacing of activates to one bank.
    pub t_rc: u64,
    /// Refresh interval: one all-bank refresh is due every `t_refi` cycles.
    pub t_refi: u64,
    /// Refresh duration: the device is unavailable for `t_rfc` cycles.
    pub t_rfc: u64,
    /// Data-bus turnaround penalty when switching read↔write.
    pub t_turnaround: u64,
    /// Bytes transferred per burst.
    pub burst_bytes: u64,
    /// Memory-clock frequency in MHz (data rate already folded into
    /// `burst_bytes` / `t_burst`).
    pub clock_mhz: u64,
}

impl DramTiming {
    /// DDR3-1600-like device: the generation DRAMSim2 shipped configs for.
    pub fn ddr3_1600() -> Self {
        Self {
            t_rcd: 11,
            t_rp: 11,
            t_cl: 11,
            t_burst: 4,
            t_rc: 39,
            t_refi: 6240, // 7.8 µs @ 800 MHz
            t_rfc: 208,   // 4 Gb-class device
            t_turnaround: 7,
            burst_bytes: 64,
            clock_mhz: 800,
        }
    }

    /// Latency of a row-buffer hit (CAS + burst).
    pub fn hit_latency(&self) -> u64 {
        self.t_cl + self.t_burst
    }

    /// Latency of a row-buffer miss on an open bank (precharge + activate +
    /// CAS + burst).
    pub fn miss_latency(&self) -> u64 {
        self.t_rp + self.t_rcd + self.t_cl + self.t_burst
    }

    /// Latency when the bank is idle (activate + CAS + burst).
    pub fn closed_latency(&self) -> u64 {
        self.t_rcd + self.t_cl + self.t_burst
    }

    /// Peak bandwidth in bytes per memory cycle.
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.burst_bytes as f64 / self.t_burst as f64
    }

    /// Peak bandwidth in GB/s.
    pub fn peak_gbps(&self) -> f64 {
        self.peak_bytes_per_cycle() * self.clock_mhz as f64 * 1e6 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_latencies_ordered() {
        let t = DramTiming::ddr3_1600();
        assert!(t.hit_latency() < t.closed_latency());
        assert!(t.closed_latency() < t.miss_latency());
    }

    #[test]
    fn refresh_constants_sane() {
        let t = DramTiming::ddr3_1600();
        assert!(t.t_rfc < t.t_refi, "refresh must not dominate");
        // refresh overhead ≈ tRFC/tREFI ≈ 3.3%
        let overhead = t.t_rfc as f64 / t.t_refi as f64;
        assert!(overhead > 0.01 && overhead < 0.06, "overhead {overhead}");
    }

    #[test]
    fn ddr3_bandwidth_sane() {
        let t = DramTiming::ddr3_1600();
        // 64 B / 4 cycles @ 800 MHz = 12.8 GB/s per channel
        assert!((t.peak_gbps() - 12.8).abs() < 0.1, "got {}", t.peak_gbps());
    }
}
