//! Global SRAM scratchpad model.
//!
//! Aurora itself needs no inter-phase staging buffer ("the proposed design
//! can directly transfer the output feature vectors from sub-accelerator A
//! to sub-accelerator B without the need for any storage", §VI-B), but the
//! baseline accelerators do — this scratchpad models those global buffers
//! and their bandwidth/occupancy cost.

use serde::{Deserialize, Serialize};

/// A flat scratchpad with capacity, bandwidth, and access counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scratchpad {
    capacity: usize,
    /// Bytes per cycle of aggregate port bandwidth.
    bytes_per_cycle: usize,
    used: usize,
    pub read_bytes: u64,
    pub write_bytes: u64,
    /// Allocations rejected for lack of space (spill events — these turn
    /// into DRAM traffic in the baselines).
    pub spills: u64,
}

impl Scratchpad {
    /// A scratchpad of `capacity` bytes and `bytes_per_cycle` bandwidth.
    pub fn new(capacity: usize, bytes_per_cycle: usize) -> Self {
        assert!(bytes_per_cycle > 0);
        Self {
            capacity,
            bytes_per_cycle,
            used: 0,
            read_bytes: 0,
            write_bytes: 0,
            spills: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently resident.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Attempts to reserve `bytes`; on failure records a spill and returns
    /// `false`.
    pub fn allocate(&mut self, bytes: usize) -> bool {
        if self.used + bytes > self.capacity {
            self.spills += 1;
            false
        } else {
            self.used += bytes;
            true
        }
    }

    /// Releases `bytes`.
    ///
    /// # Panics
    /// Panics when freeing more than is resident.
    pub fn release(&mut self, bytes: usize) {
        assert!(bytes <= self.used, "releasing more than resident");
        self.used -= bytes;
    }

    /// Empties the scratchpad.
    pub fn reset(&mut self) {
        self.used = 0;
    }

    /// Cycles to read `bytes`.
    pub fn read(&mut self, bytes: u64) -> u64 {
        self.read_bytes += bytes;
        bytes.div_ceil(self.bytes_per_cycle as u64)
    }

    /// Cycles to write `bytes`.
    pub fn write(&mut self, bytes: u64) -> u64 {
        self.write_bytes += bytes;
        bytes.div_ceil(self.bytes_per_cycle as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_and_spills() {
        let mut s = Scratchpad::new(100, 8);
        assert!(s.allocate(80));
        assert!(!s.allocate(30));
        assert_eq!(s.spills, 1);
        assert_eq!(s.used(), 80);
        s.release(50);
        assert!(s.allocate(30));
    }

    #[test]
    fn bandwidth_cycles() {
        let mut s = Scratchpad::new(1024, 16);
        assert_eq!(s.read(64), 4);
        assert_eq!(s.write(65), 5);
        assert_eq!(s.read_bytes, 64);
        assert_eq!(s.write_bytes, 65);
    }

    #[test]
    #[should_panic(expected = "releasing more")]
    fn release_checked() {
        Scratchpad::new(10, 1).release(5);
    }

    #[test]
    fn reset_clears_occupancy_only() {
        let mut s = Scratchpad::new(10, 1);
        s.allocate(5);
        s.read(3);
        s.reset();
        assert_eq!(s.used(), 0);
        assert_eq!(s.read_bytes, 3);
    }
}
