//! Memory substrate: DRAM timing, memory controller, crossbar, SRAM.
//!
//! The paper obtains off-package communication time from DRAMSim2 (§VI-A).
//! This crate substitutes a DDR3-style bank-timing model with an FR-FCFS
//! scheduler — the same first-order behaviour DRAMSim2 exposes to the
//! accelerator simulator: row-buffer locality, bank-level parallelism and a
//! peak-bandwidth ceiling.
//!
//! It also provides:
//! * [`crossbar`] — the crossbar between the DRAM interface and PE rows
//!   (§III-A: "to increase memory bandwidth, we implement a crossbar
//!   between the DRAM interface and processing elements");
//! * [`sram`] — a simple global scratchpad model used by baseline
//!   accelerators that stage intermediate results between phases.

pub mod address;
pub mod controller;
pub mod crossbar;
pub mod dram;
pub mod multichannel;
pub mod sram;
pub mod timing;

pub use address::{AddressMapping, Interleave};
pub use controller::MemoryController;
pub use crossbar::Crossbar;
pub use dram::{Dram, DramRequest, DramStats};
pub use multichannel::MultiChannelDram;
pub use sram::Scratchpad;
pub use timing::DramTiming;
