//! Event-driven multi-channel DRAM: the accelerator's full off-package
//! interface (the analytic [`crate::MemoryController`] is its fast
//! approximation, validated against this engine).

use crate::address::AddressMapping;
use crate::dram::{Dram, DramRequest, DramStats};
use crate::timing::DramTiming;

/// `channels` independent DDR devices; consecutive bursts interleave
/// across channels.
#[derive(Debug, Clone)]
pub struct MultiChannelDram {
    channels: Vec<Dram>,
    burst_bytes: u64,
    next_id: u64,
}

impl MultiChannelDram {
    /// A `channels`-channel device with identical per-channel timing.
    pub fn new(channels: usize, timing: DramTiming, mapping: AddressMapping) -> Self {
        assert!(channels > 0, "need at least one channel");
        Self {
            channels: (0..channels).map(|_| Dram::new(timing, mapping)).collect(),
            burst_bytes: timing.burst_bytes,
            next_id: 0,
        }
    }

    /// DDR3-1600 channels with the default mapping.
    pub fn ddr3(channels: usize) -> Self {
        Self::new(
            channels,
            DramTiming::ddr3_1600(),
            AddressMapping::default_ddr3(),
        )
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// The channel a byte address maps to (burst-granularity interleave).
    pub fn channel_of(&self, addr: u64) -> usize {
        ((addr / self.burst_bytes) % self.channels.len() as u64) as usize
    }

    /// Queues one burst-sized access.
    pub fn submit(&mut self, addr: u64, is_write: bool, arrival: u64) {
        let ch = self.channel_of(addr);
        // strip the channel bits so each device sees a dense local space
        let blocks = addr / self.burst_bytes;
        let local =
            (blocks / self.channels.len() as u64) * self.burst_bytes + addr % self.burst_bytes;
        self.channels[ch].submit(DramRequest {
            id: self.next_id,
            addr: local,
            is_write,
            arrival,
        });
        self.next_id += 1;
    }

    /// Queues a contiguous byte range as burst accesses.
    pub fn submit_range(&mut self, start: u64, bytes: u64, is_write: bool, arrival: u64) {
        let mut addr = start - start % self.burst_bytes;
        let end = start + bytes;
        while addr < end {
            self.submit(addr, is_write, arrival);
            addr += self.burst_bytes;
        }
    }

    /// Services everything; returns `(makespan, per-channel stats)` —
    /// the makespan is the slowest channel's finish cycle.
    pub fn run_to_completion(&mut self) -> (u64, Vec<DramStats>) {
        let stats: Vec<DramStats> = self
            .channels
            .iter_mut()
            .map(|c| c.run_to_completion())
            .collect();
        let makespan = stats.iter().map(|s| s.finish_cycle).max().unwrap_or(0);
        (makespan, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_interleave_is_balanced() {
        let mut d = MultiChannelDram::ddr3(4);
        d.submit_range(0, 64 * 1024, false, 0);
        let (_, stats) = d.run_to_completion();
        let counts: Vec<u64> = stats.iter().map(|s| s.requests()).collect();
        assert_eq!(counts.iter().sum::<u64>(), 1024);
        for c in &counts {
            assert_eq!(*c, 256, "even spread expected: {counts:?}");
        }
    }

    #[test]
    fn more_channels_shorten_makespan() {
        let run = |ch: usize| {
            let mut d = MultiChannelDram::ddr3(ch);
            d.submit_range(0, 256 * 1024, false, 0);
            d.run_to_completion().0
        };
        let one = run(1);
        let four = run(4);
        assert!(
            (four as f64) < one as f64 / 2.5,
            "4-channel {four} not ≪ 1-channel {one}"
        );
    }

    #[test]
    fn unaligned_ranges_round_to_bursts() {
        let mut d = MultiChannelDram::ddr3(2);
        d.submit_range(30, 10, false, 0); // single burst covers it
        let (_, stats) = d.run_to_completion();
        assert_eq!(stats.iter().map(|s| s.requests()).sum::<u64>(), 1);
        let mut d = MultiChannelDram::ddr3(2);
        d.submit_range(60, 10, true, 0); // straddles a burst boundary
        let (_, stats) = d.run_to_completion();
        assert_eq!(stats.iter().map(|s| s.requests()).sum::<u64>(), 2);
    }

    /// The analytic controller's sequential-stream cycles must stay within
    /// a small factor of this event-driven engine.
    #[test]
    fn analytic_controller_tracks_event_engine() {
        use crate::controller::MemoryController;
        let bytes = 1u64 << 20;
        let mut d = MultiChannelDram::ddr3(4);
        d.submit_range(0, bytes, false, 0);
        let (makespan, _) = d.run_to_completion();
        let analytic = MemoryController::new(4).stream_cycles(bytes, true);
        let ratio = analytic as f64 / makespan as f64;
        assert!(
            (0.6..1.7).contains(&ratio),
            "analytic {analytic} vs engine {makespan} (ratio {ratio:.2})"
        );
    }
}
