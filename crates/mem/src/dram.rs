//! Event-driven DRAM bank model with FR-FCFS scheduling — the DRAMSim2
//! substitute.

use crate::address::AddressMapping;
use crate::timing::DramTiming;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One memory request (burst granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramRequest {
    pub id: u64,
    pub addr: u64,
    pub is_write: bool,
    /// Memory cycle at which the request reached the controller.
    pub arrival: u64,
}

/// Cumulative DRAM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    pub reads: u64,
    pub writes: u64,
    pub row_hits: u64,
    pub row_misses: u64,
    /// Accesses to banks with no open row.
    pub row_closed: u64,
    pub bytes: u64,
    /// Sum of (finish − arrival) over all requests.
    pub total_latency: u64,
    /// Cycle at which the last request finished.
    pub finish_cycle: u64,
}

impl DramStats {
    /// Total requests serviced.
    pub fn requests(&self) -> u64 {
        self.reads + self.writes
    }

    /// Mean request latency.
    pub fn avg_latency(&self) -> f64 {
        if self.requests() == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.requests() as f64
        }
    }

    /// Row-buffer hit rate.
    pub fn hit_rate(&self) -> f64 {
        if self.requests() == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.requests() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    /// Earliest cycle the next column command may issue (CAS pipelining:
    /// one burst per `t_burst`).
    cmd_ready_at: u64,
    /// Earliest cycle the next activate may issue (row cycle `t_rc`).
    act_ready_at: u64,
}

/// A single-channel DRAM device.
#[derive(Debug, Clone)]
pub struct Dram {
    timing: DramTiming,
    mapping: AddressMapping,
    banks: Vec<Bank>,
    bus_free_at: u64,
    /// Whether the last burst was a write (for turnaround penalties).
    last_was_write: Option<bool>,
    pending: VecDeque<DramRequest>,
    now: u64,
    stats: DramStats,
}

impl Dram {
    /// A device with the given timing and mapping.
    pub fn new(timing: DramTiming, mapping: AddressMapping) -> Self {
        Self {
            banks: vec![Bank::default(); mapping.banks],
            bus_free_at: 0,
            last_was_write: None,
            pending: VecDeque::new(),
            now: 0,
            stats: DramStats::default(),
            timing,
            mapping,
        }
    }

    /// A DDR3-1600 channel with the default mapping.
    pub fn ddr3() -> Self {
        Self::new(DramTiming::ddr3_1600(), AddressMapping::default_ddr3())
    }

    /// Current time in memory cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Queues a request.
    pub fn submit(&mut self, req: DramRequest) {
        self.pending.push_back(req);
    }

    /// Number of outstanding requests.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Pushes `t` past any all-bank refresh window it lands in: a refresh
    /// of `t_rfc` cycles begins every `t_refi` cycles and stalls the whole
    /// device.
    fn after_refresh(&self, t: u64) -> u64 {
        let refi = self.timing.t_refi;
        if refi == 0 || t < refi {
            return t; // the first refresh is due after one full interval
        }
        let phase = t % refi;
        if phase < self.timing.t_rfc {
            t - phase + self.timing.t_rfc
        } else {
            t
        }
    }

    /// FR-FCFS: among schedulable requests prefer ready row hits, then the
    /// oldest request. Returns the pending-queue index.
    fn pick(&self) -> Option<usize> {
        if self.pending.is_empty() {
            return None;
        }
        // earliest time any request could issue
        let mut best_hit: Option<(u64, usize)> = None; // (issue_time, idx)
        let mut best_any: Option<(u64, usize)> = None;
        for (i, r) in self.pending.iter().enumerate() {
            let (bank, row) = self.mapping.decode(r.addr);
            let b = self.banks[bank];
            let is_hit = b.open_row == Some(row);
            let issue = if is_hit {
                b.cmd_ready_at.max(r.arrival)
            } else {
                b.cmd_ready_at.max(b.act_ready_at).max(r.arrival)
            };
            if is_hit && best_hit.is_none_or(|(t, _)| issue < t) {
                best_hit = Some((issue, i));
            }
            if best_any.is_none_or(|(t, _)| issue < t) {
                best_any = Some((issue, i));
            }
        }
        // Prefer a row hit unless a non-hit could issue strictly earlier by
        // a full miss penalty (prevents starvation-style inversion).
        match (best_hit, best_any) {
            (Some((th, ih)), Some((ta, _))) if th <= ta + self.timing.miss_latency() => Some(ih),
            (_, Some((_, ia))) => Some(ia),
            _ => None,
        }
    }

    /// Services every queued request; returns the drained statistics view.
    pub fn run_to_completion(&mut self) -> DramStats {
        while let Some(idx) = self.pick() {
            let req = self.pending.remove(idx).unwrap();
            let (bank_id, row) = self.mapping.decode(req.addr);
            let bank = self.banks[bank_id];
            let is_hit = bank.open_row == Some(row);
            let issue = if is_hit {
                bank.cmd_ready_at.max(req.arrival)
            } else {
                bank.cmd_ready_at.max(bank.act_ready_at).max(req.arrival)
            };
            let (prep, kind) = match bank.open_row {
                Some(r) if r == row => (0, RowOutcome::Hit),
                Some(_) => (self.timing.t_rp + self.timing.t_rcd, RowOutcome::Miss),
                None => (self.timing.t_rcd, RowOutcome::Closed),
            };
            let issue = self.after_refresh(issue);
            let data_ready = issue + prep + self.timing.t_cl;
            // bus turnaround when the direction flips
            let turnaround = match self.last_was_write {
                Some(w) if w != req.is_write => self.timing.t_turnaround,
                _ => 0,
            };
            let burst_start = self.after_refresh(data_ready.max(self.bus_free_at + turnaround));
            let finish = burst_start + self.timing.t_burst;
            self.bus_free_at = finish;
            self.last_was_write = Some(req.is_write);
            let act_ready_at = if is_hit {
                bank.act_ready_at
            } else {
                // the activate issued at `issue + (t_rp if miss)` starts a
                // new row cycle
                issue + (prep - self.timing.t_rcd) + self.timing.t_rc
            };
            self.banks[bank_id] = Bank {
                open_row: Some(row),
                // next CAS to this bank pipelines one burst behind
                cmd_ready_at: burst_start,
                act_ready_at,
            };
            match kind {
                RowOutcome::Hit => self.stats.row_hits += 1,
                RowOutcome::Miss => self.stats.row_misses += 1,
                RowOutcome::Closed => self.stats.row_closed += 1,
            }
            if req.is_write {
                self.stats.writes += 1;
            } else {
                self.stats.reads += 1;
            }
            self.stats.bytes += self.timing.burst_bytes;
            self.stats.total_latency += finish - req.arrival;
            self.stats.finish_cycle = self.stats.finish_cycle.max(finish);
        }
        self.now = self.now.max(self.stats.finish_cycle);
        self.stats
    }

    /// Statistics so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// The device timing.
    pub fn timing(&self) -> &DramTiming {
        &self.timing
    }
}

enum RowOutcome {
    Hit,
    Miss,
    Closed,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_requests(n: u64, stride: u64) -> Vec<DramRequest> {
        (0..n)
            .map(|i| DramRequest {
                id: i,
                addr: i * stride,
                is_write: false,
                arrival: 0,
            })
            .collect()
    }

    #[test]
    fn single_request_closed_bank() {
        let mut d = Dram::ddr3();
        d.submit(DramRequest {
            id: 0,
            addr: 0,
            is_write: false,
            arrival: 0,
        });
        let s = d.run_to_completion();
        assert_eq!(s.requests(), 1);
        assert_eq!(s.row_closed, 1);
        assert_eq!(s.finish_cycle, d.timing().closed_latency());
    }

    #[test]
    fn sequential_stream_is_bandwidth_bound() {
        let mut d = Dram::ddr3();
        let n = 256;
        for r in seq_requests(n, 64) {
            d.submit(r);
        }
        let s = d.run_to_completion();
        assert_eq!(s.requests(), n);
        // After warm-up the bus is the bottleneck: ~t_burst per request.
        let lower = n * d.timing().t_burst;
        let upper = lower + 20 * d.timing().miss_latency();
        assert!(
            s.finish_cycle >= lower && s.finish_cycle <= upper,
            "finish {} not in [{lower}, {upper}]",
            s.finish_cycle
        );
        assert!(s.hit_rate() > 0.8, "streaming should mostly hit rows");
    }

    #[test]
    fn distinct_rows_all_miss() {
        let mut d = Dram::ddr3();
        // bank 0, a fresh row every access: FR-FCFS cannot create hits
        let row_span = 8u64 * 8 * 1024;
        for i in 0..64u64 {
            d.submit(DramRequest {
                id: i,
                addr: i * row_span,
                is_write: false,
                arrival: 0,
            });
        }
        let s = d.run_to_completion();
        assert_eq!(s.row_hits, 0);
        assert_eq!(s.row_misses + s.row_closed, 64);
    }

    #[test]
    fn frfcfs_reorders_for_row_hits() {
        let mut d = Dram::ddr3();
        // alternating rows on one bank: an in-order scheduler would miss
        // every time, FR-FCFS batches each row
        let row_span = 8u64 * 8 * 1024;
        for i in 0..64u64 {
            d.submit(DramRequest {
                id: i,
                addr: (i % 2) * row_span,
                is_write: false,
                arrival: 0,
            });
        }
        let s = d.run_to_completion();
        assert!(
            s.row_hits >= 60,
            "FR-FCFS should service row batches, hits = {}",
            s.row_hits
        );
    }

    #[test]
    fn random_traffic_slower_than_sequential() {
        let seq_finish = {
            let mut d = Dram::ddr3();
            for r in seq_requests(128, 64) {
                d.submit(r);
            }
            d.run_to_completion().finish_cycle
        };
        let rand_finish = {
            let mut d = Dram::ddr3();
            // one bank, a new row per access → t_rc-limited
            for r in seq_requests(128, 8 * 8 * 1024) {
                d.submit(r);
            }
            d.run_to_completion().finish_cycle
        };
        assert!(
            rand_finish > seq_finish,
            "random {rand_finish} !> sequential {seq_finish}"
        );
    }

    #[test]
    fn writes_counted_separately() {
        let mut d = Dram::ddr3();
        d.submit(DramRequest {
            id: 0,
            addr: 0,
            is_write: true,
            arrival: 0,
        });
        d.submit(DramRequest {
            id: 1,
            addr: 64,
            is_write: false,
            arrival: 0,
        });
        let s = d.run_to_completion();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes, 128);
    }

    #[test]
    fn refresh_adds_overhead_to_long_streams() {
        // a stream long enough to span several refresh intervals
        let n = 20_000u64;
        let with = {
            let mut d = Dram::ddr3();
            for r in seq_requests(n, 64) {
                d.submit(r);
            }
            d.run_to_completion().finish_cycle
        };
        let without = {
            let mut t = DramTiming::ddr3_1600();
            t.t_refi = 0; // disable refresh
            let mut d = Dram::new(t, AddressMapping::default_ddr3());
            for r in seq_requests(n, 64) {
                d.submit(r);
            }
            d.run_to_completion().finish_cycle
        };
        assert!(with > without, "refresh must cost something");
        let overhead = with as f64 / without as f64 - 1.0;
        assert!(overhead < 0.10, "refresh overhead {overhead} too large");
    }

    #[test]
    fn read_write_alternation_pays_turnaround() {
        let alternating = {
            let mut d = Dram::ddr3();
            for i in 0..512u64 {
                d.submit(DramRequest {
                    id: i,
                    addr: i * 64,
                    is_write: i % 2 == 0,
                    arrival: 0,
                });
            }
            d.run_to_completion().finish_cycle
        };
        let uniform = {
            let mut d = Dram::ddr3();
            for r in seq_requests(512, 64) {
                d.submit(r);
            }
            d.run_to_completion().finish_cycle
        };
        assert!(
            alternating > uniform,
            "alternating {alternating} !> uniform {uniform}"
        );
    }

    #[test]
    fn bank_parallelism_beats_single_bank() {
        // 8 requests across 8 banks vs 8 requests to one bank's rows
        let spread = {
            let mut d = Dram::ddr3();
            for i in 0..8u64 {
                d.submit(DramRequest {
                    id: i,
                    addr: i * 64,
                    is_write: false,
                    arrival: 0,
                });
            }
            d.run_to_completion().finish_cycle
        };
        let single = {
            let mut d = Dram::ddr3();
            // all bank 0, different rows
            let row_span = 8u64 * 8 * 1024;
            for i in 0..8u64 {
                d.submit(DramRequest {
                    id: i,
                    addr: i * row_span,
                    is_write: false,
                    arrival: 0,
                });
            }
            d.run_to_completion().finish_cycle
        };
        assert!(spread < single, "spread {spread} !< single-bank {single}");
    }
}
