//! Memory controller: the accelerator-facing DRAM interface.
//!
//! The accelerator-level simulators count *accesses* (the paper's
//! methodology: "the number of accesses to each memory hierarchy is used to
//! calculate the communication time") and convert them to cycles with the
//! analytic helpers here; the event-driven [`crate::Dram`] engine validates
//! those analytics (see tests).

use crate::dram::{Dram, DramRequest, DramStats};
use crate::timing::DramTiming;
use aurora_telemetry::{Scope, Telemetry};
use serde::{Deserialize, Serialize};

/// Access-counting view of off-chip traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficCounters {
    pub read_bytes: u64,
    pub write_bytes: u64,
    /// Bytes issued as sequential streams (row-buffer friendly).
    pub sequential_bytes: u64,
    /// Bytes issued as scattered accesses (row-buffer hostile).
    pub random_bytes: u64,
}

impl TrafficCounters {
    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Total DRAM accesses at burst granularity.
    pub fn accesses(&self, burst_bytes: u64) -> u64 {
        self.total_bytes().div_ceil(burst_bytes)
    }
}

/// Analytic + event-driven DRAM interface with `channels` channels.
#[derive(Debug, Clone)]
pub struct MemoryController {
    timing: DramTiming,
    channels: usize,
    /// Effective fraction of peak bandwidth achieved by sequential streams.
    seq_efficiency: f64,
    /// Effective fraction of peak bandwidth achieved by random bursts.
    rand_efficiency: f64,
    counters: TrafficCounters,
    next_id: u64,
    /// Observability handle (disabled by default: probes cost one branch).
    telemetry: Telemetry,
    /// Labels attributed to subsequent traffic (the engine narrows this to
    /// the current layer/tile).
    scope: Scope,
}

impl MemoryController {
    /// A controller over `channels` DDR3-1600 channels. The efficiency
    /// factors are calibrated against the event-driven engine (see the
    /// `analytic_matches_event_driven` test).
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0);
        Self {
            timing: DramTiming::ddr3_1600(),
            channels,
            seq_efficiency: 0.90,
            rand_efficiency: 0.35,
            counters: TrafficCounters::default(),
            next_id: 0,
            telemetry: Telemetry::disabled(),
            scope: Scope::ROOT,
        }
    }

    /// Attaches an observability handle; subsequent traffic is recorded
    /// as `dram.*` counters and a `dram.request_bytes` histogram under
    /// the current scope.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Sets the scope attributed to subsequent traffic.
    pub fn set_scope(&mut self, scope: Scope) {
        self.scope = scope;
    }

    fn probe(&self, counter: &str, bytes: u64, sequential: bool) {
        if !self.telemetry.is_enabled() || bytes == 0 {
            return;
        }
        self.telemetry.counter_add(counter, &self.scope, bytes);
        let locality = if sequential {
            "dram.sequential_bytes"
        } else {
            "dram.random_bytes"
        };
        self.telemetry.counter_add(locality, &self.scope, bytes);
        self.telemetry
            .observe("dram.request_bytes", &self.scope, bytes);
    }

    /// Device timing.
    pub fn timing(&self) -> &DramTiming {
        &self.timing
    }

    /// Peak bandwidth in bytes per memory cycle across all channels.
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        self.timing.peak_bytes_per_cycle() * self.channels as f64
    }

    /// Records a sequential read stream and returns its memory-cycle cost.
    pub fn stream_read(&mut self, bytes: u64) -> u64 {
        self.counters.read_bytes += bytes;
        self.counters.sequential_bytes += bytes;
        self.probe("dram.read_bytes", bytes, true);
        self.stream_cycles(bytes, true)
    }

    /// Records a sequential write stream.
    pub fn stream_write(&mut self, bytes: u64) -> u64 {
        self.counters.write_bytes += bytes;
        self.counters.sequential_bytes += bytes;
        self.probe("dram.write_bytes", bytes, true);
        self.stream_cycles(bytes, true)
    }

    /// Records scattered reads (graph-irregular gathers).
    pub fn random_read(&mut self, bytes: u64) -> u64 {
        self.counters.read_bytes += bytes;
        self.counters.random_bytes += bytes;
        self.probe("dram.read_bytes", bytes, false);
        self.stream_cycles(bytes, false)
    }

    /// Records scattered writes.
    pub fn random_write(&mut self, bytes: u64) -> u64 {
        self.counters.write_bytes += bytes;
        self.counters.random_bytes += bytes;
        self.probe("dram.write_bytes", bytes, false);
        self.stream_cycles(bytes, false)
    }

    /// Memory cycles to move `bytes` with the given locality.
    pub fn stream_cycles(&self, bytes: u64, sequential: bool) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let eff = if sequential {
            self.seq_efficiency
        } else {
            self.rand_efficiency
        };
        let cycles = bytes as f64 / (self.peak_bytes_per_cycle() * eff);
        cycles.ceil() as u64 + self.timing.closed_latency()
    }

    /// Converts memory cycles to accelerator cycles at `accel_mhz`.
    pub fn to_accel_cycles(&self, mem_cycles: u64, accel_mhz: u64) -> u64 {
        ((mem_cycles as u128 * accel_mhz as u128).div_ceil(self.timing.clock_mhz as u128)) as u64
    }

    /// Cumulative traffic counters.
    pub fn counters(&self) -> TrafficCounters {
        self.counters
    }

    /// Runs an access trace through the event-driven engine (one channel)
    /// and returns its statistics — used to validate the analytic model.
    pub fn replay(&mut self, addrs: &[u64], is_write: bool) -> DramStats {
        let mut dram = Dram::new(self.timing, crate::address::AddressMapping::default_ddr3());
        for &addr in addrs {
            dram.submit(DramRequest {
                id: self.next_id,
                addr,
                is_write,
                arrival: 0,
            });
            self.next_id += 1;
        }
        dram.run_to_completion()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut mc = MemoryController::new(1);
        mc.stream_read(1000);
        mc.stream_write(500);
        mc.random_read(200);
        let c = mc.counters();
        assert_eq!(c.read_bytes, 1200);
        assert_eq!(c.write_bytes, 500);
        assert_eq!(c.sequential_bytes, 1500);
        assert_eq!(c.random_bytes, 200);
        assert_eq!(c.total_bytes(), 1700);
        assert_eq!(c.accesses(64), 27);
    }

    #[test]
    fn telemetry_mirrors_counters() {
        let mut mc = MemoryController::new(2);
        let t = Telemetry::enabled();
        mc.attach_telemetry(t.clone());
        mc.set_scope(Scope::model("GCN").layer(0));
        mc.stream_read(1000);
        mc.random_read(200);
        mc.set_scope(Scope::model("GCN").layer(1));
        mc.stream_write(500);
        let snap = t.snapshot();
        assert_eq!(snap.counter_total("dram.read_bytes"), 1200);
        assert_eq!(snap.counter_total("dram.write_bytes"), 500);
        assert_eq!(snap.counter_total("dram.sequential_bytes"), 1500);
        assert_eq!(snap.counter_total("dram.random_bytes"), 200);
        assert_eq!(
            snap.counter_at("dram.write_bytes", &Scope::model("GCN").layer(1)),
            Some(500)
        );
        // telemetry mirrors, never replaces, the plain counters
        assert_eq!(mc.counters().total_bytes(), 1700);
    }

    #[test]
    fn detached_controller_records_nothing() {
        let mut mc = MemoryController::new(1);
        mc.stream_read(64);
        // no handle attached: the default telemetry is disabled
        assert!(!Telemetry::disabled().is_enabled());
    }

    #[test]
    fn random_slower_than_sequential() {
        let mc = MemoryController::new(1);
        let n = 1 << 20;
        assert!(mc.stream_cycles(n, false) > 2 * mc.stream_cycles(n, true));
    }

    #[test]
    fn more_channels_faster() {
        let one = MemoryController::new(1);
        let four = MemoryController::new(4);
        let n = 1 << 22;
        assert!(four.stream_cycles(n, true) < one.stream_cycles(n, true) / 2);
    }

    #[test]
    fn zero_bytes_free() {
        let mc = MemoryController::new(2);
        assert_eq!(mc.stream_cycles(0, true), 0);
    }

    #[test]
    fn clock_conversion() {
        let mc = MemoryController::new(1);
        // 800 memory cycles @ 800 MHz = 1 µs = 700 accel cycles @ 700 MHz
        assert_eq!(mc.to_accel_cycles(800, 700), 700);
    }

    /// The analytic sequential-stream model must agree with the
    /// event-driven engine within ~25 %.
    #[test]
    fn analytic_matches_event_driven() {
        let mut mc = MemoryController::new(1);
        let bursts = 2048u64;
        let addrs: Vec<u64> = (0..bursts).map(|i| i * 64).collect();
        let stats = mc.replay(&addrs, false);
        let analytic = mc.stream_cycles(bursts * 64, true);
        let measured = stats.finish_cycle;
        let ratio = analytic as f64 / measured as f64;
        assert!(
            (0.75..1.35).contains(&ratio),
            "analytic {analytic} vs measured {measured} (ratio {ratio:.2})"
        );
    }
}
