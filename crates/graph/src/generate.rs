//! Deterministic synthetic graph generators.
//!
//! Real-world GNN datasets follow heavy-tailed (power-law) degree
//! distributions — the property the degree-aware mapping (§IV) exploits
//! ("considering the power-law distribution of real-world graphs, each graph
//! partition could only have a few high-degree vertices"). The R-MAT
//! recursive generator reproduces that skew; Erdős–Rényi provides a
//! no-skew control, and a few regular toys support unit tests.

use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT quadrant probabilities. The classic skewed setting is
/// `a=0.57, b=0.19, c=0.19, d=0.05`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub d: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }
}

impl RmatParams {
    fn validate(&self) {
        let s = self.a + self.b + self.c + self.d;
        assert!(
            (s - 1.0).abs() < 1e-9,
            "RMAT quadrant probabilities must sum to 1 (got {s})"
        );
        assert!(self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0);
    }
}

/// Generates an R-MAT graph with `n` vertices (rounded up to a power of two
/// internally, then vertices folded back into range) and approximately
/// `target_edges` unique directed edges.
pub fn rmat(n: usize, target_edges: usize, params: RmatParams, seed: u64) -> Csr {
    params.validate();
    assert!(n > 0, "graph must have at least one vertex");
    let mut rng = StdRng::seed_from_u64(seed);
    let levels = (usize::BITS - (n - 1).leading_zeros()).max(1);
    let mut b = GraphBuilder::new(n);
    // Oversample: dedup collapses repeats, so draw extra.
    let draws = target_edges + target_edges / 4 + 16;
    for _ in 0..draws {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..levels {
            let r: f64 = rng.gen();
            let (du, dv) = if r < params.a {
                (0, 0)
            } else if r < params.a + params.b {
                (0, 1)
            } else if r < params.a + params.b + params.c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        let u = (u % n) as VertexId;
        let v = (v % n) as VertexId;
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Erdős–Rényi G(n, m): `m` unique directed edges chosen uniformly.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Csr {
    assert!(n > 1, "need at least two vertices");
    let max_edges = n * (n - 1);
    assert!(
        m <= max_edges,
        "cannot place {m} unique edges in {n} vertices"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let mut placed = std::collections::HashSet::with_capacity(m);
    while placed.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v && placed.insert((u, v)) {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// A directed ring 0→1→…→(n−1)→0.
pub fn ring(n: usize) -> Csr {
    assert!(n > 0);
    let mut b = GraphBuilder::new(n);
    for v in 0..n as u32 {
        b.add_edge(v, ((v as usize + 1) % n) as u32);
    }
    b.build()
}

/// A star with centre 0 and `n − 1` undirected spokes — the degenerate
/// high-degree-vertex case the degree-aware mapping targets.
pub fn star(n: usize) -> Csr {
    assert!(n > 0);
    let mut b = GraphBuilder::new(n);
    for v in 1..n as u32 {
        b.add_undirected_edge(0, v);
    }
    b.build()
}

/// A 2-D grid of `rows × cols` vertices with undirected 4-neighbour links.
pub fn grid(rows: usize, cols: usize) -> Csr {
    assert!(rows > 0 && cols > 0);
    let idx = |r: usize, c: usize| (r * cols + c) as u32;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_undirected_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                b.add_undirected_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    b.build()
}

/// A complete directed graph on `n` vertices (no self loops).
pub fn complete(n: usize) -> Csr {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            if u != v {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_is_deterministic() {
        let g1 = rmat(256, 1000, RmatParams::default(), 42);
        let g2 = rmat(256, 1000, RmatParams::default(), 42);
        assert_eq!(g1, g2);
        let g3 = rmat(256, 1000, RmatParams::default(), 43);
        assert_ne!(g1, g3);
    }

    #[test]
    fn rmat_hits_edge_target_roughly() {
        let g = rmat(1024, 5000, RmatParams::default(), 7);
        let m = g.num_edges();
        assert!(m > 3500 && m < 6500, "edge count {m} far from target 5000");
    }

    #[test]
    fn rmat_is_skewed_relative_to_er() {
        let n = 2048;
        let m = 16 * n;
        let r = rmat(n, m, RmatParams::default(), 1);
        let e = erdos_renyi(n, m, 1);
        assert!(
            r.max_degree() > 2 * e.max_degree(),
            "rmat max {} vs er max {}",
            r.max_degree(),
            e.max_degree()
        );
    }

    #[test]
    fn rmat_no_self_loops() {
        let g = rmat(128, 600, RmatParams::default(), 3);
        assert!(g.edges().all(|(u, v)| u != v));
    }

    #[test]
    fn erdos_renyi_exact_edge_count() {
        let g = erdos_renyi(100, 500, 9);
        assert_eq!(g.num_edges(), 500);
    }

    #[test]
    fn ring_degrees() {
        let g = ring(5);
        assert_eq!(g.num_edges(), 5);
        assert!((0..5).all(|v| g.degree(v) == 1));
        assert!(g.has_edge(4, 0));
    }

    #[test]
    fn star_centre_degree() {
        let g = star(10);
        assert_eq!(g.degree(0), 9);
        assert!((1..10).all(|v| g.degree(v) == 1));
        assert!(g.is_symmetric());
    }

    #[test]
    fn grid_edge_count() {
        let g = grid(3, 4);
        // undirected edges: 3*3 horizontal + 2*4 vertical = 17, doubled
        assert_eq!(g.num_edges(), 34);
        assert!(g.is_symmetric());
    }

    #[test]
    fn complete_graph() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 20);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rmat_rejects_bad_params() {
        rmat(
            16,
            10,
            RmatParams {
                a: 0.5,
                b: 0.5,
                c: 0.5,
                d: 0.5,
            },
            0,
        );
    }
}
