//! Incremental edge-list construction of [`Csr`] graphs.

use crate::csr::{Csr, VertexId};

/// Accumulates directed edges and finalises them into a [`Csr`].
///
/// Duplicate edges are collapsed; neighbour lists come out sorted, which the
/// CSR's binary-search `has_edge` relies on.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// A builder for a graph with exactly `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex count exceeds u32 range");
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of vertices this builder was created with.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges added so far (before dedup).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the directed edge `(u, v)`.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        assert!((u as usize) < self.n, "source {u} out of range");
        assert!((v as usize) < self.n, "destination {v} out of range");
        self.edges.push((u, v));
        self
    }

    /// Adds both `(u, v)` and `(v, u)`.
    pub fn add_undirected_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.add_edge(u, v);
        if u != v {
            self.add_edge(v, u);
        }
        self
    }

    /// Bulk-adds directed edges.
    pub fn extend_edges(
        &mut self,
        it: impl IntoIterator<Item = (VertexId, VertexId)>,
    ) -> &mut Self {
        for (u, v) in it {
            self.add_edge(u, v);
        }
        self
    }

    /// Finalises into a CSR, deduplicating and sorting neighbour lists.
    pub fn build(mut self) -> Csr {
        self.edges.sort_unstable();
        self.edges.dedup();
        let mut row_ptr = vec![0u32; self.n + 1];
        for &(u, _) in &self.edges {
            row_ptr[u as usize + 1] += 1;
        }
        for i in 0..self.n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = self.edges.into_iter().map(|(_, v)| v).collect();
        Csr::from_raw(row_ptr, col_idx)
    }

    /// Builds the symmetrised graph: every added edge is mirrored.
    pub fn build_symmetric(self) -> Csr {
        let n = self.n;
        let mut b = GraphBuilder::new(n);
        for (u, v) in &self.edges {
            b.add_edge(*u, *v);
            if u != v {
                b.add_edge(*v, *u);
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn builds_sorted_dedup() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(2, 1)
            .add_edge(0, 3)
            .add_edge(0, 1)
            .add_edge(0, 3);
        let g = b.build();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 3]);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
        assert_eq!(g.neighbors(2), &[1]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(3).build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn trailing_isolated_vertices_closed() {
        let mut b = GraphBuilder::new(10);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        for v in 1..10 {
            assert_eq!(g.degree(v), 0);
        }
    }

    #[test]
    fn undirected_edges_mirrored() {
        let mut b = GraphBuilder::new(3);
        b.add_undirected_edge(0, 2);
        let g = b.build();
        assert!(g.has_edge(0, 2) && g.has_edge(2, 0));
        assert!(g.is_symmetric());
    }

    #[test]
    fn symmetrise_after_the_fact() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build_symmetric();
        assert!(g.is_symmetric());
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn self_loop_added_once_undirected() {
        let mut b = GraphBuilder::new(2);
        b.add_undirected_edge(1, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(1, 1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        GraphBuilder::new(2).add_edge(0, 2);
    }

    proptest! {
        #[test]
        fn csr_roundtrips_edge_set(
            n in 1usize..40,
            raw in proptest::collection::vec((0u32..40, 0u32..40), 0..200)
        ) {
            let edges: Vec<(u32, u32)> = raw
                .into_iter()
                .map(|(u, v)| (u % n as u32, v % n as u32))
                .collect();
            let mut b = GraphBuilder::new(n);
            b.extend_edges(edges.iter().copied());
            let g = b.build();

            let mut expect: Vec<(u32, u32)> = edges;
            expect.sort_unstable();
            expect.dedup();
            let got: Vec<(u32, u32)> = g.edges().collect();
            prop_assert_eq!(got, expect);
        }

        #[test]
        fn neighbor_lists_sorted(
            n in 1usize..30,
            raw in proptest::collection::vec((0u32..30, 0u32..30), 0..150)
        ) {
            let mut b = GraphBuilder::new(n);
            b.extend_edges(raw.into_iter().map(|(u, v)| (u % n as u32, v % n as u32)));
            let g = b.build();
            for v in 0..n as u32 {
                let nb = g.neighbors(v);
                prop_assert!(nb.windows(2).all(|w| w[0] < w[1]));
            }
        }

        #[test]
        fn transpose_preserves_degree_sum(
            n in 1usize..30,
            raw in proptest::collection::vec((0u32..30, 0u32..30), 0..150)
        ) {
            let mut b = GraphBuilder::new(n);
            b.extend_edges(raw.into_iter().map(|(u, v)| (u % n as u32, v % n as u32)));
            let g = b.build();
            let t = g.transpose();
            prop_assert_eq!(g.num_edges(), t.num_edges());
            prop_assert_eq!(t.transpose(), g);
        }
    }
}
