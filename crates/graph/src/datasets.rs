//! The five-dataset catalog of the paper's evaluation (§VI-A).
//!
//! The raw datasets (Planetoid citation graphs, NELL, Reddit) are not
//! redistributable here, so each is *synthesised*: an R-MAT graph with the
//! published vertex count, edge count, feature width, class count and
//! feature density. Everything the cycle-level simulator consumes — degree
//! distribution shape, |V|, |E|, feature dimensions, sparsity — is matched;
//! the numeric feature values themselves never influence cycle counts.
//!
//! [`DatasetSpec::scaled`] produces a proportionally smaller instance so the
//! detailed cycle-level NoC simulation stays tractable for the largest
//! graphs (Reddit); the experiment harness documents which scale each figure
//! uses.

use crate::csr::Csr;
use crate::generate::{rmat, RmatParams};
use serde::{Deserialize, Serialize};

/// The evaluated datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    Cora,
    Citeseer,
    Pubmed,
    Nell,
    Reddit,
}

impl Dataset {
    /// All five, in the paper's presentation order.
    pub const ALL: [Dataset; 5] = [
        Dataset::Cora,
        Dataset::Citeseer,
        Dataset::Pubmed,
        Dataset::Nell,
        Dataset::Reddit,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Cora => "Cora",
            Dataset::Citeseer => "Citeseer",
            Dataset::Pubmed => "Pubmed",
            Dataset::Nell => "Nell",
            Dataset::Reddit => "Reddit",
        }
    }

    /// The published statistics for this dataset.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Cora => DatasetSpec {
                dataset: self,
                vertices: 2_708,
                edges: 10_556,
                feature_dim: 1_433,
                classes: 7,
                feature_density: 0.0127,
            },
            Dataset::Citeseer => DatasetSpec {
                dataset: self,
                vertices: 3_327,
                edges: 9_104,
                feature_dim: 3_703,
                classes: 6,
                feature_density: 0.0085,
            },
            Dataset::Pubmed => DatasetSpec {
                dataset: self,
                vertices: 19_717,
                edges: 88_648,
                feature_dim: 500,
                classes: 3,
                feature_density: 0.10,
            },
            Dataset::Nell => DatasetSpec {
                dataset: self,
                vertices: 65_755,
                edges: 251_550,
                feature_dim: 5_414,
                classes: 210,
                feature_density: 0.00011,
            },
            Dataset::Reddit => DatasetSpec {
                dataset: self,
                vertices: 232_965,
                edges: 114_615_892 / 2, // directed edge count of the symmetric graph / 2 per side
                feature_dim: 602,
                classes: 41,
                // §VI-D: "the density of feature vectors in Reddit (larger
                // than 50%) is higher than that of other datasets".
                feature_density: 0.516,
            },
        }
    }
}

/// Published statistics of a dataset, plus synthesis helpers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    pub dataset: Dataset,
    /// |V|.
    pub vertices: usize,
    /// Directed edge count.
    pub edges: usize,
    /// Input feature vector width.
    pub feature_dim: usize,
    /// Output classes (width of the final layer).
    pub classes: usize,
    /// Fraction of nonzero entries in the input feature matrix.
    pub feature_density: f64,
}

impl DatasetSpec {
    /// A proportionally scaled-down copy: vertex and edge counts divided by
    /// `factor` (feature dimensions unchanged — they set per-message volume,
    /// not graph size). `factor = 1` returns the full-size spec.
    pub fn scaled(&self, factor: usize) -> DatasetSpec {
        assert!(factor >= 1);
        DatasetSpec {
            vertices: (self.vertices / factor).max(8),
            edges: (self.edges / factor).max(8),
            ..*self
        }
    }

    /// Average degree implied by the published counts.
    pub fn avg_degree(&self) -> f64 {
        self.edges as f64 / self.vertices as f64
    }

    /// Synthesises the graph structure: a deterministic R-MAT instance with
    /// the spec's vertex and edge counts (seeded by the dataset name so each
    /// dataset gets a distinct but reproducible topology).
    pub fn synthesize(&self) -> Csr {
        let seed = self
            .dataset
            .name()
            .bytes()
            .fold(0xA02_u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64));
        rmat(self.vertices, self.edges, RmatParams::default(), seed)
    }

    /// Bytes of one double-precision feature vector.
    pub fn feature_bytes(&self) -> usize {
        self.feature_dim * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_complete_and_ordered() {
        let names: Vec<_> = Dataset::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names, ["Cora", "Citeseer", "Pubmed", "Nell", "Reddit"]);
    }

    #[test]
    fn specs_match_published_sizes() {
        let cora = Dataset::Cora.spec();
        assert_eq!(cora.vertices, 2708);
        assert_eq!(cora.feature_dim, 1433);
        assert_eq!(cora.classes, 7);
        let reddit = Dataset::Reddit.spec();
        assert!(
            reddit.feature_density > 0.5,
            "Reddit is >50% dense per §VI-D"
        );
        assert!(reddit.vertices > Dataset::Nell.spec().vertices);
    }

    #[test]
    fn scaling_reduces_proportionally() {
        let s = Dataset::Pubmed.spec();
        let t = s.scaled(10);
        assert_eq!(t.vertices, s.vertices / 10);
        assert_eq!(t.edges, s.edges / 10);
        assert_eq!(t.feature_dim, s.feature_dim);
    }

    #[test]
    fn scaling_never_degenerates() {
        let t = Dataset::Cora.spec().scaled(1_000_000);
        assert!(t.vertices >= 8 && t.edges >= 8);
    }

    #[test]
    fn synthesis_matches_spec_roughly() {
        let spec = Dataset::Cora.spec();
        let g = spec.synthesize();
        assert_eq!(g.num_vertices(), spec.vertices);
        let m = g.num_edges() as f64;
        let target = spec.edges as f64;
        assert!(
            (m - target).abs() / target < 0.3,
            "edges {m} vs target {target}"
        );
    }

    #[test]
    fn synthesis_is_deterministic_per_dataset() {
        let a = Dataset::Citeseer.spec().scaled(4).synthesize();
        let b = Dataset::Citeseer.spec().scaled(4).synthesize();
        assert_eq!(a, b);
        let c = Dataset::Cora.spec().scaled(4).synthesize();
        assert_ne!(a.num_vertices(), c.num_vertices());
    }

    #[test]
    fn synthesized_graphs_are_skewed() {
        let g = Dataset::Pubmed.spec().scaled(8).synthesize();
        assert!(
            g.max_degree() as f64 > 5.0 * g.avg_degree(),
            "expected power-law skew: max {} avg {}",
            g.max_degree(),
            g.avg_degree()
        );
    }
}
