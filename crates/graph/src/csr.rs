//! Compressed-sparse-row adjacency structure.
//!
//! Vertex identifiers are `u32` — the largest evaluated dataset (Reddit,
//! ~233 k vertices / ~11.6 M edges) fits comfortably, and the narrower index
//! type halves the memory traffic of the hot neighbour scans.

use serde::{Deserialize, Serialize};

/// Vertex identifier. The simulator never needs more than `u32::MAX` vertices.
pub type VertexId = u32;

/// A directed graph in compressed-sparse-row form.
///
/// `row_ptr` has `n + 1` entries; the out-neighbours of vertex `v` are
/// `col_idx[row_ptr[v] as usize .. row_ptr[v + 1] as usize]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    row_ptr: Vec<u32>,
    col_idx: Vec<VertexId>,
}

impl Csr {
    /// Builds a CSR directly from its raw arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent: `row_ptr` must be non-empty,
    /// monotonically non-decreasing, start at 0, end at `col_idx.len()`, and
    /// every column index must be `< n`.
    pub fn from_raw(row_ptr: Vec<u32>, col_idx: Vec<VertexId>) -> Self {
        assert!(!row_ptr.is_empty(), "row_ptr must have at least one entry");
        assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(
            *row_ptr.last().unwrap() as usize,
            col_idx.len(),
            "row_ptr must end at the edge count"
        );
        assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr must be monotone"
        );
        let n = (row_ptr.len() - 1) as u32;
        assert!(
            col_idx.iter().all(|&c| c < n),
            "column index out of range (n = {n})"
        );
        Self { row_ptr, col_idx }
    }

    /// [`Self::from_raw`] without the O(V+E) validation passes — the
    /// invariants are `debug_assert!`ed only. For hot paths that
    /// construct the arrays by direct surgery on an existing CSR and
    /// can prove the invariants structurally (e.g. the session delta
    /// path); everything else should pay for [`Self::from_raw`].
    ///
    /// Callers must uphold everything `from_raw` checks *plus* the
    /// sorted-neighbour-list invariant `has_edge` relies on.
    pub fn from_raw_unchecked(row_ptr: Vec<u32>, col_idx: Vec<VertexId>) -> Self {
        debug_assert!(!row_ptr.is_empty(), "row_ptr must have at least one entry");
        debug_assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        debug_assert_eq!(
            *row_ptr.last().unwrap() as usize,
            col_idx.len(),
            "row_ptr must end at the edge count"
        );
        debug_assert!(
            row_ptr.windows(2).all(|w| w[0] <= w[1]),
            "row_ptr must be monotone"
        );
        debug_assert!(
            col_idx.iter().all(|&c| (c as usize) < row_ptr.len() - 1),
            "column index out of range"
        );
        Self { row_ptr, col_idx }
    }

    /// Decomposes into `(row_ptr, col_idx)` — the inverse of
    /// [`Self::from_raw`]. Lets hot paths recycle a retired graph's
    /// allocations instead of freeing them.
    pub fn into_raw(self) -> (Vec<u32>, Vec<VertexId>) {
        (self.row_ptr, self.col_idx)
    }

    /// An empty graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Self {
            row_ptr: vec![0; n + 1],
            col_idx: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.col_idx.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        (self.row_ptr[v + 1] - self.row_ptr[v]) as usize
    }

    /// Out-neighbours of `v` as a slice.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.col_idx[self.row_ptr[v] as usize..self.row_ptr[v + 1] as usize]
    }

    /// The raw row-pointer array (length `n + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// The raw column-index array (length `m`).
    #[inline]
    pub fn col_idx(&self) -> &[VertexId] {
        &self.col_idx
    }

    /// Iterates over all directed edges `(src, dst)` in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as u32)
            .flat_map(move |v| self.neighbors(v).iter().map(move |&u| (v, u)))
    }

    /// Out-degree of every vertex.
    pub fn degrees(&self) -> Vec<u32> {
        self.row_ptr.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Maximum out-degree (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.row_ptr
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Whether edge `(u, v)` exists (binary search; neighbour lists are
    /// sorted by [`crate::GraphBuilder`]).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The transpose (reverse) graph: edge `(u, v)` becomes `(v, u)`.
    ///
    /// Uses the standard two-pass counting transpose, O(n + m).
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let mut counts = vec![0u32; n + 1];
        for &dst in &self.col_idx {
            counts[dst as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut cursor = counts;
        let mut col_idx = vec![0u32; self.num_edges()];
        for (src, dst) in self.edges() {
            let slot = &mut cursor[dst as usize];
            col_idx[*slot as usize] = src;
            *slot += 1;
        }
        // Each destination bucket was filled in ascending source order, so
        // the neighbour lists of the transpose are already sorted.
        Csr { row_ptr, col_idx }
    }

    /// Whether the adjacency is symmetric (every edge has its reverse).
    pub fn is_symmetric(&self) -> bool {
        self.edges().all(|(u, v)| self.has_edge(v, u))
    }

    /// Returns a copy with a self-loop added at every vertex that lacks one
    /// (GCN aggregates over `N(v) ∪ v`, Eq. 1).
    pub fn with_self_loops(&self) -> Csr {
        let n = self.num_vertices();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(self.num_edges() + n);
        row_ptr.push(0u32);
        for v in 0..n as u32 {
            let nbrs = self.neighbors(v);
            let mut inserted = false;
            for &u in nbrs {
                if !inserted && u >= v {
                    if u != v {
                        col_idx.push(v);
                    }
                    inserted = true;
                }
                col_idx.push(u);
            }
            if !inserted {
                col_idx.push(v);
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Csr { row_ptr, col_idx }
    }

    /// Extracts the subgraph induced on `vertices` (must be sorted,
    /// deduplicated and in range) as an owned graph with relabelled ids
    /// `0..vertices.len()`. Edges with either endpoint outside the set are
    /// dropped.
    ///
    /// # Panics
    /// Panics if `vertices` is unsorted, has duplicates, or leaves range.
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> Csr {
        let n = self.num_vertices() as u32;
        assert!(
            vertices.windows(2).all(|w| w[0] < w[1]),
            "vertex set must be sorted and unique"
        );
        if let Some(&last) = vertices.last() {
            assert!(last < n, "vertex {last} out of range");
        }
        let mut local = vec![u32::MAX; self.num_vertices()];
        for (i, &v) in vertices.iter().enumerate() {
            local[v as usize] = i as u32;
        }
        let mut b = crate::builder::GraphBuilder::new(vertices.len());
        for &v in vertices {
            for &u in self.neighbors(v) {
                if local[u as usize] != u32::MAX {
                    b.add_edge(local[v as usize], local[u as usize]);
                }
            }
        }
        b.build()
    }

    /// Vertex ids sorted by descending out-degree (ties broken by id for
    /// determinism). This is the sort at the heart of Algorithm 1's
    /// high-degree-vertex identification.
    pub fn vertices_by_degree_desc(&self) -> Vec<VertexId> {
        let mut ids: Vec<VertexId> = (0..self.num_vertices() as u32).collect();
        ids.sort_by_key(|&v| (std::cmp::Reverse(self.degree(v)), v));
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0
        Csr::from_raw(vec![0, 2, 3, 4], vec![1, 2, 2, 0])
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Csr::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn edges_iterator_matches_neighbors() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 0)]);
    }

    #[test]
    fn has_edge_binary_search() {
        let g = triangle();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn transpose_reverses_all_edges() {
        let g = triangle();
        let t = g.transpose();
        assert_eq!(t.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(t.has_edge(v, u), "missing reversed edge ({v},{u})");
        }
    }

    #[test]
    fn transpose_twice_is_identity() {
        let g = triangle();
        assert_eq!(g.transpose().transpose(), g);
    }

    #[test]
    fn self_loops_added_once() {
        let g = triangle();
        let s = g.with_self_loops();
        assert_eq!(s.num_edges(), g.num_edges() + 3);
        for v in 0..3 {
            assert!(s.has_edge(v, v));
        }
        // Idempotent.
        assert_eq!(s.with_self_loops(), s);
    }

    #[test]
    fn self_loops_keep_sorted_neighbors() {
        let g = Csr::from_raw(vec![0, 1, 2], vec![1, 0]);
        let s = g.with_self_loops();
        for v in 0..s.num_vertices() as u32 {
            let nb = s.neighbors(v);
            assert!(nb.windows(2).all(|w| w[0] < w[1]), "unsorted: {nb:?}");
        }
    }

    #[test]
    fn symmetric_detection() {
        let sym = Csr::from_raw(vec![0, 1, 2], vec![1, 0]);
        assert!(sym.is_symmetric());
        assert!(!triangle().is_symmetric());
    }

    #[test]
    fn degree_sort_descending_stable() {
        let g = triangle();
        let order = g.vertices_by_degree_desc();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = triangle(); // 0->1, 0->2, 1->2, 2->0
        let s = g.induced_subgraph(&[0, 2]);
        assert_eq!(s.num_vertices(), 2);
        // kept: 0->2 (as 0->1) and 2->0 (as 1->0); dropped: edges touching 1
        assert_eq!(s.num_edges(), 2);
        assert!(s.has_edge(0, 1) && s.has_edge(1, 0));
    }

    #[test]
    fn induced_subgraph_empty_set() {
        let s = triangle().induced_subgraph(&[]);
        assert_eq!(s.num_vertices(), 0);
        assert_eq!(s.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "sorted and unique")]
    fn induced_subgraph_rejects_unsorted() {
        triangle().induced_subgraph(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn from_raw_rejects_nonmonotone() {
        let _ = Csr::from_raw(vec![0, 2, 1, 4], vec![1, 2, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_raw_rejects_bad_column() {
        let _ = Csr::from_raw(vec![0, 1], vec![7]);
    }

    #[test]
    #[should_panic(expected = "edge count")]
    fn from_raw_rejects_bad_tail() {
        let _ = Csr::from_raw(vec![0, 3], vec![0]);
    }
}
