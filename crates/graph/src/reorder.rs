//! Vertex reordering — the locality preprocessing spatial accelerators
//! apply before tiling.
//!
//! Reordering relabels vertices so that capacity tiling (contiguous id
//! intervals) captures more edges inside tiles:
//!
//! * [`by_degree_desc`] — hubs first (groups the power-law head, the
//!   ordering R-MAT roughly produces naturally);
//! * [`bfs`] — breadth-first labelling from a seed (the classic
//!   locality/bandwidth-reduction ordering);
//! * [`apply`] — relabel a graph with any permutation.

use crate::csr::{Csr, VertexId};
use std::collections::VecDeque;

/// Relabels `g` with `perm`, where `perm[old] = new`. Returns the
/// isomorphic graph.
///
/// # Panics
/// Panics if `perm` is not a permutation of `0..n`.
pub fn apply(g: &Csr, perm: &[VertexId]) -> Csr {
    let n = g.num_vertices();
    assert_eq!(perm.len(), n, "permutation length mismatch");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!(
            (p as usize) < n && !std::mem::replace(&mut seen[p as usize], true),
            "not a permutation"
        );
    }
    let mut b = crate::builder::GraphBuilder::new(n);
    for (u, v) in g.edges() {
        b.add_edge(perm[u as usize], perm[v as usize]);
    }
    b.build()
}

/// The permutation placing vertices in descending degree order
/// (`perm[old] = new`).
pub fn by_degree_desc(g: &Csr) -> Vec<VertexId> {
    let order = g.vertices_by_degree_desc();
    let mut perm = vec![0; g.num_vertices()];
    for (new, &old) in order.iter().enumerate() {
        perm[old as usize] = new as VertexId;
    }
    perm
}

/// Breadth-first labelling from `seed`; unreachable vertices are appended
/// in id order.
pub fn bfs(g: &Csr, seed: VertexId) -> Vec<VertexId> {
    let n = g.num_vertices();
    assert!((seed as usize) < n, "seed out of range");
    let mut perm = vec![VertexId::MAX; n];
    let mut next = 0 as VertexId;
    let mut q = VecDeque::new();
    let mut push = |v: VertexId, perm: &mut Vec<VertexId>, q: &mut VecDeque<VertexId>| {
        if perm[v as usize] == VertexId::MAX {
            perm[v as usize] = next;
            next += 1;
            q.push_back(v);
        }
    };
    push(seed, &mut perm, &mut q);
    let mut cursor = 0;
    loop {
        while let Some(v) = q.pop_front() {
            for &u in g.neighbors(v) {
                push(u, &mut perm, &mut q);
            }
        }
        // next unvisited component
        while cursor < n && perm[cursor] != VertexId::MAX {
            cursor += 1;
        }
        if cursor == n {
            break;
        }
        push(cursor as VertexId, &mut perm, &mut q);
    }
    perm
}

/// Fraction of edges whose endpoints land in the same `tile_size`-vertex
/// interval — the quantity reordering tries to maximise.
pub fn intra_tile_edge_fraction(g: &Csr, tile_size: usize) -> f64 {
    assert!(tile_size > 0);
    if g.num_edges() == 0 {
        return 1.0;
    }
    let same = g
        .edges()
        .filter(|(u, v)| (*u as usize) / tile_size == (*v as usize) / tile_size)
        .count();
    same as f64 / g.num_edges() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use proptest::prelude::*;

    #[test]
    fn apply_preserves_structure() {
        let g = generate::rmat(40, 200, Default::default(), 3);
        let perm = by_degree_desc(&g);
        let h = apply(&g, &perm);
        assert_eq!(h.num_vertices(), g.num_vertices());
        assert_eq!(h.num_edges(), g.num_edges());
        // degree multiset preserved
        let mut dg = g.degrees();
        let mut dh = h.degrees();
        dg.sort_unstable();
        dh.sort_unstable();
        assert_eq!(dg, dh);
        // edges map exactly
        for (u, v) in g.edges() {
            assert!(h.has_edge(perm[u as usize], perm[v as usize]));
        }
    }

    #[test]
    fn degree_order_puts_hub_first() {
        let g = generate::star(12);
        let perm = by_degree_desc(&g);
        assert_eq!(perm[0], 0, "the hub keeps id 0");
        let h = apply(&g, &perm);
        assert_eq!(h.degree(0), 11);
    }

    #[test]
    fn bfs_labels_connected_ring_contiguously() {
        let g = generate::ring(10);
        let perm = bfs(&g, 3);
        assert_eq!(perm[3], 0);
        assert_eq!(perm[4], 1, "ring BFS follows the cycle");
        // valid permutation
        let mut p = perm.clone();
        p.sort_unstable();
        assert_eq!(p, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bfs_handles_disconnected_components() {
        // two disjoint rings stitched into one vertex set
        let mut b = crate::builder::GraphBuilder::new(8);
        for v in 0..4u32 {
            b.add_edge(v, (v + 1) % 4);
        }
        for v in 0..4u32 {
            b.add_edge(4 + v, 4 + (v + 1) % 4);
        }
        let g = b.build();
        let perm = bfs(&g, 0);
        let mut p = perm.clone();
        p.sort_unstable();
        assert_eq!(p, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn bfs_improves_intra_tile_locality_on_grids() {
        // a wide grid labelled column-major has poor row-interval locality;
        // BFS relabelling recovers it
        let g = generate::grid(4, 64);
        let shuffled = apply(&g, &by_degree_desc(&g)); // scramble ids
        let before = intra_tile_edge_fraction(&shuffled, 16);
        let relabelled = apply(&shuffled, &bfs(&shuffled, 0));
        let after = intra_tile_edge_fraction(&relabelled, 16);
        assert!(
            after > before,
            "BFS should improve locality: {after:.3} !> {before:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn apply_rejects_duplicates() {
        let g = generate::ring(3);
        apply(&g, &[0, 0, 1]);
    }

    proptest! {
        #[test]
        fn reordering_is_isomorphism(n in 2usize..50, seed in 0u64..10) {
            let g = generate::rmat(n, n * 3, Default::default(), seed);
            for perm in [by_degree_desc(&g), bfs(&g, 0)] {
                let h = apply(&g, &perm);
                prop_assert_eq!(h.num_edges(), g.num_edges());
                let mut dg = g.degrees();
                let mut dh = h.degrees();
                dg.sort_unstable();
                dh.sort_unstable();
                prop_assert_eq!(dg, dh);
            }
        }
    }
}
