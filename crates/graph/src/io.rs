//! Plain-text edge-list I/O.
//!
//! Format: one `src dst` pair of decimal vertex ids per line; `#`-prefixed
//! lines are comments. The first comment line written by [`write_edge_list`]
//! records the vertex count so isolated tail vertices survive a round trip;
//! [`read_edge_list`] also accepts files without it (vertex count inferred
//! as max id + 1).

use crate::builder::GraphBuilder;
use crate::csr::Csr;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes `g` as an edge list.
pub fn write_edge_list<W: Write>(g: &Csr, out: W) -> io::Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(w, "# vertices {}", g.num_vertices())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Reads an edge list produced by [`write_edge_list`] (or any `src dst`
/// file).
///
/// # Errors
/// Returns `InvalidData` on malformed lines or out-of-range ids.
pub fn read_edge_list<R: Read>(input: R) -> io::Result<Csr> {
    let r = BufReader::new(input);
    let mut declared_n: Option<usize> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id = 0u32;
    for (ln, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut it = rest.split_whitespace();
            if it.next() == Some("vertices") {
                if let Some(n) = it.next().and_then(|s| s.parse().ok()) {
                    declared_n = Some(n);
                }
            }
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<u32> {
            tok.and_then(|s| s.parse().ok()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed edge on line {}", ln + 1),
                )
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = declared_n.unwrap_or(if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    });
    if !edges.is_empty() && n <= max_id as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("vertex id {max_id} exceeds declared count {n}"),
        ));
    }
    let mut b = GraphBuilder::new(n);
    b.extend_edges(edges);
    Ok(b.build())
}

/// Convenience: write to a file path.
pub fn save(g: &Csr, path: impl AsRef<Path>) -> io::Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

/// Convenience: read from a file path.
pub fn load(path: impl AsRef<Path>) -> io::Result<Csr> {
    read_edge_list(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_preserves_graph() {
        let g = generate::rmat(100, 500, Default::default(), 6);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn roundtrip_keeps_isolated_tail_vertices() {
        let mut b = GraphBuilder::new(10);
        b.add_edge(0, 1);
        let g = b.build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(back.num_vertices(), 10);
    }

    #[test]
    fn reads_headerless_files() {
        let input = "0 1\n1 2\n# a comment\n2 0\n";
        let g = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(2, 0));
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(read_edge_list("0 x\n".as_bytes()).is_err());
        assert!(read_edge_list("5\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_id_beyond_declared_count() {
        let input = "# vertices 2\n0 5\n";
        assert!(read_edge_list(input.as_bytes()).is_err());
    }

    proptest! {
        #[test]
        fn any_generated_graph_roundtrips(n in 1usize..60, seed in 0u64..20) {
            let g = generate::rmat(n, n * 2, Default::default(), seed);
            let mut buf = Vec::new();
            write_edge_list(&g, &mut buf).unwrap();
            prop_assert_eq!(read_edge_list(&buf[..]).unwrap(), g);
        }
    }
}
