//! Dense feature matrices with controllable density.
//!
//! The paper evaluates in double precision (§VI-A) and explains Reddit's
//! reduced speedup by its > 50 % feature density (§VI-D). The simulator
//! mostly consumes the *shape* (rows × cols) and *density* of the matrix,
//! but the reference executor in `aurora-model` computes on the actual
//! values, so we store them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A row-major dense matrix of `f64` features (rows = vertices).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl FeatureMatrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// A random matrix where each entry is nonzero with probability
    /// `density`, drawn uniformly from `(-1, 1)`. Deterministic per seed.
    pub fn random(rows: usize, cols: usize, density: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| {
                if rng.gen::<f64>() < density {
                    rng.gen_range(-1.0..1.0)
                } else {
                    0.0
                }
            })
            .collect();
        Self { rows, cols, data }
    }

    /// Number of rows (vertices).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (feature width).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Sets entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Fraction of nonzero entries.
    pub fn density(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().filter(|&&x| x != 0.0).count() as f64 / self.data.len() as f64
    }

    /// Total bytes at double precision.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }

    /// Maximum absolute difference against another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &FeatureMatrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_values() {
        let m = FeatureMatrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.density(), 0.0);
        assert_eq!(m.bytes(), 96);
    }

    #[test]
    fn row_access_and_mutation() {
        let mut m = FeatureMatrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        m.row_mut(0)[1] = -1.0;
        assert_eq!(m.get(0, 1), -1.0);
    }

    #[test]
    fn random_density_close_to_target() {
        let m = FeatureMatrix::random(100, 100, 0.3, 7);
        let d = m.density();
        assert!((d - 0.3).abs() < 0.03, "density {d}");
    }

    #[test]
    fn random_is_deterministic() {
        let a = FeatureMatrix::random(10, 10, 0.5, 3);
        let b = FeatureMatrix::random(10, 10, 0.5, 3);
        assert_eq!(a, b);
        let c = FeatureMatrix::random(10, 10, 0.5, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn extreme_densities() {
        assert_eq!(FeatureMatrix::random(20, 20, 0.0, 1).density(), 0.0);
        assert_eq!(FeatureMatrix::random(20, 20, 1.0, 1).density(), 1.0);
    }

    #[test]
    fn max_abs_diff_detects_difference() {
        let a = FeatureMatrix::zeros(2, 2);
        let mut b = FeatureMatrix::zeros(2, 2);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b.set(1, 1, -2.5);
        assert_eq!(a.max_abs_diff(&b), 2.5);
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn from_vec_checks_shape() {
        FeatureMatrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn empty_matrix_density_is_zero() {
        let m = FeatureMatrix::zeros(0, 5);
        assert_eq!(m.density(), 0.0);
    }
}
