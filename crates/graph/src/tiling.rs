//! Capacity-driven subgraph tiling.
//!
//! §IV: "Typically, real-world graphs are large, exceeding the on-chip
//! memory capacity. We tile the large graph into several subgraphs based on
//! on-chip memory size. [...] the mapping algorithm will be performed before
//! the execution of each subgraph. After mapping a subgraph to the PE array,
//! the next subgraph starts being loaded from DRAM to overlap the latency."
//!
//! Tiles are contiguous vertex-id intervals, so a [`Subgraph`] borrows its
//! rows straight out of the parent CSR. Edges whose destination falls
//! outside the tile are *halo* edges: their endpoint features must be
//! fetched from DRAM (or another tile's residency window), which is what
//! drives the off-chip traffic model.

use crate::csr::{Csr, VertexId};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Parameters that decide how many vertices fit in one tile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TilingConfig {
    /// Total on-chip buffer bytes available for vertex features.
    pub onchip_bytes: usize,
    /// Feature vector width (elements).
    pub feature_dim: usize,
    /// Bytes per feature element (8 for the paper's double precision).
    pub bytes_per_element: usize,
    /// Fraction of the buffer reserved for resident vertex features (the
    /// rest holds weights, edge embeddings and intermediates).
    pub feature_fraction: f64,
}

impl TilingConfig {
    /// The paper's configuration: 1024 PEs × 100 KB distributed bank buffer,
    /// double precision, half the capacity budgeted to resident features.
    pub fn paper_default(feature_dim: usize) -> Self {
        Self {
            onchip_bytes: 1024 * 100 * 1024,
            feature_dim,
            bytes_per_element: 8,
            feature_fraction: 0.5,
        }
    }

    /// Maximum number of resident vertices per tile (at least 1).
    pub fn vertices_per_tile(&self) -> usize {
        let bytes_per_vertex = self.feature_dim * self.bytes_per_element;
        let budget = (self.onchip_bytes as f64 * self.feature_fraction) as usize;
        (budget / bytes_per_vertex.max(1)).max(1)
    }
}

/// A partition of a graph's vertices into contiguous interval tiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tiling {
    ranges: Vec<Range<u32>>,
}

impl Tiling {
    /// Tiles `g` under `cfg` into ⌈n / vertices_per_tile⌉ intervals.
    pub fn build(g: &Csr, cfg: &TilingConfig) -> Self {
        Self::with_tile_size(g, cfg.vertices_per_tile())
    }

    /// Tiles with an explicit tile size (used by tests and ablations).
    pub fn with_tile_size(g: &Csr, tile_size: usize) -> Self {
        assert!(tile_size > 0, "tile size must be positive");
        let n = g.num_vertices() as u32;
        let ts = tile_size as u32;
        let mut ranges = Vec::new();
        let mut start = 0u32;
        while start < n {
            let end = (start + ts).min(n);
            ranges.push(start..end);
            start = end;
        }
        if ranges.is_empty() {
            ranges.push(0..0);
        }
        Self { ranges }
    }

    /// Number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.ranges.len()
    }

    /// The vertex interval of tile `i`.
    pub fn range(&self, i: usize) -> Range<u32> {
        self.ranges[i].clone()
    }

    /// Iterates over the tiles of `g` as [`Subgraph`] views.
    pub fn subgraphs<'a>(&'a self, g: &'a Csr) -> impl Iterator<Item = Subgraph<'a>> + 'a {
        self.ranges.iter().enumerate().map(move |(i, r)| Subgraph {
            parent: g,
            index: i,
            range: r.clone(),
        })
    }

    /// The [`Subgraph`] view of tile `i` — the indexed counterpart of
    /// [`Self::subgraphs`], usable from parallel per-tile fan-outs.
    pub fn subgraph<'a>(&self, g: &'a Csr, i: usize) -> Subgraph<'a> {
        Subgraph {
            parent: g,
            index: i,
            range: self.ranges[i].clone(),
        }
    }

    /// The tile index owning vertex `v`.
    pub fn tile_of(&self, v: VertexId) -> usize {
        // Intervals are contiguous and sorted, so locate by division when
        // uniform; fall back to scan for the (rare) non-uniform final tile.
        self.ranges
            .binary_search_by(|r| {
                if v < r.start {
                    std::cmp::Ordering::Greater
                } else if v >= r.end {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .expect("vertex outside all tiles")
    }
}

/// A view of one tile: the subgraph induced on the sources in `range`.
#[derive(Debug, Clone)]
pub struct Subgraph<'a> {
    parent: &'a Csr,
    index: usize,
    range: Range<u32>,
}

impl<'a> Subgraph<'a> {
    /// Tile index within the tiling.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The global vertex interval owned by this tile.
    pub fn vertex_range(&self) -> Range<u32> {
        self.range.clone()
    }

    /// Number of owned vertices.
    pub fn num_vertices(&self) -> usize {
        (self.range.end - self.range.start) as usize
    }

    /// The parent graph.
    pub fn parent(&self) -> &'a Csr {
        self.parent
    }

    /// Whether a global vertex id is owned by this tile.
    pub fn owns(&self, v: VertexId) -> bool {
        self.range.contains(&v)
    }

    /// Out-neighbours (global ids) of an owned vertex.
    pub fn neighbors(&self, v: VertexId) -> &'a [VertexId] {
        assert!(self.owns(v), "vertex {v} not owned by tile {}", self.index);
        self.parent.neighbors(v)
    }

    /// All edges sourced in this tile, `(src, dst)` with global ids.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + 'a {
        let parent = self.parent;
        self.range
            .clone()
            .flat_map(move |v| parent.neighbors(v).iter().map(move |&u| (v, u)))
    }

    /// Number of edges sourced in this tile.
    pub fn num_edges(&self) -> usize {
        let rp = self.parent.row_ptr();
        (rp[self.range.end as usize] - rp[self.range.start as usize]) as usize
    }

    /// Number of edges whose destination lies outside the tile.
    pub fn num_halo_edges(&self) -> usize {
        self.edges().filter(|&(_, dst)| !self.owns(dst)).count()
    }

    /// Sorted unique external destinations (vertices whose features must be
    /// brought in from outside the tile's residency window).
    pub fn halo_vertices(&self) -> Vec<VertexId> {
        let mut h: Vec<VertexId> = self
            .edges()
            .filter(|&(_, dst)| !self.owns(dst))
            .map(|(_, dst)| dst)
            .collect();
        h.sort_unstable();
        h.dedup();
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use proptest::prelude::*;

    #[test]
    fn tile_count_rounds_up() {
        let g = generate::ring(10);
        let t = Tiling::with_tile_size(&g, 4);
        assert_eq!(t.num_tiles(), 3);
        assert_eq!(t.range(0), 0..4);
        assert_eq!(t.range(2), 8..10);
    }

    #[test]
    fn single_tile_when_capacity_suffices() {
        let g = generate::ring(10);
        let t = Tiling::with_tile_size(&g, 100);
        assert_eq!(t.num_tiles(), 1);
        let sg: Vec<_> = t.subgraphs(&g).collect();
        assert_eq!(sg[0].num_edges(), g.num_edges());
        assert_eq!(sg[0].num_halo_edges(), 0);
    }

    #[test]
    fn tiles_partition_vertices_and_edges() {
        let g = generate::rmat(200, 1200, Default::default(), 11);
        let t = Tiling::with_tile_size(&g, 37);
        let nv: usize = t.subgraphs(&g).map(|s| s.num_vertices()).sum();
        let ne: usize = t.subgraphs(&g).map(|s| s.num_edges()).sum();
        assert_eq!(nv, g.num_vertices());
        assert_eq!(ne, g.num_edges());
    }

    #[test]
    fn halo_edges_cross_tile_boundary() {
        let g = generate::ring(8);
        let t = Tiling::with_tile_size(&g, 4);
        let sgs: Vec<_> = t.subgraphs(&g).collect();
        // tile 0 = {0..4}: edge 3->4 crosses; tile 1 = {4..8}: edge 7->0.
        assert_eq!(sgs[0].num_halo_edges(), 1);
        assert_eq!(sgs[1].num_halo_edges(), 1);
        assert_eq!(sgs[0].halo_vertices(), vec![4]);
        assert_eq!(sgs[1].halo_vertices(), vec![0]);
    }

    #[test]
    fn tile_of_locates_owner() {
        let g = generate::ring(10);
        let t = Tiling::with_tile_size(&g, 3);
        assert_eq!(t.tile_of(0), 0);
        assert_eq!(t.tile_of(2), 0);
        assert_eq!(t.tile_of(3), 1);
        assert_eq!(t.tile_of(9), 3);
    }

    #[test]
    fn config_vertices_per_tile() {
        let cfg = TilingConfig {
            onchip_bytes: 1_000,
            feature_dim: 10,
            bytes_per_element: 8,
            feature_fraction: 0.8,
        };
        assert_eq!(cfg.vertices_per_tile(), 10); // 800 / 80
        let paper = TilingConfig::paper_default(1433);
        // 51.2 MB / (1433*8 B) ≈ 4576 vertices
        assert!(paper.vertices_per_tile() > 4000 && paper.vertices_per_tile() < 5000);
    }

    #[test]
    fn tiny_capacity_still_progresses() {
        let cfg = TilingConfig {
            onchip_bytes: 1,
            feature_dim: 1_000_000,
            bytes_per_element: 8,
            feature_fraction: 0.5,
        };
        assert_eq!(cfg.vertices_per_tile(), 1);
    }

    proptest! {
        #[test]
        fn tiling_partitions_any_graph(
            n in 1usize..120,
            ts in 1usize..50,
            seed in 0u64..20
        ) {
            let m = (n * 3).min(n * (n - 1).max(1));
            let g = generate::rmat(n, m, Default::default(), seed);
            let t = Tiling::with_tile_size(&g, ts);
            let nv: usize = t.subgraphs(&g).map(|s| s.num_vertices()).sum();
            prop_assert_eq!(nv, g.num_vertices());
            let ne: usize = t.subgraphs(&g).map(|s| s.num_edges()).sum();
            prop_assert_eq!(ne, g.num_edges());
            // every vertex is owned by exactly the tile tile_of reports
            for v in 0..n as u32 {
                let ti = t.tile_of(v);
                prop_assert!(t.range(ti).contains(&v));
            }
        }
    }
}
