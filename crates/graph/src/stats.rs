//! Degree statistics consumed by the degree-aware mapping (§IV) and the
//! experiment harness.

use crate::csr::{Csr, VertexId};
use serde::{Deserialize, Serialize};

/// Summary degree statistics of a graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    pub num_vertices: usize,
    pub num_edges: usize,
    pub max_degree: usize,
    pub avg_degree: f64,
    /// Sample standard deviation of the degree distribution.
    pub std_degree: f64,
    /// Gini coefficient of the degree distribution — 0 for perfectly uniform
    /// degrees, → 1 for extreme skew. Used to characterise how much the
    /// degree-aware mapping has to work with.
    pub gini: f64,
}

impl DegreeStats {
    /// Computes statistics from a graph's out-degrees.
    pub fn of(g: &Csr) -> Self {
        let mut degs = g.degrees();
        let n = degs.len();
        if n == 0 {
            return Self {
                num_vertices: 0,
                num_edges: 0,
                max_degree: 0,
                avg_degree: 0.0,
                std_degree: 0.0,
                gini: 0.0,
            };
        }
        let m = g.num_edges();
        let avg = m as f64 / n as f64;
        let var = degs
            .iter()
            .map(|&d| {
                let x = d as f64 - avg;
                x * x
            })
            .sum::<f64>()
            / n as f64;
        degs.sort_unstable();
        let gini = if m == 0 {
            0.0
        } else {
            // G = (2 Σ_i i·x_(i) / (n Σ x)) − (n+1)/n with 1-based ranks.
            let weighted: f64 = degs
                .iter()
                .enumerate()
                .map(|(i, &d)| (i as f64 + 1.0) * d as f64)
                .sum();
            (2.0 * weighted) / (n as f64 * m as f64) - (n as f64 + 1.0) / n as f64
        };
        Self {
            num_vertices: n,
            num_edges: m,
            max_degree: *degs.last().unwrap() as usize,
            avg_degree: avg,
            std_degree: var.sqrt(),
            gini,
        }
    }
}

/// The `k` highest-degree vertices, descending (ties by ascending id).
/// This is exactly the sort of Algorithm 1 lines 16-24.
pub fn top_k_by_degree(g: &Csr, k: usize) -> Vec<VertexId> {
    let mut ids = g.vertices_by_degree_desc();
    ids.truncate(k);
    ids
}

/// Degree histogram with power-of-two buckets: `hist[i]` counts vertices
/// with degree in `[2^i, 2^(i+1))`; bucket 0 counts degree 0 and 1.
pub fn degree_histogram(g: &Csr) -> Vec<usize> {
    let mut hist = Vec::new();
    for d in g.degrees() {
        let bucket = if d <= 1 {
            0
        } else {
            (usize::BITS - (d as usize).leading_zeros()) as usize - 1
        };
        if hist.len() <= bucket {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

/// Number of weakly connected components (edges treated as undirected).
pub fn connected_components(g: &Csr) -> usize {
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    // union-find over the edge set
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], v: u32) -> u32 {
        let mut root = v;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        // path compression
        let mut cur = v;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for (u, v) in g.edges() {
        let ru = find(&mut parent, u);
        let rv = find(&mut parent, v);
        if ru != rv {
            parent[ru as usize] = rv;
        }
    }
    (0..n as u32).filter(|&v| find(&mut parent, v) == v).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn uniform_ring_has_zero_gini() {
        let s = DegreeStats::of(&generate::ring(16));
        assert_eq!(s.max_degree, 1);
        assert!((s.avg_degree - 1.0).abs() < 1e-12);
        assert!(s.gini.abs() < 1e-9, "gini = {}", s.gini);
        assert!(s.std_degree.abs() < 1e-9);
    }

    #[test]
    fn star_is_highly_skewed() {
        let s = DegreeStats::of(&generate::star(64));
        assert_eq!(s.max_degree, 63);
        assert!(s.gini > 0.4, "gini = {}", s.gini);
    }

    #[test]
    fn empty_graph_stats() {
        let s = DegreeStats::of(&crate::Csr::empty(0));
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.gini, 0.0);
        let s = DegreeStats::of(&crate::Csr::empty(4));
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.gini, 0.0);
    }

    #[test]
    fn rmat_more_skewed_than_er() {
        let n = 1024;
        let m = 8 * n;
        let r = DegreeStats::of(&generate::rmat(n, m, Default::default(), 5));
        let e = DegreeStats::of(&generate::erdos_renyi(n, m, 5));
        assert!(r.gini > e.gini, "rmat {} vs er {}", r.gini, e.gini);
    }

    #[test]
    fn top_k_is_sorted_by_degree() {
        let g = generate::star(10);
        let top = top_k_by_degree(&g, 3);
        assert_eq!(top[0], 0);
        assert_eq!(top.len(), 3);
        let top_all = top_k_by_degree(&g, 100);
        assert_eq!(top_all.len(), 10, "k larger than n truncates to n");
    }

    #[test]
    fn component_counting() {
        assert_eq!(connected_components(&crate::Csr::empty(0)), 0);
        assert_eq!(connected_components(&crate::Csr::empty(5)), 5);
        assert_eq!(connected_components(&generate::ring(6)), 1);
        // two disjoint rings
        let mut b = crate::GraphBuilder::new(8);
        for v in 0..4u32 {
            b.add_edge(v, (v + 1) % 4);
            b.add_edge(4 + v, 4 + (v + 1) % 4);
        }
        assert_eq!(connected_components(&b.build()), 2);
    }

    #[test]
    fn histogram_buckets() {
        // star(9): centre degree 8 (bucket 3), 8 spokes degree 1 (bucket 0)
        let h = degree_histogram(&generate::star(9));
        assert_eq!(h[0], 8);
        assert_eq!(h[3], 1);
        assert_eq!(h.iter().sum::<usize>(), 9);
    }
}
