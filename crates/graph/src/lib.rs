//! Graph substrate for the Aurora GNN accelerator simulator.
//!
//! This crate provides everything the simulator needs to know about input
//! graphs:
//!
//! * [`Csr`] — a compressed-sparse-row adjacency structure, the on-device
//!   graph format assumed by the paper (§III-A: "graph data is stored using
//!   compressed sparse row (CSR) format").
//! * [`GraphBuilder`] — incremental edge-list construction with dedup and
//!   validation.
//! * [`generate`] — deterministic synthetic generators (R-MAT, Erdős–Rényi,
//!   regular toys) used to stand in for the published datasets.
//! * [`datasets`] — the five-dataset catalog of the paper's evaluation
//!   (Cora, Citeseer, Pubmed, Nell, Reddit) with the published vertex/edge/
//!   feature statistics, synthesised on demand.
//! * [`tiling`] — capacity-driven subgraph tiling (§IV: "we tile the large
//!   graph into several subgraphs based on on-chip memory size").
//! * [`stats`] — degree statistics consumed by the degree-aware mapping.
//! * [`io`] — plain-text edge-list read/write.
//! * [`features`] — dense feature matrices with controllable density
//!   (Reddit's > 50 % density is what limits Aurora's gains in §VI-D).
//!
//! ```
//! use aurora_graph::{generate, Tiling, DegreeStats};
//!
//! let g = generate::rmat(1_000, 8_000, Default::default(), 42);
//! let stats = DegreeStats::of(&g);
//! assert!(stats.max_degree as f64 > 3.0 * stats.avg_degree, "power-law skew");
//!
//! let tiling = Tiling::with_tile_size(&g, 256);
//! let edges: usize = tiling.subgraphs(&g).map(|t| t.num_edges()).sum();
//! assert_eq!(edges, g.num_edges());
//! ```

pub mod builder;
pub mod csr;
pub mod datasets;
pub mod features;
pub mod generate;
pub mod io;
pub mod reorder;
pub mod stats;
pub mod tiling;

pub use builder::GraphBuilder;
pub use csr::{Csr, VertexId};
pub use datasets::{Dataset, DatasetSpec};
pub use features::FeatureMatrix;
pub use stats::DegreeStats;
pub use tiling::{Subgraph, Tiling, TilingConfig};
