//! Functional-mode execution: run a GCN layer *through the mapped PE
//! array*, producing both the numeric output features and per-PE activity.
//!
//! This is the mid-fidelity layer between the numeric reference executors
//! (`aurora-model`) and the analytic performance engine (`engine`): every
//! vertex's aggregation executes on the PE its mapping assigned, using the
//! real reconfigurable-datapath model (`aurora-pe`), so
//!
//! * the accelerator's *results* can be checked bit-for-bit against the
//!   reference executor, and
//! * per-PE busy-cycle profiles expose the compute imbalance a mapping
//!   policy produces (the compute-side twin of the NoC hotspot metric).

use aurora_graph::{Csr, FeatureMatrix};
use aurora_mapping::VertexMapping;
use aurora_model::{linalg, Activation};
use aurora_pe::{Cycles, PeConfig, ProcessingElement};
use serde::{Deserialize, Serialize};

/// Per-PE activity of one functional run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionalProfile {
    /// Busy cycles per PE (length `k²`).
    pub busy: Vec<Cycles>,
    /// Total multiplies across the array.
    pub mults: u64,
    /// Total adds across the array.
    pub adds: u64,
}

impl FunctionalProfile {
    /// Busiest PE's cycles — the compute critical path of the phase.
    pub fn max_busy(&self) -> Cycles {
        self.busy.iter().copied().max().unwrap_or(0)
    }

    /// Busiest-to-mean ratio (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let n = self.busy.len().max(1);
        let total: u64 = self.busy.iter().sum();
        if total == 0 {
            return 1.0;
        }
        self.max_busy() as f64 / (total as f64 / n as f64)
    }
}

/// The output features plus the activity profile.
#[derive(Debug, Clone)]
pub struct FunctionalRun {
    pub output: FeatureMatrix,
    pub profile: FunctionalProfile,
}

/// Executes one GCN layer (Eq. 1, zero bias) on the mapped array: each
/// vertex's normalised aggregation runs on its assigned PE's datapath
/// (scalar mode + accumulate-bypass mode), and the vertex update (`W·m`,
/// ReLU) runs on the same PE — functionally identical to the reference
/// executor, with per-PE cycle attribution.
///
/// # Panics
/// Panics if `mapping` does not cover all of `g`'s vertices or the feature
/// width disagrees with `weight`'s shape (`f_out × f_in`, row-major).
pub fn run_gcn_layer(
    g: &Csr,
    x: &FeatureMatrix,
    weight: &[f64],
    f_out: usize,
    mapping: &VertexMapping,
    pe_cfg: PeConfig,
) -> FunctionalRun {
    let n = g.num_vertices();
    let f_in = x.cols();
    assert_eq!(weight.len(), f_out * f_in, "weight shape mismatch");
    assert_eq!(
        (mapping.range.start, mapping.range.end),
        (0, n as u32),
        "mapping must cover the whole graph"
    );
    let k2 = mapping.k * mapping.k;
    let mut pes: Vec<ProcessingElement> = (0..k2).map(|_| ProcessingElement::new(pe_cfg)).collect();
    let mut busy = vec![0u64; k2];
    let mut out = FeatureMatrix::zeros(n, f_out);

    let deg: Vec<f64> = (0..n as u32).map(|v| g.degree(v) as f64 + 1.0).collect();
    for v in 0..n as u32 {
        let pe_id = mapping.pe_of(v);
        let pe = &mut pes[pe_id];
        let mut m = vec![0.0; f_in];
        let s_self = 1.0 / (deg[v as usize] * deg[v as usize]).sqrt();
        let (scaled, c1) = pe.exec_scalar_mul(s_self, x.row(v as usize));
        let c2 = pe.exec_accumulate(&mut m, &scaled);
        busy[pe_id] += c1 + c2;
        for &u in g.neighbors(v) {
            let s = 1.0 / (deg[u as usize] * deg[v as usize]).sqrt();
            let (scaled, c1) = pe.exec_scalar_mul(s, x.row(u as usize));
            let c2 = pe.exec_accumulate(&mut m, &scaled);
            busy[pe_id] += c1 + c2;
        }
        let (mut y, c3) = pe.exec_matvec(weight, f_out, f_in, &m);
        let c4 = pe.exec_activate(&mut y, Activation::ReLU);
        busy[pe_id] += c3 + c4;
        out.row_mut(v as usize).copy_from_slice(&y);
    }

    let mults = pes.iter().map(|p| p.stats().mults).sum();
    let adds = pes.iter().map(|p| p.stats().adds).sum();
    FunctionalRun {
        output: out,
        profile: FunctionalProfile { busy, mults, adds },
    }
}

/// How the sum-aggregate family treats the centre vertex and the sum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SumAggregate {
    /// GIN: `(1 + ε)·x_v + Σ x_u`.
    GinLike { epsilon: f64 },
    /// CommNet: `Σ x_u` (no self term).
    PlainSum,
    /// GraphSAGE-Mean: `Σ x_u / |N(v)|`.
    Mean,
}

/// Executes one sum-aggregate-family layer (GIN / CommNet / GraphSAGE-Mean
/// — the Table II rows with a Null edge update and an `M×V` vertex update)
/// on the mapped array, with per-PE cycle attribution. No activation, per
/// Table II.
pub fn run_sum_aggregate_layer(
    g: &Csr,
    x: &FeatureMatrix,
    weight: &[f64],
    f_out: usize,
    kind: SumAggregate,
    mapping: &VertexMapping,
    pe_cfg: PeConfig,
) -> FunctionalRun {
    let n = g.num_vertices();
    let f_in = x.cols();
    assert_eq!(weight.len(), f_out * f_in, "weight shape mismatch");
    assert_eq!(
        (mapping.range.start, mapping.range.end),
        (0, n as u32),
        "mapping must cover the whole graph"
    );
    let k2 = mapping.k * mapping.k;
    let mut pes: Vec<ProcessingElement> = (0..k2).map(|_| ProcessingElement::new(pe_cfg)).collect();
    let mut busy = vec![0u64; k2];
    let mut out = FeatureMatrix::zeros(n, f_out);

    for v in 0..n as u32 {
        let pe_id = mapping.pe_of(v);
        let pe = &mut pes[pe_id];
        let mut m = vec![0.0; f_in];
        if let SumAggregate::GinLike { epsilon } = kind {
            let (scaled, c) = pe.exec_scalar_mul(1.0 + epsilon, x.row(v as usize));
            busy[pe_id] += c + pe.exec_accumulate(&mut m, &scaled);
        }
        let nbrs = g.neighbors(v);
        for &u in nbrs {
            busy[pe_id] += pe.exec_accumulate(&mut m, x.row(u as usize));
        }
        if kind == SumAggregate::Mean && !nbrs.is_empty() {
            let (scaled, c) = pe.exec_scalar_mul(1.0 / nbrs.len() as f64, &m);
            m = scaled;
            busy[pe_id] += c;
        }
        let (y, c) = pe.exec_matvec(weight, f_out, f_in, &m);
        busy[pe_id] += c;
        out.row_mut(v as usize).copy_from_slice(&y);
    }

    let mults = pes.iter().map(|p| p.stats().mults).sum();
    let adds = pes.iter().map(|p| p.stats().adds).sum();
    FunctionalRun {
        output: out,
        profile: FunctionalProfile { busy, mults, adds },
    }
}

/// Executes one vanilla-attention layer (Eq. 3) on the mapped array: the
/// per-edge dot-product coefficients use the MAC-chain mode, the scaled
/// mixing uses scalar mode, and the final SoftMax runs in the PPU —
/// the full A-GNN path through Fig. 6's configurations.
pub fn run_attention_layer(
    g: &Csr,
    x: &FeatureMatrix,
    weight: &[f64],
    f_out: usize,
    mapping: &VertexMapping,
    pe_cfg: PeConfig,
) -> FunctionalRun {
    let n = g.num_vertices();
    let f_in = x.cols();
    assert_eq!(weight.len(), f_out * f_in, "weight shape mismatch");
    assert_eq!(
        (mapping.range.start, mapping.range.end),
        (0, n as u32),
        "mapping must cover the whole graph"
    );
    let k2 = mapping.k * mapping.k;
    let mut pes: Vec<ProcessingElement> = (0..k2).map(|_| ProcessingElement::new(pe_cfg)).collect();
    let mut busy = vec![0u64; k2];
    let mut out = FeatureMatrix::zeros(n, f_out);

    for v in 0..n as u32 {
        let pe_id = mapping.pe_of(v);
        let pe = &mut pes[pe_id];
        let xv = x.row(v as usize).to_vec();
        let mut m = vec![0.0; f_in];
        for &u in g.neighbors(v) {
            let (coeff, c1) = pe.exec_dot(&xv, x.row(u as usize));
            let (scaled, c2) = pe.exec_scalar_mul(coeff, x.row(u as usize));
            let c3 = pe.exec_accumulate(&mut m, &scaled);
            busy[pe_id] += c1 + c2 + c3;
        }
        let (mut y, c4) = pe.exec_matvec(weight, f_out, f_in, &m);
        let c5 = pe.exec_activate(&mut y, Activation::Softmax);
        busy[pe_id] += c4 + c5;
        out.row_mut(v as usize).copy_from_slice(&y);
    }

    let mults = pes.iter().map(|p| p.stats().mults).sum();
    let adds = pes.iter().map(|p| p.stats().adds).sum();
    FunctionalRun {
        output: out,
        profile: FunctionalProfile { busy, mults, adds },
    }
}

/// Executes one G-GCN layer (Eq. 4) on the mapped array: the per-edge gate
/// (`σ(W_u·x_u + W_v·x_v)`) exercises the MAC chain, bypass-accumulate,
/// PPU-sigmoid and Hadamard paths in sequence — the full MP-GNN path.
#[allow(clippy::too_many_arguments)]
pub fn run_ggcn_layer(
    g: &Csr,
    x: &FeatureMatrix,
    w_u: &[f64],
    w_v: &[f64],
    weight: &[f64],
    f_out: usize,
    mapping: &VertexMapping,
    pe_cfg: PeConfig,
) -> FunctionalRun {
    let n = g.num_vertices();
    let f_in = x.cols();
    assert_eq!(w_u.len(), f_in * f_in, "W_u shape mismatch");
    assert_eq!(w_v.len(), f_in * f_in, "W_v shape mismatch");
    assert_eq!(weight.len(), f_out * f_in, "W shape mismatch");
    assert_eq!(
        (mapping.range.start, mapping.range.end),
        (0, n as u32),
        "mapping must cover the whole graph"
    );
    let k2 = mapping.k * mapping.k;
    let mut pes: Vec<ProcessingElement> = (0..k2).map(|_| ProcessingElement::new(pe_cfg)).collect();
    let mut busy = vec![0u64; k2];
    let mut out = FeatureMatrix::zeros(n, f_out);

    for v in 0..n as u32 {
        let pe_id = mapping.pe_of(v);
        let pe = &mut pes[pe_id];
        // W_v·x_v computed once and held in the reuse FIFO across v's edges
        let (gate_v, c0) = pe.exec_matvec(w_v, f_in, f_in, x.row(v as usize));
        busy[pe_id] += c0;
        let mut m = vec![0.0; f_in];
        for &u in g.neighbors(v) {
            let xu = x.row(u as usize);
            let (mut gate, c1) = pe.exec_matvec(w_u, f_in, f_in, xu);
            let c2 = pe.exec_accumulate(&mut gate, &gate_v);
            let c3 = pe.exec_activate(&mut gate, Activation::Sigmoid);
            let (masked, c4) = pe.exec_hadamard(&gate, xu);
            let c5 = pe.exec_accumulate(&mut m, &masked);
            busy[pe_id] += c1 + c2 + c3 + c4 + c5;
        }
        let (mut y, c6) = pe.exec_matvec(weight, f_out, f_in, &m);
        let c7 = pe.exec_activate(&mut y, Activation::ReLU);
        busy[pe_id] += c6 + c7;
        out.row_mut(v as usize).copy_from_slice(&y);
    }

    let mults = pes.iter().map(|p| p.stats().mults).sum();
    let adds = pes.iter().map(|p| p.stats().adds).sum();
    FunctionalRun {
        output: out,
        profile: FunctionalProfile { busy, mults, adds },
    }
}

/// Reference GCN layer (Eq. 1, zero bias) for comparison.
pub fn reference_gcn_layer(
    g: &Csr,
    x: &FeatureMatrix,
    weight: &[f64],
    f_out: usize,
) -> FeatureMatrix {
    let n = g.num_vertices();
    let f_in = x.cols();
    let deg: Vec<f64> = (0..n as u32).map(|v| g.degree(v) as f64 + 1.0).collect();
    let mut out = FeatureMatrix::zeros(n, f_out);
    for v in 0..n {
        let mut m = vec![0.0; f_in];
        let s = 1.0 / (deg[v] * deg[v]).sqrt();
        for (mi, xi) in m.iter_mut().zip(x.row(v)) {
            *mi += s * xi;
        }
        for &u in g.neighbors(v as u32) {
            let s = 1.0 / (deg[u as usize] * deg[v]).sqrt();
            for (mi, xi) in m.iter_mut().zip(x.row(u as usize)) {
                *mi += s * xi;
            }
        }
        let mut y = linalg::matvec(weight, f_out, f_in, &m);
        linalg::relu_inplace(&mut y);
        out.row_mut(v).copy_from_slice(&y);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_graph::generate;
    use aurora_mapping::{degree_aware, hashing};
    use aurora_model::reference::init_weights;

    fn setup(n: usize, m: usize, seed: u64) -> (Csr, FeatureMatrix, Vec<f64>) {
        let g = generate::rmat(n, m, Default::default(), seed);
        let x = FeatureMatrix::random(n, 8, 1.0, seed + 1);
        let w = init_weights(4, 8, seed + 2);
        (g, x, w)
    }

    #[test]
    fn functional_matches_reference_exactly() {
        let (g, x, w) = setup(48, 300, 5);
        let mapping = degree_aware::map(0..48, &g.degrees(), 4, 4);
        let run = run_gcn_layer(&g, &x, &w, 4, &mapping, PeConfig::default());
        let reference = reference_gcn_layer(&g, &x, &w, 4);
        assert!(
            run.output.max_abs_diff(&reference) < 1e-9,
            "datapath diverged by {}",
            run.output.max_abs_diff(&reference)
        );
    }

    #[test]
    fn functional_matches_model_zoo_gcn() {
        use aurora_model::reference::GnnLayer;
        let (g, x, w) = setup(32, 160, 9);
        let mapping = hashing::map(0..32, &g.degrees(), 4, 2);
        let run = run_gcn_layer(&g, &x, &w, 4, &mapping, PeConfig::default());
        let zoo = aurora_model::zoo::Gcn::new(8, 4, w.clone(), vec![0.0; 4]).forward(&g, &x);
        assert!(run.output.max_abs_diff(&zoo) < 1e-9);
    }

    #[test]
    fn profile_accounts_all_pes() {
        let (g, x, w) = setup(64, 400, 2);
        let mapping = degree_aware::map(0..64, &g.degrees(), 4, 4);
        let run = run_gcn_layer(&g, &x, &w, 4, &mapping, PeConfig::default());
        assert_eq!(run.profile.busy.len(), 16);
        assert!(run.profile.max_busy() > 0);
        assert!(run.profile.mults > 0 && run.profile.adds > 0);
        assert!(run.profile.imbalance() >= 1.0);
    }

    #[test]
    fn degree_aware_balances_compute_on_skewed_graphs() {
        // the hub's aggregation work lands on one PE either way, but
        // hashing co-locates other heavy vertices with it more often;
        // across seeds the degree-aware profile must win on average
        let mut da_sum = 0.0;
        let mut h_sum = 0.0;
        for seed in 0..6 {
            let g = generate::rmat(128, 1200, Default::default(), seed);
            let x = FeatureMatrix::random(128, 8, 1.0, 1);
            let w = init_weights(4, 8, 2);
            let da = degree_aware::map(0..128, &g.degrees(), 4, 8);
            let h = hashing::map(0..128, &g.degrees(), 4, 8);
            da_sum += run_gcn_layer(&g, &x, &w, 4, &da, PeConfig::default())
                .profile
                .imbalance();
            h_sum += run_gcn_layer(&g, &x, &w, 4, &h, PeConfig::default())
                .profile
                .imbalance();
        }
        assert!(
            da_sum <= h_sum * 1.05,
            "degree-aware imbalance {da_sum:.2} vs hashing {h_sum:.2} (sum over seeds)"
        );
    }

    #[test]
    fn sum_aggregate_family_matches_zoo() {
        use aurora_model::reference::GnnLayer;
        use aurora_model::zoo::{CommNet, Gin, SageMean};
        let (g, x, w) = setup(40, 260, 7);
        let mapping = degree_aware::map(0..40, &g.degrees(), 4, 4);

        let gin_run = run_sum_aggregate_layer(
            &g,
            &x,
            &w,
            4,
            SumAggregate::GinLike { epsilon: 0.1 },
            &mapping,
            PeConfig::default(),
        );
        let gin_ref = Gin::new(8, 4, 0.1, w.clone()).forward(&g, &x);
        assert!(gin_run.output.max_abs_diff(&gin_ref) < 1e-9, "GIN diverged");

        let comm_run = run_sum_aggregate_layer(
            &g,
            &x,
            &w,
            4,
            SumAggregate::PlainSum,
            &mapping,
            PeConfig::default(),
        );
        let comm_ref = CommNet::new(8, 4, w.clone()).forward(&g, &x);
        assert!(
            comm_run.output.max_abs_diff(&comm_ref) < 1e-9,
            "CommNet diverged"
        );

        let mean_run = run_sum_aggregate_layer(
            &g,
            &x,
            &w,
            4,
            SumAggregate::Mean,
            &mapping,
            PeConfig::default(),
        );
        let mean_ref = SageMean::new(8, 4, w.clone()).forward(&g, &x);
        assert!(
            mean_run.output.max_abs_diff(&mean_ref) < 1e-9,
            "SageMean diverged"
        );
    }

    #[test]
    fn attention_functional_matches_zoo() {
        use aurora_model::reference::GnnLayer;
        use aurora_model::zoo::VanillaAttention;
        let (g, x, w) = setup(36, 220, 12);
        let mapping = degree_aware::map(0..36, &g.degrees(), 4, 4);
        let run = run_attention_layer(&g, &x, &w, 4, &mapping, PeConfig::default());
        let reference = VanillaAttention::new(8, 4, w.clone()).forward(&g, &x);
        assert!(
            run.output.max_abs_diff(&reference) < 1e-9,
            "attention diverged by {}",
            run.output.max_abs_diff(&reference)
        );
        assert!(run.profile.mults > 0);
    }

    #[test]
    fn ggcn_functional_matches_zoo() {
        use aurora_model::reference::GnnLayer;
        use aurora_model::zoo::GGcn;
        let g = generate::rmat(28, 160, Default::default(), 14);
        let x = FeatureMatrix::random(28, 6, 1.0, 3);
        let w_u = init_weights(6, 6, 4);
        let w_v = init_weights(6, 6, 5);
        let w = init_weights(3, 6, 6);
        let mapping = degree_aware::map(0..28, &g.degrees(), 4, 2);
        let run = run_ggcn_layer(&g, &x, &w_u, &w_v, &w, 3, &mapping, PeConfig::default());
        let reference = GGcn::new(6, 3, w_u.clone(), w_v.clone(), w.clone()).forward(&g, &x);
        assert!(
            run.output.max_abs_diff(&reference) < 1e-9,
            "G-GCN diverged by {}",
            run.output.max_abs_diff(&reference)
        );
    }

    #[test]
    #[should_panic(expected = "cover the whole graph")]
    fn partial_mapping_rejected() {
        let (g, x, w) = setup(16, 60, 1);
        let mapping = degree_aware::map(0..8, &g.degrees()[..8], 2, 4);
        run_gcn_layer(&g, &x, &w, 4, &mapping, PeConfig::default());
    }
}
