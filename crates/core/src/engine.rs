//! The per-subgraph execution pipeline (§III-E walk-through).
//!
//! For each layer: generate the workflow, run Algorithm 2 once per layer
//! (it is "triggered by the arrival of a new sub-graph or a GNN layer"),
//! tile the graph by on-chip capacity, and for every tile: map (Algorithm
//! 1), plan and apply the NoC/PE configuration, execute sub-accelerators A
//! and B as a pipeline, and overlap each tile's execution with the next
//! tile's DRAM load (double buffering) — "after mapping a subgraph to the
//! PE array, the next subgraph starts being loaded from DRAM to overlap
//! the latency" (§IV).

use crate::arena::{
    put_engine_scratch, take_engine_scratch, with_worker, TileArena, TileOut, TileSlabs,
};
use crate::config::AcceleratorConfig;
use crate::instr::Instruction;
use crate::noc_model::{self, OnChipEstimate, TrafficProfile};
use crate::profile::{LayerProfile, ProfileReport, SideAttribution, TileAttribution};
use crate::report::{LayerReport, NocReport, PhaseCycles, SimReport};
use crate::request::{GraphSpec, SimError, SimRequest};
use crate::workflow::Workflow;
use aurora_energy::{ActivityCounts, EnergyModel};
use aurora_graph::{Csr, Tiling, TilingConfig};
use aurora_mapping::plan::{plan_bypass, SegmentPlan};
use aurora_mapping::{degree_aware, hashing, MapView, MappingPolicy, VertexMapping};
use aurora_mem::MemoryController;
use aurora_model::{LayerShape, ModelId, Phase, Workload};
use aurora_noc::{BypassSegment, NocConfig, RouteTable};
use aurora_partition::{partition, PartitionStrategy, TileIndex};
use aurora_telemetry::span::{self, Stage};
use aurora_telemetry::{names, tracks, Scope, Telemetry};
use rayon::prelude::*;
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// Identity of a tile's unit-flit traffic profile within one run: the
/// profile is a pure function of the route table and the mapping, and
/// the mapping of `(policy, k)` — fixed per run — is determined by the
/// tile's vertex range and the per-PE capacity (which varies with each
/// layer's `f_in`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct ProfileKey {
    table_id: usize,
    start: u32,
    end: u32,
    c_pe: usize,
}

/// Cross-layer cache of [`RouteTable`]s (keyed by NoC configuration) and
/// per-tile unit-flit [`TrafficProfile`]s, held for the duration of one
/// `simulate*` call. Later layers over the same tiling rescale a cached
/// profile by their own `flits_per_msg` instead of re-binning edges.
///
/// All lookups and insertions happen on the sequential path of the
/// engine, so hit/miss resolution — and therefore every telemetry
/// counter — is identical at every `AURORA_THREADS` value.
struct TrafficCache {
    tables: Vec<TableSlot>,
    table_ids: HashMap<NocConfig, usize>,
    profiles: HashMap<ProfileKey, TrafficProfile>,
    /// Insertion order of `profiles`, for FIFO eviction.
    profile_order: VecDeque<ProfileKey>,
    /// Pre-built tables carried across a session's applies (route tables
    /// are pure functions of the config, so they never go stale).
    /// Consulted by [`Self::ensure_built`] before paying the O(k⁴)
    /// build; counters are untouched — they fire at intern time and must
    /// match a cold run's exactly.
    warm: HashMap<NocConfig, RouteTable>,
    builds: u64,
    hits: u64,
    misses: u64,
}

/// One interned NoC configuration and its lazily-built route table.
/// Interning counts as the "build" for report/telemetry purposes (the
/// numbers are what an eager build produced historically); the O(k⁴)
/// all-pairs table itself is only materialised for tiles that actually
/// bin edges — a session apply with one dirty tile routes one table,
/// not one per tile.
struct TableSlot {
    cfg: NocConfig,
    table: Option<RouteTable>,
}

/// Table cap: per-tile bypass plans give each tile its own config, so a
/// deep multi-layer run can see many distinct tables; past the cap the
/// cache flushes wholesale (ids index `tables`, so selective eviction
/// would dangle the profile keys).
const MAX_ROUTE_TABLES: usize = 64;

/// Profile cap (FIFO eviction). Profiles are ~2 k² words each.
const MAX_TILE_PROFILES: usize = 1024;

impl TrafficCache {
    fn new() -> Self {
        Self {
            tables: Vec::new(),
            table_ids: HashMap::new(),
            profiles: HashMap::new(),
            profile_order: VecDeque::new(),
            warm: HashMap::new(),
            builds: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Interns `cfg`, allocating a table id on first sight. The counters
    /// fire here — interning is the countable "build" event, and the
    /// pair count is `k⁴` straight from the config — but the table
    /// itself stays unbuilt until [`Self::ensure_built`].
    fn intern(&mut self, cfg: &NocConfig, tel: &Telemetry, scope: &Scope) -> usize {
        if let Some(&id) = self.table_ids.get(cfg) {
            return id;
        }
        if self.tables.len() >= MAX_ROUTE_TABLES {
            self.tables.clear();
            self.table_ids.clear();
            self.profiles.clear();
            self.profile_order.clear();
        }
        self.builds += 1;
        tel.counter_add(names::NOC_ROUTE_TABLE_BUILDS, scope, 1);
        let n = cfg.k * cfg.k;
        tel.counter_add(names::NOC_ROUTE_TABLE_PAIRS, scope, (n * n) as u64);
        let id = self.tables.len();
        self.tables.push(TableSlot {
            cfg: cfg.clone(),
            table: None,
        });
        self.table_ids.insert(cfg.clone(), id);
        id
    }

    /// Materialises the route table for an interned id. A configuration
    /// the NoC layer rejects surfaces as [`SimError::Noc`] instead of
    /// aborting the run; callers invoke this sequentially in tile order,
    /// so the first erroring tile decides the error exactly as the
    /// historical build-at-intern did.
    fn ensure_built(&mut self, id: usize) -> Result<(), SimError> {
        let slot = &mut self.tables[id];
        if slot.table.is_none() {
            // a warm table can only exist for a config that built
            // successfully before, so the error behaviour for bad
            // configs is untouched by the session carry-over
            slot.table = Some(match self.warm.remove(&slot.cfg) {
                Some(t) => t,
                None => RouteTable::build(&slot.cfg)?,
            });
        }
        Ok(())
    }

    /// Drains every materialised table (and any unconsumed warm entries)
    /// into `store`, for the next apply of the same session. Wholesale
    /// reset past the cap, mirroring the in-run eviction policy.
    fn harvest_into(&mut self, store: &mut HashMap<NocConfig, RouteTable>) {
        if store.len() > MAX_ROUTE_TABLES {
            store.clear();
        }
        store.extend(self.warm.drain());
        for slot in self.tables.drain(..) {
            if let Some(t) = slot.table {
                store.insert(slot.cfg, t);
            }
        }
        self.table_ids.clear();
    }

    fn table(&self, id: usize) -> &RouteTable {
        self.tables[id]
            .table
            .as_ref()
            .expect("route table materialised by the sequential ensure_built pass")
    }

    fn profile(&self, key: &ProfileKey) -> Option<&TrafficProfile> {
        self.profiles.get(key)
    }

    fn insert_profile(&mut self, key: ProfileKey, profile: TrafficProfile) {
        while self.profiles.len() >= MAX_TILE_PROFILES {
            match self.profile_order.pop_front() {
                Some(old) => {
                    self.profiles.remove(&old);
                }
                None => break,
            }
        }
        if self.profiles.insert(key, profile).is_none() {
            self.profile_order.push_back(key);
        }
    }
}

/// Which tiles a session apply must recompute.
#[derive(Debug, Clone)]
pub(crate) enum DirtyScope {
    /// Everything: first run, structural (vertex) delta, or an
    /// invalidated session. Still bit-identical — it repopulates the
    /// per-tile store from scratch.
    All,
    /// Only tiles owning one of these vertices (edge-only delta). The
    /// per-tile artifacts are functions of a tile's *own* out-edges —
    /// a remote destination contributes one halo count regardless of
    /// identity — so editing edge `(u, v)` dirties `tile_of(u)` alone.
    Vertices(Vec<u32>),
}

/// One layer's warm artifacts between session applies: the SoA slabs the
/// arena core wrote (mapping, bypass plans, `TileOut` rows) plus each
/// tile's unit-flit traffic profile stamped with the signature of the
/// route table it was binned under ([`RouteTable::signature`], the noc
/// invalidation hook).
#[derive(Debug, Default)]
pub(crate) struct SessionLayerState {
    pub(crate) slabs: TileSlabs,
    pub(crate) profiles: Vec<Option<(u64, TrafficProfile)>>,
    /// The tiling/PE-split the slabs were computed under. An apply whose
    /// fresh tiling or Algorithm-2 split differs (vertex count moved a
    /// tile boundary, edge churn moved the op totals enough to shift the
    /// integer A/B split) falls back to a full recompute: the per-tile
    /// `t_a`/`t_b` bake `(a, b)` in. Only the integer split matters —
    /// the strategy's layer-level time estimates move with every edge
    /// count change but are recomputed fresh each run.
    pub(crate) tiling: Option<Tiling>,
    pub(crate) split: Option<(usize, usize)>,
    pub(crate) high_cap: usize,
    pub(crate) valid: bool,
}

/// All layers' warm state for one [`SimSession`](crate::delta::SimSession).
#[derive(Debug, Default)]
pub(crate) struct SessionState {
    pub(crate) layers: Vec<SessionLayerState>,
    /// Route tables built by earlier applies, keyed by NoC config. Pure
    /// functions of the config — they survive [`Self::invalidate`] and
    /// save the O(k⁴) rebuild every apply would otherwise pay.
    pub(crate) route_tables: HashMap<NocConfig, RouteTable>,
}

impl SessionState {
    /// Marks every layer stale; the next apply recomputes all tiles.
    /// Called when an apply errors mid-run and may have left the slabs
    /// half-written.
    pub(crate) fn invalidate(&mut self) {
        for layer in &mut self.layers {
            layer.valid = false;
        }
    }
}

/// Pure per-tile precomputation: everything about a tile that does not
/// touch the memory controller, telemetry, or the instruction trace.
/// Tiles are independent, so this part fans out over the worker pool
/// (`AURORA_THREADS`); the stateful walk that consumes it stays
/// sequential, keeping cycle results bit-identical at every thread count.
///
/// This owned form is the [`EngineCore::Legacy`] product, kept as the
/// bit-identity oracle; the default arena path writes the same values
/// into [`TileSlabs`] instead.
struct TilePre {
    mapping: VertexMapping,
    rho_a: f64,
    rho_b: f64,
    noc_cfg: NocConfig,
    num_vertices: usize,
    num_edges: usize,
    halo: u64,
    t_a: u64,
    t_b: u64,
    est_b: OnChipEstimate,
}

/// A borrowed view of one precomputed tile — the only shape the
/// sequential traffic step and the stateful walk consume, so both
/// engine cores share them verbatim.
struct TileView<'a> {
    map: MapView<'a>,
    noc_cfg: &'a NocConfig,
    rho_a: f64,
    rho_b: f64,
    num_vertices: usize,
    num_edges: usize,
    halo: u64,
    t_a: u64,
    t_b: u64,
    est_b: OnChipEstimate,
}

/// The layer's precomputed tiles, in whichever representation the
/// active [`EngineCore`] produced.
enum PreTiles<'a> {
    Legacy(Vec<TilePre>),
    Arena {
        slabs: &'a TileSlabs,
        num_tiles: usize,
        policy: MappingPolicy,
        k: usize,
        high_cap: usize,
    },
}

impl PreTiles<'_> {
    fn len(&self) -> usize {
        match self {
            PreTiles::Legacy(v) => v.len(),
            PreTiles::Arena { num_tiles, .. } => *num_tiles,
        }
    }

    fn view(&self, ti: usize) -> TileView<'_> {
        match self {
            PreTiles::Legacy(v) => {
                let pre = &v[ti];
                TileView {
                    map: pre.mapping.view(),
                    noc_cfg: &pre.noc_cfg,
                    rho_a: pre.rho_a,
                    rho_b: pre.rho_b,
                    num_vertices: pre.num_vertices,
                    num_edges: pre.num_edges,
                    halo: pre.halo,
                    t_a: pre.t_a,
                    t_b: pre.t_b,
                    est_b: pre.est_b,
                }
            }
            PreTiles::Arena {
                slabs,
                policy,
                k,
                high_cap,
                ..
            } => {
                let out = &slabs.outs[ti];
                let s_pes: &[usize] = match policy {
                    MappingPolicy::DegreeAware => &slabs.s_pes,
                    MappingPolicy::Hashing => &[],
                };
                TileView {
                    map: MapView {
                        policy: *policy,
                        range: out.start..out.end,
                        pe_of: &slabs.pe_of[out.start as usize..out.end as usize],
                        k: *k,
                        s_pes,
                        high_degree: &slabs.high[ti * high_cap..][..out.n_high],
                    },
                    noc_cfg: &slabs.noc_cfgs[ti],
                    rho_a: out.rho_a,
                    rho_b: out.rho_b,
                    num_vertices: out.num_vertices,
                    num_edges: out.num_edges,
                    halo: out.halo,
                    t_a: out.t_a,
                    t_b: out.t_b,
                    est_b: out.est_b,
                }
            }
        }
    }
}

/// One tile's mutable slices into the layer's SoA slabs — the unit of
/// work the arena precompute fans out over the pool. Disjoint
/// `split_at_mut` slices keep the parallel writes safe without locks.
struct TileTask<'a> {
    ti: usize,
    pe_of: &'a mut [u32],
    high: &'a mut [u32],
    rows: &'a mut [SegmentPlan],
    cols: &'a mut [SegmentPlan],
    out: &'a mut TileOut,
}

/// Which per-tile precompute implementation the engine runs.
///
/// The arena core is the default and is bit-identical to the legacy
/// core at every thread count (`engine_kernel_bench` and the
/// `engine_equivalence` suite enforce this); the legacy core is kept
/// verbatim as the pre-refactor oracle and costs fresh allocations per
/// tile. The toggle deliberately lives on the simulator — not in
/// [`AcceleratorConfig`] or [`SimRequest`] — so a request's
/// content-addressed digest is unaffected by which core serves it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineCore {
    /// Arena-backed structure-of-arrays pipeline (default).
    #[default]
    Arena,
    /// Per-tile `Vec` pipeline, the pre-arena implementation.
    Legacy,
}

/// The Aurora accelerator simulator.
#[derive(Debug, Clone)]
pub struct AuroraSimulator {
    config: AcceleratorConfig,
    telemetry: Telemetry,
    engine_core: EngineCore,
}

impl AuroraSimulator {
    /// A simulator with the given configuration. Telemetry starts
    /// disabled; see [`Self::with_telemetry`].
    pub fn new(config: AcceleratorConfig) -> Self {
        Self {
            config,
            telemetry: Telemetry::disabled(),
            engine_core: EngineCore::default(),
        }
    }

    /// Selects the per-tile precompute implementation (default:
    /// [`EngineCore::Arena`]). Reports are bit-identical either way;
    /// benches and equivalence tests use this to pin the oracle path.
    pub fn with_engine_core(mut self, core: EngineCore) -> Self {
        self.engine_core = core;
        self
    }

    /// The active engine core.
    pub fn engine_core(&self) -> EngineCore {
        self.engine_core
    }

    /// The paper's 32 × 32 @ 700 MHz instance.
    pub fn paper() -> Self {
        Self::new(AcceleratorConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Attaches an observability handle: simulations record `dram.*`,
    /// `noc.*`, `mapping.*`, `partition.*` and per-tile metrics, plus a
    /// simulated-cycle timeline with one track per sub-accelerator
    /// (retrieve it with `telemetry.trace_json()`).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The attached observability handle (disabled unless set).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The canonical entry point: runs one complete, serializable
    /// [`SimRequest`] and returns the report or a typed [`SimError`].
    /// The `aurora-serve` daemon consumes only this method.
    ///
    /// The *request's* configuration drives the simulation, not the
    /// simulator's: a report must be a pure function of the request
    /// alone, which is what makes the content-addressed digest of the
    /// serve result cache exact. The simulator instance contributes only
    /// its telemetry handle.
    pub fn run(&self, req: &SimRequest) -> Result<SimReport, SimError> {
        req.validate()?;
        let mut config = req.config;
        config.trace_instructions |= req.options.trace_instructions;
        let sim = AuroraSimulator {
            config,
            telemetry: self.telemetry.clone(),
            engine_core: self.engine_core,
        };
        let workload = req.workload_label();
        let density = req.options.input_density;
        // Host profiling wraps graph resolution too, so GraphLoad time
        // lands inside the profiled window.
        span::host_init();
        let start = Instant::now();
        let profile_mark = span::span_profiling_enabled().then(span::mark);
        let mut report = match &req.graph {
            // borrow inline graphs; only spec variants synthesize
            GraphSpec::Inline(g) => {
                sim.run_resolved_core(g, req.model, &req.layers, &workload, density)?
            }
            spec => {
                let g = {
                    let _span = span::enter(Stage::GraphLoad);
                    spec.resolve()?
                };
                sim.run_resolved_core(&g, req.model, &req.layers, &workload, density)?
            }
        };
        if let Some(m) = &profile_mark {
            report.host_profile = Some(span::collect(m, start.elapsed()));
        }
        Ok(report)
    }

    /// Simulates `model` inference over `g` through the given layer
    /// shapes. `workload` is a free-form label for the report. Input
    /// features are assumed dense; see [`Self::simulate_with_density`].
    ///
    /// Thin shim over [`Self::run`] that panics on [`SimError`],
    /// preserving the historical signature. New code should build a
    /// [`SimRequest`] and call `run` — one validated, serializable
    /// entry point for every caller.
    #[deprecated(note = "build a SimRequest and call AuroraSimulator::run")]
    pub fn simulate(
        &self,
        g: &Csr,
        model: ModelId,
        shapes: &[LayerShape],
        workload: &str,
    ) -> SimReport {
        #[allow(deprecated)]
        self.simulate_with_density(g, model, shapes, workload, 1.0)
    }

    /// Like [`Self::simulate`], with the input feature matrix's density.
    /// Aurora's flexible PEs and NoC move *compressed* sparse feature
    /// payloads during the first layer's message passing, so sparse inputs
    /// shrink on-chip traffic — and dense inputs (Reddit's > 50 %) deny
    /// that advantage, which is exactly why "the performance gain on the
    /// Reddit dataset is not so significant" (§VI-D). Hidden layers are
    /// dense activations and are unaffected.
    ///
    /// Thin shim over [`Self::run`] that panics on [`SimError`],
    /// preserving the historical signature. The graph is cloned into an
    /// inline request — callers on hot paths should build the
    /// [`SimRequest`] once and reuse it.
    #[deprecated(note = "build a SimRequest and call AuroraSimulator::run")]
    pub fn simulate_with_density(
        &self,
        g: &Csr,
        model: ModelId,
        shapes: &[LayerShape],
        workload: &str,
        input_density: f64,
    ) -> SimReport {
        assert!(!shapes.is_empty(), "need at least one layer");
        assert!((0.0..=1.0).contains(&input_density), "density in [0, 1]");
        let req = SimRequest::builder(model)
            .config(self.config)
            .inline_graph(g.clone())
            .layers(shapes)
            .workload(workload)
            .input_density(input_density)
            .build()
            .unwrap_or_else(|e| panic!("simulation failed: {e}"));
        self.run(&req)
            .unwrap_or_else(|e| panic!("simulation failed: {e}"))
    }

    /// The resolved-graph execution path shared by [`Self::run`] and
    /// [`Self::try_simulate_batch`].
    fn run_resolved_core(
        &self,
        g: &Csr,
        model: ModelId,
        shapes: &[LayerShape],
        workload: &str,
        input_density: f64,
    ) -> Result<SimReport, SimError> {
        self.run_core(g, model, shapes, workload, input_density, None)
    }

    /// [`Self::run_core`] with a session's warm per-layer state: clean
    /// tiles replay their cached artifacts, dirty tiles recompute, and
    /// the state is refreshed for the next apply. On error the caller
    /// must invalidate the state (the slabs may be half-written).
    /// Requires the arena engine core (the session stores [`TileSlabs`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_with_session(
        &self,
        g: &Csr,
        model: ModelId,
        shapes: &[LayerShape],
        workload: &str,
        input_density: f64,
        state: &mut SessionState,
        scope: &DirtyScope,
    ) -> Result<SimReport, SimError> {
        debug_assert_eq!(
            self.engine_core,
            EngineCore::Arena,
            "sessions require the arena engine core"
        );
        self.run_core(
            g,
            model,
            shapes,
            workload,
            input_density,
            Some((state, scope)),
        )
    }

    /// The engine proper: the per-layer loop over [`Self::simulate_layer`]
    /// plus run-level finalisation. `session` carries a
    /// [`SimSession`](crate::delta::SimSession)'s warm state; `None` is a
    /// plain from-scratch run.
    #[allow(clippy::too_many_arguments)]
    fn run_core(
        &self,
        g: &Csr,
        model: ModelId,
        shapes: &[LayerShape],
        workload: &str,
        input_density: f64,
        mut session: Option<(&mut SessionState, &DirtyScope)>,
    ) -> Result<SimReport, SimError> {
        if g.num_vertices() == 0 {
            return Err(SimError::EmptyGraph);
        }
        if shapes.is_empty() {
            return Err(SimError::EmptyLayers);
        }
        if !(0.0..=1.0).contains(&input_density) {
            return Err(SimError::InvalidDensity {
                density: input_density,
            });
        }
        let cfg = &self.config;
        let mut mem = MemoryController::new(cfg.dram_channels);
        mem.attach_telemetry(self.telemetry.clone());
        mem.set_scope(Scope::model(model.name()));
        let mut activity = ActivityCounts::default();
        let mut layers = Vec::with_capacity(shapes.len());
        let mut profile = ProfileReport {
            link_utilisation: cfg.link_utilisation,
            ..ProfileReport::default()
        };
        let mut instructions = Vec::new();
        let mut reconfigs = 0u64;
        let mut total_cycles = 0u64;
        // Route tables and tile traffic profiles persist across the run's
        // layers: later layers rescale instead of re-binning. A session
        // additionally donates the tables its earlier applies built —
        // config-pure, so never stale — and takes them back at the end.
        let mut traffic_cache = TrafficCache::new();
        if let Some((state, _)) = session.as_mut() {
            traffic_cache.warm = std::mem::take(&mut state.route_tables);
        }
        let wf = {
            let _span = span::enter(Stage::Workflow);
            Workflow::generate(model)
        };
        if self.telemetry.is_enabled() {
            self.telemetry
                .instant(tracks::CONTROLLER, "accept request", 0);
            self.telemetry
                .instant(tracks::CONTROLLER, "generate workflow", 0);
        }

        if cfg.trace_instructions {
            instructions.push(Instruction::AcceptRequest {
                model: model.name().to_string(),
                layers: shapes.len(),
            });
            instructions.push(Instruction::GenerateWorkflow {
                phases: wf.phases.len(),
                single_accelerator: wf.single_accelerator,
            });
        }

        // The engine scratch persists across runs on this thread: a
        // warmed-up arena makes tile precompute and the walk
        // allocation-free in the steady state.
        let mut engine_arena = take_engine_scratch();
        let mut layer_err: Option<SimError> = None;
        for (li, &shape) in shapes.iter().enumerate() {
            let density = if li == 0 { input_density } else { 1.0 };
            let layer_session = session.as_mut().map(|(state, scope)| {
                while state.layers.len() <= li {
                    state.layers.push(SessionLayerState::default());
                }
                (&mut state.layers[li], &**scope)
            });
            match self.simulate_layer(
                g,
                model,
                &wf,
                shape,
                li,
                density,
                total_cycles,
                &mut mem,
                &mut activity,
                &mut instructions,
                &mut traffic_cache,
                &mut engine_arena,
                &mut profile.tiles,
                layer_session,
            ) {
                Ok((report, recfg, layer_profile)) => {
                    reconfigs += recfg;
                    total_cycles += report.total_cycles;
                    profile.mix = profile.mix.add(&layer_profile.mix);
                    profile.overhead_cycles += layer_profile.overhead_cycles;
                    profile.ops += layer_profile.ops;
                    profile.layers.push(layer_profile);
                    layers.push(report);
                }
                Err(e) => {
                    layer_err = Some(e);
                    break;
                }
            }
        }
        put_engine_scratch(engine_arena);
        if let Some((state, _)) = session.as_mut() {
            // keep the tables even when a layer errored: they are pure
            // functions of their configs, and the recovery recompute
            // after `SessionState::invalidate` reuses them
            traffic_cache.harvest_into(&mut state.route_tables);
        }
        if let Some(e) = layer_err {
            return Err(e);
        }

        let _finalize_span = span::enter(Stage::Finalize);
        activity.cycles = total_cycles;
        activity.dram_bytes = mem.counters().total_bytes();
        activity.reconfigurations = reconfigs;
        let energy = EnergyModel {
            clock_mhz: cfg.clock_mhz as f64,
            ..EnergyModel::default()
        }
        .evaluate(&activity);

        if self.telemetry.is_enabled() {
            let scope = Scope::model(model.name());
            self.telemetry
                .counter_add("run.total_cycles", &scope, total_cycles);
            self.telemetry
                .counter_add("run.reconfigurations", &scope, reconfigs);
            self.telemetry
                .gauge_set("run.energy_joules", &scope, energy.total());
        }

        profile.route_table_builds = traffic_cache.builds;
        profile.tile_profile_hits = traffic_cache.hits;
        profile.tile_profile_misses = traffic_cache.misses;
        profile.dram_bytes = mem.counters().total_bytes();
        profile.operational_intensity = if profile.dram_bytes == 0 {
            0.0
        } else {
            profile.ops as f64 / profile.dram_bytes as f64
        };
        let seconds = total_cycles as f64 / (cfg.clock_mhz as f64 * 1e6);
        profile.achieved_gflops = if seconds > 0.0 {
            profile.ops as f64 / seconds / 1e9
        } else {
            0.0
        };
        profile.peak_gflops = cfg.num_pes() as f64 * cfg.flops_per_pe() / 1e9;
        profile.dram_peak_gbps =
            mem.peak_bytes_per_cycle() * mem.timing().clock_mhz as f64 * 1e6 / 1e9;

        Ok(SimReport {
            accelerator: "Aurora".into(),
            model: model.name().into(),
            workload: workload.into(),
            layers,
            total_cycles,
            clock_mhz: cfg.clock_mhz,
            dram: mem.counters(),
            activity,
            energy,
            reconfigurations: reconfigs,
            instructions,
            metrics: self.telemetry.snapshot(),
            profile,
            host_profile: None,
        })
    }

    /// Simulates inference over a *batch* of graphs (the point-cloud /
    /// molecule serving scenario: many small independent graphs through
    /// the same model). Weights stay resident across the batch — only the
    /// first graph pays the weight load — and the array reconfigures
    /// between graphs (one exposed `2k − 1` fill per batch; the rest
    /// overlap, as with subgraph tiles).
    ///
    /// Returns the merged report; `layers` holds each graph's layers
    /// back-to-back.
    ///
    /// Thin shim over [`Self::try_simulate_batch`] that panics on
    /// [`SimError`]; new code should call the fallible form (batches
    /// have no single-request form — each member graph is one
    /// [`SimRequest`]-shaped run with weights kept resident).
    #[deprecated(note = "use AuroraSimulator::try_simulate_batch")]
    pub fn simulate_batch(
        &self,
        graphs: &[&Csr],
        model: ModelId,
        shapes: &[LayerShape],
        workload: &str,
    ) -> SimReport {
        self.try_simulate_batch(graphs, model, shapes, workload)
            .unwrap_or_else(|e| panic!("batch simulation failed: {e}"))
    }

    /// Fallible form of [`Self::simulate_batch`]: an empty batch is
    /// [`SimError::EmptyBatch`], and per-graph failures propagate instead
    /// of aborting.
    pub fn try_simulate_batch(
        &self,
        graphs: &[&Csr],
        model: ModelId,
        shapes: &[LayerShape],
        workload: &str,
    ) -> Result<SimReport, SimError> {
        if graphs.is_empty() {
            return Err(SimError::EmptyBatch);
        }
        // One host-profiling window spans the whole batch: the merged
        // report's host_profile covers every graph.
        span::host_init();
        let start = Instant::now();
        let profile_mark = span::span_profiling_enabled().then(span::mark);
        let mut merged: Option<SimReport> = None;
        for (i, g) in graphs.iter().enumerate() {
            let r = self.run_resolved_core(g, model, shapes, workload, 1.0)?;
            merged = Some(match merged {
                None => r,
                Some(mut acc) => {
                    // weights were already resident: refund the repeated
                    // weight-load bytes (they were charged per run)
                    let w_bytes: u64 = shapes
                        .iter()
                        .map(|s| Workload::from_sizes(model, 1, 1, *s).weight_bytes())
                        .sum();
                    acc.total_cycles += r.total_cycles;
                    acc.layers.extend(r.layers.into_iter().map(|mut l| {
                        l.layer += i * shapes.len();
                        l
                    }));
                    acc.dram.read_bytes += r.dram.read_bytes.saturating_sub(w_bytes);
                    acc.dram.write_bytes += r.dram.write_bytes;
                    acc.dram.sequential_bytes += r.dram.sequential_bytes.saturating_sub(w_bytes);
                    acc.dram.random_bytes += r.dram.random_bytes;
                    acc.activity = acc.activity.add(&r.activity);
                    acc.activity.cycles = acc.total_cycles;
                    acc.activity.dram_bytes = acc.dram.total_bytes();
                    acc.reconfigurations += r.reconfigurations;
                    // the telemetry recorder is shared across the batch, so
                    // the latest snapshot is the cumulative one
                    acc.metrics = r.metrics;
                    acc.profile.merge(&r.profile, i * shapes.len());
                    acc
                }
            });
        }
        let mut report = merged.ok_or(SimError::EmptyBatch)?;
        report.energy = EnergyModel {
            clock_mhz: self.config.clock_mhz as f64,
            ..EnergyModel::default()
        }
        .evaluate(&report.activity);
        // re-derive the roofline coordinates from the merged totals (the
        // batch refunds resident-weight bytes, so intensity shifts)
        report.profile.dram_bytes = report.dram.total_bytes();
        report.profile.operational_intensity = if report.profile.dram_bytes == 0 {
            0.0
        } else {
            report.profile.ops as f64 / report.profile.dram_bytes as f64
        };
        let seconds = report.seconds();
        report.profile.achieved_gflops = if seconds > 0.0 {
            report.profile.ops as f64 / seconds / 1e9
        } else {
            0.0
        };
        if let Some(m) = &profile_mark {
            report.host_profile = Some(span::collect(m, start.elapsed()));
        }
        Ok(report)
    }

    /// Simulates one layer; returns its report, reconfiguration count,
    /// and per-layer bottleneck attribution. Per-tile attributions are
    /// appended to `tiles_out` (the run's preallocated report buffer);
    /// `arena` supplies the reusable slabs and roll-up scratch.
    #[allow(clippy::too_many_arguments)]
    fn simulate_layer(
        &self,
        g: &Csr,
        model: ModelId,
        wf: &Workflow,
        shape: LayerShape,
        layer_idx: usize,
        input_density: f64,
        layer_start: u64,
        mem: &mut MemoryController,
        activity: &mut ActivityCounts,
        instructions: &mut Vec<Instruction>,
        cache: &mut TrafficCache,
        arena: &mut TileArena,
        tiles_out: &mut Vec<TileAttribution>,
        session: Option<(&mut SessionLayerState, &DirtyScope)>,
    ) -> Result<(LayerReport, u64, LayerProfile), SimError> {
        let cfg = &self.config;
        let k = cfg.k;
        let trace = cfg.trace_instructions;
        let tel = &self.telemetry;
        let lscope = Scope::model(model.name()).layer(layer_idx);
        let dram_bytes_before = mem.counters().total_bytes();

        // --- Tile by on-chip capacity -----------------------------------
        let partition_span = span::enter(Stage::Partition);
        let tiling_cfg = TilingConfig {
            onchip_bytes: cfg.onchip_bytes(),
            feature_dim: shape.f_in,
            bytes_per_element: 8,
            feature_fraction: cfg.feature_fraction,
        };
        let tiling = Tiling::build(g, &tiling_cfg);

        // --- Algorithm 2: size the sub-accelerators ---------------------
        // The layer workload doubles as the walk's per-tile workload: a
        // `resize` per tile yields the same values `from_sizes` would,
        // without rebuilding the model spec.
        let mut w_tile = Workload::of(model, g, shape);
        let counts = w_tile.op_counts();
        let strategy = if cfg.dynamic_partition {
            partition(&counts, cfg.num_pes(), cfg.flops_per_pe())
        } else {
            // ablation: a fixed 50/50 split (still honouring single-
            // accelerator models, which cannot use a B side at all)
            let a = if wf.single_accelerator {
                cfg.num_pes()
            } else {
                cfg.num_pes() / 2
            };
            PartitionStrategy {
                a,
                b: cfg.num_pes() - a,
                t_a: aurora_partition::time_a(&counts, a.max(1), cfg.flops_per_pe()),
                t_b: aurora_partition::time_b(
                    &counts,
                    (cfg.num_pes() - a).max(if wf.single_accelerator { 1 } else { 0 }),
                    cfg.flops_per_pe(),
                ),
            }
        };
        if trace {
            instructions.push(Instruction::Partition {
                a: strategy.a,
                b: strategy.b,
            });
        }
        strategy.record_to(tel, &lscope);
        drop(partition_span);

        // Trace timeline: the exposed controller overheads (mapping +
        // partition decisions, then the first NoC reconfiguration when the
        // fabric is flexible) lead the layer; tiles follow back-to-back,
        // each occupying max(execution, DRAM) — the double-buffer envelope.
        let mut cursor = layer_start;
        if tel.is_enabled() {
            tel.span(
                tracks::CONTROLLER,
                &format!("map+partition layer {layer_idx}"),
                cursor,
                100,
                vec![
                    ("pes_a".into(), strategy.a.into()),
                    ("pes_b".into(), strategy.b.into()),
                ],
            );
        }
        cursor += 100;
        if cfg.flexible_noc {
            let recfg_cycles = (2 * k - 1) as u64;
            if tel.is_enabled() {
                tel.span(
                    tracks::CONTROLLER,
                    "NoC reconfigure (exposed)",
                    cursor,
                    recfg_cycles,
                    vec![],
                );
            }
            cursor += recfg_cycles;
        }

        // --- Per-tile pipeline -------------------------------------------
        let c_pe = cfg.pe.vertex_capacity(shape.f_in);
        let raw_msg_words = if wf.model.has_edge_update() {
            wf.model.edge_feature_dim(shape.f_in)
        } else {
            shape.f_in
        };
        // Sparse input features travel compressed over the flexible NoC;
        // a 2× index overhead and a floor keep the model honest, so dense
        // inputs (Reddit) see no compression at all.
        let compress = (2.0 * input_density).clamp(0.3, 1.0);
        let msg_words = ((raw_msg_words as f64 * compress).ceil() as usize).max(1);
        let num_tiles = tiling.num_tiles();
        let TileArena {
            slabs: scratch_slabs,
            seq,
        } = arena;
        seq.begin_layer();
        seq.exec_cycles.reserve(num_tiles);
        seq.dram_cycles.reserve(num_tiles);
        let mut compute_total = 0u64;
        let mut phase_cycles = PhaseCycles::default();
        let mut noc_total = OnChipEstimate::default();
        let mut reconfigs = 0u64;
        let attr_start = tiles_out.len();
        tiles_out.reserve(num_tiles);
        let mut busy_a = 0u64;
        let mut busy_b = 0u64;
        let rings_cfg = NocConfig::rings(k);

        // Pure per-tile precomputation fans out over the worker pool; the
        // tile-ordered result (index-ordered collect for the legacy core,
        // pre-split slab slices for the arena core) means the stateful
        // walk below sees exactly the sequential schedule.
        //
        // A session apply (arena core only) swaps the thread-local slabs
        // for the session's warm ones and restricts the fan-out to the
        // delta's dirty tiles; `session_profiles` is the per-tile traffic
        // store refreshed alongside.
        let mut dirty_mask: Option<Vec<bool>> = None;
        let mut session_profiles: Option<&mut Vec<Option<(u64, TrafficProfile)>>> = None;
        let precompute_span = span::enter(Stage::TilePrecompute);
        let pres: PreTiles = match self.engine_core {
            EngineCore::Legacy => PreTiles::Legacy(
                (0..num_tiles)
                    .into_par_iter()
                    .map(|ti| {
                        // workers tag themselves for allocation attribution and
                        // time the per-tile mapping work as worker-side CPU µs
                        let _tag = span::stage_scope(Stage::TilePrecompute);
                        let _map_span = span::enter(Stage::Mapping);
                        let sg = tiling.subgraph(g, ti);
                        let range = sg.vertex_range();
                        let degrees: Vec<u32> = range.clone().map(|v| g.degree(v) as u32).collect();
                        let mapping: VertexMapping = match cfg.mapping_policy {
                            MappingPolicy::DegreeAware => {
                                degree_aware::map(range.clone(), &degrees, k, c_pe)
                            }
                            MappingPolicy::Hashing => {
                                hashing::map(range.clone(), &degrees, k, c_pe)
                            }
                        };
                        // Max-busy vs mean-busy of the mapped work, for attribution:
                        // the A side's per-vertex work scales with `1 + degree` (one
                        // message per edge plus the self term), the B side's
                        // weight-stationary update is uniform per vertex.
                        let mut load_a = vec![0u64; k * k];
                        let mut load_b = vec![0u64; k * k];
                        for (i, v) in range.clone().enumerate() {
                            let pe = mapping.pe_of(v);
                            load_a[pe] += 1 + degrees[i] as u64;
                            load_b[pe] += 1;
                        }
                        let rho = |load: &[u64]| -> f64 {
                            let max = load.iter().copied().max().unwrap_or(0);
                            let total: u64 = load.iter().sum();
                            if total == 0 {
                                1.0
                            } else {
                                max as f64 * load.len() as f64 / total as f64
                            }
                        };
                        let (rho_a, rho_b) = (rho(&load_a), rho(&load_b));

                        // NoC configuration for this tile. A planned bypass config
                        // that fails validation (a planner bug) falls back to the
                        // plain mesh instead of poisoning the route walk.
                        let noc_cfg = if cfg.flexible_noc {
                            let plan = plan_bypass(&mapping, sg.edges());
                            let to_seg = |s: &aurora_mapping::plan::SegmentPlan| BypassSegment {
                                index: s.index,
                                from: s.from,
                                to: s.to,
                            };
                            let c = if plan.rows.is_empty() && plan.cols.is_empty() {
                                NocConfig::mesh(k)
                            } else {
                                NocConfig::with_bypass(
                                    k,
                                    plan.rows.iter().map(to_seg).collect(),
                                    plan.cols.iter().map(to_seg).collect(),
                                )
                            };
                            if c.validate().is_ok() {
                                c
                            } else {
                                NocConfig::mesh(k)
                            }
                        } else {
                            NocConfig::mesh(k)
                        };

                        // Compute time of the two pipeline stages on this tile.
                        let w_sg =
                            Workload::from_sizes(model, sg.num_vertices(), sg.num_edges(), shape);
                        let c_sg = w_sg.op_counts();
                        let t_a = cfg.cycles_of(aurora_partition::time_a(
                            &c_sg,
                            strategy.a.max(1),
                            cfg.flops_per_pe(),
                        ));
                        let t_b = if strategy.b == 0 {
                            0
                        } else {
                            cfg.cycles_of(aurora_partition::time_b(
                                &c_sg,
                                strategy.b,
                                cfg.flops_per_pe(),
                            ))
                        };

                        // Vertex-update traffic (the aggregation estimate goes
                        // through the route-table cache on the sequential path
                        // below). Without ring reconfiguration the vectors take
                        // mesh routes: same volume, roughly same hops, but the
                        // contention of a converging pattern — a 2× cycle
                        // multiplier on the ring estimate.
                        let est_b = if wf.model.has_vertex_update() {
                            let contention = if cfg.flexible_noc { 1 } else { 2 };
                            let mut e = noc_model::ring_traffic(
                                &rings_cfg,
                                sg.num_vertices(),
                                shape.f_in,
                                cfg.link_utilisation,
                            );
                            e.cycles *= contention;
                            e
                        } else {
                            OnChipEstimate::default()
                        };

                        TilePre {
                            mapping,
                            rho_a,
                            rho_b,
                            noc_cfg,
                            num_vertices: sg.num_vertices(),
                            num_edges: sg.num_edges(),
                            halo: sg.halo_vertices().len() as u64,
                            t_a,
                            t_b,
                            est_b,
                        }
                    })
                    .collect(),
            ),
            EngineCore::Arena => {
                // Uniform per-tile strides: the longest tile bounds the
                // high-degree slab (high_degree_cap is monotonic in n, so
                // every tile fits its slice), and each row/column plan is
                // bounded by the k physical wires.
                let max_len = (0..num_tiles)
                    .map(|ti| tiling.subgraph(g, ti).num_vertices())
                    .max()
                    .unwrap_or(0);
                let high_cap = aurora_mapping::high_degree_cap(max_len, k, c_pe);
                // A valid session layer whose fresh tiling and
                // Algorithm-2 split still match recomputes only the
                // tiles owning a touched vertex; any mismatch (or a
                // structural delta) recomputes everything into the
                // session slabs, repopulating the store — both paths
                // bit-identical to a from-scratch run.
                let slabs: &mut TileSlabs = match session {
                    Some((state, scope)) => {
                        let incremental = state.valid
                            && state.high_cap == high_cap
                            && state.profiles.len() == num_tiles
                            && state.split == Some((strategy.a, strategy.b))
                            && state.tiling.as_ref() == Some(&tiling);
                        dirty_mask = match (incremental, scope) {
                            (true, DirtyScope::Vertices(touched)) => {
                                let mut bounds: Vec<u32> =
                                    (0..num_tiles).map(|ti| tiling.range(ti).start).collect();
                                bounds.push(g.num_vertices() as u32);
                                Some(
                                    TileIndex::from_boundaries(bounds)
                                        .dirty_tiles(touched.iter().copied(), false),
                                )
                            }
                            _ => None,
                        };
                        if dirty_mask.is_some() {
                            state.slabs.begin_layer_incremental();
                        } else {
                            state
                                .slabs
                                .begin_layer(g.num_vertices(), num_tiles, k, high_cap);
                            state.tiling = Some(tiling.clone());
                            state.split = Some((strategy.a, strategy.b));
                            state.high_cap = high_cap;
                            state.profiles.clear();
                            state.profiles.resize(num_tiles, None);
                            state.valid = true;
                        }
                        session_profiles = Some(&mut state.profiles);
                        &mut state.slabs
                    }
                    None => {
                        scratch_slabs.begin_layer(g.num_vertices(), num_tiles, k, high_cap);
                        scratch_slabs
                    }
                };
                if cfg.mapping_policy == MappingPolicy::DegreeAware {
                    slabs.prepare_s_pes(k);
                }

                // Hand-split the slabs into disjoint per-tile slices; the
                // capacity tiling partitions the vertex space contiguously
                // from 0, so sequential splits land each tile's `pe_of`
                // slice at its global offset.
                let mut tasks: Vec<TileTask> = Vec::with_capacity(num_tiles);
                {
                    let mut pe_rest: &mut [u32] = &mut slabs.pe_of;
                    let mut hi_rest: &mut [u32] = &mut slabs.high;
                    let mut row_rest: &mut [SegmentPlan] = &mut slabs.row_segs;
                    let mut col_rest: &mut [SegmentPlan] = &mut slabs.col_segs;
                    let mut out_rest: &mut [TileOut] = &mut slabs.outs;
                    let mut offset = 0usize;
                    for ti in 0..num_tiles {
                        let range = tiling.subgraph(g, ti).vertex_range();
                        debug_assert_eq!(range.start as usize, offset, "tiles must be contiguous");
                        let n = (range.end - range.start) as usize;
                        offset += n;
                        let (pe_of, r) = std::mem::take(&mut pe_rest).split_at_mut(n);
                        pe_rest = r;
                        let (high, r) = std::mem::take(&mut hi_rest).split_at_mut(high_cap);
                        hi_rest = r;
                        let (rows, r) = std::mem::take(&mut row_rest).split_at_mut(k);
                        row_rest = r;
                        let (cols, r) = std::mem::take(&mut col_rest).split_at_mut(k);
                        col_rest = r;
                        let (out, r) = std::mem::take(&mut out_rest)
                            .split_first_mut()
                            .expect("one TileOut row per tile");
                        out_rest = r;
                        // Clean session tiles keep their slab contents
                        // from the previous apply; only dirty tiles
                        // enter the parallel fan-out.
                        if dirty_mask.as_ref().is_none_or(|m| m[ti]) {
                            tasks.push(TileTask {
                                ti,
                                pe_of,
                                high,
                                rows,
                                cols,
                                out,
                            });
                        }
                    }
                }

                tasks.into_par_iter().for_each(|task| {
                    with_worker(|w| {
                        // workers tag themselves for allocation attribution
                        // and time the per-tile mapping work as worker-side
                        // CPU µs — same spans as the legacy core
                        let _tag = span::stage_scope(Stage::TilePrecompute);
                        let _map_span = span::enter(Stage::Mapping);
                        let sg = tiling.subgraph(g, task.ti);
                        let range = sg.vertex_range();
                        w.degrees.clear();
                        w.degrees.extend(range.clone().map(|v| g.degree(v) as u32));
                        let n_high = match cfg.mapping_policy {
                            MappingPolicy::DegreeAware => degree_aware::map_into(
                                range.clone(),
                                &w.degrees,
                                k,
                                c_pe,
                                &mut w.map,
                                &mut *task.pe_of,
                                &mut *task.high,
                            ),
                            MappingPolicy::Hashing => hashing::map_into(
                                range.clone(),
                                &w.degrees,
                                k,
                                c_pe,
                                &mut w.map,
                                &mut *task.pe_of,
                                &mut *task.high,
                            ),
                        };

                        // Per-PE load and balance factors in one flat pass
                        // over the placement slice.
                        w.load_a.clear();
                        w.load_a.resize(k * k, 0);
                        w.load_b.clear();
                        w.load_b.resize(k * k, 0);
                        for (i, &pe) in task.pe_of.iter().enumerate() {
                            w.load_a[pe as usize] += 1 + w.degrees[i] as u64;
                            w.load_b[pe as usize] += 1;
                        }
                        let rho = |load: &[u64]| -> f64 {
                            let max = load.iter().copied().max().unwrap_or(0);
                            let total: u64 = load.iter().sum();
                            if total == 0 {
                                1.0
                            } else {
                                max as f64 * load.len() as f64 / total as f64
                            }
                        };
                        let (rho_a, rho_b) = (rho(&w.load_a), rho(&w.load_b));

                        // Bypass planning emits straight into the tile's
                        // slab slices; config construction is deferred to
                        // the sequential intern step below.
                        let (n_rows, n_cols) = if cfg.flexible_noc {
                            let view = MapView {
                                policy: cfg.mapping_policy,
                                range: range.clone(),
                                pe_of: &*task.pe_of,
                                k,
                                s_pes: &[],
                                high_degree: &task.high[..n_high],
                            };
                            aurora_mapping::plan::plan_bypass_into(
                                &view,
                                sg.edges(),
                                &mut w.plan,
                                &mut *task.rows,
                                &mut *task.cols,
                            )
                        } else {
                            (0, 0)
                        };

                        // Compute time of the two pipeline stages on this
                        // tile (the worker's cached workload, re-sized).
                        let w_sg = w.workload_for(model, shape);
                        w_sg.resize(sg.num_vertices(), sg.num_edges());
                        let c_sg = w_sg.op_counts();
                        let t_a = cfg.cycles_of(aurora_partition::time_a(
                            &c_sg,
                            strategy.a.max(1),
                            cfg.flops_per_pe(),
                        ));
                        let t_b = if strategy.b == 0 {
                            0
                        } else {
                            cfg.cycles_of(aurora_partition::time_b(
                                &c_sg,
                                strategy.b,
                                cfg.flops_per_pe(),
                            ))
                        };

                        // Vertex-update traffic, exactly as the legacy core
                        // estimates it.
                        let est_b = if wf.model.has_vertex_update() {
                            let contention = if cfg.flexible_noc { 1 } else { 2 };
                            let mut e = noc_model::ring_traffic(
                                &rings_cfg,
                                sg.num_vertices(),
                                shape.f_in,
                                cfg.link_utilisation,
                            );
                            e.cycles *= contention;
                            e
                        } else {
                            OnChipEstimate::default()
                        };

                        let halo = w.halo_count(range.clone(), g.num_vertices(), sg.edges());
                        *task.out = TileOut {
                            start: range.start,
                            end: range.end,
                            rho_a,
                            rho_b,
                            num_vertices: sg.num_vertices(),
                            num_edges: sg.num_edges(),
                            halo,
                            t_a,
                            t_b,
                            est_b,
                            n_high,
                            n_rows,
                            n_cols,
                        };
                    });
                });

                // Resolve each tile's plan into an interned NoC config —
                // sequential, so the intern table needs no lock and the
                // config order matches the walk.
                let mesh = slabs.mesh_cfg(k);
                for ti in 0..num_tiles {
                    slabs.resolve_noc_cfg(ti, k, cfg.flexible_noc, &mesh);
                }
                PreTiles::Arena {
                    slabs,
                    num_tiles,
                    policy: cfg.mapping_policy,
                    k,
                    high_cap,
                }
            }
        };
        drop(precompute_span);

        // Aggregation traffic through the cross-layer route-table/profile
        // cache. Lookups, estimates of hits, and insertions all run on
        // this sequential path — cache state and telemetry counters are
        // identical at every AURORA_THREADS value; only the O(E) binning
        // of missing tiles fans out over the pool.
        let route_span = span::enter(Stage::RouteTableBuild);
        let mut hits = 0u64;
        for ti in 0..pres.len() {
            let view = pres.view(ti);
            let table_id = cache.intern(view.noc_cfg, tel, &lscope);
            let key = ProfileKey {
                table_id,
                start: view.map.range.start,
                end: view.map.range.end,
                c_pe,
            };
            seq.keys.push(key);
            // Hits are estimated *now*, before this layer's misses insert
            // (and possibly evict) anything.
            match cache.profile(&key) {
                Some(p) => {
                    hits += 1;
                    // the cache's profile is exactly what a fresh bin
                    // would produce — refresh the session store with it
                    if let Some(store) = session_profiles.as_deref_mut() {
                        store[ti] = Some((view.noc_cfg.signature(), p.clone()));
                    }
                    seq.est_a_of.push(Some(p.estimate(
                        view.noc_cfg,
                        msg_words,
                        cfg.link_utilisation,
                    )));
                }
                None => {
                    seq.miss_tiles.push(ti);
                    seq.est_a_of.push(None);
                }
            }
        }
        // Decide which missing tiles replay their session profile before
        // any route table is touched: a clean tile whose stored profile
        // still carries its config's signature needs no table at all.
        // Every tile that will genuinely bin gets its table materialised
        // here, sequentially in tile order, so a rejected configuration
        // errors exactly where the historical build-at-intern did.
        seq.replay.clear();
        for &ti in seq.miss_tiles.iter() {
            let clean = dirty_mask.as_ref().is_some_and(|m| !m[ti]);
            let replays = clean
                && session_profiles.as_deref().is_some_and(|store| {
                    store[ti]
                        .as_ref()
                        .is_some_and(|(sig, _)| *sig == pres.view(ti).noc_cfg.signature())
                });
            if !replays {
                cache.ensure_built(seq.keys[ti].table_id)?;
            }
            seq.replay.push(replays);
        }
        drop(route_span);
        // Misses bin in parallel but resolve sequentially: the first
        // erroring tile (in tile order) decides the returned `SimError`,
        // independent of AURORA_THREADS.
        let traffic_span = span::enter(Stage::TrafficKernels);
        let binned: Vec<Result<TrafficProfile, aurora_noc::NocError>> = {
            let cache_ref: &TrafficCache = cache;
            let miss_ref: &[usize] = &seq.miss_tiles;
            let keys_ref: &[ProfileKey] = &seq.keys;
            let replay_ref: &[bool] = &seq.replay;
            let pres_ref = &pres;
            let store_ref = session_profiles.as_deref();
            (0..miss_ref.len())
                .into_par_iter()
                .map(|i| {
                    let _tag = span::stage_scope(Stage::TrafficKernels);
                    let ti = miss_ref[i];
                    // A clean session tile substitutes its stored profile
                    // — same mapping, same edges, same route table (the
                    // signature stamp is the invalidation hook) ⇒ the
                    // same bin result without the O(E) pass or the O(k⁴)
                    // table build. The sequential pass above decided.
                    if replay_ref[i] {
                        let (_, p) = store_ref.expect("replay implies a session")[ti]
                            .as_ref()
                            .expect("replay implies a stored profile");
                        return Ok(p.clone());
                    }
                    let sg = tiling.subgraph(g, ti);
                    TrafficProfile::bin(
                        cache_ref.table(keys_ref[ti].table_id),
                        &pres_ref.view(ti).map,
                        sg.edges(),
                    )
                })
                .collect()
        };
        cache.hits += hits;
        cache.misses += seq.miss_tiles.len() as u64;
        tel.counter_add(names::NOC_TILE_PROFILE_HITS, &lscope, hits);
        tel.counter_add(
            names::NOC_TILE_PROFILE_MISSES,
            &lscope,
            seq.miss_tiles.len() as u64,
        );
        for (&ti, profile) in seq.miss_tiles.iter().zip(binned) {
            let profile = profile?;
            seq.est_a_of[ti] =
                Some(profile.estimate(pres.view(ti).noc_cfg, msg_words, cfg.link_utilisation));
            if let Some(store) = session_profiles.as_deref_mut() {
                store[ti] = Some((pres.view(ti).noc_cfg.signature(), profile.clone()));
            }
            cache.insert_profile(seq.keys[ti], profile);
        }
        for e in &seq.est_a_of {
            seq.est_as.push(e.ok_or_else(|| {
                SimError::Internal("tile resolved neither as a hit nor a binned miss".into())
            })?);
        }
        drop(traffic_span);

        // Stateful walk: memory controller, telemetry, and the instruction
        // trace consume the precomputed tiles strictly in order.
        let walk_span = span::enter(Stage::EngineWalk);
        for ti in 0..pres.len() {
            let pre = pres.view(ti);
            if tel.is_enabled() {
                // scope strings only matter to an attached recorder, and
                // building them clones — skip both when disabled
                mem.set_scope(lscope.tile(ti));
            }
            aurora_mapping::record_quality_view(tel, &lscope, &pre.map);
            let (rho_a, rho_b) = (pre.rho_a, pre.rho_b);
            let (t_a, t_b) = (pre.t_a, pre.t_b);
            let (est_a, est_b) = (seq.est_as[ti], pre.est_b);
            w_tile.resize(pre.num_vertices, pre.num_edges);
            let w_sg = &w_tile;
            let c_sg = w_sg.op_counts();
            if trace {
                instructions.push(Instruction::MapSubgraph {
                    tile: ti,
                    vertices: pre.num_vertices,
                    high_degree: pre.map.high_degree.len(),
                });
            }
            if cfg.flexible_noc {
                reconfigs += 1;
                if trace {
                    instructions.push(Instruction::Configure {
                        tile: ti,
                        bypass_segments: pre.noc_cfg.row_bypass.len()
                            + pre.noc_cfg.col_bypass.len(),
                        reconfig_cycles: (2 * k - 1) as u64,
                    });
                }
            }

            // DRAM traffic of this tile.
            let mut mem_cycles = 0u64;
            if ti == 0 {
                // Weights are loaded once per layer into sub-accelerator B
                // only — not duplicated per PE (§VI-B).
                mem_cycles += mem.stream_read(w_sg.weight_bytes());
            }
            let owned_bytes = (pre.num_vertices * shape.f_in * 8) as u64;
            mem_cycles += mem.stream_read(owned_bytes);
            if wf.model.uses_edge_embeddings() {
                let e_bytes = (pre.num_edges * raw_msg_words * 8) as u64;
                mem_cycles += mem.stream_read(e_bytes);
            }
            // Cross-tile neighbours are gathered once per tile (destination-
            // stationary aggregation); sparse input features stream in
            // compressed form — the flexible PE consumes CSR payloads
            // directly, which is how Aurora "fully utilizes the on-chip
            // buffer capacity" where baselines re-fetch (§VI-B).
            let halo = pre.halo;
            let halo_bytes = (halo as f64 * (shape.f_in * 8) as f64 * compress) as u64;
            mem_cycles += mem.random_read(halo_bytes);
            let out_dim = if wf.model.has_vertex_update() {
                shape.f_out
            } else {
                raw_msg_words.max(shape.f_in)
            };
            mem_cycles += mem.stream_write((pre.num_vertices * out_dim * 8) as u64);
            let d_cycles = mem.to_accel_cycles(mem_cycles, cfg.clock_mhz);
            if trace {
                instructions.push(Instruction::LoadTile {
                    tile: ti,
                    bytes: owned_bytes,
                });
                for p in &wf.phases {
                    let cyc = match p.sub_accelerator() {
                        aurora_model::phase::SubAccelerator::A => t_a + est_a.cycles,
                        aurora_model::phase::SubAccelerator::B => t_b + est_b.cycles,
                    };
                    instructions.push(Instruction::ExecutePhase {
                        tile: ti,
                        phase: *p,
                        cycles: cyc,
                    });
                }
                instructions.push(Instruction::WriteBack {
                    tile: ti,
                    bytes: (pre.num_vertices * out_dim * 8) as u64,
                });
            }

            // The two sub-accelerators pipeline: a tile's stage time is the
            // slower of A (edge update + aggregation + its traffic) and B
            // (vertex update + ring traffic) — B works on the previous
            // tile's output while A fills.
            let exec = (t_a + est_a.cycles).max(t_b + est_b.cycles);
            seq.exec_cycles.push(exec);
            seq.dram_cycles.push(d_cycles);

            let slot = exec.max(d_cycles);
            if tel.is_enabled() {
                est_a.record_to(tel, &lscope.phase("aggregation"));
                est_b.record_to(tel, &lscope.phase("vertex-update"));
                tel.span(
                    tracks::TILES,
                    &format!("tile {ti}"),
                    cursor,
                    slot,
                    vec![
                        ("exec_cycles".into(), exec.into()),
                        ("dram_cycles".into(), d_cycles.into()),
                        ("hidden_cycles".into(), exec.min(d_cycles).into()),
                    ],
                );
                tel.span(
                    tracks::SUB_A,
                    &format!("edge update + aggregation (tile {ti})"),
                    cursor,
                    t_a + est_a.cycles,
                    vec![
                        ("compute_cycles".into(), t_a.into()),
                        ("noc_cycles".into(), est_a.cycles.into()),
                        ("vertices".into(), pre.num_vertices.into()),
                        ("edges".into(), pre.num_edges.into()),
                    ],
                );
                if t_b + est_b.cycles > 0 {
                    tel.span(
                        tracks::SUB_B,
                        &format!("vertex update (tile {ti})"),
                        cursor,
                        t_b + est_b.cycles,
                        vec![
                            ("compute_cycles".into(), t_b.into()),
                            ("noc_cycles".into(), est_b.cycles.into()),
                        ],
                    );
                }
                if d_cycles > 0 {
                    tel.span(
                        tracks::DRAM,
                        &format!("tile {ti} off-chip traffic"),
                        cursor,
                        d_cycles,
                        vec![
                            ("owned_bytes".into(), owned_bytes.into()),
                            ("halo_vertices".into(), halo.into()),
                        ],
                    );
                }
                if est_a.flit_hops + est_b.flit_hops > 0 {
                    // A and B traffic share the fabric concurrently, so the
                    // track span is clamped to the tile's slot
                    tel.span(
                        tracks::NOC,
                        &format!("tile {ti} on-chip traffic"),
                        cursor,
                        (est_a.cycles + est_b.cycles).clamp(1, slot.max(1)),
                        vec![
                            (
                                "flit_hops".into(),
                                (est_a.flit_hops + est_b.flit_hops).into(),
                            ),
                            (
                                "bypass_hops".into(),
                                (est_a.bypass_hops + est_b.bypass_hops).into(),
                            ),
                        ],
                    );
                }
                tel.observe("tile.exec_cycles", &lscope, exec);
                tel.observe("tile.dram_cycles", &lscope, d_cycles);
                tel.counter_add("tile.hidden_cycles", &lscope, exec.min(d_cycles));
            }

            // Bound attribution: keep the losers' slack instead of
            // throwing the max() decisions away.
            let attr = TileAttribution::new(
                layer_idx,
                ti,
                SideAttribution::new(t_a, est_a.cycles, rho_a, est_a.hot_router),
                SideAttribution::new(t_b, est_b.cycles, rho_b, est_b.hot_router),
                d_cycles,
            );
            debug_assert_eq!(attr.slot_cycles, slot, "attribution must cover the slot");
            if tel.is_enabled() {
                attr.record_to(tel, &lscope.tile(ti));
            }
            busy_a += t_a + est_a.cycles;
            busy_b += t_b + est_b.cycles;
            tiles_out.push(attr);

            cursor += slot;
            compute_total += t_a + t_b;
            phase_cycles.sub_a_compute += t_a;
            phase_cycles.sub_b_compute += t_b;
            phase_cycles.sub_a_noc += est_a.cycles;
            phase_cycles.sub_b_noc += est_b.cycles;
            noc_total = noc_total.then(&est_a).then(&est_b);

            // Activity counters.
            for p in [Phase::EdgeUpdate, Phase::Aggregation, Phase::VertexUpdate] {
                let (m, a) = w_sg.phase_mult_add(p);
                activity.fp_mults += m;
                activity.fp_adds += a;
            }
            // bank-buffer traffic heuristic: one operand word per op plus
            // the tile's feature I/O
            activity.local_sram_words +=
                c_sg.total() + (pre.num_vertices * (shape.f_in + out_dim)) as u64;
            activity.noc_flit_hops += est_a.flit_hops + est_b.flit_hops;
            // datapath mode switches across the phase sequence, per tile
            reconfigs += wf.mode_switches();
        }
        drop(walk_span);
        let _finalize_span = span::enter(Stage::Finalize);

        // --- Double-buffered pipeline combination ------------------------
        // the crossbar streams each tile's data while the PEs execute, and
        // the next tile prefetches during the current tile's execution, so
        // each tile costs max(execution, its off-chip traffic); the first
        // NoC reconfiguration is exposed, later ones overlap.
        let mut total = 0u64;
        for i in 0..seq.exec_cycles.len() {
            total += seq.exec_cycles[i].max(seq.dram_cycles[i]);
        }
        if cfg.flexible_noc {
            total += (2 * k - 1) as u64; // first reconfiguration exposed
        }
        // mapping + partition decisions (~100 cycles) overlap with the
        // previous tile's execution; only the first is exposed.
        total += 100;

        if tel.is_enabled() {
            debug_assert_eq!(
                cursor - layer_start,
                total,
                "trace timeline must cover the layer exactly"
            );
            tel.counter_add("layer.total_cycles", &lscope, total);
            tel.counter_add("layer.compute_cycles", &lscope, compute_total);
            tel.counter_add("layer.reconfigurations", &lscope, reconfigs);
            tel.gauge_set("layer.tiles", &lscope, tiling.num_tiles() as f64);
        }

        let dram_total: u64 = seq.dram_cycles.iter().sum();
        let report = LayerReport {
            layer: layer_idx,
            shape,
            partition: strategy,
            tiles: tiling.num_tiles(),
            op_counts: counts,
            compute_cycles: compute_total,
            phase_cycles,
            noc: NocReport::from(noc_total),
            dram_cycles: dram_total,
            total_cycles: total,
        };

        // --- Bottleneck profile ------------------------------------------
        let mut mix = crate::profile::BoundMix::default();
        for t in &tiles_out[attr_start..] {
            mix = mix.add(&t.mix);
        }
        let overhead_cycles = total - mix.total();
        debug_assert_eq!(
            mix.total() + overhead_cycles,
            total,
            "attributed cycles plus overhead must equal the layer total"
        );
        let slot_total = mix.total().max(1) as f64;
        let layer_dram_bytes = mem.counters().total_bytes() - dram_bytes_before;
        let layer_profile = LayerProfile {
            layer: layer_idx,
            tiles: tiling.num_tiles(),
            mix,
            overhead_cycles,
            util_a: busy_a as f64 / slot_total,
            util_b: busy_b as f64 / slot_total,
            util_dram: dram_total as f64 / slot_total,
            ops: counts.total(),
            dram_bytes: layer_dram_bytes,
            operational_intensity: counts.total() as f64 / (layer_dram_bytes.max(1)) as f64,
            dominant: mix.dominant(),
        };
        Ok((report, reconfigs, layer_profile))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_graph::{generate, Dataset};

    fn small_sim() -> AuroraSimulator {
        AuroraSimulator::new(AcceleratorConfig::small(4))
    }

    fn toy_graph() -> Csr {
        generate::rmat(128, 800, Default::default(), 3)
    }

    /// One-shot run through the request API — what the deprecated
    /// `simulate` wrapper family used to spell.
    fn run_one(
        sim: &AuroraSimulator,
        g: &Csr,
        model: ModelId,
        shapes: &[LayerShape],
        workload: &str,
    ) -> SimReport {
        run_one_density(sim, g, model, shapes, workload, 1.0)
    }

    fn run_one_density(
        sim: &AuroraSimulator,
        g: &Csr,
        model: ModelId,
        shapes: &[LayerShape],
        workload: &str,
        density: f64,
    ) -> SimReport {
        let req = SimRequest::builder(model)
            .config(*sim.config())
            .inline_graph(g.clone())
            .layers(shapes)
            .workload(workload)
            .input_density(density)
            .build()
            .unwrap();
        sim.run(&req).unwrap()
    }

    #[test]
    fn gcn_runs_end_to_end() {
        let g = toy_graph();
        let r = run_one(
            &small_sim(),
            &g,
            ModelId::Gcn,
            &[LayerShape::new(32, 16)],
            "toy",
        );
        assert!(r.total_cycles > 0);
        assert!(r.dram.total_bytes() > 0);
        assert!(r.energy_joules() > 0.0);
        assert_eq!(r.layers.len(), 1);
        assert!(r.layers[0].partition.a > 0 && r.layers[0].partition.b > 0);
    }

    #[test]
    fn all_models_simulate() {
        let g = toy_graph();
        for id in ModelId::ALL {
            let r = run_one(&small_sim(), &g, id, &[LayerShape::new(16, 8)], "toy");
            assert!(r.total_cycles > 0, "{}", id.name());
            let spec = id.spec();
            if !spec.has_vertex_update() {
                assert_eq!(r.layers[0].partition.b, 0, "{}", id.name());
            }
        }
    }

    #[test]
    fn two_layers_cost_more_than_one() {
        let g = toy_graph();
        let s = small_sim();
        let one = run_one(&s, &g, ModelId::Gcn, &[LayerShape::new(32, 16)], "t");
        let two = run_one(
            &s,
            &g,
            ModelId::Gcn,
            &[LayerShape::new(32, 16), LayerShape::new(16, 8)],
            "t",
        );
        assert!(two.total_cycles > one.total_cycles);
        assert_eq!(two.layers.len(), 2);
    }

    #[test]
    fn degree_aware_beats_hashing_on_skewed_graph() {
        let g = generate::rmat(256, 4000, Default::default(), 9);
        let shape = [LayerShape::new(64, 32)];
        let da = run_one(&small_sim(), &g, ModelId::Gcn, &shape, "t");
        let hash_cfg = AcceleratorConfig {
            mapping_policy: MappingPolicy::Hashing,
            flexible_noc: false,
            ..AcceleratorConfig::small(4)
        };
        let hb = run_one(
            &AuroraSimulator::new(hash_cfg),
            &g,
            ModelId::Gcn,
            &shape,
            "t",
        );
        assert!(
            da.noc_cycles() <= hb.noc_cycles(),
            "degree-aware {} !≤ hashing {}",
            da.noc_cycles(),
            hb.noc_cycles()
        );
    }

    #[test]
    fn instruction_trace_follows_walkthrough() {
        let g = generate::ring(64);
        let cfg = AcceleratorConfig {
            trace_instructions: true,
            ..AcceleratorConfig::small(4)
        };
        let r = run_one(
            &AuroraSimulator::new(cfg),
            &g,
            ModelId::Gcn,
            &[LayerShape::new(8, 4)],
            "t",
        );
        let mnemonics: Vec<&str> = r.instructions.iter().map(|i| i.mnemonic()).collect();
        // §III-E order: request → workflow → partition → map → configure →
        // load → execute → write back
        assert_eq!(mnemonics[0], "REQ");
        assert_eq!(mnemonics[1], "WFG");
        assert_eq!(mnemonics[2], "PRT");
        let map_pos = mnemonics.iter().position(|m| *m == "MAP").unwrap();
        let cfg_pos = mnemonics.iter().position(|m| *m == "CFG").unwrap();
        let exe_pos = mnemonics.iter().position(|m| *m == "EXE").unwrap();
        assert!(map_pos < cfg_pos && cfg_pos < exe_pos);
        assert!(mnemonics.contains(&"WRB"));
    }

    #[test]
    fn sparse_inputs_cut_onchip_traffic_dense_do_not() {
        let g = generate::rmat(256, 2000, Default::default(), 6);
        let shapes = [LayerShape::new(128, 16)];
        let sim = small_sim();
        let dense = run_one_density(&sim, &g, ModelId::Gcn, &shapes, "t", 1.0);
        let sparse = run_one_density(&sim, &g, ModelId::Gcn, &shapes, "t", 0.01);
        assert!(
            sparse.noc_cycles() < dense.noc_cycles(),
            "sparse {} !< dense {}",
            sparse.noc_cycles(),
            dense.noc_cycles()
        );
        // Reddit-like density gets no compression at all
        let reddit_like = run_one_density(&sim, &g, ModelId::Gcn, &shapes, "t", 0.52);
        assert_eq!(reddit_like.noc_cycles(), dense.noc_cycles());
    }

    #[test]
    fn density_only_affects_the_input_layer() {
        let g = generate::rmat(128, 900, Default::default(), 2);
        let shapes = [LayerShape::new(64, 32), LayerShape::new(32, 8)];
        let sim = small_sim();
        let a = run_one_density(&sim, &g, ModelId::Gcn, &shapes, "t", 0.05);
        let b = run_one_density(&sim, &g, ModelId::Gcn, &shapes, "t", 1.0);
        assert!(a.layers[0].noc.cycles < b.layers[0].noc.cycles);
        assert_eq!(a.layers[1].noc, b.layers[1].noc, "hidden layers are dense");
    }

    #[test]
    fn phase_cycles_attribution_consistent() {
        let g = generate::rmat(200, 1500, Default::default(), 8);
        let r = run_one(
            &small_sim(),
            &g,
            ModelId::Gcn,
            &[LayerShape::new(32, 16)],
            "t",
        );
        let l = &r.layers[0];
        assert_eq!(
            l.phase_cycles.sub_a_compute + l.phase_cycles.sub_b_compute,
            l.compute_cycles
        );
        assert_eq!(
            l.phase_cycles.sub_a_noc + l.phase_cycles.sub_b_noc,
            l.noc.cycles
        );
        // EdgeConv: everything lands on the A side
        let e = run_one(
            &small_sim(),
            &g,
            ModelId::EdgeConv1,
            &[LayerShape::new(32, 32)],
            "t",
        );
        assert_eq!(e.layers[0].phase_cycles.sub_b_compute, 0);
        assert_eq!(e.layers[0].phase_cycles.sub_b_noc, 0);
    }

    #[test]
    fn larger_graph_costs_more() {
        let small = generate::rmat(64, 256, Default::default(), 1);
        let large = generate::rmat(512, 4096, Default::default(), 1);
        let s = small_sim();
        let shape = [LayerShape::new(32, 16)];
        let rs = run_one(&s, &small, ModelId::Gcn, &shape, "s");
        let rl = run_one(&s, &large, ModelId::Gcn, &shape, "l");
        assert!(rl.total_cycles > rs.total_cycles);
        assert!(rl.dram.total_bytes() > rs.dram.total_bytes());
    }

    #[test]
    fn batch_amortises_weight_loads() {
        let graphs: Vec<Csr> = (0..4)
            .map(|s| generate::rmat(96, 700, Default::default(), s))
            .collect();
        let refs: Vec<&Csr> = graphs.iter().collect();
        let sim = small_sim();
        let shapes = [LayerShape::new(64, 32)];
        let batch = sim
            .try_simulate_batch(&refs, ModelId::Gcn, &shapes, "batch")
            .unwrap();
        let singles: u64 = graphs
            .iter()
            .map(|g| {
                run_one(&sim, g, ModelId::Gcn, &shapes, "one")
                    .dram
                    .total_bytes()
            })
            .sum();
        assert_eq!(batch.layers.len(), 4);
        assert!(
            batch.dram.total_bytes() < singles,
            "resident weights must save DRAM traffic: {} !< {singles}",
            batch.dram.total_bytes()
        );
        // layer indices are globally unique
        let ids: std::collections::HashSet<_> = batch.layers.iter().map(|l| l.layer).collect();
        assert_eq!(ids.len(), 4);
        assert!(batch.energy_joules() > 0.0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]
        #[test]
        fn engine_invariants_on_random_workloads(
            n in 16usize..300,
            density in 0.0f64..1.0,
            f_in in 4usize..64,
            f_out in 2usize..32,
            seed in 0u64..50,
        ) {
            let g = generate::rmat(n, n * 4, Default::default(), seed);
            let r = run_one_density(
                &small_sim(),
                &g,
                ModelId::Gcn,
                &[LayerShape::new(f_in, f_out)],
                "prop",
                density,
            );
            // cycles and energy are positive and layers sum to the total
            proptest::prop_assert!(r.total_cycles > 0);
            proptest::prop_assert!(r.energy_joules() > 0.0);
            let sum: u64 = r.layers.iter().map(|l| l.total_cycles).sum();
            proptest::prop_assert_eq!(sum, r.total_cycles);
            // DRAM must at least move the input features and outputs once
            let floor = (n * f_in * 8) as u64;
            proptest::prop_assert!(r.dram.total_bytes() >= floor);
            // activity mirrors the op counts
            let c = r.layers[0].op_counts;
            proptest::prop_assert_eq!(
                r.activity.fp_mults + r.activity.fp_adds,
                c.total()
            );
        }
    }

    #[test]
    fn telemetry_records_timeline_and_metrics() {
        let g = toy_graph();
        let t = Telemetry::enabled();
        let shapes = [LayerShape::new(32, 16), LayerShape::new(16, 8)];
        let r = run_one(
            &small_sim().with_telemetry(t.clone()),
            &g,
            ModelId::Gcn,
            &shapes,
            "toy",
        );

        // metrics mirror the report exactly
        assert!(!r.metrics.is_empty());
        assert_eq!(
            r.metrics.counter_total("dram.read_bytes"),
            r.dram.read_bytes
        );
        assert_eq!(
            r.metrics.counter_total("dram.write_bytes"),
            r.dram.write_bytes
        );
        assert_eq!(
            r.metrics.counter_total("layer.total_cycles"),
            r.total_cycles
        );
        let scope0 = Scope::model("GCN").layer(0);
        assert_eq!(
            r.metrics.gauge_at("partition.pes_a", &scope0),
            Some(r.layers[0].partition.a as f64)
        );
        assert!(r
            .metrics
            .histogram_at("tile.exec_cycles", &scope0)
            .is_some());

        // timeline has the sub-accelerator tracks and per-layer spans
        let json = t.trace_json().unwrap();
        assert!(json.contains(tracks::SUB_A));
        assert!(json.contains(tracks::SUB_B));
        assert!(json.contains(tracks::DRAM));
        assert!(json.contains("map+partition layer 1"));

        // an unobserved run produces identical numbers and no metrics
        let plain = run_one(&small_sim(), &g, ModelId::Gcn, &shapes, "toy");
        assert_eq!(plain.total_cycles, r.total_cycles);
        assert_eq!(plain.dram, r.dram);
        assert!(plain.metrics.is_empty());
    }

    #[test]
    fn run_matches_wrapper_and_types_errors() {
        let g = toy_graph();
        let shapes = [LayerShape::new(32, 16)];
        let sim = small_sim();
        #[allow(deprecated)] // the wrapper itself is what this test pins
        let legacy = sim.simulate(&g, ModelId::Gcn, &shapes, "toy");
        // same graph inline through the request path: identical report
        let req = SimRequest::builder(ModelId::Gcn)
            .config(AcceleratorConfig::small(4))
            .inline_graph(g.clone())
            .layers(&shapes)
            .workload("toy")
            .build()
            .unwrap();
        let via_run = sim.run(&req).unwrap();
        assert_eq!(via_run, legacy);
        // the request's config wins over the simulator's (purity contract)
        let k8 = SimRequest {
            config: AcceleratorConfig::small(8),
            ..req.clone()
        };
        assert_ne!(sim.run(&k8).unwrap().total_cycles, legacy.total_cycles);
        // a spec graph resolves deterministically to the same report
        let spec_req = SimRequest::builder(ModelId::Gcn)
            .config(AcceleratorConfig::small(4))
            .rmat(128, 800, 3)
            .layers(&shapes)
            .workload("toy")
            .build()
            .unwrap();
        assert_eq!(sim.run(&spec_req).unwrap(), legacy);
        // user-reachable bad inputs are typed errors, not panics
        let empty_layers = SimRequest {
            layers: vec![],
            ..req.clone()
        };
        assert_eq!(sim.run(&empty_layers).unwrap_err(), SimError::EmptyLayers);
        let empty_graph = SimRequest {
            graph: GraphSpec::Inline(Csr::empty(0)),
            ..req.clone()
        };
        assert_eq!(sim.run(&empty_graph).unwrap_err(), SimError::EmptyGraph);
        let bad_density = SimRequest {
            options: crate::request::SimOptions {
                input_density: 2.0,
                ..req.options.clone()
            },
            ..req.clone()
        };
        assert!(matches!(
            sim.run(&bad_density).unwrap_err(),
            SimError::InvalidDensity { .. }
        ));
        assert_eq!(
            sim.try_simulate_batch(&[], ModelId::Gcn, &shapes, "b")
                .unwrap_err(),
            SimError::EmptyBatch
        );
    }

    #[test]
    fn scaled_dataset_simulates_with_paper_config() {
        // the full 32×32 configuration on a scaled-down Cora
        let spec = Dataset::Cora.spec().scaled(8);
        let g = spec.synthesize();
        let r = run_one(
            &AuroraSimulator::paper(),
            &g,
            ModelId::Gcn,
            &[LayerShape::new(spec.feature_dim.min(128), 16)],
            "Cora/8",
        );
        assert!(r.total_cycles > 0);
        assert!(r.energy.reconfiguration_fraction() < 0.03);
    }
}
