//! On-chip traffic estimation via route-table kernels.
//!
//! The paper's simulator measures on-chip communication as "the total
//! number of on-chip communication cycles", driven by "communication
//! amount, hop count, and efficient on-chip bandwidth" (§VI-C). This
//! module charges every message its route (derived from the *same*
//! routing functions as the cycle-level `aurora-noc` engine, precomputed
//! into a [`RouteTable`]), accumulates per-router load, and converts the
//! profile to cycles as the max of
//!
//! * the **bandwidth bound** — total flit-hops over usable link capacity,
//! * the **hotspot bound** — the busiest router's forwarded flits
//!   (one flit per cycle per router output),
//!
//! plus the pipeline fill (average hop count + message serialisation).
//! The estimate is validated against the cycle-level engine in the tests.
//!
//! Routes are pure functions of `(NocConfig, src, dst)` and a `k × k`
//! fabric has only k⁴ PE pairs, so [`aggregation_traffic`] runs as a
//! **two-pass kernel** — an O(E) counting pass binning edges into a flat
//! k⁴ `(src_pe, dst_pe)` histogram, then one application of each distinct
//! pair's precomputed [`RouteSummary`] scaled by its multiplicity —
//! instead of the seed's O(E·hops) per-edge walk. The per-edge walker
//! survives as a `#[cfg(test)]` oracle proven bit-identical (including
//! the `NocError` cases) by the `kernel_matches_legacy_oracle` property
//! test below.

use aurora_mapping::{MapView, VertexMapping};
use aurora_noc::routing::{RouteSummary, RouteTable};
use aurora_noc::{NocConfig, NocError, TopologyMode};
use aurora_telemetry::{Scope, Telemetry};
use serde::{Deserialize, Serialize};

/// Default achievable fraction of raw link bandwidth under irregular
/// traffic, now configurable per instance via
/// `AcceleratorConfig::link_utilisation`.
///
/// §VI-C attributes on-chip time to "communication amount, hop count,
/// and efficient on-chip bandwidth": graph-irregular traffic never
/// saturates every link every cycle — head-of-line blocking in the
/// wormhole routers and the skewed row/column loads of power-law
/// neighbourhoods leave a sizeable fraction of link-cycles idle. 0.6
/// matches the mean utilisation the cycle-level `aurora-noc` engine
/// measures on R-MAT aggregation patterns (see
/// `estimate_tracks_detailed_simulation`).
pub const DEFAULT_LINK_UTILISATION: f64 = 0.6;

/// Estimated on-chip communication profile of one phase on one tile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnChipEstimate {
    /// Estimated cycles for the communication.
    pub cycles: u64,
    /// Total flit-hops.
    pub flit_hops: u64,
    /// Messages routed.
    pub messages: u64,
    /// Mean hops per message.
    pub avg_hops: f64,
    /// Flits forwarded by the busiest router.
    pub max_router_load: u64,
    /// Linear id of the busiest router (`None` when traffic is empty or
    /// perfectly uniform, e.g. ring circulation).
    pub hot_router: Option<usize>,
    /// Flit-hops that used bypass segments.
    pub bypass_hops: u64,
}

impl OnChipEstimate {
    /// Merges two phase estimates that execute sequentially.
    pub fn then(&self, o: &OnChipEstimate) -> OnChipEstimate {
        OnChipEstimate {
            cycles: self.cycles + o.cycles,
            flit_hops: self.flit_hops + o.flit_hops,
            messages: self.messages + o.messages,
            avg_hops: if self.messages + o.messages == 0 {
                0.0
            } else {
                (self.avg_hops * self.messages as f64 + o.avg_hops * o.messages as f64)
                    / (self.messages + o.messages) as f64
            },
            max_router_load: self.max_router_load.max(o.max_router_load),
            hot_router: if o.max_router_load > self.max_router_load {
                o.hot_router
            } else {
                self.hot_router
            },
            bypass_hops: self.bypass_hops + o.bypass_hops,
        }
    }

    /// Records this phase estimate under `scope` as `noc.*` counters
    /// (cycles, flit-hops, messages, bypass usage) and hotspot gauges.
    /// Scopes are expected to carry the phase label so the two
    /// sub-accelerators' traffic stays separable.
    pub fn record_to(&self, telemetry: &Telemetry, scope: &Scope) {
        if !telemetry.is_enabled() || self.messages == 0 {
            return;
        }
        telemetry.counter_add("noc.cycles", scope, self.cycles);
        telemetry.counter_add("noc.flit_hops", scope, self.flit_hops);
        telemetry.counter_add("noc.messages", scope, self.messages);
        telemetry.counter_add("noc.bypass_hops", scope, self.bypass_hops);
        telemetry.gauge_set("noc.avg_hops", scope, self.avg_hops);
        telemetry.gauge_set("noc.max_router_load", scope, self.max_router_load as f64);
        if let Some(hot) = self.hot_router {
            telemetry.gauge_set("noc.hot_router", scope, hot as f64);
        }
    }
}

/// Directed link count of the configured fabric.
fn link_count(cfg: &NocConfig) -> u64 {
    let k = cfg.k as u64;
    let mesh = 4 * k * (k - 1);
    let bypass = 2 * (cfg.row_bypass.len() + cfg.col_bypass.len()) as u64;
    let wrap = if cfg.mode == TopologyMode::Rings {
        k
    } else {
        0
    };
    mesh + bypass + wrap
}

/// Per-tile aggregation traffic at **unit flit scale**: the outcome of
/// the O(E) counting pass, independent of the message size.
///
/// Every stored quantity is linear in `flits_per_msg` (per-router
/// forwarded flits, total flit-hops, bypass flit-hops all scale by it;
/// message and hop counts don't depend on it at all), so one profile
/// serves **every layer** of a run over the same tile and NoC config:
/// [`TrafficProfile::estimate`] rescales and applies the only non-linear
/// step — the eject-port `div_ceil` — *after* scaling, which is exactly
/// what charging the full-size messages directly would compute. The
/// engine caches these across layers (`noc.tile_profile.{hits,misses}`).
#[derive(Debug, Clone)]
pub struct TrafficProfile {
    /// Mesh radix the profile was binned for (sanity-checked on use).
    k: usize,
    /// Per-router forwarded messages (1 flit/message scale).
    load: Vec<u64>,
    /// Per-router ejected messages.
    eject: Vec<u64>,
    /// Messages routed (edges sourced in the tile).
    messages: u64,
    /// Total router-to-router hops across all messages.
    total_hops: u64,
    /// Hops that rode bypass segments.
    bypass_hops: u64,
}

impl TrafficProfile {
    /// O(E) counting pass + one O(k⁴) application of the route table: for
    /// each edge `(u, v)` sourced in the tile a message flows from `PE(u)`
    /// towards `PE(v)` (in-tile destination) or down to the memory port at
    /// the top of its column (out-of-tile destination — the partial
    /// aggregate leaves via the crossbar). Edges bin into a flat k⁴
    /// `(src_pe, dst_pe)` histogram; each *distinct* pair's precomputed
    /// summary is then applied once, scaled by its multiplicity.
    ///
    /// Unroutable pairs surface as the same [`NocError`] (first erroring
    /// edge in iteration order) the per-edge walk would produce.
    pub fn bin(
        table: &RouteTable,
        mapping: &MapView<'_>,
        edges: impl Iterator<Item = (u32, u32)>,
    ) -> Result<TrafficProfile, NocError> {
        let k = table.config().k;
        let n = k * k;
        let mut hist = vec![0u64; n * n];
        let mut messages = 0u64;
        let start = mapping.range.start;
        let len = mapping.range.end - start;
        for (u, v) in edges {
            // single-compare range test: out-of-range wraps to a huge value
            let lu = u.wrapping_sub(start);
            if lu >= len {
                continue; // not sourced here
            }
            let src = mapping.pe_of[lu as usize] as usize;
            let lv = v.wrapping_sub(start);
            let dst = if lv < len {
                mapping.pe_of[lv as usize] as usize
            } else {
                // exits via the memory crossbar at the top of src's column
                src % k
            };
            let slot = &mut hist[src * n + dst];
            if *slot == 0 {
                // certify each distinct pair on first sight — the first
                // erroring edge is the first occurrence of an erroring
                // pair, so the error order matches a per-edge check
                table.summary(src, dst)?;
            }
            *slot += 1;
            messages += 1;
        }

        let mut load = vec![0u64; n];
        let mut eject = vec![0u64; n];
        let mut total_hops = 0u64;
        let mut bypass_hops = 0u64;
        for src in 0..n {
            for dst in 0..n {
                let count = hist[src * n + dst];
                if count == 0 {
                    continue;
                }
                let s: RouteSummary = table
                    .summary(src, dst)
                    .expect("pair certified during the counting pass");
                total_hops += count * s.hops as u64;
                bypass_hops += count * s.bypass_hops as u64;
                for node in table.load_nodes(src, dst) {
                    load[node] += count;
                }
                eject[dst] += count;
            }
        }
        Ok(TrafficProfile {
            k,
            load,
            eject,
            messages,
            total_hops,
            bypass_hops,
        })
    }

    /// Messages the profile carries.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Converts the unit-flit profile to an estimate for `msg_words`-word
    /// messages. Exact: every profiled quantity is linear in
    /// `flits_per_msg`, and the eject-port `div_ceil` is applied after
    /// scaling — precisely the value the per-edge accounting produces.
    pub fn estimate(
        &self,
        cfg: &NocConfig,
        msg_words: usize,
        link_utilisation: f64,
    ) -> OnChipEstimate {
        assert_eq!(cfg.k, self.k, "profile binned for a different radix");
        if self.messages == 0 {
            return OnChipEstimate::default();
        }
        let f = cfg.flits_per_message(msg_words);
        let mut load: Vec<u64> = self.load.iter().map(|l| l * f).collect();
        // Ejection drains through the local port, plus the bypass mux when
        // the router has a configured attachment — the "additional
        // injection/ejection bandwidth" the flexible NoC provides to S_PEs.
        for (node, e) in self.eject.iter().enumerate() {
            let width =
                1 + (cfg.h_bypass_peer(node).is_some() || cfg.v_bypass_peer(node).is_some()) as u64;
            load[node] += (e * f).div_ceil(width.max(1));
        }
        finalize(
            cfg,
            load,
            self.total_hops * f,
            self.bypass_hops * f,
            self.messages,
            self.total_hops,
            f,
            link_utilisation,
        )
    }
}

/// Estimates the aggregation-phase traffic of one tile: for each edge
/// `(u, v)` sourced in the tile, a `msg_words`-word message flows from
/// `PE(u)` towards `PE(v)` (in-tile destination) or down to the memory
/// port at the top of its column (out-of-tile destination — the partial
/// aggregate leaves via the crossbar).
/// `link_utilisation` is the achievable fraction of raw link bandwidth
/// (see [`DEFAULT_LINK_UTILISATION`]).
///
/// One-shot convenience over the kernel pipeline: builds the
/// [`RouteTable`], bins a [`TrafficProfile`], and scales it. The routing
/// functions behind the table are the engine's fallible ones, so a
/// mis-segmented bypass config surfaces as a [`NocError`] instead of a
/// panic deep inside the estimator. Callers estimating many tiles or
/// layers against one config should hold the table (and profiles)
/// themselves, as `engine.rs` does.
pub fn aggregation_traffic(
    cfg: &NocConfig,
    mapping: &VertexMapping,
    edges: impl Iterator<Item = (u32, u32)>,
    msg_words: usize,
    link_utilisation: f64,
) -> Result<OnChipEstimate, NocError> {
    let table = RouteTable::build(cfg)?;
    let profile = TrafficProfile::bin(&table, &mapping.view(), edges)?;
    Ok(profile.estimate(cfg, msg_words, link_utilisation))
}

/// Estimates the weight-stationary vertex-update traffic: each of the
/// tile's `vertices` aggregated vectors circulates its row ring (all `k`
/// hops) so every PE's weight slice sees it.
pub fn ring_traffic(
    cfg: &NocConfig,
    vertices: usize,
    msg_words: usize,
    link_utilisation: f64,
) -> OnChipEstimate {
    let k = cfg.k as u64;
    let flits_per_msg = msg_words.div_ceil(cfg.words_per_flit).max(1) as u64;
    let messages = vertices as u64;
    let flit_hops = messages * flits_per_msg * k;
    // rings are balanced by construction: per-router load is uniform
    let per_router = flit_hops / (k * k).max(1);
    let links = k * k; // k links per ring × k rings (incl. wrap)
    let bandwidth_bound = (flit_hops as f64 / (links as f64 * link_utilisation)).ceil() as u64;
    let cycles = bandwidth_bound.max(per_router) + k + flits_per_msg;
    OnChipEstimate {
        cycles,
        flit_hops,
        messages,
        avg_hops: k as f64,
        max_router_load: per_router,
        hot_router: None,                      // uniform by construction
        bypass_hops: messages * flits_per_msg, // the wrap link is the bypass wire
    }
}

#[allow(clippy::too_many_arguments)]
fn finalize(
    cfg: &NocConfig,
    load: Vec<u64>,
    flit_hops: u64,
    bypass_hops: u64,
    messages: u64,
    total_hops: u64,
    flits_per_msg: u64,
    link_utilisation: f64,
) -> OnChipEstimate {
    if messages == 0 {
        return OnChipEstimate::default();
    }
    let (hot_router, max_router_load) = load
        .iter()
        .copied()
        .enumerate()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(i, l)| (Some(i), l))
        .unwrap_or((None, 0));
    let bandwidth_bound =
        (flit_hops as f64 / (link_count(cfg) as f64 * link_utilisation)).ceil() as u64;
    let avg_hops = total_hops as f64 / messages as f64;
    let cycles = bandwidth_bound.max(max_router_load) + avg_hops.ceil() as u64 + flits_per_msg;
    OnChipEstimate {
        cycles,
        flit_hops,
        messages,
        avg_hops,
        max_router_load,
        hot_router,
        bypass_hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_graph::generate;
    use aurora_mapping::{degree_aware, hashing};
    use aurora_noc::{BypassSegment, Network};
    use proptest::prelude::*;

    fn mesh_cfg(k: usize) -> NocConfig {
        NocConfig::mesh(k)
    }

    /// The seed's per-edge route walker — the oracle the two-pass kernel
    /// must match bit-for-bit, including which [`NocError`] is returned.
    fn legacy_aggregation_traffic(
        cfg: &NocConfig,
        mapping: &VertexMapping,
        edges: impl Iterator<Item = (u32, u32)>,
        msg_words: usize,
        link_utilisation: f64,
    ) -> Result<OnChipEstimate, NocError> {
        use aurora_noc::routing::{compute_route, next_node};
        use aurora_noc::Port;
        let k = cfg.k;
        let flits_per_msg = msg_words.div_ceil(cfg.words_per_flit).max(1) as u64;
        let mut load = vec![0u64; k * k];
        let mut eject = vec![0u64; k * k];
        let mut flit_hops = 0u64;
        let mut bypass_hops = 0u64;
        let mut messages = 0u64;
        let mut total_hops = 0u64;

        for (u, v) in edges {
            if !mapping.range.contains(&u) {
                continue;
            }
            let src = mapping.pe_of(u);
            let dst = if mapping.range.contains(&v) {
                mapping.pe_of(v)
            } else {
                src % k
            };
            messages += 1;
            let mut cur = src;
            let mut guard = 0;
            while cur != dst {
                let port = compute_route(cfg, cur, dst)?;
                load[cur] += flits_per_msg;
                flit_hops += flits_per_msg;
                total_hops += 1;
                if matches!(port, Port::BypassH | Port::BypassV) {
                    bypass_hops += flits_per_msg;
                }
                cur = next_node(cfg, cur, port)?.ok_or(NocError::RoutingLivelock { src, dst })?;
                guard += 1;
                if guard > 4 * k * k {
                    return Err(NocError::RoutingLivelock { src, dst });
                }
            }
            eject[cur] += flits_per_msg;
        }

        for (node, e) in eject.iter().enumerate() {
            let width =
                1 + (cfg.h_bypass_peer(node).is_some() || cfg.v_bypass_peer(node).is_some()) as u64;
            load[node] += e.div_ceil(width.max(1));
        }

        Ok(finalize(
            cfg,
            load,
            flit_hops,
            bypass_hops,
            messages,
            total_hops,
            flits_per_msg,
            link_utilisation,
        ))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn kernel_matches_legacy_oracle(
            k in 2usize..9,
            mode in 0u8..3,
            degree_mapped in proptest::bool::ANY,
            raw in proptest::collection::vec((0u32..64, 0u32..64), 0..300),
            msg_words in 0usize..40,
            seg in (0usize..8, 0usize..8, 0usize..8, 0usize..8),
        ) {
            let cfg = match mode {
                0 => NocConfig::mesh(k),
                1 => NocConfig::rings(k), // cross-row pairs exercise NocError equivalence
                _ => NocConfig::with_bypass(
                    k,
                    // from = 0 < to ∈ 1..k keeps every sampled segment valid
                    vec![BypassSegment { index: seg.0 % k, from: 0, to: 1 + seg.1 % (k - 1) }],
                    vec![BypassSegment { index: seg.2 % k, from: 0, to: 1 + seg.3 % (k - 1) }],
                ),
            };
            cfg.validate().unwrap();

            // Vertices 8..40 are mapped; ids outside exercise the
            // skip-unsourced and fold-to-memory-port paths.
            let range = 8u32..40u32;
            let mut degrees = vec![0u32; 32];
            for (u, _) in &raw {
                if range.contains(u) {
                    degrees[(u - range.start) as usize] += 1;
                }
            }
            let mapping = if degree_mapped {
                degree_aware::map(range.clone(), &degrees, k, 16)
            } else {
                hashing::map(range, &degrees, k, 16)
            };

            let kernel = aggregation_traffic(
                &cfg,
                &mapping,
                raw.iter().copied(),
                msg_words,
                DEFAULT_LINK_UTILISATION,
            );
            let oracle = legacy_aggregation_traffic(
                &cfg,
                &mapping,
                raw.iter().copied(),
                msg_words,
                DEFAULT_LINK_UTILISATION,
            );
            prop_assert_eq!(kernel, oracle);
        }
    }

    /// The cached unit-flit profile rescaled to any message size must give
    /// exactly what walking the full-size messages gives — the eject-port
    /// `div_ceil` is the only non-linear step and it is applied after
    /// scaling.
    #[test]
    fn profile_rescales_exactly_across_message_sizes() {
        let g = generate::rmat(64, 700, Default::default(), 3);
        let d = degree_aware::map(0..64, &g.degrees(), 4, 8);
        for cfg in [
            NocConfig::mesh(4),
            NocConfig::with_bypass(
                4,
                vec![BypassSegment {
                    index: 1,
                    from: 0,
                    to: 3,
                }],
                vec![BypassSegment {
                    index: 2,
                    from: 0,
                    to: 3,
                }],
            ),
        ] {
            let table = RouteTable::build(&cfg).unwrap();
            let profile = TrafficProfile::bin(&table, &d.view(), g.edges()).unwrap();
            for words in [1, 3, 16, 17, 64] {
                let scaled = profile.estimate(&cfg, words, DEFAULT_LINK_UTILISATION);
                let direct = legacy_aggregation_traffic(
                    &cfg,
                    &d,
                    g.edges(),
                    words,
                    DEFAULT_LINK_UTILISATION,
                )
                .unwrap();
                assert_eq!(scaled, direct, "{cfg:?} at {words} words");
            }
        }
    }

    #[test]
    fn empty_traffic_is_free() {
        let g = aurora_graph::Csr::empty(8);
        let m = hashing::map(0..8, &g.degrees(), 4, 2);
        let e =
            aggregation_traffic(&mesh_cfg(4), &m, g.edges(), 16, DEFAULT_LINK_UTILISATION).unwrap();
        assert_eq!(e.cycles, 0);
        assert_eq!(e.flit_hops, 0);
    }

    #[test]
    fn degree_aware_with_bypass_beats_hashed_mesh() {
        // the paper's actual comparison: Aurora's degree-aware mapping +
        // configured bypass vs the CGRA-ME hashing policy on a plain mesh
        let mut wins = 0;
        for seed in 0..6 {
            let g = generate::rmat(64, 700, Default::default(), seed);
            let h = hashing::map(0..64, &g.degrees(), 4, 8);
            let d = degree_aware::map(0..64, &g.degrees(), 4, 8);
            let eh = aggregation_traffic(&mesh_cfg(4), &h, g.edges(), 16, DEFAULT_LINK_UTILISATION)
                .unwrap();
            let plan = aurora_mapping::plan::plan_bypass(&d, g.edges());
            let cfg = NocConfig::with_bypass(
                4,
                plan.rows
                    .iter()
                    .map(|s| aurora_noc::BypassSegment {
                        index: s.index,
                        from: s.from,
                        to: s.to,
                    })
                    .collect(),
                plan.cols
                    .iter()
                    .map(|s| aurora_noc::BypassSegment {
                        index: s.index,
                        from: s.from,
                        to: s.to,
                    })
                    .collect(),
            );
            let ed =
                aggregation_traffic(&cfg, &d, g.edges(), 16, DEFAULT_LINK_UTILISATION).unwrap();
            assert_eq!(eh.messages, ed.messages, "same message volume");
            if ed.cycles <= eh.cycles {
                wins += 1;
            }
        }
        assert!(wins >= 5, "degree-aware+bypass won only {wins}/6 seeds");
    }

    #[test]
    fn bypass_cuts_hops() {
        let g = generate::star(64);
        let d = degree_aware::map(0..64, &g.degrees(), 8, 8);
        let plain = aggregation_traffic(
            &NocConfig::mesh(8),
            &d,
            g.edges(),
            4,
            DEFAULT_LINK_UTILISATION,
        )
        .unwrap();
        let plan = aurora_mapping::plan::plan_bypass(&d, g.edges());
        let cfg = NocConfig::with_bypass(
            8,
            plan.rows
                .iter()
                .map(|s| aurora_noc::BypassSegment {
                    index: s.index,
                    from: s.from,
                    to: s.to,
                })
                .collect(),
            plan.cols
                .iter()
                .map(|s| aurora_noc::BypassSegment {
                    index: s.index,
                    from: s.from,
                    to: s.to,
                })
                .collect(),
        );
        cfg.validate().unwrap();
        let with = aggregation_traffic(&cfg, &d, g.edges(), 4, DEFAULT_LINK_UTILISATION).unwrap();
        assert!(with.bypass_hops > 0, "plan must engage the bypass");
        assert!(
            with.avg_hops < plain.avg_hops,
            "bypass avg hops {} !< mesh {}",
            with.avg_hops,
            plain.avg_hops
        );
    }

    #[test]
    fn ring_estimate_shape() {
        let cfg = NocConfig::rings(4);
        let e = ring_traffic(&cfg, 32, 16, DEFAULT_LINK_UTILISATION);
        assert_eq!(e.messages, 32);
        assert_eq!(e.flit_hops, 32 * 4 * 4);
        assert!(e.cycles > 0);
        // doubling vertices roughly doubles cycles
        let e2 = ring_traffic(&cfg, 64, 16, DEFAULT_LINK_UTILISATION);
        assert!(e2.cycles > e.cycles);
    }

    /// The analytic estimate must track the cycle-level engine within a
    /// small factor on a real workload.
    #[test]
    fn estimate_tracks_detailed_simulation() {
        let k = 4;
        let g = generate::rmat(48, 400, Default::default(), 7);
        let mapping = degree_aware::map(0..48, &g.degrees(), k, 8);
        let cfg = mesh_cfg(k);
        let words = 8;

        let est = aggregation_traffic(&cfg, &mapping, g.edges(), words, DEFAULT_LINK_UTILISATION)
            .unwrap();

        let mut net = Network::new(cfg);
        for (u, v) in g.edges() {
            let (s, d) = (mapping.pe_of(u), mapping.pe_of(v));
            if s != d {
                net.inject(s, d, words);
            }
        }
        let cycles = net.drain(1_000_000).expect("drain") as f64;
        let ratio = est.cycles as f64 / cycles;
        assert!(
            (0.2..5.0).contains(&ratio),
            "estimate {} vs detailed {} (ratio {:.2})",
            est.cycles,
            cycles,
            ratio
        );
        // hop accounting must match the engine's definition closely
        let detailed_hops = net.stats().total_hops as f64 / net.stats().packets_delivered as f64;
        // est includes same-PE messages (0 hops); exclude for comparison
        assert!(est.avg_hops <= detailed_hops + 1.0);
    }
}
