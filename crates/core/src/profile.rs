//! Bottleneck attribution: *which resource binds each phase*.
//!
//! The engine computes, per tile, a compute time per sub-accelerator, an
//! on-chip (NoC) time, and an off-chip (DRAM) time, then takes maxima to
//! form the double-buffered pipeline envelope. This module keeps the
//! losing bounds instead of throwing them away and decomposes every
//! tile's envelope slot into a four-way **bound taxonomy**:
//!
//! * [`Bound::Compute`] — balanced PE compute on the slower pipeline
//!   stage (the paper's vertex-update-heavy regime);
//! * [`Bound::Imbalance`] — the max-busy vs mean-busy gap of the mapped
//!   array: cycles the critical-path PE works while the mean PE idles;
//! * [`Bound::Noc`] — on-chip communication of the slower stage (the
//!   aggregation regime of Fig. 8);
//! * [`Bound::Dram`] — off-chip cycles *not hidden* by the double
//!   buffer (the exposed excess of `max(exec, dram)` over `exec`).
//!
//! The four cycle counts of a tile sum exactly to its envelope slot, so
//! summed over tiles (plus the exposed controller overhead) they
//! reproduce the run total — attribution that always adds up, which is
//! what makes it trustworthy enough to gate performance work on.

use aurora_telemetry::{Scope, Telemetry};
use serde::{Deserialize, Serialize};

/// The resource a span of cycles is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Bound {
    /// Balanced compute on the critical pipeline stage.
    Compute,
    /// On-chip communication of the critical pipeline stage.
    Noc,
    /// Exposed (un-overlapped) off-chip traffic.
    Dram,
    /// Compute lost to PE load imbalance (max-busy minus mean-busy).
    Imbalance,
}

impl Bound {
    /// All bounds, in reporting order.
    pub const ALL: [Bound; 4] = [Bound::Compute, Bound::Noc, Bound::Dram, Bound::Imbalance];

    /// Stable lower-case label (`compute`, `noc`, `dram`, `imbalance`).
    pub fn label(&self) -> &'static str {
        match self {
            Bound::Compute => "compute",
            Bound::Noc => "noc",
            Bound::Dram => "dram",
            Bound::Imbalance => "imbalance",
        }
    }
}

/// Cycles attributed to each bound. Adding mixes adds component-wise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundMix {
    pub compute: u64,
    pub noc: u64,
    pub dram: u64,
    pub imbalance: u64,
}

impl BoundMix {
    /// Total attributed cycles.
    pub fn total(&self) -> u64 {
        self.compute + self.noc + self.dram + self.imbalance
    }

    /// The cycles attributed to one bound.
    pub fn of(&self, bound: Bound) -> u64 {
        match bound {
            Bound::Compute => self.compute,
            Bound::Noc => self.noc,
            Bound::Dram => self.dram,
            Bound::Imbalance => self.imbalance,
        }
    }

    /// Fraction of the total attributed to one bound (0 when empty).
    pub fn fraction(&self, bound: Bound) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.of(bound) as f64 / t as f64
        }
    }

    /// `(bound, fraction)` for every bound, in reporting order. Fractions
    /// sum to 1 (± float error) whenever any cycles were attributed.
    pub fn fractions(&self) -> [(Bound, f64); 4] {
        Bound::ALL.map(|b| (b, self.fraction(b)))
    }

    /// The bound holding the largest share. Ties resolve in
    /// [`Bound::ALL`] order (compute, noc, dram, imbalance).
    pub fn dominant(&self) -> Bound {
        let mut best = Bound::Compute;
        for b in Bound::ALL {
            if self.of(b) > self.of(best) {
                best = b;
            }
        }
        best
    }

    /// Component-wise sum.
    pub fn add(&self, o: &BoundMix) -> BoundMix {
        BoundMix {
            compute: self.compute + o.compute,
            noc: self.noc + o.noc,
            dram: self.dram + o.dram,
            imbalance: self.imbalance + o.imbalance,
        }
    }
}

/// One pipeline stage's (sub-accelerator's) contribution to a tile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SideAttribution {
    /// Balanced compute cycles (`t / imbalance`).
    pub compute_cycles: u64,
    /// Critical-path penalty: raw compute minus the balanced part.
    pub imbalance_cycles: u64,
    /// On-chip communication cycles of this stage.
    pub noc_cycles: u64,
    /// Max-busy / mean-busy ratio of the mapped work (≥ 1).
    pub imbalance: f64,
    /// The busiest router on this stage's traffic (linear id), if any
    /// traffic was routed.
    pub hot_router: Option<usize>,
}

impl SideAttribution {
    /// Splits `compute` cycles by the mapped work's `imbalance` ratio
    /// (max-busy / mean-busy, ≥ 1): the balanced share is what a
    /// perfectly level mapping would need, the rest is the critical-path
    /// penalty the busiest PE adds.
    pub fn new(compute: u64, noc: u64, imbalance: f64, hot_router: Option<usize>) -> Self {
        let rho = imbalance.max(1.0);
        let balanced = ((compute as f64 / rho).round() as u64).min(compute);
        SideAttribution {
            compute_cycles: balanced,
            imbalance_cycles: compute - balanced,
            noc_cycles: noc,
            imbalance: rho,
            hot_router,
        }
    }

    /// The stage's pipeline time (compute + penalty + traffic).
    pub fn total(&self) -> u64 {
        self.compute_cycles + self.imbalance_cycles + self.noc_cycles
    }
}

/// Which sub-accelerator set a tile's execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CriticalStage {
    /// Sub-accelerator A (edge update + aggregation).
    A,
    /// Sub-accelerator B (vertex update).
    B,
}

/// Full attribution of one tile's envelope slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TileAttribution {
    pub layer: usize,
    pub tile: usize,
    /// Sub-accelerator A (edge update + aggregation).
    pub a: SideAttribution,
    /// Sub-accelerator B (vertex update); zeroed for single-accelerator
    /// models.
    pub b: SideAttribution,
    /// Off-chip cycles of this tile (converted to core cycles).
    pub dram_cycles: u64,
    /// The double-buffer envelope: `max(exec, dram)`.
    pub slot_cycles: u64,
    /// The stage that set `exec = max(A, B)`.
    pub critical: CriticalStage,
    /// The winning bound (see [`TileAttribution::candidate`]).
    pub bound: Bound,
    /// The slot decomposed into the four bounds (sums to `slot_cycles`).
    pub mix: BoundMix,
}

impl TileAttribution {
    /// Builds the attribution of one tile from its two stage profiles
    /// and its off-chip time.
    pub fn new(
        layer: usize,
        tile: usize,
        a: SideAttribution,
        b: SideAttribution,
        dram_cycles: u64,
    ) -> Self {
        let critical = if a.total() >= b.total() {
            CriticalStage::A
        } else {
            CriticalStage::B
        };
        let w = match critical {
            CriticalStage::A => &a,
            CriticalStage::B => &b,
        };
        let exec = w.total();
        let slot = exec.max(dram_cycles);
        let mix = BoundMix {
            compute: w.compute_cycles,
            noc: w.noc_cycles,
            imbalance: w.imbalance_cycles,
            dram: slot - exec,
        };
        let mut t = TileAttribution {
            layer,
            tile,
            a,
            b,
            dram_cycles,
            slot_cycles: slot,
            critical,
            bound: Bound::Compute,
            mix,
        };
        t.bound = t.dominant_candidate();
        t
    }

    /// Execution time of the tile: the slower pipeline stage.
    pub fn exec_cycles(&self) -> u64 {
        self.a.total().max(self.b.total())
    }

    /// The critical stage's attribution.
    pub fn critical_side(&self) -> &SideAttribution {
        match self.critical {
            CriticalStage::A => &self.a,
            CriticalStage::B => &self.b,
        }
    }

    /// A bound's *candidate pacing time* — the cycles it would take for
    /// that resource alone to finish the tile:
    ///
    /// * `Dram` — the full off-chip time when it exceeds execution (it
    ///   paces the slot), else 0 (fully hidden by the double buffer);
    /// * `Compute` / `Noc` / `Imbalance` — that component of the
    ///   critical stage.
    ///
    /// The winning bound is the arg-max of the candidates, so the label
    /// always agrees with the tile-time max: whenever `dram ≥ exec` the
    /// tile is DRAM-bound, otherwise the largest component of the
    /// critical stage wins.
    pub fn candidate(&self, bound: Bound) -> u64 {
        let w = self.critical_side();
        match bound {
            Bound::Compute => w.compute_cycles,
            Bound::Noc => w.noc_cycles,
            Bound::Imbalance => w.imbalance_cycles,
            Bound::Dram => {
                if self.dram_cycles >= self.exec_cycles() {
                    self.dram_cycles
                } else {
                    0
                }
            }
        }
    }

    /// Arg-max of the candidates; ties resolve in [`Bound::ALL`] order.
    fn dominant_candidate(&self) -> Bound {
        let mut best = Bound::Compute;
        for b in Bound::ALL {
            if self.candidate(b) > self.candidate(best) {
                best = b;
            }
        }
        best
    }

    /// A losing bound's slack: how many cycles behind the winner its
    /// candidate pacing time is (0 for the winner itself).
    pub fn slack(&self, bound: Bound) -> u64 {
        self.candidate(self.bound)
            .saturating_sub(self.candidate(bound))
    }

    /// Slot fractions per bound (sum to 1 ± float error for a non-empty
    /// slot).
    pub fn fractions(&self) -> [(Bound, f64); 4] {
        self.mix.fractions()
    }

    /// Records the tile's attribution as `bound.*_cycles` counters and a
    /// `bound.dominant` gauge (bound index in [`Bound::ALL`]) under
    /// `scope`, citing the critical stage's hottest router when known.
    pub fn record_to(&self, telemetry: &Telemetry, scope: &Scope) {
        if !telemetry.is_enabled() {
            return;
        }
        telemetry.counter_add("bound.compute_cycles", scope, self.mix.compute);
        telemetry.counter_add("bound.noc_cycles", scope, self.mix.noc);
        telemetry.counter_add("bound.dram_cycles", scope, self.mix.dram);
        telemetry.counter_add("bound.imbalance_cycles", scope, self.mix.imbalance);
        let idx = Bound::ALL.iter().position(|b| *b == self.bound).unwrap();
        telemetry.gauge_set("bound.dominant", scope, idx as f64);
        if let Some(r) = self.critical_side().hot_router {
            telemetry.gauge_set("bound.hot_router", scope, r as f64);
        }
    }
}

/// Per-layer aggregation of the tile attributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerProfile {
    pub layer: usize,
    pub tiles: usize,
    /// Summed tile mixes (totals to the layer's tile-slot cycles).
    pub mix: BoundMix,
    /// Exposed controller cycles of this layer (map/partition decision +
    /// first NoC reconfiguration).
    pub overhead_cycles: u64,
    /// Sub-accelerator A busy fraction of the layer's slot cycles.
    pub util_a: f64,
    /// Sub-accelerator B busy fraction.
    pub util_b: f64,
    /// Off-chip busy fraction (including the hidden, overlapped part).
    pub util_dram: f64,
    /// Table-II ops of the layer.
    pub ops: u64,
    /// Off-chip bytes moved by the layer.
    pub dram_bytes: u64,
    /// Roofline x-coordinate: ops per DRAM byte.
    pub operational_intensity: f64,
    /// The layer's dominant bound (of the summed mix).
    pub dominant: Bound,
}

/// Whole-run bottleneck profile, embedded in `SimReport`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Summed tile mixes; `mix.total() + overhead_cycles` equals the
    /// run's `total_cycles`.
    pub mix: BoundMix,
    /// Exposed controller cycles across all layers.
    pub overhead_cycles: u64,
    pub layers: Vec<LayerProfile>,
    /// Every tile's attribution, in execution order.
    pub tiles: Vec<TileAttribution>,
    /// Total Table-II ops of the run.
    pub ops: u64,
    /// Total off-chip bytes.
    pub dram_bytes: u64,
    /// Roofline x-coordinate: ops per DRAM byte.
    pub operational_intensity: f64,
    /// Achieved throughput in GFLOP/s.
    pub achieved_gflops: f64,
    /// Array peak in GFLOP/s (`k² × per-PE FLOP/s`).
    pub peak_gflops: f64,
    /// Off-chip peak bandwidth in GB/s.
    pub dram_peak_gbps: f64,
    /// Achievable fraction of raw link bandwidth assumed by the NoC
    /// model (see `AcceleratorConfig::link_utilisation`).
    pub link_utilisation: f64,
    /// Route tables built by the engine's traffic cache — one per
    /// distinct NoC configuration seen across the tile × layer loop.
    pub route_table_builds: u64,
    /// Tiles whose unit-flit traffic profile was reused from an earlier
    /// layer (rescaled instead of re-binned).
    pub tile_profile_hits: u64,
    /// Tiles whose edges went through the O(E) counting pass.
    pub tile_profile_misses: u64,
}

impl ProfileReport {
    /// True when no attribution was recorded (e.g. a baseline report).
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty() && self.mix.total() == 0
    }

    /// Run-level slot fractions per bound.
    pub fn fractions(&self) -> [(Bound, f64); 4] {
        self.mix.fractions()
    }

    /// The run's dominant bound.
    pub fn dominant(&self) -> Bound {
        self.mix.dominant()
    }

    /// Fraction of the run spent in exposed controller overhead.
    pub fn overhead_fraction(&self) -> f64 {
        let t = self.mix.total() + self.overhead_cycles;
        if t == 0 {
            0.0
        } else {
            self.overhead_cycles as f64 / t as f64
        }
    }

    /// The `k` slot-heaviest tiles — where optimisation effort pays.
    pub fn top_limiting_tiles(&self, k: usize) -> Vec<&TileAttribution> {
        let mut v: Vec<&TileAttribution> = self.tiles.iter().collect();
        v.sort_by(|x, y| {
            y.slot_cycles
                .cmp(&x.slot_cycles)
                .then(x.layer.cmp(&y.layer))
                .then(x.tile.cmp(&y.tile))
        });
        v.truncate(k);
        v
    }

    /// Merges another run's profile into this one, offsetting its layer
    /// indices by `layer_offset` (batch simulation).
    pub fn merge(&mut self, other: &ProfileReport, layer_offset: usize) {
        self.mix = self.mix.add(&other.mix);
        self.overhead_cycles += other.overhead_cycles;
        self.layers
            .extend(other.layers.iter().cloned().map(|mut l| {
                l.layer += layer_offset;
                l
            }));
        self.tiles.extend(other.tiles.iter().cloned().map(|mut t| {
            t.layer += layer_offset;
            t
        }));
        self.ops += other.ops;
        self.dram_bytes += other.dram_bytes;
        self.route_table_builds += other.route_table_builds;
        self.tile_profile_hits += other.tile_profile_hits;
        self.tile_profile_misses += other.tile_profile_misses;
        self.operational_intensity = if self.dram_bytes == 0 {
            0.0
        } else {
            self.ops as f64 / self.dram_bytes as f64
        };
        // rates re-derive from the merged totals at finalize time; keep
        // the configuration header fields from self (same accelerator)
        self.achieved_gflops = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn side(compute: u64, noc: u64, rho: f64) -> SideAttribution {
        SideAttribution::new(compute, noc, rho, Some(3))
    }

    #[test]
    fn side_split_is_exact() {
        let s = side(100, 40, 2.0);
        assert_eq!(s.compute_cycles, 50);
        assert_eq!(s.imbalance_cycles, 50);
        assert_eq!(s.total(), 140);
        // degenerate ratios clamp
        let flat = side(100, 0, 0.5);
        assert_eq!(flat.compute_cycles, 100);
        assert_eq!(flat.imbalance_cycles, 0);
    }

    #[test]
    fn tile_mix_sums_to_slot() {
        let t = TileAttribution::new(0, 0, side(100, 40, 1.25), side(30, 10, 1.0), 200);
        assert_eq!(t.exec_cycles(), 140);
        assert_eq!(t.slot_cycles, 200);
        assert_eq!(t.mix.total(), t.slot_cycles);
        assert_eq!(t.bound, Bound::Dram, "dram paces the slot");
        let frac_sum: f64 = t.fractions().iter().map(|(_, f)| f).sum();
        assert!((frac_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hidden_dram_never_dominates() {
        let t = TileAttribution::new(0, 1, side(100, 180, 1.0), side(0, 0, 1.0), 250);
        assert_eq!(t.slot_cycles, 280);
        assert_eq!(t.bound, Bound::Noc);
        assert_eq!(t.candidate(Bound::Dram), 0, "fully overlapped");
        let t2 = TileAttribution::new(0, 2, side(100, 180, 1.0), side(0, 0, 1.0), 300);
        assert_eq!(t2.bound, Bound::Dram, "now it paces the slot");
        assert!(t2.slack(Bound::Noc) == 120 && t2.slack(Bound::Dram) == 0);
    }

    #[test]
    fn critical_stage_selection() {
        let t = TileAttribution::new(1, 0, side(10, 5, 1.0), side(80, 0, 4.0), 0);
        assert_eq!(t.critical, CriticalStage::B);
        assert_eq!(t.bound, Bound::Imbalance);
        assert_eq!(t.mix.imbalance, 60);
        assert_eq!(t.mix.compute, 20);
    }

    #[test]
    fn profile_top_tiles_ordered() {
        let mut p = ProfileReport::default();
        for (i, slot) in [(0usize, 10u64), (1, 50), (2, 30)] {
            let t = TileAttribution::new(0, i, side(slot, 0, 1.0), side(0, 0, 1.0), 0);
            p.mix = p.mix.add(&t.mix);
            p.tiles.push(t);
        }
        let top = p.top_limiting_tiles(2);
        assert_eq!(top.len(), 2);
        assert_eq!((top[0].tile, top[1].tile), (1, 2));
        assert_eq!(p.dominant(), Bound::Compute);
        assert!(!p.is_empty());
    }

    #[test]
    fn merge_offsets_layers() {
        let mk = |layer| {
            let mut p = ProfileReport::default();
            let t = TileAttribution::new(layer, 0, side(10, 0, 1.0), side(0, 0, 1.0), 0);
            p.mix = t.mix;
            p.tiles.push(t);
            p.overhead_cycles = 5;
            p.ops = 100;
            p.dram_bytes = 50;
            p
        };
        let mut a = mk(0);
        a.merge(&mk(0), 2);
        assert_eq!(a.tiles.len(), 2);
        assert_eq!(a.tiles[1].layer, 2);
        assert_eq!(a.overhead_cycles, 10);
        assert_eq!(a.ops, 200);
        assert!((a.operational_intensity - 2.0).abs() < 1e-12);
    }

    #[test]
    fn telemetry_records_bounds() {
        let t = Telemetry::enabled();
        let tile = TileAttribution::new(0, 0, side(100, 40, 1.25), side(0, 0, 1.0), 0);
        let scope = Scope::model("GCN").layer(0);
        tile.record_to(&t, &scope);
        let snap = t.snapshot();
        assert_eq!(
            snap.counter_at("bound.compute_cycles", &scope),
            Some(tile.mix.compute)
        );
        assert_eq!(snap.gauge_at("bound.hot_router", &scope), Some(3.0));
        assert!(snap.gauge_at("bound.dominant", &scope).is_some());
    }
}
