//! The Aurora accelerator simulator — §III (architecture), §VI-A
//! (methodology).
//!
//! Following the paper's simulator: it "monitors the number of arithmetic
//! operations and the number of accesses to each memory hierarchy, taking
//! the degree-aware mapping algorithm, partition algorithm, and system
//! configuration parameters into account"; off-package time comes from the
//! DRAM model, on-package time from the NoC model, and the phases overlap
//! through double buffering.
//!
//! * [`config`] — the accelerator configuration (32 × 32 PEs @ 700 MHz,
//!   100 KB per-PE buffers, flexible NoC, policies and ablation switches);
//! * [`workflow`] — the adaptive workflow generator (§III-E step 3);
//! * [`instr`] — the instruction stream the controllers dispatch;
//! * [`noc_model`] — route-walking on-chip traffic estimation, validated
//!   against the cycle-level `aurora-noc` engine;
//! * [`engine`] — the per-subgraph execution pipeline (map → configure →
//!   execute A ∥ B → write back, overlapped with the next tile's load);
//! * [`functional`] — functional-mode execution: numeric results computed
//!   on the mapped PE array, validated against the reference executors;
//! * [`report`] — the simulation report (cycles, DRAM, NoC, energy).
//!
//! ```
//! use aurora_core::{AcceleratorConfig, AuroraSimulator, SimRequest};
//! use aurora_model::{LayerShape, ModelId};
//!
//! let req = SimRequest::builder(ModelId::Gcn)
//!     .config(AcceleratorConfig::small(8))
//!     .rmat(512, 4_000, 7)
//!     .layer(LayerShape::new(32, 16))
//!     .workload("demo")
//!     .build()
//!     .unwrap();
//! let sim = AuroraSimulator::new(req.config);
//! let report = sim.run(&req).unwrap();
//! assert!(report.total_cycles > 0);
//! assert!(report.energy_joules() > 0.0);
//! ```

mod arena;
pub mod config;
pub mod delta;
pub mod engine;
pub mod functional;
pub mod host;
pub mod instr;
pub mod noc_model;
pub mod profile;
pub mod report;
pub mod request;
pub mod workflow;

pub use config::AcceleratorConfig;
pub use delta::{
    chain_digest, DeltaOutcome, GraphDelta, SessionCommand, SessionRequestBuilder, SimSession,
};
pub use engine::{AuroraSimulator, EngineCore};
pub use instr::Instruction;
pub use profile::{Bound, BoundMix, LayerProfile, ProfileReport, TileAttribution};
pub use report::{LayerReport, NocReport, SimReport};
pub use request::{
    GraphSpec, SimError, SimOptions, SimRequest, SimRequestBuilder, SimResponse, WireError,
    WIRE_VERSION,
};
pub use workflow::Workflow;

pub use host::{export_host_metrics, export_pool_metrics};

// Re-exported so simulator drivers can enable observability without
// depending on aurora-telemetry directly.
pub use aurora_telemetry::{
    expo, host_init, names as metric_names, span, Histogram, HostProfile, HostStage,
    MetricsSnapshot, Scope, Stage, Telemetry,
};
