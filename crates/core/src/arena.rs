//! Arena-backed scratch memory for the engine's steady state.
//!
//! The per-tile pipeline used to allocate fresh `Vec`s for every tile of
//! every layer — degrees, placements, per-PE loads, bypass plans, NoC
//! configs, report roll-ups. This module keeps all of that working
//! memory alive across tiles, layers *and* `simulate*` calls:
//!
//! * [`WorkerArena`] — one per pool worker thread (thread-local),
//!   holding the buffers a single tile's pure precompute needs. Fan-out
//!   over the worker pool touches only warmed-up thread-locals, so the
//!   parallel region is allocation-free after the first layer.
//! * [`TileArena`] — one per *calling* thread (thread-local, taken at
//!   the start of `run_resolved_core` and put back at the end), holding
//!   the structure-of-arrays slabs the tiles write into
//!   ([`TileSlabs`]) and the sequential walk's reusable roll-up
//!   buffers ([`SeqScratch`]).
//!
//! The SoA layout: one flat `pe_of` slab indexed by global vertex id
//! (tiles partition the vertex space contiguously), plus fixed-stride
//! per-tile slabs for high-degree ids and planned bypass segments.
//! Scalar per-tile outputs land in a [`TileOut`] row. Tile views borrow
//! straight into the slabs — the steady state never materialises an
//! owned `VertexMapping` or `NocConfig`.

use crate::engine::ProfileKey;
use crate::noc_model::OnChipEstimate;
use aurora_mapping::plan::{PlanScratch, SegmentPlan};
use aurora_mapping::MapScratch;
use aurora_model::{LayerShape, ModelId, Workload};
use aurora_noc::{BypassSegment, NocConfig};
use std::cell::RefCell;
use std::ops::Range;
use std::sync::Arc;

/// Interned-config cap: per-tile bypass plans repeat heavily across
/// layers (same tiling, same mapping), so the table is tiny in
/// practice; past the cap it flushes wholesale like the route-table
/// cache.
const MAX_INTERNED_CONFIGS: usize = 128;

/// Per-worker-thread scratch for one tile's pure precompute.
#[derive(Debug, Default)]
pub(crate) struct WorkerArena {
    /// Out-degrees of the tile's vertices.
    pub degrees: Vec<u32>,
    /// Per-PE aggregation-side load (`1 + degree` per vertex).
    pub load_a: Vec<u64>,
    /// Per-PE vertex-update-side load (1 per vertex).
    pub load_b: Vec<u64>,
    /// Distinct halo vertices seen for the current tile (also the
    /// clear-list for `halo_seen`).
    halo: Vec<u32>,
    /// Graph-sized membership slab behind [`Self::halo_count`]; only the
    /// bits on the clear-list are ever true between calls.
    halo_seen: Vec<bool>,
    /// Mapping-kernel working memory.
    pub map: MapScratch,
    /// Bypass-planner working memory.
    pub plan: PlanScratch,
    /// Tile-sized workload, re-sized per tile instead of rebuilt.
    w_sg: Option<Workload>,
}

impl WorkerArena {
    /// The tile workload for `(model, shape)`, re-sized in place when
    /// the spec is already cached (the common case: one model per run).
    pub fn workload_for(&mut self, model: ModelId, shape: LayerShape) -> &mut Workload {
        let stale = match &self.w_sg {
            Some(w) => w.model.id != model || w.shape != shape,
            None => true,
        };
        if stale {
            self.w_sg = Some(Workload::from_sizes(model, 1, 1, shape));
        }
        self.w_sg.as_mut().expect("just ensured")
    }

    /// Number of distinct out-of-range destinations among `edges` —
    /// equals `Subgraph::halo_vertices().len()` without materialising
    /// (or sorting) the list. `num_vertices` sizes the membership slab;
    /// destinations must stay below it.
    pub fn halo_count(
        &mut self,
        range: Range<u32>,
        num_vertices: usize,
        edges: impl Iterator<Item = (u32, u32)>,
    ) -> u64 {
        if self.halo_seen.len() < num_vertices {
            self.halo_seen.resize(num_vertices, false);
        }
        self.halo.clear();
        for (_, dst) in edges {
            if !range.contains(&dst) && !self.halo_seen[dst as usize] {
                self.halo_seen[dst as usize] = true;
                self.halo.push(dst);
            }
        }
        let count = self.halo.len() as u64;
        // reset only the bits this tile set; the slab stays warm
        for &v in &self.halo {
            self.halo_seen[v as usize] = false;
        }
        count
    }
}

thread_local! {
    static WORKER: RefCell<WorkerArena> = RefCell::new(WorkerArena::default());
}

/// Runs `f` with this thread's worker arena.
pub(crate) fn with_worker<R>(f: impl FnOnce(&mut WorkerArena) -> R) -> R {
    WORKER.with(|w| f(&mut w.borrow_mut()))
}

/// Scalar outputs of one tile's precompute (one row of the SoA layout).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct TileOut {
    /// The tile's global-vertex-id range.
    pub start: u32,
    pub end: u32,
    pub rho_a: f64,
    pub rho_b: f64,
    pub num_vertices: usize,
    pub num_edges: usize,
    pub halo: u64,
    pub t_a: u64,
    pub t_b: u64,
    pub est_b: OnChipEstimate,
    /// Entries used in the tile's high-degree slab slice.
    pub n_high: usize,
    /// Segments used in the tile's row/col plan slices.
    pub n_rows: usize,
    pub n_cols: usize,
}

/// The per-layer structure-of-arrays slabs tile views borrow from.
#[derive(Debug, Default)]
pub(crate) struct TileSlabs {
    /// `pe_of[v]` for the whole graph (tiles are contiguous).
    pub pe_of: Vec<u32>,
    /// Per-tile high-degree ids, `high_cap` stride.
    pub high: Vec<u32>,
    /// Per-tile planned segments, stride `k`.
    pub row_segs: Vec<SegmentPlan>,
    pub col_segs: Vec<SegmentPlan>,
    /// One scalar row per tile.
    pub outs: Vec<TileOut>,
    /// Per-tile resolved NoC configs (interned; Arc clones, no deep
    /// copies — one config per *distinct plan* per layer, not per tile).
    pub noc_cfgs: Vec<Arc<NocConfig>>,
    /// Content-interned bypass configs, persisted across layers/runs.
    interned: Vec<Arc<NocConfig>>,
    /// The plain-mesh config for the current radix.
    mesh: Option<Arc<NocConfig>>,
    /// N-Queen S_PE positions for the current radix (degree-aware maps
    /// share them across every tile of a run).
    pub s_pes: Vec<usize>,
    s_pes_k: usize,
}

impl TileSlabs {
    /// Sizes the slabs for a layer of `num_tiles` tiles over
    /// `num_vertices` vertices. No-op allocation-wise once capacities
    /// have warmed up.
    pub fn begin_layer(
        &mut self,
        num_vertices: usize,
        num_tiles: usize,
        k: usize,
        high_cap: usize,
    ) {
        self.pe_of.resize(num_vertices, 0);
        self.high.resize(num_tiles * high_cap, 0);
        let zero = SegmentPlan {
            index: 0,
            from: 0,
            to: 0,
        };
        self.row_segs.resize(num_tiles * k, zero);
        self.col_segs.resize(num_tiles * k, zero);
        self.outs.clear();
        self.outs.resize(num_tiles, TileOut::default());
        self.noc_cfgs.clear();
    }

    /// Re-enters a layer whose slabs already hold the previous session
    /// apply's artifacts: the per-tile geometry (`pe_of`, `high`,
    /// `row_segs`/`col_segs`, `outs`) is preserved so clean tiles skip
    /// recompute entirely; only the resolved-config list resets, because
    /// `resolve_noc_cfg` re-runs for every tile in order (clean tiles
    /// re-intern the same plan, so the result is bit-identical to a
    /// from-scratch layer).
    pub fn begin_layer_incremental(&mut self) {
        self.noc_cfgs.clear();
    }

    /// The N-Queen S_PE positions for radix `k`, recomputed only when
    /// the radix changes.
    pub fn prepare_s_pes(&mut self, k: usize) {
        if self.s_pes_k != k {
            self.s_pes = aurora_mapping::nqueen::s_pe_positions(k);
            self.s_pes_k = k;
        }
    }

    /// The plain-mesh config for radix `k` (cached).
    pub fn mesh_cfg(&mut self, k: usize) -> Arc<NocConfig> {
        match &self.mesh {
            Some(m) if m.k == k => m.clone(),
            _ => {
                let m = Arc::new(NocConfig::mesh(k));
                self.mesh = Some(m.clone());
                m
            }
        }
    }

    /// The interned bypass config for a planned segment set, built on
    /// first sight. A plan the NoC layer rejects (a planner bug) falls
    /// back to the plain mesh, exactly like the historical per-tile
    /// construction did.
    pub fn intern_bypass(
        interned: &mut Vec<Arc<NocConfig>>,
        mesh: &Arc<NocConfig>,
        k: usize,
        rows: &[SegmentPlan],
        cols: &[SegmentPlan],
    ) -> Arc<NocConfig> {
        let seg_eq = |b: &BypassSegment, s: &SegmentPlan| {
            b.index == s.index && b.from == s.from && b.to == s.to
        };
        let hit = interned.iter().find(|c| {
            c.k == k
                && c.row_bypass.len() == rows.len()
                && c.col_bypass.len() == cols.len()
                && c.row_bypass.iter().zip(rows).all(|(b, s)| seg_eq(b, s))
                && c.col_bypass.iter().zip(cols).all(|(b, s)| seg_eq(b, s))
        });
        if let Some(cfg) = hit {
            return cfg.clone();
        }
        let to_seg = |s: &SegmentPlan| BypassSegment {
            index: s.index,
            from: s.from,
            to: s.to,
        };
        let cfg = NocConfig::with_bypass(
            k,
            rows.iter().map(to_seg).collect(),
            cols.iter().map(to_seg).collect(),
        );
        if cfg.validate().is_err() {
            return mesh.clone();
        }
        if interned.len() >= MAX_INTERNED_CONFIGS {
            interned.clear();
        }
        let cfg = Arc::new(cfg);
        interned.push(cfg.clone());
        cfg
    }

    /// Resolves tile `ti`'s planned segments into an interned config and
    /// records it; `mesh` comes from [`Self::mesh_cfg`].
    pub fn resolve_noc_cfg(&mut self, ti: usize, k: usize, flexible: bool, mesh: &Arc<NocConfig>) {
        let out = self.outs[ti];
        let chosen = if !flexible || (out.n_rows == 0 && out.n_cols == 0) {
            mesh.clone()
        } else {
            Self::intern_bypass(
                &mut self.interned,
                mesh,
                k,
                &self.row_segs[ti * k..][..out.n_rows],
                &self.col_segs[ti * k..][..out.n_cols],
            )
        };
        self.noc_cfgs.push(chosen);
    }
}

/// Reusable buffers for the sequential traffic-cache step and the
/// stateful walk's report roll-ups.
#[derive(Debug, Default)]
pub(crate) struct SeqScratch {
    pub keys: Vec<ProfileKey>,
    pub miss_tiles: Vec<usize>,
    /// Per-miss-tile flag: `true` when a clean session tile replays its
    /// stored traffic profile instead of binning (decided sequentially,
    /// consumed by the parallel bin fan-out).
    pub replay: Vec<bool>,
    pub est_a_of: Vec<Option<OnChipEstimate>>,
    pub est_as: Vec<OnChipEstimate>,
    pub exec_cycles: Vec<u64>,
    pub dram_cycles: Vec<u64>,
}

impl SeqScratch {
    pub fn begin_layer(&mut self) {
        self.keys.clear();
        self.miss_tiles.clear();
        self.replay.clear();
        self.est_a_of.clear();
        self.est_as.clear();
        self.exec_cycles.clear();
        self.dram_cycles.clear();
    }
}

/// The engine's per-run scratch: SoA tile slabs plus sequential-walk
/// buffers. Held in a thread-local of the calling thread between runs,
/// so back-to-back simulations (a serving worker, the autotuner, a
/// bench loop) reach zero steady-state allocations.
#[derive(Debug, Default)]
pub(crate) struct TileArena {
    pub slabs: TileSlabs,
    pub seq: SeqScratch,
}

thread_local! {
    static ENGINE_SCRATCH: RefCell<Option<Box<TileArena>>> = const { RefCell::new(None) };
}

/// Takes the calling thread's engine scratch (or a fresh one). Pair
/// with [`put_engine_scratch`]; a nested `simulate*` on the same thread
/// simply gets a fresh arena.
pub(crate) fn take_engine_scratch() -> Box<TileArena> {
    ENGINE_SCRATCH
        .with(|s| s.borrow_mut().take())
        .unwrap_or_default()
}

/// Returns the scratch for the next run on this thread.
pub(crate) fn put_engine_scratch(arena: Box<TileArena>) {
    ENGINE_SCRATCH.with(|s| *s.borrow_mut() = Some(arena));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_workload_reuses_spec_per_model() {
        let mut w = WorkerArena::default();
        let shape = LayerShape::new(8, 4);
        let a = w.workload_for(ModelId::Gcn, shape) as *const Workload;
        w.workload_for(ModelId::Gcn, shape).resize(10, 20);
        let b = w.workload_for(ModelId::Gcn, shape) as *const Workload;
        assert_eq!(a, b, "same model+shape must not rebuild the spec");
        assert_eq!(w.workload_for(ModelId::Gcn, shape).num_vertices, 10);
        let w2 = w.workload_for(ModelId::Gin, shape);
        assert_eq!(w2.model.id, ModelId::Gin, "model switch rebuilds");
    }

    #[test]
    fn halo_count_matches_distinct_out_of_range() {
        let mut w = WorkerArena::default();
        let edges = [(0u32, 5u32), (1, 5), (1, 6), (2, 3), (3, 9)];
        // range 0..4: out-of-range dsts {5, 5, 6, 9} → 3 distinct
        assert_eq!(w.halo_count(0..4, 10, edges.iter().copied()), 3);
        // reuse with a different range: {6, 9} remain out of range
        assert_eq!(w.halo_count(0..6, 10, edges.iter().copied()), 2);
    }

    #[test]
    fn intern_returns_same_arc_for_same_plan() {
        let mut slabs = TileSlabs::default();
        let mesh = slabs.mesh_cfg(4);
        let rows = [SegmentPlan {
            index: 1,
            from: 0,
            to: 3,
        }];
        let a = TileSlabs::intern_bypass(&mut slabs.interned, &mesh, 4, &rows, &[]);
        let b = TileSlabs::intern_bypass(&mut slabs.interned, &mesh, 4, &rows, &[]);
        assert!(Arc::ptr_eq(&a, &b), "identical plans share one config");
        assert_eq!(a.row_bypass.len(), 1);
        let m2 = slabs.mesh_cfg(4);
        assert!(Arc::ptr_eq(&mesh, &m2), "mesh cached per radix");
    }
}
