//! Streaming graph sessions: [`GraphDelta`] + incremental re-simulation.
//!
//! The one-shot API simulates every [`SimRequest`] from scratch, yet the
//! artifacts the engine computes per tile — mapping, bypass plan,
//! unit-flit traffic profile, `TileOut` scalars — are pure functions of
//! the tile's *own* vertex range and out-edges. A small graph edit leaves
//! almost all of them valid. A [`SimSession`] exploits that: it owns the
//! resolved CSR plus the last run's per-tile artifacts, applies a
//! [`GraphDelta`], computes the dirty-tile set from the partition, and
//! re-runs only the dirty tiles through the arena engine while replaying
//! the cached results for clean tiles — **bit-identical** to a
//! from-scratch run on the post-delta graph (`delta_bench` gates this).
//!
//! The dirty-tile rule: editing edge `(u, v)` dirties `tile_of(u)` only.
//! A tile's artifacts fold remote destinations into an anonymous halo
//! count, so `v`'s identity never enters another tile's state. The
//! conservative rule (also dirty every tile whose halo references a
//! touched vertex, via [`aurora_partition::TileIndex::referencing_tiles`])
//! matters only for feature-mutating scenarios; on R-MAT graphs a hub's
//! fan-in would dirty nearly every tile and erase the incremental win,
//! so the engine uses the minimal rule. Vertex insertions/removals shift
//! vertex ids and tile boundaries — those deltas (and any apply whose
//! fresh tiling or Algorithm-2 split no longer matches the cached state)
//! fall back to a full recompute that repopulates the warm state, still
//! through the session so subsequent edge deltas are incremental again.
//!
//! Identity is digest-chained: a session opens at the base request's
//! digest `d₀` and each applied delta advances
//! `dᵢ₊₁ = fnv1a64(dᵢ ∥ 0xff ∥ canonical-JSON(delta))`. The *session id*
//! stays `d₀` — the serve router hashes it for shard affinity, so every
//! line of one session lands on the worker holding the warm state.

use crate::engine::{AuroraSimulator, DirtyScope, EngineCore, SessionState};
use crate::report::SimReport;
use crate::request::{SimError, SimRequest};
use aurora_graph::{Csr, GraphBuilder};
use serde::{Deserialize, Serialize};

/// A serializable batch of graph edits, the unit a session applies.
///
/// Semantics: `add_vertices` appends that many isolated vertices at the
/// end of the current id space; edge batches may reference them. Edge
/// removals must name existing edges; insertions must be new. Removing a
/// vertex requires every incident edge (either direction) to be listed
/// in `remove_edges` — no silent cascades — and compacts the id space
/// (survivors shift down past the removed ids).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GraphDelta {
    /// Directed edges to insert, `(src, dst)`.
    #[serde(default)]
    pub insert_edges: Vec<(u32, u32)>,
    /// Directed edges to remove; each must currently exist.
    #[serde(default)]
    pub remove_edges: Vec<(u32, u32)>,
    /// Isolated vertices appended at the end of the id space.
    #[serde(default)]
    pub add_vertices: u32,
    /// Vertices to remove (ids in the pre-delta space); all incident
    /// edges must appear in `remove_edges`.
    #[serde(default)]
    pub remove_vertices: Vec<u32>,
}

impl GraphDelta {
    /// Whether the delta edits nothing. Applying an empty delta is a
    /// no-op cache hit: the session replays its last report without
    /// re-running anything and the digest chain does not advance.
    pub fn is_empty(&self) -> bool {
        self.insert_edges.is_empty()
            && self.remove_edges.is_empty()
            && self.add_vertices == 0
            && self.remove_vertices.is_empty()
    }

    /// Whether the delta changes the vertex set (forcing a full
    /// recompute: ids shift and tile boundaries move).
    pub fn is_structural(&self) -> bool {
        self.add_vertices > 0 || !self.remove_vertices.is_empty()
    }

    /// Graph-independent well-formedness: no duplicate edge within a
    /// batch, no edge both removed and inserted (remove-then-insert of
    /// the same edge is order-ambiguous — split it into two deltas),
    /// no duplicate vertex removal.
    pub fn validate(&self) -> Result<(), SimError> {
        let dup = |batch: &[(u32, u32)]| -> Option<(u32, u32)> {
            let mut seen = batch.to_vec();
            seen.sort_unstable();
            seen.windows(2).find(|w| w[0] == w[1]).map(|w| w[0])
        };
        if let Some((u, v)) = dup(&self.insert_edges) {
            return Err(SimError::Delta(format!(
                "duplicate edge ({u}, {v}) in insert batch"
            )));
        }
        if let Some((u, v)) = dup(&self.remove_edges) {
            return Err(SimError::Delta(format!(
                "duplicate edge ({u}, {v}) in remove batch"
            )));
        }
        if !self.insert_edges.is_empty() && !self.remove_edges.is_empty() {
            let mut removed = self.remove_edges.clone();
            removed.sort_unstable();
            for &(u, v) in &self.insert_edges {
                if removed.binary_search(&(u, v)).is_ok() {
                    return Err(SimError::Delta(format!(
                        "edge ({u}, {v}) both removed and inserted; \
                         remove-then-insert is a no-op — split it into two deltas"
                    )));
                }
            }
        }
        let mut vr = self.remove_vertices.clone();
        vr.sort_unstable();
        if let Some(w) = vr.windows(2).find(|w| w[0] == w[1]) {
            return Err(SimError::Delta(format!("vertex {} removed twice", w[0])));
        }
        Ok(())
    }

    /// Applies the delta to `g`, returning the post-delta graph or a
    /// typed error (insert of an existing edge, removal of a missing
    /// one, out-of-range endpoints, vertex removal with dangling
    /// incident edges). `g` is untouched on error.
    pub fn apply(&self, g: &Csr) -> Result<Csr, SimError> {
        self.apply_with(g, &mut SurgeryBuffers::default())
    }

    /// [`Self::apply`] with caller-owned scratch: the edge-only surgery
    /// path builds the new CSR inside `bufs`, so a session that recycles
    /// its retired graphs (see [`SimSession::apply`]) allocates nothing
    /// in steady state. Output is identical to `apply`.
    pub(crate) fn apply_with(&self, g: &Csr, bufs: &mut SurgeryBuffers) -> Result<Csr, SimError> {
        self.validate()?;
        let n = g.num_vertices() as u32;
        let n_ext = n + self.add_vertices;
        for &(u, v) in self.insert_edges.iter().chain(self.remove_edges.iter()) {
            if u >= n_ext || v >= n_ext {
                return Err(SimError::Delta(format!(
                    "edge ({u}, {v}) endpoint outside vertex range 0..{n_ext}"
                )));
            }
        }
        for &(u, v) in &self.remove_edges {
            // removals must reference the pre-delta graph, so both
            // endpoints are necessarily < n
            if u >= n || v >= n || !g.has_edge(u, v) {
                return Err(SimError::Delta(format!(
                    "edge ({u}, {v}) not present; cannot remove"
                )));
            }
        }
        for &(u, v) in &self.insert_edges {
            if u < n && v < n && g.has_edge(u, v) {
                return Err(SimError::Delta(format!(
                    "edge ({u}, {v}) already present; cannot insert"
                )));
            }
        }

        let mut removed_edges = self.remove_edges.clone();
        removed_edges.sort_unstable();
        let mut removed_vertices = self.remove_vertices.clone();
        removed_vertices.sort_unstable();
        if let Some(&v) = removed_vertices.iter().find(|&&v| v >= n) {
            return Err(SimError::Delta(format!(
                "vertex {v} outside vertex range 0..{n}; cannot remove"
            )));
        }
        if !removed_vertices.is_empty() {
            let is_removed_vertex = |v: u32| removed_vertices.binary_search(&v).is_ok();
            // every incident edge of a removed vertex must be explicitly
            // removed in the same delta — both the out-edges it owns and
            // the in-edges that reference it
            for (u, v) in g.edges() {
                if (is_removed_vertex(u) || is_removed_vertex(v))
                    && removed_edges.binary_search(&(u, v)).is_err()
                {
                    return Err(SimError::Delta(format!(
                        "removing vertex leaves dangling incident edge ({u}, {v}); \
                         list it in remove_edges"
                    )));
                }
            }
            for &(u, v) in &self.insert_edges {
                if is_removed_vertex(u) || is_removed_vertex(v) {
                    return Err(SimError::Delta(format!(
                        "inserted edge ({u}, {v}) references a removed vertex"
                    )));
                }
            }
        }

        // Edge-only fast path: no ids shift, so the CSR is edited by row
        // surgery — untouched rows copy wholesale, touched rows merge —
        // instead of the builder's O(E log E) rebuild, which would cost
        // more than the engine's own dirty-tile run on the session's
        // incremental hot path.
        if !self.is_structural() {
            let mut inserts = self.insert_edges.clone();
            inserts.sort_unstable();
            return Ok(edge_surgery(g, &inserts, &removed_edges, bufs));
        }

        // Survivor relabelling: new id = old id − (#removed ids ≤ old).
        let relabel = |v: u32| -> u32 { v - removed_vertices.partition_point(|&r| r <= v) as u32 };
        let n_new = n_ext as usize - removed_vertices.len();
        let mut b = GraphBuilder::new(n_new);
        for (u, v) in g.edges() {
            if removed_edges.binary_search(&(u, v)).is_err() {
                b.add_edge(relabel(u), relabel(v));
            }
        }
        for &(u, v) in &self.insert_edges {
            b.add_edge(relabel(u), relabel(v));
        }
        Ok(b.build())
    }

    /// The source vertices the delta's edge edits touch — exactly the
    /// vertices whose owning tiles must recompute under the minimal
    /// dirty rule (sorted, deduplicated).
    pub fn touched_sources(&self) -> Vec<u32> {
        let mut srcs: Vec<u32> = self
            .insert_edges
            .iter()
            .chain(self.remove_edges.iter())
            .map(|&(u, _)| u)
            .collect();
        srcs.sort_unstable();
        srcs.dedup();
        srcs
    }
}

/// Scratch for [`edge_surgery`]: the output CSR's arrays are built here,
/// so a caller that hands back a retired graph's allocations (via
/// [`Csr::into_raw`]) runs the surgery without touching the allocator.
#[derive(Debug, Default)]
pub(crate) struct SurgeryBuffers {
    pub(crate) row_ptr: Vec<u32>,
    pub(crate) col_idx: Vec<u32>,
}

/// Rewrites `g` with `inserts` added and `removes` dropped — both sorted
/// by `(source, dest)` and pre-validated (inserts absent from `g`,
/// removes present, no duplicates). Rows of untouched sources are copied
/// wholesale; each touched row is a sorted three-way merge. The result
/// is exactly what [`GraphBuilder`] would produce (sorted, duplicate-free
/// neighbour lists) without its whole-edge-list sort — which, with the
/// row-pointer shift done in wrapping `u32` (one vectorizable add) and
/// [`Csr::from_raw_unchecked`] skipping the re-validation passes, keeps
/// an apply on a 160k-edge graph in the ~0.1ms range instead of the
/// multi-ms a builder rebuild costs.
fn edge_surgery(
    g: &Csr,
    inserts: &[(u32, u32)],
    removes: &[(u32, u32)],
    bufs: &mut SurgeryBuffers,
) -> Csr {
    let old_rp = g.row_ptr();
    let old_ci = g.col_idx();
    let mut touched: Vec<u32> = inserts
        .iter()
        .chain(removes.iter())
        .map(|&(u, _)| u)
        .collect();
    touched.sort_unstable();
    touched.dedup();

    let mut row_ptr = std::mem::take(&mut bufs.row_ptr);
    let mut col_idx = std::mem::take(&mut bufs.col_idx);
    row_ptr.clear();
    col_idx.clear();
    row_ptr.reserve(old_rp.len());
    col_idx.reserve(old_ci.len() + inserts.len() - removes.len());
    row_ptr.push(0u32);
    let mut done = 0usize; // rows emitted so far
    let (mut ins_i, mut rem_i) = (0usize, 0usize);
    for &u in &touched {
        let u = u as usize;
        // rows [done, u) are unchanged: bulk-copy, pointers shifted by
        // the net edge change accumulated so far (wrapping: the shift
        // may be logically negative, new = old + (len − base) mod 2³²)
        let shift = (col_idx.len() as u32).wrapping_sub(old_rp[done]);
        col_idx.extend_from_slice(&old_ci[old_rp[done] as usize..old_rp[u] as usize]);
        row_ptr.extend(old_rp[done + 1..=u].iter().map(|&p| p.wrapping_add(shift)));
        // row u: merge the old (sorted) neighbour list with this row's
        // slice of inserts, skipping its slice of removes
        let ins_start = ins_i;
        while ins_i < inserts.len() && inserts[ins_i].0 as usize == u {
            ins_i += 1;
        }
        let rem_start = rem_i;
        while rem_i < removes.len() && removes[rem_i].0 as usize == u {
            rem_i += 1;
        }
        let add = &inserts[ins_start..ins_i];
        let del = &removes[rem_start..rem_i];
        let (mut ai, mut di) = (0usize, 0usize);
        for &v in &old_ci[old_rp[u] as usize..old_rp[u + 1] as usize] {
            while ai < add.len() && add[ai].1 < v {
                col_idx.push(add[ai].1);
                ai += 1;
            }
            if di < del.len() && del[di].1 == v {
                di += 1;
                continue;
            }
            col_idx.push(v);
        }
        for &(_, v) in &add[ai..] {
            col_idx.push(v);
        }
        row_ptr.push(col_idx.len() as u32);
        done = u + 1;
    }
    // the tail past the last touched row
    let shift = (col_idx.len() as u32).wrapping_sub(old_rp[done]);
    col_idx.extend_from_slice(&old_ci[old_rp[done] as usize..]);
    row_ptr.extend(old_rp[done + 1..].iter().map(|&p| p.wrapping_add(shift)));
    // invariants hold structurally: pointers are prefix sums of emitted
    // rows and every column came from the validated old CSR or delta
    Csr::from_raw_unchecked(row_ptr, col_idx)
}

/// Advances a session's digest chain: `fnv1a64(prev ∥ 0xff ∥
/// canonical-JSON(delta))`, rendered as 16 hex digits like
/// [`SimRequest::digest`]. The `0xff` separator cannot occur in either
/// the hex digest or JSON, so the chaining is unambiguous.
pub fn chain_digest(prev: &str, delta: &GraphDelta) -> String {
    let canonical = serde_json::to_string(delta).expect("delta serializes");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(prev.as_bytes());
    eat(&[0xff]);
    eat(canonical.as_bytes());
    format!("{h:016x}")
}

/// The outcome of one [`SimSession::apply`]: where the digest chain now
/// points and whether the report was replayed (empty delta) rather than
/// recomputed.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaOutcome {
    /// The chained digest after this delta (unchanged for a no-op).
    pub digest: String,
    /// `true` when the delta was empty and the last report was replayed
    /// without touching the engine.
    pub cached: bool,
}

/// A stateful simulation session over an evolving graph.
///
/// Owns the resolved CSR, the engine's warm per-layer artifacts, and the
/// last report. [`Self::apply`] advances the graph by a delta and
/// re-simulates incrementally; the report is always bit-identical to
/// `AuroraSimulator::new(config).run(..)` on the post-delta graph.
///
/// Sessions run *unobserved* (a disabled telemetry handle, like the
/// serve daemon's engine workers): the report's `metrics` snapshot must
/// be a function of the request alone, and a shared live handle would
/// accumulate across applies.
#[derive(Debug)]
pub struct SimSession {
    sim: AuroraSimulator,
    base: SimRequest,
    graph: Csr,
    /// Session id: the base request's digest, constant for the session's
    /// lifetime (the router's shard-affinity key).
    sid: String,
    /// Head of the digest chain.
    digest: String,
    state: SessionState,
    last: SimReport,
    /// Recycled CSR arrays: each successful edge-only apply builds the
    /// new graph here, then reclaims the retired graph's allocations —
    /// the surgery never touches the allocator in steady state.
    bufs: SurgeryBuffers,
    applied: u64,
    runs: u64,
}

impl SimSession {
    /// Opens a session: validates and resolves `req`, runs it once from
    /// scratch (populating the warm per-tile state), and returns the
    /// session positioned at `d₀ = req.digest()`.
    pub(crate) fn open(req: &SimRequest) -> Result<SimSession, SimError> {
        req.validate()?;
        let mut config = req.config;
        config.trace_instructions |= req.options.trace_instructions;
        let sim = AuroraSimulator::new(config).with_engine_core(EngineCore::Arena);
        let graph = req.graph.resolve()?;
        let workload = req.workload_label();
        let mut state = SessionState::default();
        let last = sim.run_with_session(
            &graph,
            req.model,
            &req.layers,
            &workload,
            req.options.input_density,
            &mut state,
            &DirtyScope::All,
        )?;
        let digest = req.digest();
        Ok(SimSession {
            sim,
            base: req.clone(),
            graph,
            sid: digest.clone(),
            digest,
            state,
            last,
            bufs: SurgeryBuffers::default(),
            applied: 0,
            runs: 1,
        })
    }

    /// Applies a delta and re-simulates. Edge-only deltas recompute just
    /// the tiles owning a touched source vertex; structural deltas (or a
    /// tiling/strategy shift) recompute everything through the session.
    /// An empty delta is a no-op hit. On error the graph, digest and
    /// last report are unchanged (the warm state is conservatively
    /// invalidated, so the next successful apply recomputes fully).
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<DeltaOutcome, SimError> {
        delta.validate()?;
        if delta.is_empty() {
            return Ok(DeltaOutcome {
                digest: self.digest.clone(),
                cached: true,
            });
        }
        let new_graph = delta.apply_with(&self.graph, &mut self.bufs)?;
        let scope = if delta.is_structural() {
            DirtyScope::All
        } else {
            DirtyScope::Vertices(delta.touched_sources())
        };
        let workload = self.base.workload_label();
        match self.sim.run_with_session(
            &new_graph,
            self.base.model,
            &self.base.layers,
            &workload,
            self.base.options.input_density,
            &mut self.state,
            &scope,
        ) {
            Ok(report) => {
                // the retired graph's arrays become the next surgery's
                // scratch — zero-alloc steady state
                let retired = std::mem::replace(&mut self.graph, new_graph);
                (self.bufs.row_ptr, self.bufs.col_idx) = retired.into_raw();
                self.digest = chain_digest(&self.digest, delta);
                self.last = report;
                self.applied += 1;
                self.runs += 1;
                Ok(DeltaOutcome {
                    digest: self.digest.clone(),
                    cached: false,
                })
            }
            Err(e) => {
                self.state.invalidate();
                Err(e)
            }
        }
    }

    /// The session id (`d₀`, the base request's digest).
    pub fn sid(&self) -> &str {
        &self.sid
    }

    /// The head of the digest chain.
    pub fn digest(&self) -> &str {
        &self.digest
    }

    /// The report of the session's current graph state.
    pub fn last_report(&self) -> &SimReport {
        &self.last
    }

    /// The current (post-delta) graph.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    /// The request the session opened with.
    pub fn base_request(&self) -> &SimRequest {
        &self.base
    }

    /// Deltas successfully applied since open.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Engine runs performed (open + non-empty applies) — a no-op hit
    /// does not increment this.
    pub fn runs(&self) -> u64 {
        self.runs
    }
}

impl AuroraSimulator {
    /// Opens a [`SimSession`] for `req`: one from-scratch run populates
    /// the warm per-tile state, then [`Self::apply_delta`] (or
    /// [`SimSession::apply`]) advances it incrementally.
    pub fn open_session(&self, req: &SimRequest) -> Result<SimSession, SimError> {
        SimSession::open(req)
    }

    /// Applies `delta` to an open session — sugar for
    /// [`SimSession::apply`] so one-shot and streaming callers read the
    /// same (`sim.run(..)` / `sim.apply_delta(..)`).
    pub fn apply_delta(
        &self,
        session: &mut SimSession,
        delta: &GraphDelta,
    ) -> Result<DeltaOutcome, SimError> {
        session.apply(delta)
    }
}

/// One line of the NDJSON `"session"` verb: open / delta / close.
///
/// Wire shape: `{"id": N, "session": {"op": "open", "sim": {..}}}`,
/// `{"id": N, "session": {"op": "delta", "sid": "..", "delta": {..}}}`,
/// `{"id": N, "session": {"op": "close", "sid": ".."}}`. Replies reuse
/// the [`SimResponse`](crate::SimResponse) envelope (`digest` carries
/// the chained digest after the op).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionCommand {
    /// `"open"`, `"delta"` or `"close"`.
    pub op: String,
    /// Session id (`d₀`); required for delta/close.
    #[serde(default)]
    pub sid: Option<String>,
    /// The base request; required for open.
    #[serde(default)]
    pub sim: Option<SimRequest>,
    /// The edit batch; required for delta.
    #[serde(default)]
    pub delta: Option<GraphDelta>,
}

impl SessionCommand {
    pub const OPEN: &'static str = "open";
    pub const DELTA: &'static str = "delta";
    pub const CLOSE: &'static str = "close";

    /// Structural validity: a known op with its required fields.
    pub fn validate(&self) -> Result<(), SimError> {
        match self.op.as_str() {
            Self::OPEN => {
                let sim = self.sim.as_ref().ok_or_else(|| {
                    SimError::InvalidRequest("session open requires a sim request".into())
                })?;
                sim.validate()
            }
            Self::DELTA => {
                if self.sid.is_none() {
                    return Err(SimError::InvalidRequest(
                        "session delta requires a sid".into(),
                    ));
                }
                let delta = self.delta.as_ref().ok_or_else(|| {
                    SimError::InvalidRequest("session delta requires a delta".into())
                })?;
                delta.validate()
            }
            Self::CLOSE => {
                if self.sid.is_none() {
                    return Err(SimError::InvalidRequest(
                        "session close requires a sid".into(),
                    ));
                }
                Ok(())
            }
            other => Err(SimError::InvalidRequest(format!(
                "unknown session op {other:?} (expected open/delta/close)"
            ))),
        }
    }

    /// The digest the router hashes for shard affinity: `d₀` for every
    /// op of one session (open derives it from the request, delta/close
    /// carry it as `sid`), so the whole session pins to one shard and
    /// its warm state.
    pub fn routing_digest(&self) -> Result<String, SimError> {
        self.validate()?;
        Ok(match self.op.as_str() {
            Self::OPEN => self.sim.as_ref().expect("validated").digest(),
            _ => self.sid.clone().expect("validated"),
        })
    }
}

/// Builder family counterpart of
/// [`SimRequestBuilder`](crate::SimRequestBuilder) for the session verb:
/// open/delta/close lines come from one typed source instead of
/// hand-built JSON.
///
/// ```
/// use aurora_core::{GraphDelta, SessionRequestBuilder, SimRequest};
/// use aurora_model::{LayerShape, ModelId};
///
/// let req = SimRequest::builder(ModelId::Gcn)
///     .rmat(128, 800, 3)
///     .layer(LayerShape::new(16, 8))
///     .build()
///     .unwrap();
/// let sb = SessionRequestBuilder::from_request(req);
/// let open = sb.open().unwrap();
/// let delta = sb.delta(GraphDelta {
///     insert_edges: vec![(1, 2)],
///     ..GraphDelta::default()
/// });
/// let close = sb.close();
/// assert_eq!(open.routing_digest().unwrap(), sb.sid());
/// assert_eq!(delta.routing_digest().unwrap(), sb.sid());
/// assert_eq!(close.routing_digest().unwrap(), sb.sid());
/// ```
#[derive(Debug, Clone)]
pub struct SessionRequestBuilder {
    sid: String,
    sim: Option<SimRequest>,
}

impl SessionRequestBuilder {
    /// A builder anchored to `req`; `sid` becomes `req.digest()`.
    pub fn from_request(req: SimRequest) -> Self {
        Self {
            sid: req.digest(),
            sim: Some(req),
        }
    }

    /// A builder resuming an already-open session by sid (can emit
    /// delta/close commands but not open).
    pub fn resume(sid: impl Into<String>) -> Self {
        Self {
            sid: sid.into(),
            sim: None,
        }
    }

    /// The session id every emitted command routes by.
    pub fn sid(&self) -> &str {
        &self.sid
    }

    /// The open command (requires construction via
    /// [`Self::from_request`]).
    pub fn open(&self) -> Result<SessionCommand, SimError> {
        let sim = self.sim.clone().ok_or_else(|| {
            SimError::InvalidRequest("open requires a builder made from_request".into())
        })?;
        Ok(SessionCommand {
            op: SessionCommand::OPEN.into(),
            sid: None,
            sim: Some(sim),
            delta: None,
        })
    }

    /// A delta command for this session.
    pub fn delta(&self, delta: GraphDelta) -> SessionCommand {
        SessionCommand {
            op: SessionCommand::DELTA.into(),
            sid: Some(self.sid.clone()),
            sim: None,
            delta: Some(delta),
        }
    }

    /// The close command for this session.
    pub fn close(&self) -> SessionCommand {
        SessionCommand {
            op: SessionCommand::CLOSE.into(),
            sid: Some(self.sid.clone()),
            sim: None,
            delta: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use aurora_model::{LayerShape, ModelId};

    fn line_graph(n: usize) -> Csr {
        let mut b = GraphBuilder::new(n);
        for v in 0..n as u32 - 1 {
            b.add_edge(v, v + 1);
        }
        b.build()
    }

    fn base_request() -> SimRequest {
        SimRequest::builder(ModelId::Gcn)
            .config(AcceleratorConfig::small(4))
            .rmat(256, 1600, 11)
            .layer(LayerShape::new(16, 8))
            .workload("delta-test")
            .build()
            .unwrap()
    }

    /// The edge-only surgery path must be indistinguishable from a
    /// ground-truth rebuild through [`GraphBuilder`].
    #[test]
    fn edge_surgery_matches_builder_rebuild() {
        let g = aurora_graph::generate::rmat(512, 4_000, Default::default(), 7);
        // a messy but valid delta: removals from several rows (including
        // row 0 and the last row with edges), inserts interleaving below,
        // between, and above existing neighbours
        let mut remove_edges = Vec::new();
        for u in [0u32, 3, 200, 201, 511] {
            if let Some(&v) = g.neighbors(u).first() {
                remove_edges.push((u, v));
            }
            if let Some(&v) = g.neighbors(u).last() {
                if Some(&v) != g.neighbors(u).first() {
                    remove_edges.push((u, v));
                }
            }
        }
        let mut insert_edges = Vec::new();
        for u in [0u32, 5, 200, 450, 511] {
            for v in [1u32, 255, 510] {
                if u != v && !g.has_edge(u, v) && !insert_edges.contains(&(u, v)) {
                    insert_edges.push((u, v));
                }
            }
        }
        let d = GraphDelta {
            insert_edges: insert_edges.clone(),
            remove_edges: remove_edges.clone(),
            ..GraphDelta::default()
        };
        let fast = d.apply(&g).unwrap();
        // ground truth: full rebuild
        let mut removed = remove_edges.clone();
        removed.sort_unstable();
        let mut b = GraphBuilder::new(g.num_vertices());
        for (u, v) in g.edges() {
            if removed.binary_search(&(u, v)).is_err() {
                b.add_edge(u, v);
            }
        }
        for &(u, v) in &insert_edges {
            b.add_edge(u, v);
        }
        let slow = b.build();
        assert_eq!(fast.row_ptr(), slow.row_ptr());
        assert_eq!(fast.col_idx(), slow.col_idx());
    }

    #[test]
    fn validate_rejects_duplicate_edge_in_one_batch() {
        let d = GraphDelta {
            insert_edges: vec![(1, 2), (3, 4), (1, 2)],
            ..GraphDelta::default()
        };
        let err = d.validate().unwrap_err();
        assert_eq!(err.kind(), "invalid_delta");
        assert!(err.to_string().contains("duplicate edge (1, 2)"));
        let d = GraphDelta {
            remove_edges: vec![(7, 8), (7, 8)],
            ..GraphDelta::default()
        };
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_rejects_remove_then_insert_of_same_edge() {
        let d = GraphDelta {
            insert_edges: vec![(2, 3)],
            remove_edges: vec![(2, 3)],
            ..GraphDelta::default()
        };
        let err = d.validate().unwrap_err();
        assert_eq!(err.kind(), "invalid_delta");
        assert!(err.to_string().contains("both removed and inserted"));
    }

    #[test]
    fn apply_rejects_vertex_remove_with_dangling_edges() {
        let g = line_graph(6); // 0→1→2→3→4→5
                               // removing vertex 2 without removing (1,2) and (2,3) dangles
        let d = GraphDelta {
            remove_vertices: vec![2],
            ..GraphDelta::default()
        };
        let err = d.apply(&g).unwrap_err();
        assert_eq!(err.kind(), "invalid_delta");
        assert!(err.to_string().contains("dangling incident edge"));
        // removing only the out-edge still dangles the in-edge
        let d = GraphDelta {
            remove_edges: vec![(2, 3)],
            remove_vertices: vec![2],
            ..GraphDelta::default()
        };
        assert!(d.apply(&g).is_err());
        // listing both incident edges succeeds and compacts ids
        let d = GraphDelta {
            remove_edges: vec![(1, 2), (2, 3)],
            remove_vertices: vec![2],
            ..GraphDelta::default()
        };
        let g2 = d.apply(&g).unwrap();
        assert_eq!(g2.num_vertices(), 5);
        // surviving edges 0→1, 3→4→5 relabel to 0→1, 2→3→4
        assert!(g2.has_edge(0, 1));
        assert!(g2.has_edge(2, 3));
        assert!(g2.has_edge(3, 4));
        assert_eq!(g2.num_edges(), 3);
    }

    #[test]
    fn apply_typed_errors_for_membership_and_range() {
        let g = line_graph(4);
        let exists = GraphDelta {
            insert_edges: vec![(0, 1)],
            ..GraphDelta::default()
        };
        assert!(exists
            .apply(&g)
            .unwrap_err()
            .to_string()
            .contains("already present"));
        let missing = GraphDelta {
            remove_edges: vec![(0, 2)],
            ..GraphDelta::default()
        };
        assert!(missing
            .apply(&g)
            .unwrap_err()
            .to_string()
            .contains("not present"));
        let oob = GraphDelta {
            insert_edges: vec![(0, 9)],
            ..GraphDelta::default()
        };
        assert!(oob
            .apply(&g)
            .unwrap_err()
            .to_string()
            .contains("outside vertex range"));
        // inserts may target freshly added vertices
        let grow = GraphDelta {
            insert_edges: vec![(0, 4)],
            add_vertices: 1,
            ..GraphDelta::default()
        };
        let g2 = grow.apply(&g).unwrap();
        assert_eq!(g2.num_vertices(), 5);
        assert!(g2.has_edge(0, 4));
    }

    #[test]
    fn empty_delta_is_a_noop_hit_not_a_rerun() {
        let sim = AuroraSimulator::paper();
        let mut session = sim.open_session(&base_request()).unwrap();
        let runs_before = session.runs();
        let digest_before = session.digest().to_string();
        let report_before = serde_json::to_string(session.last_report()).unwrap();
        let out = session.apply(&GraphDelta::default()).unwrap();
        assert!(out.cached, "empty delta must be served from the session");
        assert_eq!(out.digest, digest_before, "digest chain must not advance");
        assert_eq!(session.runs(), runs_before, "engine must not re-run");
        assert_eq!(
            serde_json::to_string(session.last_report()).unwrap(),
            report_before
        );
    }

    #[test]
    fn incremental_apply_matches_from_scratch() {
        let req = base_request();
        let sim = AuroraSimulator::paper();
        let mut session = sim.open_session(&req).unwrap();
        // the open replays the plain run exactly
        let fresh0 = AuroraSimulator::new(req.config).run(&req).unwrap();
        assert_eq!(
            serde_json::to_string(session.last_report()).unwrap(),
            serde_json::to_string(&fresh0).unwrap(),
            "open must match a one-shot run of the base request"
        );
        // a small edge delta stays bit-identical to a from-scratch run
        let g = session.graph().clone();
        let (ru, rv) = g.edges().next().unwrap();
        let mut iv = 0;
        let insert = loop {
            if !(g.has_edge(3, iv) || (ru == 3 && rv == iv)) {
                break (3u32, iv);
            }
            iv += 1;
        };
        let delta = GraphDelta {
            insert_edges: vec![insert],
            remove_edges: vec![(ru, rv)],
            ..GraphDelta::default()
        };
        let out = sim.apply_delta(&mut session, &delta).unwrap();
        assert!(!out.cached);
        assert_eq!(out.digest, chain_digest(&req.digest(), &delta));
        let fresh_req = SimRequest {
            graph: crate::GraphSpec::Inline(delta.apply(&g).unwrap()),
            ..req.clone()
        };
        let fresh = AuroraSimulator::new(req.config).run(&fresh_req).unwrap();
        // options.workload is set, so the inline fresh request reports the
        // same label and whole reports must match byte for byte
        assert_eq!(
            serde_json::to_string(session.last_report()).unwrap(),
            serde_json::to_string(&fresh).unwrap(),
            "incremental ≠ from-scratch"
        );
        // a structural delta falls back to full recompute, still identical
        let delta2 = GraphDelta {
            add_vertices: 2,
            insert_edges: vec![(10, 256), (256, 257)],
            ..GraphDelta::default()
        };
        let g2 = session.graph().clone();
        sim.apply_delta(&mut session, &delta2).unwrap();
        let fresh_req2 = SimRequest {
            graph: crate::GraphSpec::Inline(delta2.apply(&g2).unwrap()),
            ..req.clone()
        };
        let fresh2 = AuroraSimulator::new(req.config).run(&fresh_req2).unwrap();
        assert_eq!(
            session.last_report().total_cycles,
            fresh2.total_cycles,
            "structural fallback must still match from-scratch"
        );
    }

    #[test]
    fn failed_apply_leaves_session_usable() {
        let sim = AuroraSimulator::paper();
        let mut session = sim.open_session(&base_request()).unwrap();
        let digest = session.digest().to_string();
        let bad = GraphDelta {
            remove_edges: vec![(0, 999)],
            ..GraphDelta::default()
        };
        assert!(session.apply(&bad).is_err());
        assert_eq!(session.digest(), digest, "failed apply must not advance");
        // and a later good delta still matches from-scratch
        let g = session.graph().clone();
        let (u, v) = g.edges().next().unwrap();
        let d = GraphDelta {
            remove_edges: vec![(u, v)],
            ..GraphDelta::default()
        };
        session.apply(&d).unwrap();
        let req = session.base_request().clone();
        let fresh_req = SimRequest {
            graph: crate::GraphSpec::Inline(d.apply(&g).unwrap()),
            ..req.clone()
        };
        let fresh = AuroraSimulator::new(req.config).run(&fresh_req).unwrap();
        assert_eq!(
            serde_json::to_string(session.last_report()).unwrap(),
            serde_json::to_string(&fresh).unwrap()
        );
    }

    #[test]
    fn digest_chain_is_order_sensitive_and_deterministic() {
        let d1 = GraphDelta {
            insert_edges: vec![(1, 2)],
            ..GraphDelta::default()
        };
        let d2 = GraphDelta {
            remove_edges: vec![(1, 2)],
            ..GraphDelta::default()
        };
        let a = chain_digest(&chain_digest("d0", &d1), &d2);
        let b = chain_digest(&chain_digest("d0", &d2), &d1);
        assert_ne!(a, b, "chain must encode order");
        assert_eq!(a, chain_digest(&chain_digest("d0", &d1), &d2));
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn session_commands_validate_and_route() {
        let req = base_request();
        let sid = req.digest();
        let sb = SessionRequestBuilder::from_request(req);
        assert_eq!(sb.sid(), sid);
        let open = sb.open().unwrap();
        open.validate().unwrap();
        assert_eq!(open.routing_digest().unwrap(), sid);
        let delta = sb.delta(GraphDelta::default());
        assert_eq!(delta.routing_digest().unwrap(), sid);
        let close = sb.close();
        assert_eq!(close.routing_digest().unwrap(), sid);
        // resume builders cannot open
        assert!(SessionRequestBuilder::resume(&sid).open().is_err());
        // malformed commands are typed errors
        let bad = SessionCommand {
            op: "delta".into(),
            sid: None,
            sim: None,
            delta: Some(GraphDelta::default()),
        };
        assert!(bad.validate().is_err());
        let unknown = SessionCommand {
            op: "poke".into(),
            sid: None,
            sim: None,
            delta: None,
        };
        assert!(unknown.validate().is_err());
        // commands round-trip the wire
        let json = serde_json::to_string(&delta).unwrap();
        let back: SessionCommand = serde_json::from_str(&json).unwrap();
        assert_eq!(back, delta);
    }
}
