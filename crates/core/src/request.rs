//! The unified simulation request API and its wire envelope.
//!
//! A [`SimRequest`] is a *complete, self-contained* description of one
//! simulation: accelerator configuration, graph source, model, layer
//! shapes and options. The paper's methodology (§VI-A) makes a report a
//! deterministic pure function of exactly these inputs — the simulator
//! "monitors the number of arithmetic operations and the number of
//! accesses to each memory hierarchy" from the config/graph/model alone,
//! and the worker pool's ordered-gather contract keeps results
//! bit-identical at every thread count. That purity is what lets
//! `aurora-serve` cache whole reports content-addressed by
//! [`SimRequest::digest`]: digest-equal requests *must* produce
//! byte-equal reports, so a cached answer is exact, never approximate.
//!
//! [`AuroraSimulator::run`](crate::AuroraSimulator::run) is the one
//! canonical entry point consuming a request; the older
//! `simulate*` methods are thin wrappers that build a request and
//! panic on [`SimError`] to preserve their historical signatures.

use crate::config::AcceleratorConfig;
use crate::report::SimReport;
use aurora_graph::{generate, Csr, Dataset};
use aurora_model::{LayerShape, ModelId};
use aurora_noc::NocError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Where a request's graph comes from. Every variant is serializable so
/// requests can travel over the `aurora-serve` wire; the spec variants
/// synthesize deterministically (same spec ⇒ same [`Csr`]), which keeps
/// the content-addressed digest honest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GraphSpec {
    /// One of the paper's datasets, down-scaled by `scale` (1 = full).
    Dataset { dataset: Dataset, scale: usize },
    /// A synthetic R-MAT graph (the perf-harness workloads).
    Rmat {
        vertices: usize,
        edges: usize,
        seed: u64,
    },
    /// A ring lattice (cheap smoke workloads).
    Ring { vertices: usize },
    /// A fully materialised graph carried inline. Used by the in-process
    /// `simulate*` wrappers; service clients normally send a spec and
    /// let the daemon synthesize, keeping request lines small.
    Inline(Csr),
}

impl GraphSpec {
    /// Resolves the spec to a concrete graph. `Inline` clones; the
    /// engine's `run` borrows inline graphs instead of calling this.
    pub fn resolve(&self) -> Result<Csr, SimError> {
        self.validate()?;
        Ok(match self {
            GraphSpec::Dataset { dataset, scale } => dataset.spec().scaled(*scale).synthesize(),
            GraphSpec::Rmat {
                vertices,
                edges,
                seed,
            } => generate::rmat(*vertices, *edges, Default::default(), *seed),
            GraphSpec::Ring { vertices } => generate::ring(*vertices),
            GraphSpec::Inline(g) => g.clone(),
        })
    }

    /// Structural validity of the spec itself (cheap; no synthesis).
    pub fn validate(&self) -> Result<(), SimError> {
        match self {
            GraphSpec::Dataset { scale, .. } if *scale == 0 => Err(SimError::InvalidRequest(
                "dataset scale must be >= 1".into(),
            )),
            GraphSpec::Rmat { vertices: 0, .. } | GraphSpec::Ring { vertices: 0 } => {
                Err(SimError::EmptyGraph)
            }
            GraphSpec::Inline(g) if g.num_vertices() == 0 => Err(SimError::EmptyGraph),
            _ => Ok(()),
        }
    }

    /// Short human-readable label, used as the default workload name.
    pub fn label(&self) -> String {
        match self {
            GraphSpec::Dataset { dataset, scale } if *scale <= 1 => dataset.name().to_string(),
            GraphSpec::Dataset { dataset, scale } => format!("{}/{}", dataset.name(), scale),
            GraphSpec::Rmat {
                vertices, edges, ..
            } => format!("rmat-{vertices}v-{edges}e"),
            GraphSpec::Ring { vertices } => format!("ring-{vertices}"),
            GraphSpec::Inline(g) => format!("inline-{}v-{}e", g.num_vertices(), g.num_edges()),
        }
    }
}

/// Per-request options that do not change the hardware model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOptions {
    /// Free-form label copied into the report.
    pub workload: String,
    /// Input feature density in `[0, 1]` (first layer only; §VI-D).
    pub input_density: f64,
    /// Record the controller instruction trace in the report.
    pub trace_instructions: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        Self {
            workload: String::new(),
            input_density: 1.0,
            trace_instructions: false,
        }
    }
}

/// Highest request/envelope `version` this build understands. Version 0
/// is the original unversioned schema (absent fields deserialize to 0);
/// version 1 added the field itself plus the session protocol. Servers
/// reject anything above this with a typed `unsupported_version` error
/// instead of guessing at future semantics.
pub const WIRE_VERSION: u32 = 1;

/// A complete, serializable simulation request — the canonical input of
/// [`AuroraSimulator::run`](crate::AuroraSimulator::run) and the unit the
/// `aurora-serve` result cache is keyed on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimRequest {
    /// Wire-schema version. `#[serde(default)]` keeps v0 clients (which
    /// omit the field) parseable; [`SimRequest::validate`] rejects
    /// versions above [`WIRE_VERSION`]. The field always serializes, so
    /// a request's digest covers it.
    #[serde(default)]
    pub version: u32,
    pub config: AcceleratorConfig,
    pub graph: GraphSpec,
    pub model: ModelId,
    pub layers: Vec<LayerShape>,
    pub options: SimOptions,
}

impl SimRequest {
    /// Starts a builder for `model`. A graph source and at least one
    /// layer must be supplied before [`SimRequestBuilder::build`].
    pub fn builder(model: ModelId) -> SimRequestBuilder {
        SimRequestBuilder {
            version: 0,
            config: AcceleratorConfig::default(),
            graph: None,
            model,
            layers: Vec::new(),
            options: SimOptions::default(),
        }
    }

    /// Validates the request without running it: the version is
    /// supported, a graph is present and non-empty (spec-level), layers
    /// are non-empty, the density is in range, and the configuration is
    /// usable.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.version > WIRE_VERSION {
            return Err(SimError::UnsupportedVersion {
                got: self.version,
                supported: WIRE_VERSION,
            });
        }
        self.graph.validate()?;
        if self.layers.is_empty() {
            return Err(SimError::EmptyLayers);
        }
        if !(0.0..=1.0).contains(&self.options.input_density) {
            return Err(SimError::InvalidDensity {
                density: self.options.input_density,
            });
        }
        if self.config.k == 0 {
            return Err(SimError::InvalidRequest("config.k must be >= 1".into()));
        }
        Ok(())
    }

    /// Content-addressed identity: an FNV-1a 64-bit hash of the
    /// request's canonical (compact, declaration-ordered) JSON, rendered
    /// as 16 hex digits. Two requests share a digest exactly when their
    /// serialized forms are identical, and the engine's determinism
    /// contract then guarantees identical reports — the invariant the
    /// serve cache relies on.
    pub fn digest(&self) -> String {
        let canonical = serde_json::to_string(self).expect("request serializes");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in canonical.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        format!("{h:016x}")
    }

    /// The workload label, falling back to the graph's label.
    pub fn workload_label(&self) -> String {
        if self.options.workload.is_empty() {
            self.graph.label()
        } else {
            self.options.workload.clone()
        }
    }
}

/// Builder for [`SimRequest`] (the ergonomic construction path; wire
/// clients deserialize requests directly).
#[derive(Debug, Clone)]
pub struct SimRequestBuilder {
    version: u32,
    config: AcceleratorConfig,
    graph: Option<GraphSpec>,
    model: ModelId,
    layers: Vec<LayerShape>,
    options: SimOptions,
}

impl SimRequestBuilder {
    /// Wire-schema version to stamp on the request (default 0, the
    /// original schema; must be ≤ [`WIRE_VERSION`]).
    pub fn version(mut self, version: u32) -> Self {
        self.version = version;
        self
    }

    /// Accelerator configuration (default: the paper's 32×32 instance).
    pub fn config(mut self, config: AcceleratorConfig) -> Self {
        self.config = config;
        self
    }

    /// Any graph source.
    pub fn graph(mut self, graph: GraphSpec) -> Self {
        self.graph = Some(graph);
        self
    }

    /// A paper dataset at `1/scale` size.
    pub fn dataset(self, dataset: Dataset, scale: usize) -> Self {
        self.graph(GraphSpec::Dataset { dataset, scale })
    }

    /// A synthetic R-MAT graph.
    pub fn rmat(self, vertices: usize, edges: usize, seed: u64) -> Self {
        self.graph(GraphSpec::Rmat {
            vertices,
            edges,
            seed,
        })
    }

    /// A fully materialised graph carried inline.
    pub fn inline_graph(self, g: Csr) -> Self {
        self.graph(GraphSpec::Inline(g))
    }

    /// Appends one layer shape.
    pub fn layer(mut self, shape: LayerShape) -> Self {
        self.layers.push(shape);
        self
    }

    /// Replaces the layer list.
    pub fn layers(mut self, shapes: &[LayerShape]) -> Self {
        self.layers = shapes.to_vec();
        self
    }

    /// Workload label for the report.
    pub fn workload(mut self, label: impl Into<String>) -> Self {
        self.options.workload = label.into();
        self
    }

    /// Input feature density (first layer only).
    pub fn input_density(mut self, density: f64) -> Self {
        self.options.input_density = density;
        self
    }

    /// Record the controller instruction trace.
    pub fn trace_instructions(mut self, on: bool) -> Self {
        self.options.trace_instructions = on;
        self
    }

    /// Finishes and validates the request.
    pub fn build(self) -> Result<SimRequest, SimError> {
        let graph = self
            .graph
            .ok_or_else(|| SimError::InvalidRequest("a graph source is required".into()))?;
        let req = SimRequest {
            version: self.version,
            config: self.config,
            graph,
            model: self.model,
            layers: self.layers,
            options: self.options,
        };
        req.validate()?;
        Ok(req)
    }
}

/// Everything that can go wrong running a [`SimRequest`]. These used to
/// be `assert!`/`expect` aborts deep inside the engine; user-reachable
/// inputs now surface as typed errors through
/// [`AuroraSimulator::run`](crate::AuroraSimulator::run).
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The layer list is empty.
    EmptyLayers,
    /// The graph has no vertices.
    EmptyGraph,
    /// `simulate_batch` was handed no graphs.
    EmptyBatch,
    /// The input feature density is outside `[0, 1]`.
    InvalidDensity { density: f64 },
    /// A structurally invalid request (bad scale, missing graph, k = 0).
    InvalidRequest(String),
    /// The request (or wire envelope) declares a schema version newer
    /// than this build understands.
    UnsupportedVersion { got: u32, supported: u32 },
    /// A [`GraphDelta`](crate::delta::GraphDelta) was malformed or could
    /// not be applied to the session's graph.
    Delta(String),
    /// A session verb referenced an unknown (or expired/evicted) sid.
    UnknownSession(String),
    /// The NoC layer rejected a configuration or could not route a
    /// tile message (carries the typed cause).
    Noc(NocError),
    /// An engine invariant broke (a bug, not a bad request).
    Internal(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EmptyLayers => write!(f, "need at least one layer"),
            SimError::EmptyGraph => write!(f, "graph has no vertices"),
            SimError::EmptyBatch => write!(f, "need at least one graph in the batch"),
            SimError::InvalidDensity { density } => {
                write!(f, "input density {density} outside [0, 1]")
            }
            SimError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            SimError::UnsupportedVersion { got, supported } => {
                write!(f, "wire version {got} not supported (max {supported})")
            }
            SimError::Delta(msg) => write!(f, "invalid delta: {msg}"),
            SimError::UnknownSession(sid) => write!(f, "unknown session: {sid}"),
            SimError::Noc(e) => write!(f, "NoC error: {e}"),
            SimError::Internal(msg) => write!(f, "internal engine error: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<NocError> for SimError {
    fn from(e: NocError) -> Self {
        SimError::Noc(e)
    }
}

impl SimError {
    /// Stable machine-readable kind, used as the wire error code.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::EmptyLayers => "empty_layers",
            SimError::EmptyGraph => "empty_graph",
            SimError::EmptyBatch => "empty_batch",
            SimError::InvalidDensity { .. } => "invalid_density",
            SimError::InvalidRequest(_) => "invalid_request",
            SimError::UnsupportedVersion { .. } => "unsupported_version",
            SimError::Delta(_) => "invalid_delta",
            SimError::UnknownSession(_) => "unknown_session",
            SimError::Noc(_) => "noc",
            SimError::Internal(_) => "internal",
        }
    }
}

/// A typed error on the wire: a stable `kind` plus a human message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    pub kind: String,
    pub message: String,
}

impl WireError {
    pub fn new(kind: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            kind: kind.into(),
            message: message.into(),
        }
    }
}

impl From<&SimError> for WireError {
    fn from(e: &SimError) -> Self {
        WireError::new(e.kind(), e.to_string())
    }
}

/// The response envelope `aurora-serve` writes for every request line:
/// either a report (with its cache provenance) or a typed error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResponse {
    /// Echo of the client-chosen request id.
    pub id: u64,
    /// The request's content digest ([`SimRequest::digest`]); empty when
    /// the request line could not even be parsed.
    pub digest: String,
    /// Whether the report was served from the result cache (or by
    /// joining an identical in-flight simulation) rather than a fresh
    /// engine run.
    pub cached: bool,
    pub report: Option<SimReport>,
    pub error: Option<WireError>,
}

impl SimResponse {
    pub fn ok(id: u64, digest: impl Into<String>, cached: bool, report: SimReport) -> Self {
        Self {
            id,
            digest: digest.into(),
            cached,
            report: Some(report),
            error: None,
        }
    }

    pub fn err(id: u64, digest: impl Into<String>, error: WireError) -> Self {
        Self {
            id,
            digest: digest.into(),
            cached: false,
            report: None,
            error: Some(error),
        }
    }

    /// Whether the request succeeded.
    pub fn is_ok(&self) -> bool {
        self.report.is_some() && self.error.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_request() -> SimRequest {
        SimRequest::builder(ModelId::Gcn)
            .rmat(128, 800, 3)
            .layer(LayerShape::new(32, 16))
            .workload("toy")
            .build()
            .expect("valid request")
    }

    #[test]
    fn builder_validates() {
        assert_eq!(
            SimRequest::builder(ModelId::Gcn)
                .rmat(128, 800, 3)
                .build()
                .unwrap_err(),
            SimError::EmptyLayers
        );
        assert!(matches!(
            SimRequest::builder(ModelId::Gcn)
                .layer(LayerShape::new(8, 4))
                .build()
                .unwrap_err(),
            SimError::InvalidRequest(_)
        ));
        assert_eq!(
            SimRequest::builder(ModelId::Gcn)
                .rmat(0, 0, 0)
                .layer(LayerShape::new(8, 4))
                .build()
                .unwrap_err(),
            SimError::EmptyGraph
        );
        assert!(matches!(
            SimRequest::builder(ModelId::Gcn)
                .rmat(16, 40, 0)
                .layer(LayerShape::new(8, 4))
                .input_density(1.5)
                .build()
                .unwrap_err(),
            SimError::InvalidDensity { .. }
        ));
    }

    #[test]
    fn digest_is_content_addressed() {
        let a = toy_request();
        let b = toy_request();
        assert_eq!(a.digest(), b.digest(), "equal content, equal digest");
        let c = SimRequest {
            layers: vec![LayerShape::new(32, 8)],
            ..toy_request()
        };
        assert_ne!(a.digest(), c.digest(), "different layers, new digest");
        let d = SimRequest {
            options: SimOptions {
                workload: "renamed".into(),
                ..a.options.clone()
            },
            ..toy_request()
        };
        // the label is part of the content: renaming re-keys the cache
        assert_ne!(a.digest(), d.digest());
        assert_eq!(a.digest().len(), 16);
    }

    #[test]
    fn version_gating() {
        // v0 lines (no version field) still parse and validate.
        let json = serde_json::to_string(&toy_request()).unwrap();
        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        if let serde_json::Value::Map(entries) = &mut v {
            entries.retain(|(k, _)| k != "version");
        }
        let back: SimRequest = serde_json::from_str(&serde_json::to_string(&v).unwrap()).unwrap();
        assert_eq!(back.version, 0);
        assert!(back.validate().is_ok());
        // the current version is accepted; anything newer is rejected.
        let cur = SimRequest {
            version: WIRE_VERSION,
            ..toy_request()
        };
        assert!(cur.validate().is_ok());
        let future = SimRequest {
            version: WIRE_VERSION + 1,
            ..toy_request()
        };
        let err = future.validate().unwrap_err();
        assert_eq!(err.kind(), "unsupported_version");
        assert!(
            matches!(err, SimError::UnsupportedVersion { got, supported }
            if got == WIRE_VERSION + 1 && supported == WIRE_VERSION)
        );
        // the version participates in the digest (it re-keys the cache).
        assert_ne!(toy_request().digest(), cur.digest());
    }

    #[test]
    fn request_roundtrips_through_json() {
        let req = toy_request();
        let json = serde_json::to_string(&req).unwrap();
        let back: SimRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.digest(), req.digest());
    }

    #[test]
    fn graph_specs_resolve() {
        let g = GraphSpec::Ring { vertices: 16 }.resolve().unwrap();
        assert_eq!(g.num_vertices(), 16);
        let d = GraphSpec::Dataset {
            dataset: Dataset::Cora,
            scale: 64,
        }
        .resolve()
        .unwrap();
        assert!(d.num_vertices() > 0);
        assert_eq!(
            GraphSpec::Dataset {
                dataset: Dataset::Cora,
                scale: 0
            }
            .resolve()
            .unwrap_err()
            .kind(),
            "invalid_request"
        );
        assert_eq!(
            GraphSpec::Inline(Csr::empty(0)).resolve().unwrap_err(),
            SimError::EmptyGraph
        );
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(
            GraphSpec::Dataset {
                dataset: Dataset::Cora,
                scale: 1
            }
            .label(),
            "Cora"
        );
        assert_eq!(
            GraphSpec::Dataset {
                dataset: Dataset::Reddit,
                scale: 16
            }
            .label(),
            "Reddit/16"
        );
        assert_eq!(toy_request().workload_label(), "toy");
        let unnamed = SimRequest {
            options: SimOptions::default(),
            ..toy_request()
        };
        assert_eq!(unnamed.workload_label(), "rmat-128v-800e");
    }

    #[test]
    fn response_envelope_roundtrips() {
        let resp = SimResponse::err(7, "abc", WireError::new("overloaded", "queue full"));
        let json = serde_json::to_string(&resp).unwrap();
        let back: SimResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
        assert!(!back.is_ok());
        assert_eq!(back.error.unwrap().kind, "overloaded");
    }
}
