//! The Adaptive Workflow Generator (§III-E step 3): decides "the workflow
//! of the running GNN model, such as execution phases and operation
//! types", which downstream units turn into partition, mapping and
//! configuration decisions.

use aurora_model::{ModelId, ModelSpec, Phase};
use aurora_pe::DatapathMode;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The execution plan derived from a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    pub model: ModelSpec,
    /// The phases that actually execute, in pipeline order.
    pub phases: Vec<Phase>,
    /// §V: with no vertex update, only sub-accelerator A forms.
    pub single_accelerator: bool,
}

impl Workflow {
    /// Generates the workflow for a model.
    pub fn generate(model: ModelId) -> Self {
        let spec = model.spec();
        let mut phases = Vec::new();
        if spec.has_edge_update() {
            phases.push(Phase::EdgeUpdate);
        }
        phases.push(Phase::Aggregation);
        if spec.has_vertex_update() {
            phases.push(Phase::VertexUpdate);
        }
        Self {
            single_accelerator: !spec.has_vertex_update(),
            phases,
            model: spec,
        }
    }

    /// All datapath modes the PE array must be able to assume for this
    /// model — the Table I "full model support" property: every mode is in
    /// Fig. 6's repertoire, so this never fails for Aurora.
    pub fn required_modes(&self) -> BTreeSet<DatapathMode> {
        let mut modes = BTreeSet::new();
        for p in &self.phases {
            for op in self.model.phase(*p).op_kinds() {
                if let Some(m) = DatapathMode::for_op(op) {
                    modes.insert(m);
                }
            }
        }
        modes
    }

    /// Number of datapath reconfigurations a PE performs per processed
    /// unit of work (mode changes along the phase sequence).
    pub fn mode_switches(&self) -> u64 {
        let mut last: Option<DatapathMode> = None;
        let mut switches = 0;
        for p in &self.phases {
            for op in &self.model.phase(*p).per_edge {
                if let Some(m) = DatapathMode::for_op(*op) {
                    if last != Some(m) {
                        switches += 1;
                        last = Some(m);
                    }
                }
            }
            for op in &self.model.phase(*p).per_vertex {
                if let Some(m) = DatapathMode::for_op(*op) {
                    if last != Some(m) {
                        switches += 1;
                        last = Some(m);
                    }
                }
            }
        }
        switches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcn_runs_all_three_phases() {
        let w = Workflow::generate(ModelId::Gcn);
        assert_eq!(
            w.phases,
            vec![Phase::EdgeUpdate, Phase::Aggregation, Phase::VertexUpdate]
        );
        assert!(!w.single_accelerator);
    }

    #[test]
    fn gin_skips_edge_update() {
        let w = Workflow::generate(ModelId::Gin);
        assert_eq!(w.phases, vec![Phase::Aggregation, Phase::VertexUpdate]);
    }

    #[test]
    fn edgeconv_is_single_accelerator() {
        let w = Workflow::generate(ModelId::EdgeConv1);
        assert!(w.single_accelerator);
        assert_eq!(w.phases, vec![Phase::EdgeUpdate, Phase::Aggregation]);
    }

    #[test]
    fn every_model_is_supported() {
        // Table I: Aurora covers all models — every required op maps to a
        // datapath mode or the PPU.
        for id in ModelId::ALL {
            let w = Workflow::generate(id);
            assert!(!w.required_modes().is_empty(), "{}", id.name());
            assert!(!w.phases.is_empty());
        }
    }

    #[test]
    fn ggcn_needs_all_three_modes() {
        let w = Workflow::generate(ModelId::GGcn);
        let m = w.required_modes();
        assert!(m.contains(&DatapathMode::MacChain));
        assert!(m.contains(&DatapathMode::ParallelScalar));
        assert!(m.contains(&DatapathMode::AccumulateBypass));
    }

    #[test]
    fn mode_switches_positive() {
        assert!(Workflow::generate(ModelId::Gcn).mode_switches() >= 3);
        // pure aggregation+MLP models switch less
        assert!(
            Workflow::generate(ModelId::Gin).mode_switches()
                <= Workflow::generate(ModelId::GGcn).mode_switches()
        );
    }
}
