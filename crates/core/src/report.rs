//! Simulation reports.

use crate::noc_model::OnChipEstimate;
use crate::profile::ProfileReport;
use aurora_energy::{ActivityCounts, EnergyBreakdown};
use aurora_mem::controller::TrafficCounters;
use aurora_model::{LayerShape, PhaseOpCounts};
use aurora_partition::PartitionStrategy;
use aurora_telemetry::{HostProfile, MetricsSnapshot};
use serde::{Deserialize, Serialize};

/// On-chip communication summary of a layer or run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NocReport {
    pub cycles: u64,
    pub flit_hops: u64,
    pub messages: u64,
    pub avg_hops: f64,
    pub max_router_load: u64,
    pub bypass_hops: u64,
}

impl From<OnChipEstimate> for NocReport {
    fn from(e: OnChipEstimate) -> Self {
        Self {
            cycles: e.cycles,
            flit_hops: e.flit_hops,
            messages: e.messages,
            avg_hops: e.avg_hops,
            max_router_load: e.max_router_load,
            bypass_hops: e.bypass_hops,
        }
    }
}

/// Cycle attribution to the two sub-accelerators (compute vs on-chip
/// communication), summed over the layer's tiles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseCycles {
    /// Sub-accelerator A compute (edge update + aggregation).
    pub sub_a_compute: u64,
    /// Sub-accelerator B compute (vertex update).
    pub sub_b_compute: u64,
    /// Aggregation-phase on-chip traffic.
    pub sub_a_noc: u64,
    /// Weight-stationary vertex-update traffic.
    pub sub_b_noc: u64,
}

impl PhaseCycles {
    /// Total attributed cycles.
    pub fn total(&self) -> u64 {
        self.sub_a_compute + self.sub_b_compute + self.sub_a_noc + self.sub_b_noc
    }
}

/// Per-layer results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    pub layer: usize,
    pub shape: LayerShape,
    pub partition: PartitionStrategy,
    pub tiles: usize,
    pub op_counts: PhaseOpCounts,
    /// Pure compute cycles (pipeline stage sums).
    pub compute_cycles: u64,
    /// Attribution of compute and traffic to the two sub-accelerators.
    pub phase_cycles: PhaseCycles,
    /// On-chip communication.
    pub noc: NocReport,
    /// Off-chip (DRAM) cycles, converted to core cycles.
    pub dram_cycles: u64,
    /// Overlapped end-to-end cycles for this layer.
    pub total_cycles: u64,
}

/// End-to-end results of one simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Simulated accelerator name (Aurora or a baseline).
    pub accelerator: String,
    pub model: String,
    /// Free-form workload label (dataset name).
    pub workload: String,
    pub layers: Vec<LayerReport>,
    pub total_cycles: u64,
    pub clock_mhz: u64,
    pub dram: TrafficCounters,
    pub activity: ActivityCounts,
    pub energy: EnergyBreakdown,
    /// NoC/datapath reconfiguration events.
    pub reconfigurations: u64,
    /// Controller instruction trace (present when tracing is enabled).
    pub instructions: Vec<crate::instr::Instruction>,
    /// Full metrics snapshot (empty unless a telemetry handle was
    /// attached to the simulator).
    pub metrics: MetricsSnapshot,
    /// Bottleneck attribution: which resource bound each tile and the
    /// run overall (always populated by the Aurora engine; empty for
    /// baseline cost models).
    pub profile: ProfileReport,
    /// Host-side per-stage wall-clock/allocation profile. `None` unless
    /// span profiling was on (`--host-profile` / `AURORA_HOST_PROFILE=1`),
    /// so default-path reports stay byte-identical run to run.
    pub host_profile: Option<HostProfile>,
}

impl SimReport {
    /// Execution time in seconds.
    pub fn seconds(&self) -> f64 {
        self.total_cycles as f64 / (self.clock_mhz as f64 * 1e6)
    }

    /// DRAM accesses at 64-byte burst granularity (Fig. 7's metric).
    pub fn dram_accesses(&self) -> u64 {
        self.dram.accesses(64)
    }

    /// Total on-chip communication cycles (Fig. 8's metric).
    pub fn noc_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.noc.cycles).sum()
    }

    /// Total energy in joules (Fig. 10's metric).
    pub fn energy_joules(&self) -> f64 {
        self.energy.total()
    }

    /// This report's speedup over `other` (>1 means self is faster).
    pub fn speedup_over(&self, other: &SimReport) -> f64 {
        other.seconds() / self.seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> SimReport {
        SimReport {
            accelerator: "Aurora".into(),
            model: "GCN".into(),
            workload: "toy".into(),
            layers: vec![],
            total_cycles: 700_000,
            clock_mhz: 700,
            dram: TrafficCounters {
                read_bytes: 640,
                write_bytes: 64,
                sequential_bytes: 704,
                random_bytes: 0,
            },
            activity: ActivityCounts::default(),
            energy: EnergyBreakdown::default(),
            reconfigurations: 0,
            instructions: vec![],
            metrics: MetricsSnapshot::default(),
            profile: ProfileReport::default(),
            host_profile: None,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = dummy();
        assert!((r.seconds() - 1e-3).abs() < 1e-12);
        assert_eq!(r.dram_accesses(), 11);
        assert_eq!(r.noc_cycles(), 0);
    }

    #[test]
    fn speedup() {
        let a = dummy();
        let mut b = dummy();
        b.total_cycles *= 2;
        assert!((a.speedup_over(&b) - 2.0).abs() < 1e-12);
        assert!((b.speedup_over(&a) - 0.5).abs() < 1e-12);
    }
}
