//! Host-side observability export: thread-pool counters and span
//! profiles, rendered as `pool.*` / `host.*` gauges.
//!
//! The span profiler and the pool keep their counters in process-global
//! atomics (see `aurora_telemetry::span` and the rayon shim); this
//! module is the bridge that snapshots them into a [`Telemetry`]
//! registry at a *surface point* — the CLI's `--metrics` dump, the
//! serve admin endpoint — never during a simulation. Keeping the
//! export out of the engine means `SimReport.metrics` stays
//! byte-identical whatever the thread count or profiling flags, which
//! the determinism suite asserts.

use aurora_telemetry::{names, HostProfile, Scope, Telemetry};

/// Snapshots the current thread pool's counters into `telemetry` as
/// `pool.*` gauges.
///
/// Totals land at the root scope; per-thread rows use
/// `phase="caller"` for the thread that opens regions (and executes
/// inline when the pool has no workers) and `phase="workerN"` for the
/// pool's own threads. Values are cumulative since pool creation, so
/// repeated exports overwrite with the latest high-water counts.
pub fn export_pool_metrics(telemetry: &Telemetry) {
    let stats = rayon::current_stats();
    let root = Scope::ROOT;
    telemetry.gauge_set(names::POOL_WORKERS, &root, stats.threads as f64);
    telemetry.gauge_set(names::POOL_REGIONS, &root, stats.regions as f64);
    telemetry.gauge_set(names::POOL_MAX_DEPTH, &root, stats.max_depth as f64);

    let totals = stats.totals();
    telemetry.gauge_set(names::POOL_TASKS_EXECUTED, &root, totals.executed as f64);
    telemetry.gauge_set(names::POOL_TASKS_STOLEN, &root, totals.stolen as f64);
    telemetry.gauge_set(names::POOL_BUSY_US, &root, totals.busy_us as f64);
    telemetry.gauge_set(names::POOL_IDLE_US, &root, totals.idle_us as f64);

    let caller = root.phase("caller");
    export_worker(telemetry, &caller, &stats.caller);
    for (i, w) in stats.workers.iter().enumerate() {
        let scope = root.phase(format!("worker{i}"));
        export_worker(telemetry, &scope, w);
    }
}

fn export_worker(telemetry: &Telemetry, scope: &Scope, w: &rayon::WorkerStats) {
    telemetry.gauge_set(names::POOL_TASKS_EXECUTED, scope, w.executed as f64);
    telemetry.gauge_set(names::POOL_TASKS_STOLEN, scope, w.stolen as f64);
    telemetry.gauge_set(names::POOL_BUSY_US, scope, w.busy_us as f64);
    telemetry.gauge_set(names::POOL_IDLE_US, scope, w.idle_us as f64);
}

/// Exports a [`HostProfile`] as per-stage `host.*` gauges, one row per
/// stage with the stage label as `phase`.
///
/// Allocation gauges are only set when the profile was captured with
/// `AURORA_ALLOC_PROFILE=1`; without it the counts are structurally
/// zero and a gauge would read as "no allocations" instead of "not
/// measured".
pub fn export_host_metrics(telemetry: &Telemetry, profile: &HostProfile) {
    for stage in &profile.stages {
        let scope = Scope::ROOT.phase(stage.stage.label());
        telemetry.gauge_set(names::HOST_SPAN_WALL_US, &scope, stage.wall_us as f64);
        telemetry.gauge_set(names::HOST_SPAN_CALLS, &scope, stage.calls as f64);
        if profile.alloc_profiled {
            telemetry.gauge_set(names::HOST_ALLOC_COUNT, &scope, stage.alloc_count as f64);
            telemetry.gauge_set(names::HOST_ALLOC_BYTES, &scope, stage.alloc_bytes as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_telemetry::{HostStage, Stage};

    #[test]
    fn pool_export_covers_every_pool_metric() {
        // Drive a region so regions/executed are non-zero, then check
        // every name in POOL_ALL appears at the root scope.
        use rayon::prelude::*;
        let _: Vec<usize> = (0..64usize).into_par_iter().map(|x| x * 2).collect();
        let tel = Telemetry::enabled();
        export_pool_metrics(&tel);
        let snap = tel.snapshot();
        for name in names::POOL_ALL {
            assert!(
                snap.gauge_at(name, &Scope::ROOT).is_some(),
                "{name} missing at root scope"
            );
        }
        assert!(snap.gauge_at(names::POOL_WORKERS, &Scope::ROOT).unwrap() >= 1.0);
        assert!(snap.gauge_at(names::POOL_REGIONS, &Scope::ROOT).unwrap() >= 1.0);
        // Per-thread rows: the caller row always exists.
        let caller = Scope::ROOT.phase("caller");
        assert!(snap.gauge_at(names::POOL_TASKS_EXECUTED, &caller).is_some());
    }

    #[test]
    fn host_export_scopes_stages_by_label() {
        let profile = HostProfile {
            total_wall_us: 120,
            alloc_profiled: false,
            stages: vec![HostStage {
                stage: Stage::Partition,
                calls: 2,
                wall_us: 100,
                self_us: 90,
                alloc_count: 0,
                alloc_bytes: 0,
            }],
        };
        let tel = Telemetry::enabled();
        export_host_metrics(&tel, &profile);
        let snap = tel.snapshot();
        let scope = Scope::ROOT.phase("partition");
        assert_eq!(snap.gauge_at(names::HOST_SPAN_WALL_US, &scope), Some(100.0));
        assert_eq!(snap.gauge_at(names::HOST_SPAN_CALLS, &scope), Some(2.0));
        // Alloc gauges withheld when the profile wasn't alloc-profiled.
        assert_eq!(snap.gauge_at(names::HOST_ALLOC_COUNT, &scope), None);
    }
}
