//! Accelerator configuration (§VI-A "Accelerator Modeling").

use aurora_mapping::MappingPolicy;
use aurora_pe::PeConfig;
use serde::{Deserialize, Serialize};

/// Full static configuration of one Aurora instance, including the
/// ablation switches the experiment harness sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// PE-array radix: the array is `k × k` (paper: 32).
    pub k: usize,
    /// Core clock in MHz (paper: 700).
    pub clock_mhz: u64,
    /// Per-PE parameters (100 KB bank buffer, MAC lanes, …).
    pub pe: PeConfig,
    /// Payload words per NoC flit.
    pub words_per_flit: usize,
    /// DDR3-1600 channels (4 ⇒ ~51 GB/s, a typical accelerator budget).
    pub dram_channels: usize,
    /// Vertex-placement policy (degree-aware vs the hashing baseline).
    pub mapping_policy: MappingPolicy,
    /// Whether the reconfigurable NoC (bypass segments + ring mode) is
    /// active — disabling it is the flexible-NoC ablation.
    pub flexible_noc: bool,
    /// Whether Algorithm 2 sizes the sub-accelerators; when off, a fixed
    /// 50/50 split is used (the partition ablation).
    pub dynamic_partition: bool,
    /// Fraction of on-chip buffer capacity reserved for resident vertex
    /// features when tiling.
    pub feature_fraction: f64,
    /// Achievable fraction of raw NoC link bandwidth under irregular
    /// traffic (paper §VI-C's "efficient on-chip bandwidth"). Wormhole
    /// head-of-line blocking and power-law row/column skew keep real
    /// aggregation patterns well below 1.0; the 0.6 default matches the
    /// mean utilisation the cycle-level `aurora-noc` engine measures on
    /// R-MAT traffic. Recorded in the profile header so reports are
    /// self-describing.
    pub link_utilisation: f64,
    /// Record the controller instruction trace (tests/examples only; the
    /// trace grows with tile count).
    pub trace_instructions: bool,
}

impl Default for AcceleratorConfig {
    /// The paper's configuration.
    fn default() -> Self {
        Self {
            k: 32,
            clock_mhz: 700,
            pe: PeConfig::default(),
            words_per_flit: 4,
            dram_channels: 4,
            mapping_policy: MappingPolicy::DegreeAware,
            flexible_noc: true,
            dynamic_partition: true,
            feature_fraction: 0.5,
            link_utilisation: crate::noc_model::DEFAULT_LINK_UTILISATION,
            trace_instructions: false,
        }
    }
}

impl AcceleratorConfig {
    /// Total PEs (`k²`).
    pub fn num_pes(&self) -> usize {
        self.k * self.k
    }

    /// One PE's throughput in FLOP/s (each MAC lane retires a multiply and
    /// an add per cycle).
    pub fn flops_per_pe(&self) -> f64 {
        2.0 * self.pe.lanes as f64 * self.clock_mhz as f64 * 1e6
    }

    /// Total on-chip buffer bytes (paper: 1024 × 100 KB ≈ 100 MB).
    pub fn onchip_bytes(&self) -> usize {
        self.num_pes() * self.pe.buffer_bytes
    }

    /// Converts seconds to core cycles.
    pub fn cycles_of(&self, seconds: f64) -> u64 {
        (seconds * self.clock_mhz as f64 * 1e6).ceil() as u64
    }

    /// A small configuration for unit tests and detailed-NoC validation.
    pub fn small(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = AcceleratorConfig::default();
        assert_eq!(c.num_pes(), 1024);
        assert_eq!(c.onchip_bytes(), 1024 * 100 * 1024);
        assert_eq!(c.clock_mhz, 700);
    }

    #[test]
    fn flops_per_pe() {
        let c = AcceleratorConfig::default();
        // 16 lanes × 2 flops × 700 MHz = 22.4 GFLOP/s
        assert!((c.flops_per_pe() - 22.4e9).abs() < 1.0);
    }

    #[test]
    fn link_utilisation_defaults_to_model_constant() {
        let c = AcceleratorConfig::default();
        assert_eq!(
            c.link_utilisation,
            crate::noc_model::DEFAULT_LINK_UTILISATION
        );
        assert_eq!(c.link_utilisation, 0.6);
    }

    #[test]
    fn cycle_conversion() {
        let c = AcceleratorConfig::default();
        assert_eq!(c.cycles_of(1e-6), 700);
        assert_eq!(c.cycles_of(0.0), 0);
    }
}
