//! The controller instruction stream (§III-A/E).
//!
//! The host loads instructions into the instruction buffer; after the
//! preprocessing units (workflow generator → partition → mapping → NoC/PE
//! configuration) finish, the instruction dispatcher "starts issuing
//! instructions as conventional accelerators". The engine emits this trace
//! so the controller path is observable and testable.

use aurora_model::Phase;
use serde::{Deserialize, Serialize};

/// One dispatched controller instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    /// Host request accepted by the request dispatcher (①).
    AcceptRequest { model: String, layers: usize },
    /// Workflow generated (③): active phases, single-accelerator flag.
    GenerateWorkflow {
        phases: usize,
        single_accelerator: bool,
    },
    /// Partition decided (④): PEs for sub-accelerators A and B.
    Partition { a: usize, b: usize },
    /// Subgraph mapped (⑤).
    MapSubgraph {
        tile: usize,
        vertices: usize,
        high_degree: usize,
    },
    /// NoC + PE configuration applied (⑥); `reconfig_cycles` is `2k − 1`.
    Configure {
        tile: usize,
        bypass_segments: usize,
        reconfig_cycles: u64,
    },
    /// Tile data prefetched from DRAM.
    LoadTile { tile: usize, bytes: u64 },
    /// One phase executed on a sub-accelerator (⑦).
    ExecutePhase {
        tile: usize,
        phase: Phase,
        cycles: u64,
    },
    /// Output features written back.
    WriteBack { tile: usize, bytes: u64 },
}

impl Instruction {
    /// Short mnemonic for trace display.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instruction::AcceptRequest { .. } => "REQ",
            Instruction::GenerateWorkflow { .. } => "WFG",
            Instruction::Partition { .. } => "PRT",
            Instruction::MapSubgraph { .. } => "MAP",
            Instruction::Configure { .. } => "CFG",
            Instruction::LoadTile { .. } => "LDT",
            Instruction::ExecutePhase { .. } => "EXE",
            Instruction::WriteBack { .. } => "WRB",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_are_stable() {
        let i = Instruction::Partition { a: 10, b: 6 };
        assert_eq!(i.mnemonic(), "PRT");
        let i = Instruction::ExecutePhase {
            tile: 0,
            phase: Phase::Aggregation,
            cycles: 5,
        };
        assert_eq!(i.mnemonic(), "EXE");
    }

    #[test]
    fn serde_roundtrip() {
        let i = Instruction::Configure {
            tile: 3,
            bypass_segments: 2,
            reconfig_cycles: 63,
        };
        let s = serde_json::to_string(&i).unwrap();
        let back: Instruction = serde_json::from_str(&s).unwrap();
        assert_eq!(back, i);
    }
}
