//! Offline stand-in for `rayon`.
//!
//! `par_iter()` returns the plain sequential slice iterator, so all the
//! downstream `Iterator` adaptors (`map`, `flat_map`, `collect`, …) work
//! unchanged. Results are identical to rayon's; only wall-clock
//! parallelism is lost. Swap back to the real crate when the build
//! environment has registry access.

/// Sequential `par_iter` over slices (and everything that derefs to one).
pub trait IntoSeqParIter<T> {
    fn par_iter(&self) -> std::slice::Iter<'_, T>;
}

impl<T> IntoSeqParIter<T> for [T] {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.iter()
    }
}

impl<T> IntoSeqParIter<T> for Vec<T> {
    fn par_iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

pub mod prelude {
    pub use crate::IntoSeqParIter;
}
