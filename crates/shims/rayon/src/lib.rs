//! Offline stand-in for `rayon`, now with real parallelism.
//!
//! A fixed-size work-stealing thread pool (pure `std::thread`, no
//! external deps) backs `par_iter()` / `into_par_iter()` /
//! `par_chunks()` / `join`. The pool is sized by `AURORA_THREADS`
//! (default: available cores; `1` selects the exact sequential code
//! path). All terminals gather chunk results in source index order, so
//! output — including floating-point sums — is bit-identical to the
//! single-threaded run regardless of thread count or steal order.
//! Swap back to the real crate when the build environment has registry
//! access.

pub mod iter;
pub mod pool;

pub use iter::{
    FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    ParallelSlice,
};
pub use pool::{
    configured_threads, current_pool, current_stats, global_pool, join, PoolStats, ThreadPool,
    WorkerStats,
};

pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
        ParallelSlice,
    };
    pub use crate::pool::join;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPool;

    fn pool_sizes() -> [usize; 3] {
        [1, 2, 4]
    }

    #[test]
    fn par_iter_map_collect_matches_sequential() {
        let data: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = data.iter().map(|x| x * 3 + 1).collect();
        for n in pool_sizes() {
            let pool = ThreadPool::new(n);
            let got: Vec<u64> = pool.install(|| data.par_iter().map(|x| x * 3 + 1).collect());
            assert_eq!(got, expected, "pool size {n}");
        }
    }

    #[test]
    fn into_par_iter_moves_items_in_order() {
        for n in pool_sizes() {
            let pool = ThreadPool::new(n);
            let data: Vec<String> = (0..257).map(|i| format!("item-{i}")).collect();
            let got: Vec<String> = pool.install(|| data.clone().into_par_iter().collect());
            assert_eq!(got, data, "pool size {n}");
        }
    }

    #[test]
    fn flat_map_and_filter_map_preserve_index_order() {
        let data: Vec<usize> = (0..300).collect();
        let expected: Vec<usize> = data
            .iter()
            .flat_map(|&x| vec![x * 10, x * 10 + 1])
            .filter(|x| x % 3 != 0)
            .collect();
        for n in pool_sizes() {
            let pool = ThreadPool::new(n);
            let got: Vec<usize> = pool.install(|| {
                data.par_iter()
                    .flat_map(|&x| vec![x * 10, x * 10 + 1])
                    .filter_map(|x| (x % 3 != 0).then_some(x))
                    .collect()
            });
            assert_eq!(got, expected, "pool size {n}");
        }
    }

    #[test]
    fn float_sum_is_bit_identical_across_pool_sizes() {
        // Values chosen so the addition order changes the rounding; the
        // ordered-gather contract must hide that from callers.
        let data: Vec<f64> = (0..10_000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let expected: f64 = data.iter().sum();
        for n in pool_sizes() {
            let pool = ThreadPool::new(n);
            let got: f64 = pool.install(|| data.par_iter().sum());
            assert_eq!(got.to_bits(), expected.to_bits(), "pool size {n}");
        }
    }

    #[test]
    fn par_chunks_covers_the_slice() {
        let data: Vec<u32> = (0..103).collect();
        for n in pool_sizes() {
            let pool = ThreadPool::new(n);
            let sums: Vec<u32> =
                pool.install(|| data.par_chunks(10).map(|c| c.iter().sum::<u32>()).collect());
            let expected: Vec<u32> = data.chunks(10).map(|c| c.iter().sum::<u32>()).collect();
            assert_eq!(sums, expected, "pool size {n}");
        }
    }

    #[test]
    fn range_into_par_iter() {
        for n in pool_sizes() {
            let pool = ThreadPool::new(n);
            let got: Vec<usize> = pool.install(|| (5..505).into_par_iter().collect());
            assert_eq!(got, (5..505).collect::<Vec<_>>(), "pool size {n}");
        }
    }

    #[test]
    fn for_each_visits_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};
        for n in pool_sizes() {
            let pool = ThreadPool::new(n);
            let total = AtomicU64::new(0);
            pool.install(|| {
                (0..1000usize).into_par_iter().for_each(|i| {
                    total.fetch_add(i as u64, Ordering::Relaxed);
                })
            });
            assert_eq!(total.load(Ordering::Relaxed), 499_500, "pool size {n}");
        }
    }

    #[test]
    fn join_returns_both_results() {
        for n in pool_sizes() {
            let pool = ThreadPool::new(n);
            let (a, b) = pool.install(|| {
                crate::join(|| (0..100u64).sum::<u64>(), || (0..100u64).product::<u64>())
            });
            assert_eq!(a, 4950, "pool size {n}");
            assert_eq!(b, 0, "pool size {n}");
        }
    }

    #[test]
    fn nested_par_iter_does_not_deadlock_even_at_pool_size_one() {
        for n in pool_sizes() {
            let pool = ThreadPool::new(n);
            let got: Vec<usize> = pool.install(|| {
                (0..16usize)
                    .into_par_iter()
                    .map(|i| (0..16usize).into_par_iter().map(|j| i * j).sum::<usize>())
                    .collect()
            });
            let expected: Vec<usize> = (0..16).map(|i| (0..16).map(|j| i * j).sum()).collect();
            assert_eq!(got, expected, "pool size {n}");
        }
    }

    #[test]
    fn join_inside_par_iter_does_not_deadlock() {
        for n in pool_sizes() {
            let pool = ThreadPool::new(n);
            let got: Vec<(u32, u32)> = pool.install(|| {
                (0..32usize)
                    .into_par_iter()
                    .map(|i| crate::join(|| i as u32 * 2, || i as u32 * 3))
                    .collect()
            });
            for (i, &(a, b)) in got.iter().enumerate() {
                assert_eq!((a, b), (i as u32 * 2, i as u32 * 3), "pool size {n}");
            }
        }
    }

    #[test]
    fn panic_in_parallel_body_propagates() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..64usize).into_par_iter().for_each(|i| {
                    if i == 17 {
                        panic!("boom");
                    }
                })
            })
        }));
        assert!(result.is_err(), "panic must cross the parallel region");
    }

    #[test]
    fn stats_count_regions_and_chunks_inline() {
        // A 1-thread pool runs everything inline on the caller: regions
        // and caller-executed chunks must still be counted.
        let pool = ThreadPool::new(1);
        let before = pool.stats();
        assert_eq!(before.workers.len(), 0, "single-thread pool has no workers");
        let _: Vec<usize> = pool.install(|| (0..100usize).into_par_iter().map(|x| x + 1).collect());
        let after = pool.stats();
        assert_eq!(after.threads, 1);
        assert!(after.regions > before.regions, "inline region counted");
        assert!(
            after.caller.executed > before.caller.executed,
            "inline chunk counted under the caller"
        );
        assert!(after.max_depth >= 1);
        assert_eq!(after.totals().stolen, 0, "nothing to steal inline");
    }

    #[test]
    fn stats_count_worker_activity_and_nesting() {
        let pool = ThreadPool::new(4);
        let before = pool.stats();
        assert_eq!(before.workers.len(), 4);
        let _: Vec<usize> = pool.install(|| {
            (0..64usize)
                .into_par_iter()
                .map(|i| (0..64usize).into_par_iter().map(|j| i * j).sum::<usize>())
                .collect()
        });
        let after = pool.stats();
        let d_exec = after.totals().executed - before.totals().executed;
        assert!(d_exec > 0, "chunks executed somewhere");
        assert!(after.regions > before.regions);
        assert!(after.max_depth >= 2, "nested regions deepen the high-water mark");
        // busy time is recorded wherever chunks ran
        assert!(after.totals().busy_us >= before.totals().busy_us);
    }

    #[test]
    fn current_stats_reads_the_installed_pool() {
        let pool = ThreadPool::new(2);
        let threads = pool.install(|| super::current_stats().threads);
        assert_eq!(threads, 2);
    }

    #[test]
    fn configured_threads_parses_env_shape() {
        // Can't mutate the process env safely under a threaded test
        // runner; just pin the invariant that the value is positive.
        assert!(super::configured_threads() >= 1);
    }
}
