//! A fixed-size work-stealing thread pool built on `std::thread`.
//!
//! Each worker owns a chunked deque of tasks (a `Mutex<VecDeque>` rather
//! than a lock-free Chase-Lev deque — the tasks this workspace schedules
//! are whole simulations or tile batches, so deque traffic is far too
//! coarse for lock contention to matter). Workers pop from the back of
//! their own deque and steal from the front of a victim's, so large
//! parallel regions balance automatically.
//!
//! Parallel regions are *scoped*: [`ThreadPool::run_chunked`] divides an
//! index range into chunks, scatters them over the deques, and does not
//! return until every chunk has executed. The calling thread participates
//! — it runs pending tasks (its own region's or anyone else's) while it
//! waits — which is what makes nested regions (`par_iter` inside a
//! `par_iter` body, or inside `join`) deadlock-free even at pool size 1.
//!
//! Pool size comes from `AURORA_THREADS` for the global pool (default =
//! available cores; `1` selects the exact sequential path: the region
//! body runs inline on the caller with no task machinery at all).
//!
//! The pool also keeps lifetime activity counters — regions run, chunks
//! executed/stolen per thread, busy vs. idle wall time, deepest region
//! nesting — snapshotted by [`ThreadPool::stats`] / [`current_stats`].
//! They are plain relaxed atomics read nowhere on the execution path,
//! so results never depend on them.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

/// How many chunks a region is split into per pool thread. More chunks
/// mean finer stealing granularity; results never depend on it.
const CHUNKS_PER_THREAD: usize = 4;

/// A handle to a pool. Cheap to clone (all clones share the workers).
/// Dropping the last external handle retires the workers.
#[derive(Clone)]
pub struct ThreadPool {
    shared: Arc<Shared>,
}

struct Shared {
    /// One task deque per worker. Owners pop from the back; thieves (and
    /// the region caller) steal from the front.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Tasks pushed and not yet popped, used to short-circuit idle scans.
    pending: AtomicUsize,
    /// Sleep support for idle workers.
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    /// Round-robin scatter cursor so consecutive regions spread evenly.
    scatter: AtomicUsize,
    threads: usize,
    /// Observability counters (never synchronization; see [`PoolStats`]).
    counters: PoolCounters,
}

/// Process-lifetime activity counters for one pool. All relaxed
/// atomics: the numbers are merged per-thread observations, read only
/// by [`ThreadPool::stats`].
struct PoolCounters {
    /// Parallel regions executed, *including* regions run inline on the
    /// caller (single-thread pool or trivial range).
    regions: AtomicU64,
    /// Deepest observed nesting of regions on any one thread.
    max_depth: AtomicU64,
    /// Region owners helping their own region (plus inline execution).
    caller: WorkerCell,
    /// One cell per worker thread (empty on a single-thread pool).
    workers: Vec<WorkerCell>,
}

/// One thread's executed/stolen/busy/idle accumulators.
struct WorkerCell {
    executed: AtomicU64,
    stolen: AtomicU64,
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
}

impl WorkerCell {
    const fn new() -> Self {
        Self {
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            idle_ns: AtomicU64::new(0),
        }
    }

    fn snapshot(&self) -> WorkerStats {
        WorkerStats {
            executed: self.executed.load(Ordering::Relaxed),
            stolen: self.stolen.load(Ordering::Relaxed),
            busy_us: self.busy_ns.load(Ordering::Relaxed) / 1_000,
            idle_us: self.idle_ns.load(Ordering::Relaxed) / 1_000,
        }
    }

    fn record_run(&self, stolen: bool, elapsed: Duration) {
        self.executed.fetch_add(1, Ordering::Relaxed);
        if stolen {
            self.stolen.fetch_add(1, Ordering::Relaxed);
        }
        self.busy_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Point-in-time copy of a pool's activity counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// The pool's thread count (1 = regions run inline on the caller).
    pub threads: usize,
    /// Parallel regions executed since the pool was built, including
    /// inline-executed ones.
    pub regions: u64,
    /// Deepest observed region nesting on any one thread.
    pub max_depth: u64,
    /// The caller-side help loop (region owners executing chunks while
    /// they wait, and all inline execution).
    pub caller: WorkerStats,
    /// Per-worker-thread counters, in worker index order (empty on a
    /// single-thread pool).
    pub workers: Vec<WorkerStats>,
}

/// One thread's share of pool activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Chunks this thread executed.
    pub executed: u64,
    /// Of those, chunks taken from a deque other than the thread's
    /// scan-home (work stealing in action).
    pub stolen: u64,
    /// Wall microseconds spent executing chunks.
    pub busy_us: u64,
    /// Wall microseconds spent parked waiting for work (workers) or
    /// waiting on region completion (callers).
    pub idle_us: u64,
}

impl PoolStats {
    /// Caller + every worker, summed.
    pub fn totals(&self) -> WorkerStats {
        let mut t = self.caller;
        for w in &self.workers {
            t.executed += w.executed;
            t.stolen += w.stolen;
            t.busy_us += w.busy_us;
            t.idle_us += w.idle_us;
        }
        t
    }
}

thread_local! {
    /// Current parallel-region nesting depth on this thread, feeding
    /// the pool's `max_depth` high-water mark.
    static REGION_DEPTH: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// RAII depth tracker: bumps the thread's region depth and the pool's
/// high-water mark for the lifetime of one region.
struct DepthGuard;

impl DepthGuard {
    fn enter(counters: &PoolCounters) -> Self {
        let depth = REGION_DEPTH.with(|d| {
            let v = d.get() + 1;
            d.set(v);
            v
        });
        counters.max_depth.fetch_max(depth, Ordering::Relaxed);
        DepthGuard
    }
}

impl Drop for DepthGuard {
    fn drop(&mut self) {
        REGION_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }
}

/// One schedulable unit: a chunk `[lo, hi)` of some region's index space.
struct Task {
    region: RegionPtr,
    lo: usize,
    hi: usize,
}

/// Erased pointer to a stack-allocated [`RegionCore`]. Sound because the
/// region's owner blocks in `wait` until every chunk has completed, so
/// the pointee outlives every task that references it.
#[derive(Clone, Copy)]
struct RegionPtr(*const RegionCore);
unsafe impl Send for RegionPtr {}

/// Shared state of one parallel region, allocated on the caller's stack.
struct RegionCore {
    /// The chunk body, lifetime-erased. Valid until `wait` returns.
    func: *const (dyn Fn(usize, usize) + Sync),
    /// Chunks not yet finished executing.
    remaining: AtomicUsize,
    /// Set when any chunk body panicked (the panic is rethrown by the
    /// region owner so failures propagate like sequential code).
    panicked: AtomicBool,
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

unsafe impl Sync for RegionCore {}

impl RegionCore {
    /// Runs one chunk and retires it. The completion handshake happens
    /// under `done_lock` so the region owner can never observe
    /// `remaining == 0` while a worker still holds a reference.
    fn run_chunk(&self, lo: usize, hi: usize) {
        let func = unsafe { &*self.func };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| func(lo, hi)));
        if result.is_err() {
            self.panicked.store(true, Ordering::SeqCst);
        }
        let guard = self.done_lock.lock().unwrap();
        if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.done_cv.notify_all();
        }
        drop(guard);
    }
}

thread_local! {
    /// The pool the current thread belongs to (worker threads) or has
    /// installed ([`ThreadPool::install`]). Weak so worker thread-locals
    /// don't keep a retired pool alive.
    static CURRENT: std::cell::RefCell<Option<Weak<Shared>>> =
        const { std::cell::RefCell::new(None) };
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// Number of threads the global pool uses: `AURORA_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism.
pub fn configured_threads() -> usize {
    match std::env::var("AURORA_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The process-wide pool, created on first use from `AURORA_THREADS`.
pub fn global_pool() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(configured_threads()))
}

/// Activity counters of the pool parallel iterators currently execute
/// on (the installed pool, else the global pool).
pub fn current_stats() -> PoolStats {
    current_pool().stats()
}

/// The pool parallel iterators execute on: the pool installed on this
/// thread (worker threads install their own), else the global pool.
pub fn current_pool() -> ThreadPool {
    let installed = CURRENT.with(|c| c.borrow().as_ref().and_then(Weak::upgrade));
    match installed {
        Some(shared) => ThreadPool { shared },
        None => global_pool().clone(),
    }
}

impl ThreadPool {
    /// Builds a pool with `threads` workers. `threads <= 1` builds a pool
    /// with no worker threads at all: every region runs inline on the
    /// caller, bit-for-bit the sequential execution.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let workers = if threads == 1 { 0 } else { threads };
        let shared = Arc::new(Shared {
            deques: (0..workers.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            pending: AtomicUsize::new(0),
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            scatter: AtomicUsize::new(0),
            threads,
            counters: PoolCounters {
                regions: AtomicU64::new(0),
                max_depth: AtomicU64::new(0),
                caller: WorkerCell::new(),
                workers: (0..workers).map(|_| WorkerCell::new()).collect(),
            },
        });
        for i in 0..workers {
            let weak = Arc::downgrade(&shared);
            std::thread::Builder::new()
                .name(format!("aurora-pool-{i}"))
                .spawn(move || worker_loop(i, weak))
                .expect("spawn pool worker");
        }
        Self { shared }
    }

    /// The pool's thread count (1 = sequential).
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Runs `body` as an inline region with the same activity
    /// accounting as [`run_chunked`]'s sequential path — for terminals
    /// that keep their own zero-copy single-thread shortcut.
    pub(crate) fn run_inline<R>(&self, body: impl FnOnce() -> R) -> R {
        self.shared.counters.regions.fetch_add(1, Ordering::Relaxed);
        let _depth = DepthGuard::enter(&self.shared.counters);
        let start = Instant::now();
        let out = body();
        self.shared.counters.caller.record_run(false, start.elapsed());
        out
    }

    /// Point-in-time copy of this pool's activity counters.
    pub fn stats(&self) -> PoolStats {
        let c = &self.shared.counters;
        PoolStats {
            threads: self.shared.threads,
            regions: c.regions.load(Ordering::Relaxed),
            max_depth: c.max_depth.load(Ordering::Relaxed),
            caller: c.caller.snapshot(),
            workers: c.workers.iter().map(WorkerCell::snapshot).collect(),
        }
    }

    /// Runs `f` with this pool installed as the current thread's pool, so
    /// every `par_iter`/`join` reached from `f` executes here instead of
    /// on the global pool. Used by the determinism tests to compare the
    /// same computation at several pool sizes in one process.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = CURRENT.with(|c| c.borrow_mut().replace(Arc::downgrade(&self.shared)));
        struct Restore(Option<Weak<Shared>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0.take();
                CURRENT.with(|c| *c.borrow_mut() = prev);
            }
        }
        let _restore = Restore(prev);
        f()
    }

    /// Splits `[0, len)` into chunks and runs `body(lo, hi)` for each,
    /// in parallel, returning once all chunks completed. With one thread
    /// (or a trivial range) the body runs inline: the exact sequential
    /// path. Panics in `body` are rethrown here.
    pub fn run_chunked(&self, len: usize, body: &(dyn Fn(usize, usize) + Sync)) {
        if len == 0 {
            return;
        }
        self.shared.counters.regions.fetch_add(1, Ordering::Relaxed);
        let _depth = DepthGuard::enter(&self.shared.counters);
        if self.shared.threads <= 1 || len == 1 {
            let start = Instant::now();
            body(0, len);
            self.shared.counters.caller.record_run(false, start.elapsed());
            return;
        }
        let chunk = len.div_ceil(self.shared.threads * CHUNKS_PER_THREAD).max(1);
        let nchunks = len.div_ceil(chunk);
        let region = RegionCore {
            func: unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize, usize) + Sync),
                    *const (dyn Fn(usize, usize) + Sync),
                >(body as *const _)
            },
            remaining: AtomicUsize::new(nchunks),
            panicked: AtomicBool::new(false),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
        };
        let ptr = RegionPtr(&region as *const RegionCore);
        let tasks = (0..nchunks).map(|c| Task {
            region: ptr,
            lo: c * chunk,
            hi: ((c + 1) * chunk).min(len),
        });
        self.shared.push_tasks(tasks);
        self.shared.help_until_done(&region);
        if region.panicked.load(Ordering::SeqCst) {
            panic!("a task in the parallel region panicked");
        }
    }
}

impl Shared {
    /// Scatters tasks round-robin over the worker deques and wakes
    /// sleepers.
    fn push_tasks(&self, tasks: impl Iterator<Item = Task>) {
        let start = self.scatter.fetch_add(1, Ordering::Relaxed);
        let n = self.deques.len();
        let mut count = 0;
        for (i, t) in tasks.enumerate() {
            self.deques[(start + i) % n].lock().unwrap().push_back(t);
            count += 1;
        }
        self.pending.fetch_add(count, Ordering::SeqCst);
        let _guard = self.sleep_lock.lock().unwrap();
        self.sleep_cv.notify_all();
    }

    /// Pops from the back of `own` or steals from the front of any other
    /// deque. The flag reports whether the task came from another deque
    /// (a steal, for the activity counters).
    fn find_task(&self, own: usize) -> Option<(Task, bool)> {
        if self.pending.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let n = self.deques.len();
        if let Some(t) = self.deques[own % n].lock().unwrap().pop_back() {
            self.pending.fetch_sub(1, Ordering::SeqCst);
            return Some((t, false));
        }
        for off in 1..n {
            if let Some(t) = self.deques[(own + off) % n].lock().unwrap().pop_front() {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some((t, true));
            }
        }
        None
    }

    /// Region-owner wait loop: run any available task (keeps nested
    /// regions and sibling regions progressing), otherwise block briefly
    /// on the region's completion condvar.
    fn help_until_done(&self, region: &RegionCore) {
        loop {
            if let Some((t, stolen)) = self.find_task(0) {
                let start = Instant::now();
                unsafe { (*t.region.0).run_chunk(t.lo, t.hi) };
                self.counters.caller.record_run(stolen, start.elapsed());
                continue;
            }
            let guard = region.done_lock.lock().unwrap();
            if region.remaining.load(Ordering::SeqCst) == 0 {
                return;
            }
            // Re-check for work under a short timeout: a nested region's
            // tasks may appear while we hold no lock.
            let waited = Instant::now();
            let _ = region
                .done_cv
                .wait_timeout(guard, Duration::from_micros(200))
                .unwrap();
            self.counters
                .caller
                .idle_ns
                .fetch_add(waited.elapsed().as_nanos() as u64, Ordering::Relaxed);
            if region.remaining.load(Ordering::SeqCst) == 0 {
                return;
            }
        }
    }
}

fn worker_loop(index: usize, shared: Weak<Shared>) {
    if let Some(strong) = shared.upgrade() {
        CURRENT.with(|c| *c.borrow_mut() = Some(Arc::downgrade(&strong)));
        drop(strong);
    }
    loop {
        let Some(pool) = shared.upgrade() else {
            return; // every external handle dropped: retire
        };
        if let Some((t, stolen)) = pool.find_task(index) {
            let start = Instant::now();
            unsafe { (*t.region.0).run_chunk(t.lo, t.hi) };
            pool.counters.workers[index].record_run(stolen, start.elapsed());
            continue;
        }
        let guard = pool.sleep_lock.lock().unwrap();
        if pool.pending.load(Ordering::SeqCst) == 0 {
            // Timed wait so a retired pool's workers notice the dropped
            // handles without an explicit shutdown broadcast.
            let waited = Instant::now();
            let _ = pool
                .sleep_cv
                .wait_timeout(guard, Duration::from_millis(20))
                .unwrap();
            pool.counters.workers[index]
                .idle_ns
                .fetch_add(waited.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }
}

/// Runs `a` and `b`, potentially in parallel, and returns both results.
/// On a 1-thread pool this is exactly `(a(), b())`. A panic in either
/// closure propagates (if both panic, `a`'s wins).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = current_pool();
    pool.shared.counters.regions.fetch_add(1, Ordering::Relaxed);
    let _depth = DepthGuard::enter(&pool.shared.counters);
    if pool.shared.threads <= 1 {
        let start = Instant::now();
        let out = (a(), b());
        pool.shared.counters.caller.record_run(false, start.elapsed());
        return out;
    }
    let b_slot: Mutex<(Option<B>, Option<RB>)> = Mutex::new((Some(b), None));
    let body = |_lo: usize, _hi: usize| {
        let f = b_slot.lock().unwrap().0.take();
        if let Some(f) = f {
            let r = f();
            b_slot.lock().unwrap().1 = Some(r);
        }
    };
    let region = RegionCore {
        func: unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize, usize) + Sync),
                *const (dyn Fn(usize, usize) + Sync),
            >(&body as *const _)
        },
        remaining: AtomicUsize::new(1),
        panicked: AtomicBool::new(false),
        done_lock: Mutex::new(()),
        done_cv: Condvar::new(),
    };
    let ptr = RegionPtr(&region as *const RegionCore);
    pool.shared.push_tasks(std::iter::once(Task {
        region: ptr,
        lo: 0,
        hi: 1,
    }));
    let ra = a();
    pool.shared.help_until_done(&region);
    if region.panicked.load(Ordering::SeqCst) {
        panic!("a task in the parallel region panicked");
    }
    let rb = b_slot.into_inner().unwrap().1.expect("join closure ran");
    (ra, rb)
}
