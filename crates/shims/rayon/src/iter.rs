//! Indexed parallel iterators over the work-stealing pool.
//!
//! Every source here is *indexed*: it knows its length and can produce
//! the items of any sub-range independently. Adaptor chains
//! (`map`/`flat_map`/`filter_map`) are evaluated per chunk on pool
//! threads, and terminals gather `(chunk_start, items)` pairs, sort by
//! chunk start and flatten — so the result is identical whatever the
//! thread count or steal order. `sum` goes through the same ordered
//! gather and folds sequentially, keeping float reductions bit-exact.

use crate::pool::current_pool;
use std::ops::Range;
use std::sync::Mutex;

/// An indexed parallel iterator: a length plus the ability to produce
/// the items of any index sub-range.
pub trait ParallelIterator: Sized + Send + Sync {
    type Item: Send;

    /// Number of source indices (not necessarily the number of items —
    /// `flat_map`/`filter_map` expand or drop per index).
    fn pi_len(&self) -> usize;

    /// Produces the items for source indices `[lo, hi)`, in index order,
    /// appending to `out`.
    fn pi_fill(&self, lo: usize, hi: usize, out: &mut Vec<Self::Item>);

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        Map { base: self, f }
    }

    fn flat_map<I, F>(self, f: F) -> FlatMap<Self, F>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(Self::Item) -> I + Send + Sync,
    {
        FlatMap { base: self, f }
    }

    fn filter_map<R, F>(self, f: F) -> FilterMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> Option<R> + Send + Sync,
    {
        FilterMap { base: self, f }
    }

    /// Runs `f` on every item. Chunks execute in parallel; any panic in
    /// `f` propagates to the caller.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let pool = current_pool();
        pool.run_chunked(self.pi_len(), &|lo, hi| {
            let mut buf = Vec::new();
            self.pi_fill(lo, hi, &mut buf);
            for item in buf {
                f(item);
            }
        });
    }

    /// Collects into `C`, in source index order regardless of scheduling.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sums the items. The addition order is the source index order
    /// (ordered gather, then a sequential fold), so floating-point sums
    /// are bit-identical to the single-threaded run.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        drive_ordered(&self).into_iter().sum()
    }

    /// Number of items produced (after `filter_map`/`flat_map`).
    fn count(self) -> usize {
        drive_ordered(&self).len()
    }
}

/// Evaluates the chain over the current pool and returns all items in
/// source index order.
fn drive_ordered<P: ParallelIterator>(p: &P) -> Vec<P::Item> {
    let len = p.pi_len();
    let pool = current_pool();
    if pool.threads() <= 1 || len <= 1 {
        let mut out = Vec::new();
        if len > 0 {
            pool.run_inline(|| p.pi_fill(0, len, &mut out));
        }
        return out;
    }
    let gathered: Mutex<Vec<(usize, Vec<P::Item>)>> = Mutex::new(Vec::new());
    pool.run_chunked(len, &|lo, hi| {
        let mut buf = Vec::new();
        p.pi_fill(lo, hi, &mut buf);
        gathered.lock().unwrap().push((lo, buf));
    });
    let mut chunks = gathered.into_inner().unwrap();
    chunks.sort_by_key(|(lo, _)| *lo);
    let mut out = Vec::with_capacity(chunks.iter().map(|(_, v)| v.len()).sum());
    for (_, v) in chunks {
        out.extend(v);
    }
    out
}

/// Types constructible from a parallel iterator (index-ordered).
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self {
        drive_ordered(&p)
    }
}

// ---------------------------------------------------------------------
// Adaptors
// ---------------------------------------------------------------------

pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Send + Sync,
{
    type Item = R;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_fill(&self, lo: usize, hi: usize, out: &mut Vec<R>) {
        let mut tmp = Vec::new();
        self.base.pi_fill(lo, hi, &mut tmp);
        out.extend(tmp.into_iter().map(&self.f));
    }
}

pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, I, F> ParallelIterator for FlatMap<B, F>
where
    B: ParallelIterator,
    I: IntoIterator,
    I::Item: Send,
    F: Fn(B::Item) -> I + Send + Sync,
{
    type Item = I::Item;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_fill(&self, lo: usize, hi: usize, out: &mut Vec<I::Item>) {
        let mut tmp = Vec::new();
        self.base.pi_fill(lo, hi, &mut tmp);
        for item in tmp {
            out.extend((self.f)(item));
        }
    }
}

pub struct FilterMap<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for FilterMap<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> Option<R> + Send + Sync,
{
    type Item = R;

    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }

    fn pi_fill(&self, lo: usize, hi: usize, out: &mut Vec<R>) {
        let mut tmp = Vec::new();
        self.base.pi_fill(lo, hi, &mut tmp);
        out.extend(tmp.into_iter().filter_map(&self.f));
    }
}

// ---------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------

/// Borrowing source over a slice (`par_iter`).
pub struct Iter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;

    fn pi_len(&self) -> usize {
        self.slice.len()
    }

    fn pi_fill(&self, lo: usize, hi: usize, out: &mut Vec<&'a T>) {
        out.extend(self.slice[lo..hi].iter());
    }
}

/// Owning source over a `Vec` (`into_par_iter`). Items are parked in
/// per-index cells so disjoint chunks can move them out concurrently.
pub struct IntoIter<T: Send> {
    items: Vec<Mutex<Option<T>>>,
}

impl<T: Send> ParallelIterator for IntoIter<T> {
    type Item = T;

    fn pi_len(&self) -> usize {
        self.items.len()
    }

    fn pi_fill(&self, lo: usize, hi: usize, out: &mut Vec<T>) {
        for cell in &self.items[lo..hi] {
            let item = cell.lock().unwrap().take().expect("index consumed once");
            out.push(item);
        }
    }
}

/// Source over an integer range (`(0..n).into_par_iter()`).
pub struct RangeIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn pi_len(&self) -> usize {
        self.len
    }

    fn pi_fill(&self, lo: usize, hi: usize, out: &mut Vec<usize>) {
        out.extend((self.start + lo)..(self.start + hi));
    }
}

/// Source over fixed-size windows of a slice (`par_chunks`).
pub struct ParChunks<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn pi_len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn pi_fill(&self, lo: usize, hi: usize, out: &mut Vec<&'a [T]>) {
        for c in lo..hi {
            let start = c * self.size;
            let end = ((c + 1) * self.size).min(self.slice.len());
            out.push(&self.slice[start..end]);
        }
    }
}

// ---------------------------------------------------------------------
// Entry traits
// ---------------------------------------------------------------------

/// Conversion into an owning parallel iterator.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoIter<T>;

    fn into_par_iter(self) -> IntoIter<T> {
        IntoIter {
            items: self.into_iter().map(|t| Mutex::new(Some(t))).collect(),
        }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangeIter;

    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = Iter<'a, T>;

    fn into_par_iter(self) -> Iter<'a, T> {
        Iter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = Iter<'a, T>;

    fn into_par_iter(self) -> Iter<'a, T> {
        Iter { slice: self }
    }
}

/// `par_iter()` — borrowing parallel iteration (rayon's
/// `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator,
    C: 'a,
    <&'a C as IntoParallelIterator>::Item: 'a,
{
    type Item = <&'a C as IntoParallelIterator>::Item;
    type Iter = <&'a C as IntoParallelIterator>::Iter;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// `par_chunks()` over slices.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParChunks<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        ParChunks { slice: self, size }
    }
}
