//! Offline stand-in for `serde_derive`.
//!
//! Derives the value-tree `Serialize` / `Deserialize` traits of the shim
//! `serde` crate. Implemented with a hand-rolled token walk (no `syn` /
//! `quote` available offline). Supported input shapes — which cover every
//! derive in this workspace:
//!
//! * structs with named fields,
//! * tuple structs,
//! * enums whose variants are unit, tuple, or struct-like.
//!
//! Generics are not supported and produce a compile error naming the
//! offending item. The only supported `#[serde(...)]` attribute is
//! `#[serde(default)]` on a named field (an absent key deserializes to
//! `Default::default()`); any other serde attribute is an error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    /// Named struct: fields in declaration order.
    Struct(Vec<Field>),
    /// Tuple struct: field count.
    TupleStruct(usize),
    /// Enum: (variant name, fields) pairs.
    Enum(Vec<(String, VariantShape)>),
}

/// One named field and its recognised serde attributes.
#[derive(Debug)]
struct Field {
    name: String,
    /// `#[serde(default)]`: absent key lifts to `Default::default()`.
    default: bool,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Input {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// --- parsing -----------------------------------------------------------

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes and visibility before the `struct` / `enum` keyword.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // #[...]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // pub(crate) / pub(in ...)
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                let k = id.to_string();
                i += 1;
                break k;
            }
            Some(t) => panic!("serde_derive shim: unexpected token {t} before struct/enum"),
            None => panic!("serde_derive shim: no struct/enum found"),
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }

    let shape = if kind == "struct" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Shape::Struct(Vec::new()), // unit struct
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: expected enum body, got {other:?}"),
        }
    };

    Input { name, shape }
}

/// Parses `field: Type, ...` (skipping visibility), returning the
/// fields with their recognised serde attributes. Non-serde attributes
/// (doc comments, `cfg`, ...) are skipped; the only serde attribute
/// accepted is `#[serde(default)]`.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pending_default = false;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    pending_default |= serde_attr_is_default(g.stream());
                }
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) => {
                fields.push(Field {
                    name: id.to_string(),
                    default: pending_default,
                });
                pending_default = false;
                i += 1;
                assert!(
                    matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
                    "serde_derive shim: expected `:` after field name"
                );
                i += 1;
                i = skip_type(&tokens, i);
            }
            other => panic!("serde_derive shim: unexpected token in fields: {other}"),
        }
    }
    fields
}

/// True when an attribute body (the tokens inside `#[...]`) is exactly
/// `serde(default)`. Any other `serde(...)` attribute is unsupported
/// and panics; non-serde attributes return false.
fn serde_attr_is_default(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.get(1) {
        Some(TokenTree::Group(g)) => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            match inner.first() {
                Some(TokenTree::Ident(id)) if id.to_string() == "default" && inner.len() == 1 => {
                    true
                }
                _ => panic!(
                    "serde_derive shim: only `#[serde(default)]` is supported, got serde({})",
                    g.stream()
                ),
            }
        }
        other => panic!("serde_derive shim: malformed serde attribute: {other:?}"),
    }
}

/// Advances past a type, stopping after the `,` that ends it (or at end
/// of stream). Tracks `<...>` nesting so generic-argument commas don't
/// terminate the field.
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                return i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Counts the comma-separated fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        // skip attributes and visibility on the field
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                continue;
            }
            _ => {}
        }
        count += 1;
        i = skip_type(&tokens, i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let shape = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        VariantShape::Struct(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        i += 1;
                        VariantShape::Tuple(count_tuple_fields(g.stream()))
                    }
                    _ => VariantShape::Unit,
                };
                // skip an explicit discriminant, then the trailing comma
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    while i < tokens.len()
                        && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
                    {
                        i += 1;
                    }
                }
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                    i += 1;
                }
                variants.push((name, shape));
            }
            other => panic!("serde_derive shim: unexpected token in enum body: {other}"),
        }
    }
    variants
}

// --- codegen -----------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(n) => match n {
            1 => "::serde::Serialize::to_value(&self.0)".to_string(),
            _ => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
            }
        },
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    VariantShape::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{v}\"), {inner})]),",
                            binders.join(", ")
                        )
                    }
                    VariantShape::Struct(fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        let binders: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        format!(
                            "{name}::{v} {{ {} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Map(::std::vec![{}]))]),",
                            binders.join(", "),
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// The field-initialiser expression for one named field: defaulted
/// fields tolerate an absent key, plain fields require it.
fn de_field_init(f: &Field, source: &str) -> String {
    if f.default {
        format!(
            "{0}: ::serde::de_field_or_default({source}, \"{0}\")?",
            f.name
        )
    } else {
        format!("{0}: ::serde::de_field({source}, \"{0}\")?", f.name)
    }
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| de_field_init(f, "__v")).collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(n) => match n {
            1 => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
            }
            _ => {
                let gets: Vec<String> = (0..*n)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_value(__items.get({i}).ok_or_else(|| ::serde::Error::new(\"tuple too short\"))?)?"
                        )
                    })
                    .collect();
                format!(
                    "let __items = __v.as_seq().ok_or_else(|| ::serde::Error::unexpected(\"sequence\", __v))?;\n\
                     ::std::result::Result::Ok({name}({}))",
                    gets.join(", ")
                )
            }
        },
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, s)| matches!(s, VariantShape::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, shape)| match shape {
                    VariantShape::Unit => None,
                    VariantShape::Tuple(n) => {
                        let expr = if *n == 1 {
                            format!("{name}::{v}(::serde::Deserialize::from_value(__inner)?)")
                        } else {
                            let gets: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(__items.get({i}).ok_or_else(|| ::serde::Error::new(\"tuple too short\"))?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "{{ let __items = __inner.as_seq().ok_or_else(|| ::serde::Error::unexpected(\"sequence\", __inner))?; {name}::{v}({}) }}",
                                gets.join(", ")
                            )
                        };
                        Some(format!(
                            "\"{v}\" => ::std::result::Result::Ok({expr}),"
                        ))
                    }
                    VariantShape::Struct(fields) => {
                        let inits: Vec<String> =
                            fields.iter().map(|f| de_field_init(f, "__inner")).collect();
                        Some(format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit}\n\
                         __other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged}\n\
                             __other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err(::serde::Error::unexpected(\"enum value\", __v)),\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
